//! Differential coverage for the shadow-memory analysis fast paths.
//!
//! `DeadnessAnalysis` resolves memory liveness through a paged last-writer
//! shadow table with whole-access (span) fast paths; the `dide-verify`
//! reference oracle deliberately keeps the naive per-byte representation.
//! These tests pin the two implementations together exactly where the fast
//! paths diverge structurally from the naive code: aliasing-heavy random
//! workloads, sub-word partial overwrites, and accesses that straddle a
//! shadow-page boundary (where the analysis must take its byte-at-a-time
//! fallback).

use dide::prelude::*;
use dide_isa::STACK_BASE;
use dide_verify::{derive_config, differential_verdicts};
use dide_workloads::{random_program, GenConfig};

/// Runs a program and returns its trace plus analysis.
fn analyze(program: &Program) -> (Trace, DeadnessAnalysis) {
    let trace = Emulator::new(program).run().expect("program must run to halt");
    let analysis = DeadnessAnalysis::analyze(&trace);
    (trace, analysis)
}

/// Sequence numbers of store records, in trace order.
fn store_seqs(trace: &Trace) -> Vec<u64> {
    trace.iter().filter(|r| r.op.is_store()).map(|r| r.seq).collect()
}

#[test]
fn matches_reference_oracle_on_aliasing_heavy_configs() {
    // Few memory slots force the generator to reuse addresses constantly,
    // producing dense overwrite/partial-overwrite chains in the shadow
    // table. Every verdict must agree with the naive per-byte oracle.
    for &memory_slots in &[1usize, 2, 4] {
        for seed in 0..8u64 {
            let config = GenConfig { memory_slots, segment_len: 16, ..GenConfig::default() };
            let program = random_program(seed, &config);
            let (trace, analysis) = analyze(&program);
            let mismatches = differential_verdicts(&trace, &analysis);
            assert!(
                mismatches.is_empty(),
                "slots {memory_slots}, seed {seed}: {} mismatch(es), first: {}",
                mismatches.len(),
                mismatches[0],
            );
        }
    }
}

#[test]
fn matches_reference_oracle_on_derived_seed_configs() {
    // The `dide verify` seed sweep derives a different config shape per
    // seed (including sub-word and unaligned aliasing patterns).
    for seed in 0..24u64 {
        let config = derive_config(seed);
        let program = random_program(seed, &config);
        let (trace, analysis) = analyze(&program);
        let mismatches = differential_verdicts(&trace, &analysis);
        assert!(mismatches.is_empty(), "seed {seed}: first mismatch: {}", mismatches[0]);
    }
}

#[test]
fn page_crossing_store_read_back_is_useful() {
    // STACK_BASE is 4 KiB-aligned, so an 8-byte store at SP - 4 straddles
    // a shadow-page boundary and must take the analysis fallback path.
    assert_eq!(STACK_BASE % 4096, 0, "test relies on a page-aligned stack");
    let mut b = ProgramBuilder::new("cross-read");
    b.li(Reg::T0, 0x1122_3344_5566_7788);
    b.sd(Reg::T0, Reg::SP, -4);
    b.ld(Reg::T1, Reg::SP, -4);
    b.out(Reg::T1);
    b.halt();
    let program = b.build().unwrap();
    let (trace, analysis) = analyze(&program);

    assert_eq!(trace.outputs(), &[0x1122_3344_5566_7788]);
    let stores = store_seqs(&trace);
    assert_eq!(stores.len(), 1);
    assert_eq!(analysis.verdict(stores[0]), Verdict::Useful);
    assert!(differential_verdicts(&trace, &analysis).is_empty());
}

#[test]
fn page_crossing_store_never_read_is_store_unread() {
    let mut b = ProgramBuilder::new("cross-unread");
    b.li(Reg::T0, 7);
    b.sd(Reg::T0, Reg::SP, -4); // straddles the page boundary, never loaded
    b.li(Reg::T1, 1);
    b.out(Reg::T1);
    b.halt();
    let program = b.build().unwrap();
    let (trace, analysis) = analyze(&program);

    let stores = store_seqs(&trace);
    assert_eq!(stores.len(), 1);
    assert_eq!(analysis.verdict(stores[0]), Verdict::Dead(DeadKind::StoreUnread));
    assert!(differential_verdicts(&trace, &analysis).is_empty());
}

#[test]
fn wide_store_fully_overwritten_by_narrow_stores_is_dead() {
    // An 8-byte store whose bytes are all re-claimed by two 4-byte stores
    // before any load: the live-byte counter must reach zero and classify
    // it StoreOverwritten, while the narrow stores stay live.
    let mut b = ProgramBuilder::new("narrow-overwrite");
    b.li(Reg::T0, -1);
    b.li(Reg::T1, 0x0a0b_0c0d);
    b.sd(Reg::T0, Reg::SP, -16); // dead: fully overwritten below
    b.sw(Reg::T1, Reg::SP, -16);
    b.sw(Reg::T1, Reg::SP, -12);
    b.ld(Reg::T2, Reg::SP, -16);
    b.out(Reg::T2);
    b.halt();
    let program = b.build().unwrap();
    let (trace, analysis) = analyze(&program);

    assert_eq!(trace.outputs(), &[0x0a0b_0c0d_0a0b_0c0d]);
    let stores = store_seqs(&trace);
    assert_eq!(stores.len(), 3);
    assert_eq!(analysis.verdict(stores[0]), Verdict::Dead(DeadKind::StoreOverwritten));
    assert_eq!(analysis.verdict(stores[1]), Verdict::Useful);
    assert_eq!(analysis.verdict(stores[2]), Verdict::Useful);
    assert!(differential_verdicts(&trace, &analysis).is_empty());
}

#[test]
fn partially_overwritten_wide_store_stays_live() {
    // Only half of the wide store's bytes are re-claimed; a load of the
    // surviving half must keep it useful.
    let mut b = ProgramBuilder::new("partial-overwrite");
    b.li(Reg::T0, 0x1111_2222_3333_4444);
    b.li(Reg::T1, 0x5555_6666);
    b.sd(Reg::T0, Reg::SP, -16);
    b.sw(Reg::T1, Reg::SP, -16); // overwrites only the low half
    b.lw(Reg::T2, Reg::SP, -12); // reads the surviving high half
    b.out(Reg::T2);
    b.halt();
    let program = b.build().unwrap();
    let (trace, analysis) = analyze(&program);

    assert_eq!(trace.outputs(), &[0x1111_2222]);
    let stores = store_seqs(&trace);
    assert_eq!(stores.len(), 2);
    assert_eq!(analysis.verdict(stores[0]), Verdict::Useful);
    assert!(differential_verdicts(&trace, &analysis).is_empty());
}
