//! End-to-end tests of the observability layer: the `dide stats` golden
//! snapshots, the `dide-stats/v1` document shape, and the golden plumbing
//! that snapshots stats documents alongside the experiment tables.

use std::path::{Path, PathBuf};

use dide::{
    run_golden, run_stats, GoldenOptions, RunSelection, StatsFormat, StatsOptions, STATS_SCHEMA,
};

fn committed_golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// The snapshotted CFI-elimination document (`tests/golden/stats_expr.json`).
fn expr_cfi() -> RunSelection {
    RunSelection { eliminate: true, ..RunSelection::default() }
}

#[test]
fn stats_json_matches_committed_golden_snapshot() {
    // Byte-exact against the blessed snapshot, like the experiment tables.
    // `dide verify --golden --bless` rewrites it on an intended change.
    let rendered = run_stats(&StatsOptions { select: expr_cfi(), format: None }).unwrap();
    let snapshot = std::fs::read_to_string(committed_golden_dir().join("stats_expr.json")).unwrap();
    assert_eq!(rendered.output, snapshot, "stats document drifted from its golden snapshot");
}

#[test]
fn stats_output_is_deterministic_and_well_formed() {
    // The guard CI relies on, mirrored for BENCH.json: never empty, never
    // truncated, schema-tagged, and identical across invocations.
    let a = run_stats(&StatsOptions { select: expr_cfi(), format: None }).unwrap();
    let b = run_stats(&StatsOptions { select: expr_cfi(), format: None }).unwrap();
    assert_eq!(a.output, b.output);
    let json = &a.output;
    assert!(!json.trim().is_empty());
    assert!(json.starts_with("{\n") && json.ends_with("}\n"), "truncated document");
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert!(json.contains(&format!("\"schema\": \"{STATS_SCHEMA}\"")));
    assert!(a.violations.is_empty(), "conservation laws: {:?}", a.violations);
}

#[test]
fn csv_and_json_agree_on_counters() {
    let select = expr_cfi();
    let json = run_stats(&StatsOptions { select: select.clone(), format: Some(StatsFormat::Json) })
        .unwrap();
    let csv = run_stats(&StatsOptions { select, format: Some(StatsFormat::Csv) }).unwrap();
    assert!(csv.output.starts_with(&format!("# {STATS_SCHEMA}\n")));
    // Same registry behind both renderings: every CSV row's value appears
    // in the JSON under the same counter name.
    let mut rows = 0;
    for line in csv.output.lines().skip(2) {
        let (name, value) = line.split_once(',').expect("counter,value row");
        assert!(
            json.output.contains(&format!("\"{name}\": {value}")),
            "JSON disagrees with CSV on {name}={value}"
        );
        rows += 1;
    }
    assert!(rows > 30, "expected the full registry, got {rows} rows");
}

#[test]
fn blessing_snapshots_stats_documents_alongside_tables() {
    let dir = std::env::temp_dir().join(format!("dide-obs-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let options = GoldenOptions {
        dir: dir.clone(),
        only: Some(vec!["e1".to_string(), "stats_expr.json".to_string()]),
        jobs: 1,
        bless: true,
    };
    let run = run_golden(&options).unwrap();
    assert!(run.report.contains("blessed 2 snapshot(s)"), "{}", run.report);
    let blessed = std::fs::read_to_string(dir.join("stats_expr.json")).unwrap();
    assert!(blessed.contains(STATS_SCHEMA));
    // And the comparison direction is clean against what was just blessed.
    let check = run_golden(&GoldenOptions { bless: false, ..options }).unwrap();
    assert_eq!(check.mismatches, 0, "{}", check.report);
    std::fs::remove_dir_all(&dir).ok();
}
