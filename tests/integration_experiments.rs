//! Cross-crate integration: the elimination claims (E8, E9, E12) hold when
//! composed through the experiment harness.

use dide::experiments::e08_resource_savings::ResourceSavingsReport;
use dide::experiments::e09_speedup::Speedup;
use dide::experiments::e10_machine_config::MachineConfigTable;
use dide::experiments::e12_elimination_ablation::EliminationAblation;
use dide::{OptLevel, Workbench};

fn bench() -> Workbench {
    Workbench::subset(&["expr", "parse", "objstore", "route"], OptLevel::O2, 1)
}

#[test]
fn e8_mean_reductions_exceed_five_percent() {
    let result = ResourceSavingsReport::run(&bench());
    let (allocs, rf_reads, rf_writes, dcache) = result.means();
    assert!(allocs > 0.05, "paper: >5% average; allocs {allocs:.3}");
    assert!(rf_writes > 0.05, "rf writes {rf_writes:.3}");
    assert!(rf_reads > 0.02, "rf reads {rf_reads:.3}");
    assert!(dcache > 0.02, "dcache {dcache:.3}");
    // "sometimes exceeding 10%"
    assert!(
        result.rows.iter().any(|r| r.alloc_reduction > 0.10),
        "at least one benchmark exceeds 10%"
    );
}

#[test]
fn e9_contended_machine_sees_positive_mean_speedup() {
    let result = Speedup::run(&bench());
    let mean = result.mean_speedup();
    assert!(
        mean > 1.005,
        "paper: +3.6% average on contended machine; got {:+.2}%",
        100.0 * (mean - 1.0)
    );
    for row in &result.rows {
        assert!(row.speedup() > 0.98, "{} regressed: {:.4}", row.benchmark, row.speedup());
    }
}

#[test]
fn e9_baseline_machine_gains_less_than_contended() {
    let wb = Workbench::subset(&["expr", "objstore"], OptLevel::O2, 1);
    let contended = Speedup::run(&wb);
    let roomy = Speedup::run_on(&wb, dide::prelude::PipelineConfig::baseline());
    assert!(
        contended.mean_speedup() >= roomy.mean_speedup() - 0.01,
        "contention is where elimination pays: contended {:.4} vs baseline {:.4}",
        contended.mean_speedup(),
        roomy.mean_speedup()
    );
}

#[test]
fn e12_each_policy_stage_adds_elimination() {
    let result = EliminationAblation::run(&bench());
    assert_eq!(result.rows.len(), 4);
    let off = &result.rows[0];
    let store = &result.rows[1];
    let reg = &result.rows[2];
    let full = &result.rows[3];
    assert_eq!(off.eliminated, 0);
    assert!(store.eliminated > 0 && reg.eliminated > 0);
    assert!(full.eliminated >= reg.eliminated);
    assert!(full.dcache_saved > reg.dcache_saved, "stores add D-cache savings");
    // RegOnly is expected to be counterproductive (dead stores read
    // dead-tagged registers and trigger recoveries); the full policy must
    // clearly dominate it and deliver a real speedup.
    assert!(full.speedup > reg.speedup);
    assert!(full.speedup > 1.0, "full policy speedup {:.4}", full.speedup);
    assert!(store.speedup > 0.99, "store-only is safe: {:.4}", store.speedup);
}

#[test]
fn e10_machine_table_renders() {
    let text = MachineConfigTable::collect().to_string();
    for needle in ["ROB", "issue queue", "physical registers", "gshare", "CFI"] {
        assert!(text.contains(needle), "missing {needle}");
    }
}

#[test]
fn parallel_run_jobs_match_serial_rows() {
    // The per-benchmark fan-out must not change any row: same inputs, same
    // simulations, only the execution schedule differs.
    let wb = bench();
    assert_eq!(ResourceSavingsReport::run(&wb).rows, ResourceSavingsReport::run_jobs(&wb, 4).rows);
    assert_eq!(Speedup::run(&wb).rows, Speedup::run_jobs(&wb, 4).rows);
    assert_eq!(EliminationAblation::run(&wb).rows, EliminationAblation::run_jobs(&wb, 4).rows);
}

#[test]
fn experiment_runner_output_is_job_count_invariant() {
    // The `dide experiments` contract: tables are byte-identical for every
    // `--jobs` value. Cheap experiments keep this affordable in debug
    // builds; the heavy per-benchmark fan-out paths are covered by
    // `parallel_run_jobs_match_serial_rows` above on a subset workbench.
    let options = |jobs| dide::ExperimentOptions {
        scale: 1,
        only: Some(vec!["e1".into(), "e10".into(), "e16".into()]),
        jobs,
        ..dide::ExperimentOptions::default()
    };
    let serial = dide::run_experiments(&options(1));
    let parallel = dide::run_experiments(&options(4));
    assert!(!serial.tables.is_empty());
    assert_eq!(serial.tables, parallel.tables, "tables must not depend on --jobs");
    for id in ["E1:", "E10:", "E16:"] {
        assert!(serial.tables.contains(id), "missing {id}");
    }
}
