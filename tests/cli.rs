//! End-to-end flag validation of the `dide` binary.
//!
//! Every bad flag value must die with exit code 1 and a one-line
//! `error: ...` diagnostic naming the flag — never a panic, never a
//! backtrace, never output on stdout. These run the real binary
//! (`CARGO_BIN_EXE_dide`), so they cover the flag plumbing the unit tests
//! in `dide::cli` cannot: which subcommand routes which flag through the
//! strict parser.

use std::process::{Command, Output};

fn dide(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dide")).args(args).output().expect("dide binary runs")
}

/// Asserts the invocation fails cleanly: exit 1, empty stdout, and a
/// single-line stderr diagnostic containing every expected fragment.
fn assert_one_line_error(args: &[&str], fragments: &[&str]) {
    let out = dide(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "{args:?} must exit 1; stderr: {stderr}");
    assert!(out.stdout.is_empty(), "{args:?} must not write stdout");
    assert_eq!(stderr.lines().count(), 1, "{args:?} must emit one line, got: {stderr}");
    assert!(stderr.starts_with("error: "), "{args:?} stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "{args:?} panicked: {stderr}");
    for fragment in fragments {
        assert!(stderr.contains(fragment), "{args:?} stderr missing `{fragment}`: {stderr}");
    }
}

#[test]
fn bench_rejects_bad_scales() {
    assert_one_line_error(&["bench", "--scales", "0"], &["--scales", ">= 1"]);
    assert_one_line_error(&["bench", "--scales", ""], &["--scales", "non-empty list"]);
    assert_one_line_error(&["bench", "--scales", "1,x,4"], &["--scales", ">= 1"]);
    assert_one_line_error(&["bench", "--scales", "1,4,"], &["--scales"]);
}

#[test]
fn run_and_trace_reject_zero_scale() {
    assert_one_line_error(&["run", "expr", "--scale", "0"], &["--scale", ">= 1"]);
    assert_one_line_error(&["trace", "expr", "--scale", "zero"], &["--scale", ">= 1"]);
}

#[test]
fn verify_rejects_bad_numeric_flags() {
    assert_one_line_error(&["verify", "--seeds", "many"], &["--seeds"]);
    assert_one_line_error(&["verify", "--jobs", "0"], &["--jobs", ">= 1"]);
}

#[test]
fn stats_rejects_bad_flags() {
    assert_one_line_error(&["stats", "--benchmark", "nope"], &["unknown benchmark", "dide list"]);
    assert_one_line_error(&["stats", "--scale", "0"], &["--scale", ">= 1"]);
    assert_one_line_error(&["stats", "--json", "--csv"], &["at most one"]);
    assert_one_line_error(&["stats", "--machine", "turbo"], &["unknown machine"]);
}

#[test]
fn events_rejects_bad_flags() {
    assert_one_line_error(&["events", "--last", "0"], &["--last", ">= 1"]);
    assert_one_line_error(&["events", "--sample-every", "-4"], &["--sample-every", ">= 1"]);
    assert_one_line_error(&["events", "--benchmark", "nope"], &["unknown benchmark"]);
}

#[test]
fn campaign_rejects_bad_flags() {
    assert_one_line_error(&["campaign"], &["campaign subcommand"]);
    assert_one_line_error(&["campaign", "sweep"], &["campaign subcommand", "sweep"]);
    assert_one_line_error(&["campaign", "run", "--elims", "turbo"], &["--elims", "turbo"]);
    assert_one_line_error(&["campaign", "run", "--opts", "O3"], &["--opts", "O0 or O2"]);
    assert_one_line_error(&["campaign", "run", "--machines", "quantum"], &["--machines"]);
    assert_one_line_error(&["campaign", "run", "--thresholds", "0"], &["--thresholds", ">= 1"]);
    assert_one_line_error(&["campaign", "run", "--seeds", "1,x"], &["--seeds"]);
    assert_one_line_error(&["campaign", "run", "--benchmarks", "nope"], &["unknown benchmark"]);
    assert_one_line_error(&["campaign", "run", "--flush-every", "0"], &["--flush-every", ">= 1"]);
    assert_one_line_error(&["campaign", "report", "--where", "noequals"], &["--where"]);
    assert_one_line_error(
        &["campaign", "report", "--store", "nonexistent/x.jsonl"],
        &["nonexistent/x.jsonl"],
    );
}

#[test]
fn stats_happy_path_emits_schema() {
    let out = dide(&["stats", "--benchmark", "route", "--json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"schema\": \"dide-stats/v1\""), "{stdout}");
    assert!(stdout.contains("\"benchmark\": \"route\""), "{stdout}");
}

#[test]
fn events_happy_path_shows_tail() {
    let out = dide(&["events", "--benchmark", "route", "--last", "5", "--eliminate"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("recorded event(s)"), "{stdout}");
}

/// Repo-root path for a file, valid from the test CWD (`crates/core`).
fn repo_path(rel: &str) -> String {
    format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn run_asm_file_matches_the_golden_snapshot() {
    let out = dide(&["run", &repo_path("asm/prime.asm")]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let golden = std::fs::read_to_string(repo_path("tests/golden/run_prime.txt"))
        .expect("golden snapshot committed");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        golden,
        "dide run asm/prime.asm drifted from tests/golden/run_prime.txt \
         (re-bless with `dide verify --golden --bless --only run_prime.txt`)"
    );
}

#[test]
fn run_asm_workloads_by_name() {
    for name in ["prime", "matmul", "strsearch"] {
        let out = dide(&["run", name]);
        assert!(out.status.success(), "{name} stderr: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("cycles"), "{name}: {stdout}");
    }
}

#[test]
fn disasm_asm_file_round_trips_to_stdout() {
    let out = dide(&["disasm", &repo_path("asm/strsearch.asm")]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("; program `strsearch`"), "{stdout}");
    assert!(stdout.contains(".data"), "{stdout}");
}

#[test]
fn stats_accepts_asm_workloads_by_name() {
    let out = dide(&["stats", "--benchmark", "prime", "--json", "--eliminate"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"benchmark\": \"prime\""), "{stdout}");
    assert!(stdout.contains("\"violations\": []"), "{stdout}");
}

#[test]
fn list_includes_asm_workloads() {
    let out = dide(&["list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["prime", "matmul", "strsearch", "expr"] {
        assert!(stdout.contains(name), "missing {name}: {stdout}");
    }
}

#[test]
fn run_rejects_asm_errors_with_position() {
    // A missing file is an I/O error; a bad file is a positioned parse
    // error. Both must be one-line `error:` diagnostics, not panics.
    assert_one_line_error(&["run", "nonexistent/x.asm"], &["nonexistent/x.asm"]);
    let dir = std::env::temp_dir().join("dide-cli-asm-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bad = dir.join("bad.asm");
    std::fs::write(&bad, "  adx t0, t1, t2\n  halt\n").expect("write bad.asm");
    assert_one_line_error(
        &["run", bad.to_str().expect("utf-8 temp path")],
        &["bad.asm:1:3: unknown mnemonic `adx`"],
    );
}
