//! End-to-end flag validation of the `dide` binary.
//!
//! Every bad flag value must die with exit code 1 and a one-line
//! `error: ...` diagnostic naming the flag — never a panic, never a
//! backtrace, never output on stdout. These run the real binary
//! (`CARGO_BIN_EXE_dide`), so they cover the flag plumbing the unit tests
//! in `dide::cli` cannot: which subcommand routes which flag through the
//! strict parser.

use std::process::{Command, Output};

fn dide(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dide")).args(args).output().expect("dide binary runs")
}

/// Asserts the invocation fails cleanly: exit 1, empty stdout, and a
/// single-line stderr diagnostic containing every expected fragment.
fn assert_one_line_error(args: &[&str], fragments: &[&str]) {
    let out = dide(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "{args:?} must exit 1; stderr: {stderr}");
    assert!(out.stdout.is_empty(), "{args:?} must not write stdout");
    assert_eq!(stderr.lines().count(), 1, "{args:?} must emit one line, got: {stderr}");
    assert!(stderr.starts_with("error: "), "{args:?} stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "{args:?} panicked: {stderr}");
    for fragment in fragments {
        assert!(stderr.contains(fragment), "{args:?} stderr missing `{fragment}`: {stderr}");
    }
}

#[test]
fn bench_rejects_bad_scales() {
    assert_one_line_error(&["bench", "--scales", "0"], &["--scales", ">= 1"]);
    assert_one_line_error(&["bench", "--scales", ""], &["--scales", "non-empty list"]);
    assert_one_line_error(&["bench", "--scales", "1,x,4"], &["--scales", ">= 1"]);
    assert_one_line_error(&["bench", "--scales", "1,4,"], &["--scales"]);
}

#[test]
fn run_and_trace_reject_zero_scale() {
    assert_one_line_error(&["run", "expr", "--scale", "0"], &["--scale", ">= 1"]);
    assert_one_line_error(&["trace", "expr", "--scale", "zero"], &["--scale", ">= 1"]);
}

#[test]
fn verify_rejects_bad_numeric_flags() {
    assert_one_line_error(&["verify", "--seeds", "many"], &["--seeds"]);
    assert_one_line_error(&["verify", "--jobs", "0"], &["--jobs", ">= 1"]);
}

#[test]
fn stats_rejects_bad_flags() {
    assert_one_line_error(&["stats", "--benchmark", "nope"], &["unknown benchmark", "dide list"]);
    assert_one_line_error(&["stats", "--scale", "0"], &["--scale", ">= 1"]);
    assert_one_line_error(&["stats", "--json", "--csv"], &["at most one"]);
    assert_one_line_error(&["stats", "--machine", "turbo"], &["unknown machine"]);
}

#[test]
fn events_rejects_bad_flags() {
    assert_one_line_error(&["events", "--last", "0"], &["--last", ">= 1"]);
    assert_one_line_error(&["events", "--sample-every", "-4"], &["--sample-every", ">= 1"]);
    assert_one_line_error(&["events", "--benchmark", "nope"], &["unknown benchmark"]);
}

#[test]
fn stats_happy_path_emits_schema() {
    let out = dide(&["stats", "--benchmark", "route", "--json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"schema\": \"dide-stats/v1\""), "{stdout}");
    assert!(stdout.contains("\"benchmark\": \"route\""), "{stdout}");
}

#[test]
fn events_happy_path_shows_tail() {
    let out = dide(&["events", "--benchmark", "route", "--last", "5", "--eliminate"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("recorded event(s)"), "{stdout}");
}
