//! Property tests for the clustered backend (DESIGN.md §11): over randomly
//! generated programs, every steering policy must preserve the baseline's
//! architectural results, the dead-steering audit must be clean under the
//! oracle, and the cluster conservation laws must hold end to end.

use dide::prelude::*;
use dide_workloads::{random_program, GenConfig};
use proptest::prelude::*;

fn trace_for(seed: u64) -> Trace {
    let program = random_program(seed, &GenConfig::default());
    Emulator::new(&program).run().expect("generated programs halt")
}

const POLICIES: [SteerPolicy; 3] =
    [SteerPolicy::RoundRobin, SteerPolicy::DependenceAffinity, SteerPolicy::DeadSteer];

proptest! {
    #![proptest_config(ProptestConfig::from_env(24))]

    // Clustering is a timing model, never an architectural one: for any
    // cluster count, penalty and policy, the machine commits exactly the
    // trace (same length as the unified contended baseline) and satisfies
    // every per-run conservation law, including the cluster accounting
    // (steered + squashed == dispatched, per-cluster sums, audit bounds).
    #[test]
    fn clustering_preserves_architectural_results(seed: u64) {
        let trace = trace_for(seed);
        let analysis = DeadnessAnalysis::analyze(&trace);
        let base = Core::new(PipelineConfig::contended()).run(&trace, &analysis);
        prop_assert_eq!(base.committed, trace.len() as u64);
        // Vary the shape with the seed so the 24 cases sweep the axes
        // without a quadratic blowup per case.
        let clusters = 2 + (seed % 3) as usize; // 2..=4
        let bypass_penalty = (seed / 3 % 4) as u32; // 0..=3
        for steer in POLICIES {
            for elim in [false, true] {
                let mut cfg = PipelineConfig::contended()
                    .with_cluster(ClusterConfig { clusters, bypass_penalty, steer });
                if elim {
                    cfg = cfg.with_elimination(DeadElimConfig::default());
                }
                let stats = Core::new(cfg).run(&trace, &analysis);
                prop_assert_eq!(
                    stats.committed, base.committed,
                    "steer {:?} elim {} must commit the whole trace", steer, elim
                );
                prop_assert_eq!(stats.dispatched, base.dispatched);
                let v = stats.invariant_violations();
                prop_assert!(v.is_empty(), "steer {:?} elim {}: {:?}", steer, elim, v);
            }
        }
    }

    // `DeadSteer` with the oracle predictor and elimination off steers
    // exactly the oracle-dead instructions: the commit-time audit
    // (`dead_wrong`) must stay zero, the steered count must never exceed
    // the oracle's dead count, and all of it lands in the cheap cluster.
    #[test]
    fn oracle_dead_steering_never_steers_a_live_instruction(seed: u64) {
        let trace = trace_for(seed);
        let analysis = DeadnessAnalysis::analyze(&trace);
        let cfg = PipelineConfig::contended()
            .with_elimination(DeadElimConfig {
                policy: EliminationPolicy::Off,
                oracle: true,
                ..DeadElimConfig::default()
            })
            .with_cluster(ClusterConfig {
                clusters: 2,
                bypass_penalty: 2,
                steer: SteerPolicy::DeadSteer,
            });
        let stats = Core::new(cfg).run(&trace, &analysis);
        prop_assert_eq!(stats.committed, trace.len() as u64);
        prop_assert_eq!(stats.steer.dead_wrong, 0, "the oracle must never steer a live inst");
        prop_assert_eq!(stats.steer.squashed, 0, "policy Off must never eliminate");
        prop_assert_eq!(stats.dead_predicted, 0);
        let oracle_dead = analysis.verdicts().iter().filter(|v| v.is_dead()).count() as u64;
        prop_assert!(stats.steer.dead <= oracle_dead, "steered {} of {} oracle-dead",
            stats.steer.dead, oracle_dead);
        prop_assert_eq!(stats.clusters[1].steered_dead, stats.steer.dead);
        prop_assert_eq!(stats.clusters[0].steered_dead, 0);
        let v = stats.invariant_violations();
        prop_assert!(v.is_empty(), "{:?}", v);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::from_env(10))]

    // The degenerate clustered machine (one cluster, free bypass) is the
    // unified machine: identical statistics field for field, for every
    // policy, with and without elimination — the property-test twin of the
    // pinned micro-trace in `crates/pipeline/tests/cycle_accuracy.rs`.
    #[test]
    fn single_cluster_zero_penalty_matches_unified(seed: u64) {
        let trace = trace_for(seed);
        let analysis = DeadnessAnalysis::analyze(&trace);
        for elim in [false, true] {
            let mut unified = PipelineConfig::contended();
            if elim {
                unified = unified.with_elimination(DeadElimConfig::default());
            }
            let base = Core::new(unified).run(&trace, &analysis);
            for steer in POLICIES {
                let cfg = unified
                    .with_cluster(ClusterConfig { clusters: 1, bypass_penalty: 0, steer });
                let mut stats = Core::new(cfg).run(&trace, &analysis);
                prop_assert_eq!(stats.cycles, base.cycles,
                    "steer {:?} elim {} cycles", steer, elim);
                if steer == SteerPolicy::DeadSteer && !elim {
                    // Steering-only mode turns prediction on for routing,
                    // which legitimately perturbs the training-side
                    // counters; timing equality above is the contract.
                    continue;
                }
                stats.clusters.clear();
                stats.steer = SteerStats::default();
                prop_assert_eq!(stats, base.clone(), "steer {:?} elim {}", steer, elim);
            }
        }
    }

    // Cross-run savings laws hold within the clustered family exactly as
    // they do on the unified machine: the clustered baseline's usage
    // reappears as the clustered eliminator's usage plus savings.
    #[test]
    fn clustered_savings_laws_match_unclustered(seed: u64) {
        let trace = trace_for(seed);
        let analysis = DeadnessAnalysis::analyze(&trace);
        let cluster = ClusterConfig {
            clusters: 2,
            bypass_penalty: 2,
            steer: SteerPolicy::RoundRobin,
        };
        let base = Core::new(PipelineConfig::contended().with_cluster(cluster))
            .run(&trace, &analysis);
        let elim_cfg = DeadElimConfig { oracle: true, ..DeadElimConfig::default() };
        let elim = Core::new(
            PipelineConfig::contended().with_elimination(elim_cfg).with_cluster(cluster),
        )
        .run(&trace, &analysis);
        let v = dide_verify::cross_run_violations(&base, &elim);
        prop_assert!(v.is_empty(), "clustered cross-run laws: {:?}", v);
        // The oracle's verdicts depend only on the trace, so the *savings*
        // an oracle eliminator books are identical clustered or not.
        let unified_elim = Core::new(PipelineConfig::contended().with_elimination(elim_cfg))
            .run(&trace, &analysis);
        prop_assert_eq!(elim.savings, unified_elim.savings);
        prop_assert_eq!(elim.dead_predicted, unified_elim.dead_predicted);
        prop_assert_eq!(elim.dead_violations, unified_elim.dead_violations);
    }
}
