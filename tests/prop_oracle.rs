//! Whole-stack property tests over randomly generated programs:
//!
//! * the deadness oracle's removability promise (deleting dead
//!   instructions preserves outputs),
//! * structural invariants of the dynamic dependence graph, and
//! * conservation laws of the timing pipeline.

use dide::prelude::*;
use dide_analysis::{replay_outputs, verify_dead_removable};
use dide_workloads::{random_program, GenConfig};
use proptest::prelude::*;

fn trace_for(seed: u64) -> Trace {
    let program = random_program(seed, &GenConfig::default());
    Emulator::new(&program).run().expect("generated programs halt")
}

proptest! {
    // 24 cases by default; `DIDE_PROPTEST_CASES` (e.g. via `./ci.sh --deep`)
    // scales this up without editing the test.
    #![proptest_config(ProptestConfig::from_env(24))]

    #[test]
    fn dead_instructions_are_removable(seed: u64) {
        let trace = trace_for(seed);
        let analysis = DeadnessAnalysis::analyze(&trace);
        verify_dead_removable(&trace, &analysis)
            .expect("removing oracle-dead instructions must preserve outputs");
    }

    #[test]
    fn full_replay_is_faithful(seed: u64) {
        let trace = trace_for(seed);
        let outputs = replay_outputs(&trace, |_| false);
        prop_assert_eq!(outputs, trace.outputs().to_vec());
    }

    #[test]
    fn useful_instructions_read_only_useful_producers(seed: u64) {
        let trace = trace_for(seed);
        let analysis = DeadnessAnalysis::analyze(&trace);
        for r in &trace {
            let v = analysis.verdict(r.seq);
            // Producers always precede their consumers.
            for &p in analysis.producers(r.seq) {
                prop_assert!(p < r.seq, "producer {} of {} out of order", p, r.seq);
            }
            // A useful (or root) instruction's producers must be useful:
            // dead values are read only by dead instructions.
            let consumes = v == Verdict::Useful || !v.is_eligible();
            let roots_or_useful = consumes
                && (r.op.is_control()
                    || matches!(
                        r.op.kind(),
                        dide_isa::OpcodeKind::Out | dide_isa::OpcodeKind::Halt
                    )
                    || v == Verdict::Useful);
            if roots_or_useful {
                for &p in analysis.producers(r.seq) {
                    prop_assert!(
                        !analysis.is_dead(p),
                        "useful seq {} read dead producer {}",
                        r.seq,
                        p
                    );
                }
            }
        }
    }

    #[test]
    fn dead_counts_are_conserved(seed: u64) {
        let trace = trace_for(seed);
        let analysis = DeadnessAnalysis::analyze(&trace);
        let stats = analysis.stats();
        let dead_by_scan = analysis.verdicts().iter().filter(|v| v.is_dead()).count() as u64;
        let eligible_by_scan =
            analysis.verdicts().iter().filter(|v| v.is_eligible()).count() as u64;
        prop_assert_eq!(stats.dead_total, dead_by_scan);
        prop_assert_eq!(stats.eligible, eligible_by_scan);
        prop_assert!(stats.dead_total <= stats.eligible);
        prop_assert_eq!(stats.total, trace.len() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::from_env(10))]

    // The counter registry's conservation laws, end to end: every per-run
    // law in `PipelineStats::conservation_rules()` (commit accounting,
    // alloc/free bounds, elimination accounting, cache-level conservation)
    // plus the cross-run laws between the baseline and each elimination
    // flavor (eliminated register-file and D-cache traffic reappears
    // exactly as savings). These registry rules subsume the bespoke
    // alloc/free and elimination assertions this block used to spell out
    // field by field.
    #[test]
    fn registry_conservation_laws_hold_end_to_end(seed: u64) {
        let trace = trace_for(seed);
        let analysis = DeadnessAnalysis::analyze(&trace);
        let base = Core::new(PipelineConfig::contended()).run(&trace, &analysis);
        prop_assert_eq!(base.counters().expect("pipeline.committed"), trace.len() as u64);
        let v = base.invariant_violations();
        prop_assert!(v.is_empty(), "baseline laws: {:?}", v);
        for oracle in [false, true] {
            let config = PipelineConfig::contended()
                .with_elimination(DeadElimConfig { oracle, ..DeadElimConfig::default() });
            let elim = Core::new(config).run(&trace, &analysis);
            prop_assert_eq!(elim.committed, trace.len() as u64);
            let v = elim.invariant_violations();
            prop_assert!(v.is_empty(), "per-run laws (oracle={}): {:?}", oracle, v);
            let v = dide_verify::cross_run_violations(&base, &elim);
            prop_assert!(v.is_empty(), "cross-run laws (oracle={}): {:?}", oracle, v);
        }
    }
}
