//! Integration tests for the `dide verify` driver: the differential fuzz
//! sweep (report determinism across job counts, corpus replay) and the
//! golden-table bless/compare cycle.

use std::fs;
use std::path::PathBuf;

use dide::{GoldenOptions, VerifyOptions};
use dide_verify::{golden_path, save_case, CorpusCase};
use dide_workloads::GenConfig;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dide-verify-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn fuzz_sweep_is_clean_and_byte_identical_across_job_counts() {
    let serial = dide::run_verify(&VerifyOptions { seeds: 12, jobs: 1, corpus: None }).unwrap();
    let parallel = dide::run_verify(&VerifyOptions { seeds: 12, jobs: 4, corpus: None }).unwrap();
    assert_eq!(serial.report, parallel.report, "report must not depend on --jobs");
    assert!(serial.is_clean(), "stack must verify clean:\n{}", serial.report);
    assert_eq!(serial.seeds_checked, 12);
    assert_eq!(serial.corpus_replayed, 0);
    assert!(serial.report.contains("checked 12 seed(s)"));
    assert!(serial.report.contains("0 failure(s)"));
}

#[test]
fn corpus_cases_are_replayed_before_fresh_seeds() {
    let dir = temp_dir("corpus");
    // A clean case: replay notes it as fixed. An invalid-config case:
    // replay reports the failure (exercising the failing path without
    // needing a real bug in the stack).
    save_case(
        &dir,
        &CorpusCase { seed: 3, config: GenConfig::default(), reason: "old failure".into() },
        "",
    )
    .unwrap();
    save_case(
        &dir,
        &CorpusCase {
            seed: 4,
            config: GenConfig { segments: 0, ..GenConfig::default() },
            reason: "synthetic".into(),
        },
        "",
    )
    .unwrap();
    let run =
        dide::run_verify(&VerifyOptions { seeds: 2, jobs: 2, corpus: Some(dir.clone()) }).unwrap();
    assert_eq!(run.corpus_replayed, 2);
    assert_eq!(run.failures, 1, "{}", run.report);
    assert!(run.report.contains("replaying 2 corpus case(s)"));
    assert!(run.report.contains("clean (fixed"));
    assert!(run.report.contains("STILL FAILING"));
    assert!(run.report.contains("invalid config"));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn golden_bless_compare_and_tamper_detection() {
    let dir = temp_dir("golden");
    let subset = Some(vec!["e1".to_string(), "e10".to_string()]);

    // Unblessed directory: every table is a mismatch, with a bless hint.
    let unblessed = dide::run_golden(&GoldenOptions {
        dir: dir.clone(),
        only: subset.clone(),
        jobs: 2,
        bless: false,
    })
    .unwrap();
    assert_eq!(unblessed.mismatches, 2, "{}", unblessed.report);
    assert!(unblessed.report.contains("--bless"));

    // Bless, then compare: clean.
    let blessed = dide::run_golden(&GoldenOptions {
        dir: dir.clone(),
        only: subset.clone(),
        jobs: 2,
        bless: true,
    })
    .unwrap();
    assert_eq!(blessed.mismatches, 0);
    assert!(blessed.report.contains("blessed 2 snapshot(s)"));
    let clean = dide::run_golden(&GoldenOptions {
        dir: dir.clone(),
        only: subset.clone(),
        jobs: 2,
        bless: false,
    })
    .unwrap();
    assert_eq!(clean.mismatches, 0, "{}", clean.report);

    // Perturb one snapshot: the comparison pinpoints it.
    let e1 = golden_path(&dir, "e1");
    let mut text = fs::read_to_string(&e1).unwrap();
    text.push_str("tampered\n");
    fs::write(&e1, text).unwrap();
    let tampered =
        dide::run_golden(&GoldenOptions { dir: dir.clone(), only: subset, jobs: 2, bless: false })
            .unwrap();
    assert_eq!(tampered.mismatches, 1, "{}", tampered.report);
    assert!(tampered.report.contains("MISMATCH e1"), "{}", tampered.report);
    fs::remove_dir_all(&dir).unwrap();
}
