//! Differential verification of the shipped `.asm` workloads: the
//! production [`DeadnessAnalysis`] and the naive reference oracle from
//! `dide-verify` must agree verdict-by-verdict on every dynamic
//! instruction, and the dependence-graph invariants must hold — the same
//! bar `dide verify` applies to generated programs, applied to the
//! hand-written external benchmarks.

use dide::prelude::*;
use dide_verify::{check_invariants, differential_verdicts, ReferenceOracle};

fn case(name: &str) -> (Trace, DeadnessAnalysis) {
    let spec = dide::find_workload(name).expect("asm workload enrolled");
    let program = spec.build(OptLevel::O2, 1);
    let trace = Emulator::new(&program).run().expect("asm workload halts");
    let analysis = DeadnessAnalysis::analyze(&trace);
    (trace, analysis)
}

#[test]
fn analyses_agree_verdict_by_verdict() {
    for spec in dide::asm_suite() {
        let (trace, analysis) = case(spec.name);
        let mismatches = differential_verdicts(&trace, &analysis);
        assert!(
            mismatches.is_empty(),
            "{}: {} verdict mismatch(es), first: {}",
            spec.name,
            mismatches.len(),
            mismatches[0]
        );
        // Belt and braces: the two analyses also agree positionally, not
        // just on the absence of reported mismatches.
        let oracle = ReferenceOracle::analyze(&trace);
        for r in &trace {
            assert_eq!(
                analysis.verdict(r.seq),
                oracle.verdict(r.seq),
                "{}: seq {} ({})",
                spec.name,
                r.seq,
                r.op
            );
        }
    }
}

#[test]
fn invariants_hold_on_asm_workloads() {
    for spec in dide::asm_suite() {
        let (trace, analysis) = case(spec.name);
        let violations = check_invariants(&trace, &analysis);
        assert!(violations.is_empty(), "{}: {:?}", spec.name, violations);
    }
}

#[test]
fn asm_workloads_exercise_deadness() {
    // Each shipped benchmark deliberately writes values that are dead on
    // all but the last loop iteration; the analysis must find them.
    for spec in dide::asm_suite() {
        let (trace, analysis) = case(spec.name);
        let dead = trace.iter().filter(|r| analysis.verdict(r.seq).is_dead()).count();
        assert!(dead > 0, "{}: no dead instructions found", spec.name);
        let useful = trace.iter().filter(|r| analysis.verdict(r.seq) == Verdict::Useful).count();
        assert!(useful > 0, "{}: nothing useful at all", spec.name);
        if spec.name == "matmul" {
            // Three of matmul's four rounds are entirely overwritten
            // before the checksum reads round four: deadness dominates.
            assert!(dead > useful, "matmul: expected majority-dead ({dead} vs {useful})");
        }
    }
}

#[test]
fn oracle_elimination_runs_clean_on_asm_workloads() {
    // The pipeline's oracle-elimination mode consumes the analysis
    // verdicts directly; a disagreement between the trace and the verdict
    // stream would surface as an elimination violation.
    for spec in dide::asm_suite() {
        let (trace, analysis) = case(spec.name);
        let config = PipelineConfig::baseline()
            .with_elimination(DeadElimConfig { oracle: true, ..DeadElimConfig::default() });
        let stats = Core::new(config).run(&trace, &analysis);
        assert_eq!(stats.dead_violations, 0, "{}: oracle elimination violated", spec.name);
        assert!(stats.dead_predicted > 0, "{}: oracle eliminated nothing", spec.name);
    }
}
