//! Round-trip fuzzing of the assembly frontend: any program the generator
//! can produce must survive disassembly (`Program::to_string`) and
//! re-assembly (`dide::asm::assemble`) instruction-for-instruction —
//! opcode, operands, immediates, data image, entry point, and name.
//!
//! Failures shrink to a minimal generator configuration and persist to the
//! on-disk corpus at `tests/asm_corpus/`, which is replayed before the
//! random sweep on every run (the same machinery `dide verify` uses).

use std::path::{Path, PathBuf};

use dide_verify::{derive_config, load_corpus, save_case, shrink_case, CorpusCase};
use dide_workloads::{random_program, GenConfig};

/// Test CWD is the package root (`crates/core`), so repo paths go up two.
fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/asm_corpus")
}

/// The property under test: disassemble, reparse, compare. The parse may
/// not fail and the reparsed program must be equal in full.
fn round_trips(seed: u64, config: &GenConfig) -> bool {
    let program = random_program(seed, config);
    match dide::asm::assemble(program.name(), &program.to_string()) {
        Ok(reparsed) => reparsed == program,
        Err(_) => false,
    }
}

/// How many fresh seeds to sweep. `DIDE_PROPTEST_CASES` scales the sweep
/// up (e.g. under `./ci.sh --deep`) without editing the test.
fn cases() -> u64 {
    std::env::var("DIDE_PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256)
}

#[test]
fn corpus_replays_round_trip() {
    let corpus = load_corpus(&corpus_dir()).expect("corpus dir readable");
    for case in &corpus {
        assert!(
            round_trips(case.seed, &case.config),
            "corpus case seed {:#018x} still fails: {}",
            case.seed,
            case.reason
        );
    }
}

#[test]
fn random_programs_round_trip() {
    for seed in 0..cases() {
        let config = derive_config(seed);
        if round_trips(seed, &config) {
            continue;
        }
        // Shrink to the smallest failing generator configuration and
        // persist it so the failure replays first on the next run.
        let shrunk = shrink_case(seed, &config, |s, c| !round_trips(s, c));
        let program = random_program(seed, &shrunk);
        let reason = match dide::asm::assemble(program.name(), &program.to_string()) {
            Err(e) => format!("listing does not re-assemble: {e}"),
            Ok(_) => "listing re-assembles to a different program".to_string(),
        };
        let case = CorpusCase { seed, config: shrunk, reason: reason.clone() };
        let path = save_case(&corpus_dir(), &case, &program.listing()).expect("corpus case saved");
        panic!("round-trip failed for seed {seed:#018x}: {reason}\n  case saved to {path:?}");
    }
}

#[test]
fn round_trip_is_a_fixpoint() {
    // One disassemble→reparse round must already be the fixpoint: the
    // reparsed program renders the identical listing.
    for seed in [0u64, 1, 7, 0xdead_beef] {
        let program = random_program(seed, &derive_config(seed));
        let listing = program.to_string();
        let reparsed = dide::asm::assemble(program.name(), &listing).expect("listing assembles");
        assert_eq!(reparsed.to_string(), listing, "seed {seed:#x} listing not a fixpoint");
    }
}

#[test]
fn shipped_benchmarks_round_trip_with_data() {
    // The generator's data image is all zeros; the shipped benchmarks
    // cover non-trivial `.byte` rows, `.entry`, and symbolic labels.
    for spec in dide_workloads::asm_suite() {
        let program = spec.build(dide_workloads::OptLevel::O2, 1);
        assert!(!program.data().is_empty() || spec.name == "prime", "{}", spec.name);
        let reparsed =
            dide::asm::assemble(program.name(), &program.to_string()).expect("listing assembles");
        assert_eq!(reparsed, program, "{} listing does not round-trip", spec.name);
    }
}
