//! Cross-crate integration: the characterization claims (E1–E5) hold when
//! the workloads, emulator and analysis are composed through the public
//! API.

use dide_analysis::{verify_dead_removable, IntervalSeries};

use dide::experiments::e01_dead_fraction::DeadFraction;
use dide::experiments::e02_dead_breakdown::DeadBreakdown;
use dide::experiments::e03_static_behavior::StaticBehaviorCensus;
use dide::experiments::e04_locality::Locality;
use dide::experiments::e05_compiler_effect::CompilerEffect;
use dide::{OptLevel, Workbench};

fn bench_o2() -> Workbench {
    Workbench::subset(&["expr", "compress", "objstore", "stream"], OptLevel::O2, 1)
}

#[test]
fn e1_dead_fractions_span_papers_range() {
    let result = DeadFraction::run(&bench_o2());
    let (min, max) = result.range();
    assert!(min < 0.06, "floor near 3%: {min:.3}");
    assert!(max > 0.10 && max < 0.22, "ceiling near 16%: {max:.3}");
    for row in &result.rows {
        assert!(row.dead <= row.eligible);
        assert!(row.eligible <= row.total);
    }
}

#[test]
fn e2_register_deadness_dominates_overall() {
    let result = DeadBreakdown::run(&bench_o2());
    // Pooled over benchmarks, register kinds + transitive should dominate
    // (objstore is store-heavy by design, so check the pool, not each row).
    let mut reg_like = 0.0;
    let mut store_like = 0.0;
    for r in &result.rows {
        let w = r.dead as f64;
        reg_like += w * (r.kind_fractions[0] + r.kind_fractions[1] + r.kind_fractions[4]);
        store_like += w * (r.kind_fractions[2] + r.kind_fractions[3]);
    }
    assert!(reg_like > store_like, "reg {reg_like:.0} vs store {store_like:.0}");
}

#[test]
fn e3_partially_dead_statics_produce_most_dead_instances() {
    let result = StaticBehaviorCensus::run(&bench_o2());
    let pooled: f64 =
        result.rows.iter().map(|r| r.dead_from_partial).sum::<f64>() / result.rows.len() as f64;
    assert!(pooled > 0.5, "paper: majority from partially dead statics; got {pooled:.3}");
}

#[test]
fn e4_small_static_sets_cover_most_dead_instances() {
    let result = Locality::run(&bench_o2());
    for r in &result.rows {
        if r.dead < 100 {
            continue;
        }
        let s90 = r.statics_90.unwrap();
        assert!(
            s90 <= 40,
            "{}: 90% of dead instances should come from few statics, needed {s90}",
            r.benchmark
        );
    }
}

#[test]
fn oracle_labels_are_removable_on_every_benchmark() {
    // The strongest end-to-end check of the deadness oracle: for every
    // benchmark of the suite, deleting the dead instructions from the
    // dynamic stream must leave the program's outputs bit-identical.
    let wb = dide::Workbench::full(OptLevel::O2, 1);
    for case in wb.cases() {
        verify_dead_removable(&case.trace, &case.analysis)
            .unwrap_or_else(|e| panic!("{}: {e}", case.spec.name));
    }
}

#[test]
fn deadness_is_a_steady_program_property() {
    // Per-window dead fractions must not be a warmup artifact: across
    // 10k-instruction windows the fraction stays in a band around the
    // whole-run mean for the loop-structured benchmarks.
    for case in bench_o2().cases() {
        let series = IntervalSeries::compute(&case.trace, &case.analysis, 10_000);
        let mean = case.analysis.stats().dead_fraction();
        let (min, max) = series.dead_fraction_range();
        assert!(
            max - min < 0.15,
            "{}: window range [{min:.3}, {max:.3}] too wide around mean {mean:.3}",
            case.spec.name
        );
        assert!(
            series.dead_fraction_stddev() < 0.05,
            "{}: stddev {:.3}",
            case.spec.name,
            series.dead_fraction_stddev()
        );
    }
}

#[test]
fn e5_scheduling_creates_significant_deadness() {
    let names = ["expr", "route", "anneal", "bitboard"];
    let o0 = Workbench::subset(&names, OptLevel::O0, 1);
    let o2 = Workbench::subset(&names, OptLevel::O2, 1);
    let result = CompilerEffect::run(&o0, &o2);
    for row in &result.rows {
        assert!(
            row.scheduling_contribution() > 0.02,
            "{}: scheduling should add >2 points, got {:.3}",
            row.benchmark,
            row.scheduling_contribution()
        );
    }
}
