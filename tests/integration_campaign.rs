//! End-to-end tests of `dide campaign`: the work-stealing batch engine,
//! its JSONL result store, and crash-safe resume.
//!
//! These run the real binary (`CARGO_BIN_EXE_dide`) because the engine's
//! central promises are *process-level*: the store bytes must not depend
//! on `--jobs`, and a campaign killed mid-run (SIGKILL, no cleanup) must
//! resume from its durable cursor and converge to the byte-identical
//! store an uninterrupted run produces.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::time::{Duration, Instant};

use dide_verify::diff_stores;

fn dide(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dide")).args(args).output().expect("dide binary runs")
}

/// A fresh scratch directory under the target tmp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dide-campaign-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A small but canonically-interesting grid: the `off` rows alias across
/// the threshold axis, so dedup fires; 2 benchmarks x 2 elims x 2
/// thresholds = 8 points, 6 unique.
const GRID: &[&str] = &["--benchmarks", "expr,route", "--elims", "off,cfi", "--thresholds", "8,12"];

fn run_campaign(store: &Path, jobs: &str, extra: &[&str]) -> Output {
    let mut args: Vec<&str> = vec!["campaign", "run"];
    args.extend_from_slice(GRID);
    let store = store.to_str().expect("utf-8 path");
    args.extend_from_slice(&["--out", store, "--jobs", jobs]);
    args.extend_from_slice(extra);
    dide(&args)
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn store_is_byte_identical_across_job_counts_and_reports_aggregate() {
    let dir = scratch("jobs");
    let (store1, store4) = (dir.join("jobs1.jsonl"), dir.join("jobs4.jsonl"));

    let out = run_campaign(&store1, "1", &[]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("8 grid points -> 6 unique jobs (2 deduped)"), "{stdout}");
    assert!(stdout.contains("conservation rules hold"), "{stdout}");

    let out = run_campaign(&store4, "4", &[]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    let (bytes1, bytes4) = (read(&store1), read(&store4));
    assert_eq!(bytes1, bytes4, "store bytes must not depend on --jobs");
    assert_eq!(diff_stores("jobs1", &bytes1, "jobs4", &bytes4), None);

    // Every line of the store parses as a flat JSON record and the
    // records carry the stats schema plus the axis fields.
    let reader = dide::StoreReader::open(&store1).expect("store parses");
    assert_eq!(reader.records.len(), 6);
    assert_eq!(reader.field(0, "schema").as_deref(), Some(dide::STATS_SCHEMA));
    for i in 0..reader.records.len() {
        for field in ["id", "benchmark", "elim", "threshold", "pipeline.cycles"] {
            assert!(reader.field(i, field).is_some(), "record {i} missing {field}");
        }
    }

    // The report subcommand aggregates the same store.
    let store = store1.to_str().expect("utf-8 path");
    let out = dide(&[
        "campaign",
        "report",
        "--store",
        store,
        "--where",
        "elim=cfi",
        "--group-by",
        "benchmark",
    ]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("expr") && report.contains("route"), "{report}");
    assert!(report.contains("pipeline.cycles"), "{report}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_of_a_complete_store_is_a_no_op() {
    let dir = scratch("noop");
    let store = dir.join("done.jsonl");
    assert!(run_campaign(&store, "1", &[]).status.success());
    let before = read(&store);

    let out = run_campaign(&store, "1", &["--resume"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 completed, 6 resumed-skipped"), "{stdout}");
    assert_eq!(read(&store), before, "resume of a finished store must not rewrite it");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_rejects_a_store_from_a_different_grid() {
    let dir = scratch("grid-mismatch");
    let store = dir.join("other.jsonl");
    assert!(run_campaign(&store, "1", &[]).status.success());

    let store_str = store.to_str().expect("utf-8 path");
    let out = dide(&[
        "campaign",
        "run",
        "--benchmarks",
        "sort",
        "--out",
        store_str,
        "--jobs",
        "1",
        "--resume",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error: "), "{stderr}");
    assert!(stderr.contains("grid"), "{stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The number of durable records according to the cursor sidecar.
fn cursor_records(store: &Path) -> u64 {
    let name = store.file_name().and_then(|n| n.to_str()).expect("utf-8 store name");
    let cursor = store.with_file_name(format!("{name}.cursor"));
    let Ok(text) = std::fs::read_to_string(cursor) else { return 0 };
    text.split("\"records\":")
        .nth(1)
        .and_then(|rest| {
            rest.chars().take_while(char::is_ascii_digit).collect::<String>().parse().ok()
        })
        .unwrap_or(0)
}

/// Satellite 3: SIGKILL a campaign mid-run, then `--resume` and assert the
/// finished store is byte-identical to an uninterrupted run's.
#[test]
fn killed_campaign_resumes_to_a_byte_identical_store() {
    let dir = scratch("kill");
    let (reference, interrupted) = (dir.join("ref.jsonl"), dir.join("int.jsonl"));

    // The uninterrupted reference run.
    let out = run_campaign(&reference, "2", &[]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // Start the victim with per-record commits so the durable prefix grows
    // fast, wait until at least one record is durable, then SIGKILL it.
    let mut args: Vec<&str> = vec!["campaign", "run"];
    args.extend_from_slice(GRID);
    let store_str = interrupted.to_str().expect("utf-8 path");
    args.extend_from_slice(&["--out", store_str, "--jobs", "1", "--flush-every", "1"]);
    let mut child =
        Command::new(env!("CARGO_BIN_EXE_dide")).args(&args).spawn().expect("spawn campaign");
    let deadline = Instant::now() + Duration::from_secs(120);
    let killed_mid_run = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            // The grid was too small to catch mid-run on this machine;
            // the run finished healthy instead.
            assert!(status.success(), "campaign child failed: {status}");
            break false;
        }
        if cursor_records(&interrupted) >= 1 {
            child.kill().expect("kill campaign");
            child.wait().expect("reap campaign");
            break true;
        }
        assert!(Instant::now() < deadline, "no durable record within 120s");
        std::thread::sleep(Duration::from_millis(10));
    };

    if killed_mid_run {
        // The durable prefix must already be a clean prefix of the
        // reference store (modulo a torn tail, which canonical form drops).
        let partial = read(&interrupted);
        let durable = dide_verify::canonical_store_lines(&partial);
        let full = dide_verify::canonical_store_lines(&read(&reference));
        assert!(durable.len() <= full.len(), "partial store larger than the reference");
    }

    let out = run_campaign(&interrupted, "2", &["--resume"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("conservation rules hold"), "{stdout}");

    assert_eq!(
        read(&reference),
        read(&interrupted),
        "killed+resumed store must match the uninterrupted run byte for byte"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
