//! Cross-crate integration: the predictor claims (E6, E7, E11) hold when
//! composed through the public API.

use dide::experiments::e06_predictor_sizing::PredictorSizing;
use dide::experiments::e07_cfi_value::CfiValue;
use dide::experiments::e11_confidence_sweep::ConfidenceSweep;
use dide::{OptLevel, Workbench};

fn bench() -> Workbench {
    Workbench::subset(
        &["expr", "compress", "netflow", "parse", "anneal", "objstore", "route", "bitboard"],
        OptLevel::O2,
        1,
    )
}

#[test]
fn e6_default_budget_is_small_and_effective() {
    let result = PredictorSizing::run(&bench());
    let default = result.rows.iter().find(|r| r.entries == 2048).expect("default size swept");
    assert!(default.budget.kib() < 5.0, "paper: <5 KB, got {}", default.budget);
    assert!(default.accuracy > 0.88, "paper: ~93% accuracy, got {:.3}", default.accuracy);
    assert!(default.coverage > 0.75, "paper: ~91% coverage, got {:.3}", default.coverage);
}

#[test]
fn e6_small_tables_lose_coverage_to_aliasing() {
    let result = PredictorSizing::run(&bench());
    let tiny = result.rows.first().unwrap();
    let big = result.rows.last().unwrap();
    assert!(big.coverage >= tiny.coverage, "{} vs {}", big.coverage, tiny.coverage);
}

#[test]
fn e7_future_control_flow_is_the_key_ingredient() {
    let result = CfiValue::run(&bench());
    let pc_only = result.variant("cfi lookahead 0").unwrap();
    let cfi = result.variant("cfi lookahead 4").unwrap();
    assert!(
        cfi.coverage > pc_only.coverage + 0.25,
        "CFI should add large coverage: {:.3} vs {:.3}",
        cfi.coverage,
        pc_only.coverage
    );
    assert!(cfi.accuracy > 0.88, "accuracy with CFI: {:.3}", cfi.accuracy);

    // And the last-outcome baseline pays for its coverage with accuracy.
    let last = result.variant("last-outcome").unwrap();
    assert!(cfi.accuracy > last.accuracy + 0.03);
}

#[test]
fn e11_confidence_frontier_is_monotone() {
    let result = ConfidenceSweep::run(&Workbench::subset(&["expr", "route"], OptLevel::O2, 1));
    for pair in result.rows.windows(2) {
        assert!(pair[1].coverage <= pair[0].coverage + 1e-9, "coverage should fall with threshold");
        assert!(
            pair[1].accuracy >= pair[0].accuracy - 0.02,
            "accuracy should (weakly) rise with threshold"
        );
    }
}
