//! Cross-crate integration: the timing pipeline agrees with the functional
//! emulator on *what* executes (it commits exactly the trace), for both
//! hand-written and randomly generated programs, with and without
//! elimination.

use dide::prelude::*;
use dide_workloads::{random_program, GenConfig};

fn full_stack(program: &Program, config: PipelineConfig) -> (Trace, PipelineStats) {
    let trace = Emulator::new(program).run().expect("program halts");
    let analysis = DeadnessAnalysis::analyze(&trace);
    let stats = Core::new(config).run(&trace, &analysis);
    (trace, stats)
}

#[test]
fn random_programs_commit_fully_across_machines() {
    let gen_config = GenConfig::default();
    for seed in 0..25 {
        let program = random_program(seed, &gen_config);
        for machine in [PipelineConfig::baseline(), PipelineConfig::contended()] {
            let (trace, stats) = full_stack(&program, machine);
            assert_eq!(
                stats.committed,
                trace.len() as u64,
                "seed {seed}: all instructions must commit"
            );
            assert!(stats.cycles >= trace.len() as u64 / 8, "seed {seed}: width bound");
        }
    }
}

#[test]
fn random_programs_survive_elimination() {
    let gen_config = GenConfig { segments: 12, segment_len: 16, ..GenConfig::default() };
    let machine = PipelineConfig::contended().with_elimination(DeadElimConfig::default());
    for seed in 100..120 {
        let program = random_program(seed, &gen_config);
        let (trace, stats) = full_stack(&program, machine);
        assert_eq!(stats.committed, trace.len() as u64, "seed {seed}");
        // Every eliminated-correct instruction must be oracle-dead.
        assert!(stats.dead_predicted_correct <= stats.oracle_dead_committed, "seed {seed}");
    }
}

#[test]
fn elimination_only_changes_timing_not_commitment() {
    let spec = *dide::suite().iter().find(|s| s.name == "compress").unwrap();
    let program = spec.build(OptLevel::O2, 1);
    let machine = PipelineConfig::contended();
    let (trace_a, base) = full_stack(&program, machine);
    let (trace_b, elim) = full_stack(&program, machine.with_elimination(DeadElimConfig::default()));
    assert_eq!(trace_a.outputs(), trace_b.outputs(), "architectural outputs identical");
    assert_eq!(base.committed, elim.committed);
}

#[test]
fn deterministic_simulation() {
    let spec = *dide::suite().iter().find(|s| s.name == "route").unwrap();
    let program = spec.build(OptLevel::O2, 1);
    let machine = PipelineConfig::contended().with_elimination(DeadElimConfig::default());
    let (_, a) = full_stack(&program, machine);
    let (_, b) = full_stack(&program, machine);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.dead_predicted, b.dead_predicted);
    assert_eq!(a.dead_violations, b.dead_violations);
    assert_eq!(a.rf_reads, b.rf_reads);
}

#[test]
fn wider_machine_is_not_slower() {
    let spec = *dide::suite().iter().find(|s| s.name == "stream").unwrap();
    let program = spec.build(OptLevel::O2, 1);
    let (_, tight) = full_stack(&program, PipelineConfig::contended());
    let (_, wide) = full_stack(&program, PipelineConfig::baseline());
    assert!(wide.cycles <= tight.cycles, "wide {} vs tight {}", wide.cycles, tight.cycles);
}

#[test]
fn violations_are_rare_relative_to_eliminations() {
    let spec = *dide::suite().iter().find(|s| s.name == "expr").unwrap();
    let program = spec.build(OptLevel::O2, 1);
    let machine = PipelineConfig::baseline().with_elimination(DeadElimConfig::default());
    let (_, stats) = full_stack(&program, machine);
    assert!(stats.dead_predicted > 1000, "eliminations happen at scale");
    assert!(
        (stats.dead_violations as f64) < 0.1 * stats.dead_predicted as f64,
        "violations ({}) must be rare vs eliminations ({})",
        stats.dead_violations,
        stats.dead_predicted
    );
}
