; prime.asm — trial-division prime counting over [2, 400].
;
; Outputs: the number of primes found (78), the largest prime (397), and a
; per-iteration snapshot register whose intermediate writes are dead — only
; the final write before `done:` is ever read, which makes this a natural
; workload for dead-instruction detection.

main:
  li   s0, 2            ; candidate under test
  li   s1, 400          ; inclusive upper limit
  li   s2, 0            ; count of primes found
  li   s3, 0            ; largest prime seen
  li   s4, 0            ; snapshot (count + candidate), dead until the end

outer:
  blt  s1, s0, done     ; candidate > limit -> finished
  li   t0, 2            ; trial divisor

trial:
  mul  t1, t0, t0
  blt  s0, t1, is_prime ; divisor^2 > candidate -> no factor exists
  rem  t2, s0, t0
  beq  t2, zero, not_prime
  addi t0, t0, 1
  j    trial

is_prime:
  addi s2, s2, 1
  mv   s3, s0

not_prime:
  add  s4, s0, s2       ; dead on every iteration but the last
  addi s0, s0, 1
  j    outer

done:
  out  s2               ; 78 primes in [2, 400]
  out  s3               ; largest is 397
  out  s4               ; final snapshot: 400 + 78 = 478
  halt
