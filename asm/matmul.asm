; matmul.asm — 8x8 integer matrix multiply, repeated for 4 rounds.
;
; A is initialised from the .data image, B is filled at runtime, and
; C = A x B is recomputed every round into the same buffer. Only the final
; round's stores are read by the checksum loop at the end, so three out of
; four rounds produce dead stores — rich ground for the deadness analysis.

.data
A:
  .word  1,  2,  3,  4,  5,  6,  7,  8
  .word  2,  3,  4,  5,  6,  7,  8,  9
  .word  3,  4,  5,  6,  7,  8,  9, 10
  .word  4,  5,  6,  7,  8,  9, 10, 11
  .word  5,  6,  7,  8,  9, 10, 11, 12
  .word  6,  7,  8,  9, 10, 11, 12, 13
  .word  7,  8,  9, 10, 11, 12, 13, 14
  .word  8,  9, 10, 11, 12, 13, 14, 15
B:
  .zero 256
C:
  .zero 256

.text
main:
  la   g0, A
  la   g1, B
  la   g2, C

  ; fill B at runtime: B[k] = (k & 7) + 1, i.e. column index + 1
  li   t0, 0            ; k
  li   t1, 64
initb:
  andi t2, t0, 7
  addi t2, t2, 1
  slli t3, t0, 2
  add  t3, t3, g1
  sw   t2, 0(t3)
  addi t0, t0, 1
  blt  t0, t1, initb

  li   s3, 0            ; round counter
rounds:
  li   s0, 0            ; i
iloop:
  li   s1, 0            ; j
jloop:
  li   s5, 0            ; accumulator
  li   s2, 0            ; k
kloop:
  slli t0, s0, 3        ; t2 = A[i][k]
  add  t0, t0, s2
  slli t0, t0, 2
  add  t0, t0, g0
  lw   t2, 0(t0)
  slli t1, s2, 3        ; t3 = B[k][j]
  add  t1, t1, s1
  slli t1, t1, 2
  add  t1, t1, g1
  lw   t3, 0(t1)
  mul  t2, t2, t3
  add  s5, s5, t2
  addi s2, s2, 1
  li   t4, 8
  blt  s2, t4, kloop

  slli t0, s0, 3        ; C[i][j] = acc — dead in every round but the last
  add  t0, t0, s1
  slli t0, t0, 2
  add  t0, t0, g2
  sw   s5, 0(t0)

  addi s1, s1, 1
  li   t4, 8
  blt  s1, t4, jloop
  addi s0, s0, 1
  li   t4, 8
  blt  s0, t4, iloop
  addi s3, s3, 1
  li   t4, 4
  blt  s3, t4, rounds

  ; checksum over the final C
  li   s5, 0
  li   t0, 0
  li   t1, 64
sumloop:
  slli t2, t0, 2
  add  t2, t2, g2
  lw   t3, 0(t2)
  add  s5, s5, t3
  addi t0, t0, 1
  blt  t0, t1, sumloop

  out  s5
  halt
