; strsearch.asm — naive substring search over a NUL-terminated text.
;
; A `count` subroutine (exercising call/ret, i.e. jal/jalr) scans the text
; for a pattern and returns the number of occurrences in a0. It is invoked
; for two patterns; a snapshot register written on every outer-loop
; iteration is read only once at the very end, so all but its final write
; are dead.

.data
text:
  .asciz "the quick brown fox jumps over the lazy dog; then the other theory sees the lethal panther breathe"
pat1:
  .asciz "the"
pat2:
  .asciz "er"

.text
main:
  la   g0, text
  la   a1, pat1
  call count
  mv   s0, a0           ; "the" occurs 9 times
  la   a1, pat2
  call count
  mv   s1, a0           ; "er" occurs 3 times
  out  s0
  out  s1
  out  s4               ; final snapshot only; earlier writes are dead
  halt

; count(a1 = pattern) -> a0 = occurrences of the pattern in the text at g0
count:
  li   a0, 0
  mv   t0, g0           ; outer cursor over the text
c_outer:
  lbu  t1, 0(t0)
  beq  t1, zero, c_done
  mv   t2, t0           ; text cursor for this candidate position
  mv   t3, a1           ; pattern cursor
c_cmp:
  lbu  t4, 0(t3)
  beq  t4, zero, c_hit  ; pattern exhausted -> match
  lbu  t5, 0(t2)
  bne  t4, t5, c_miss
  addi t2, t2, 1
  addi t3, t3, 1
  j    c_cmp
c_hit:
  addi a0, a0, 1
c_miss:
  add  s4, a0, t0       ; dead on every iteration but the very last
  addi t0, t0, 1
  j    c_outer
c_done:
  ret
