//! Predictor studies (experiments E6, E7, E11, E13): state-budget sizing,
//! the value of future control-flow information, the confidence
//! coverage/accuracy frontier, and jump-aware signatures.
//!
//! ```sh
//! cargo run --release --example predictor_tuning [scale]
//! ```

use dide::experiments::{
    e06_predictor_sizing::PredictorSizing, e07_cfi_value::CfiValue,
    e11_confidence_sweep::ConfidenceSweep, e13_jump_aware::JumpAware,
};
use dide::{OptLevel, Workbench};

fn main() {
    let scale: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    eprintln!("building the suite at O2, scale {scale}...");
    let bench = Workbench::full(OptLevel::O2, scale);

    println!("{}", PredictorSizing::run(&bench));
    println!();
    println!("{}", CfiValue::run(&bench));
    println!();
    println!("{}", ConfidenceSweep::run(&bench));
    println!();
    println!("{}", JumpAware::run(&bench));
}
