//! Quickstart: write a tiny program, find its dead instructions, and watch
//! the pipeline eliminate them.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dide::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A loop that hoists a "diagnostic record" above the branch that
    // guards its only consumer — the classic compiler-scheduling source of
    // partially dead instructions. The record is consumed on one iteration
    // in eight; the other seven times all four instructions die.
    let mut b = ProgramBuilder::new("quickstart");
    let (i, n, acc) = (Reg::T0, Reg::T1, Reg::T3);
    b.li(i, 0).li(n, 10_000).li(acc, 0);
    let top = b.label();
    let skip = b.label();
    b.bind(top);
    // Hoisted diagnostic: dead unless the audit branch falls through.
    b.slli(Reg::T2, i, 3);
    b.xor(Reg::T2, Reg::T2, acc);
    b.andi(Reg::T4, i, 0xff);
    b.add(Reg::T4, Reg::T4, Reg::T2);
    // Useful work.
    b.add(acc, acc, i);
    b.xor(acc, acc, n);
    // Audit every eighth iteration consumes the diagnostic.
    b.andi(Reg::T5, i, 7);
    b.bne(Reg::T5, Reg::ZERO, skip);
    b.add(acc, acc, Reg::T4);
    b.bind(skip);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.out(acc);
    b.halt();
    let program = b.build()?;

    // 1. Run it architecturally and label every dynamic instruction.
    let trace = Emulator::new(&program).run()?;
    let analysis = DeadnessAnalysis::analyze(&trace);
    let stats = analysis.stats();
    println!("== oracle deadness ==");
    println!("{stats}");
    println!();

    // 2. Time it on the contended machine, without and with elimination.
    let machine = PipelineConfig::contended();
    let base = Core::new(machine).run(&trace, &analysis);
    let elim =
        Core::new(machine.with_elimination(DeadElimConfig::default())).run(&trace, &analysis);

    println!("== pipeline, no elimination ==");
    println!("{base}");
    println!();
    println!("== pipeline, with dead-instruction elimination ==");
    println!("{elim}");
    println!();
    println!(
        "speedup: {:+.2}%  (eliminated {} of {} oracle-dead instructions)",
        100.0 * (base.cycles as f64 / elim.cycles as f64 - 1.0),
        elim.dead_predicted_correct,
        elim.oracle_dead_committed,
    );
    Ok(())
}
