//! Elimination studies (experiments E8, E9, E12, E14–E17 plus the E10
//! machine table): resource-utilization reductions, contended-machine
//! speedup, the policy ablation, the oracle limit, recovery-cost and
//! register-pressure sweeps, and dead-value lifetimes.
//!
//! ```sh
//! cargo run --release --example elimination_speedup [scale]
//! ```

use dide::experiments::{
    e08_resource_savings::ResourceSavingsReport, e09_speedup::Speedup,
    e10_machine_config::MachineConfigTable, e12_elimination_ablation::EliminationAblation,
    e14_oracle_limit::OracleLimit, e15_penalty_sweep::PenaltySweep,
    e16_dead_lifetimes::DeadLifetimeReport, e17_register_sweep::RegisterSweep,
};
use dide::{OptLevel, Workbench};

fn main() {
    let scale: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    eprintln!("building the suite at O2, scale {scale}...");
    let bench = Workbench::full(OptLevel::O2, scale);

    println!("{}", MachineConfigTable::collect());
    println!();
    println!("{}", ResourceSavingsReport::run(&bench));
    println!();
    println!("{}", Speedup::run(&bench));
    println!();
    println!("{}", EliminationAblation::run(&bench));
    println!();
    println!("{}", OracleLimit::run(&bench));
    println!();
    println!("{}", PenaltySweep::run(&bench));
    println!();
    println!("{}", DeadLifetimeReport::run(&bench));
    println!();
    println!("{}", RegisterSweep::run(&bench));
}
