//! Characterization study (experiments E1–E5): how many instructions are
//! dead, of what kind, from which static instructions, and how much of it
//! the "compiler" (workload hoisting) is responsible for.
//!
//! ```sh
//! cargo run --release --example characterize [scale]
//! ```

use dide::experiments::{
    e01_dead_fraction::DeadFraction, e02_dead_breakdown::DeadBreakdown,
    e03_static_behavior::StaticBehaviorCensus, e04_locality::Locality,
    e05_compiler_effect::CompilerEffect,
};
use dide::{OptLevel, Workbench};

fn main() {
    let scale: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    eprintln!("building the suite at O2 and O0, scale {scale}...");
    let o2 = Workbench::full(OptLevel::O2, scale);
    let o0 = Workbench::full(OptLevel::O0, scale);

    println!("{}", DeadFraction::run(&o2));
    println!();
    println!("{}", DeadBreakdown::run(&o2));
    println!();
    println!("{}", StaticBehaviorCensus::run(&o2));
    println!();
    println!("{}", Locality::run(&o2));
    println!();
    println!("{}", CompilerEffect::run(&o0, &o2));
}
