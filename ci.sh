#!/usr/bin/env bash
# The full CI gate, runnable locally. Mirrors .github/workflows/ci.yml:
#
#   ./ci.sh            # fmt + clippy + tier-1 (release build + full tests)
#                      # + differential verify + golden tables
#   ./ci.sh --deep     # same, with 256 property-test cases per property
#                      # and a 256-seed verify sweep
#
# The tier-1 gate is the pair of commands ROADMAP.md designates as the
# regression bar: `cargo build --release` and `cargo test -q`.

set -euo pipefail
cd "$(dirname "$0")"

VERIFY_SEEDS=64
if [[ "${1:-}" == "--deep" ]]; then
  # Scale the property suite up (see TESTING.md); the default is sized for
  # quick iteration, --deep for pre-merge confidence.
  export DIDE_PROPTEST_CASES=256
  VERIFY_SEEDS=256
  echo "deep mode: DIDE_PROPTEST_CASES=256, verify sweep of ${VERIFY_SEEDS} seeds"
fi

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: test suite =="
cargo test -q

echo "== asm frontend: assemble, round-trip, diagnostic drift =="
# Every shipped .asm file must assemble from its on-disk text (the builtin
# copies are embedded at compile time; this catches a drifted working
# tree), the round-trip property suite must pass, and the parser's error
# messages must match the committed snapshot byte-for-byte.
for f in asm/*.asm; do
  cargo run --release --bin dide -- disasm "$f" > /dev/null \
    || { echo "$f does not assemble" >&2; exit 1; }
done
cargo test -q -p dide --test asm_roundtrip
cargo run --release --bin dide -- verify --golden --only asm_errors.txt,run_prime.txt,stats_prime.json

echo "== differential verify (${VERIFY_SEEDS} seeds) =="
cargo run --release --bin dide -- verify --seeds "${VERIFY_SEEDS}" --jobs 2

echo "== golden tables =="
cargo run --release --bin dide -- verify --golden

echo "== stats smoke (dide-stats/v1) =="
cargo run --release --bin dide -- stats --benchmark expr --eliminate --json > stats.json
# The observability export must produce a non-empty, schema-tagged document.
test -s stats.json || { echo "stats.json is missing or empty" >&2; exit 1; }
grep -q '"schema": "dide-stats/v1"' stats.json \
  || { echo "stats.json lacks the dide-stats/v1 schema marker" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool stats.json >/dev/null \
    || { echo "stats.json is not valid JSON" >&2; exit 1; }
fi
rm -f stats.json

echo "== bench smoke + regression check =="
# Writes to a scratch file so the committed baseline BENCH.json is never
# clobbered, and compares the simulate phase against it. The tolerance is
# deliberately generous (>2x AND >5ms before it fails): CI runs on a
# single shared CPU where wall-clock jitters by tens of percent, so this
# gate only catches order-of-magnitude simulate-phase regressions, not
# tuning drift. Refresh the baseline with:
#   cargo run --release --bin dide -- bench --out BENCH.json
cargo run --release --bin dide -- bench --quick --out BENCH.ci.json --check-against BENCH.json
# The perf harness must produce a non-empty, well-formed report.
test -s BENCH.ci.json || { echo "BENCH.ci.json is missing or empty" >&2; exit 1; }
grep -q '"schema": "dide-bench/v4"' BENCH.ci.json \
  || { echo "BENCH.ci.json lacks the dide-bench/v4 schema marker" >&2; exit 1; }
grep -q '"mem_peak_bytes"' BENCH.ci.json \
  || { echo "BENCH.ci.json lacks the streamed mem_peak_bytes block" >&2; exit 1; }
grep -q '"campaign"' BENCH.ci.json \
  || { echo "BENCH.ci.json lacks the campaign throughput block" >&2; exit 1; }
grep -q '"cluster"' BENCH.ci.json \
  || { echo "BENCH.ci.json lacks the clustered-backend block" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool BENCH.ci.json >/dev/null \
    || { echo "BENCH.ci.json is not valid JSON" >&2; exit 1; }
fi
rm -f BENCH.ci.json

echo "== campaign smoke (batch engine determinism) =="
# A small grid through the work-stealing engine: the JSONL store must be
# byte-identical for any --jobs value, every line must be valid JSON, and
# the report subcommand must aggregate it back.
CAMPAIGN_GRID="--benchmarks expr,route --elims off,cfi --thresholds 8,12"
DIDE=./target/release/dide
rm -f campaign.ci1.jsonl campaign.ci1.jsonl.cursor campaign.ci4.jsonl campaign.ci4.jsonl.cursor
# shellcheck disable=SC2086
"${DIDE}" campaign run ${CAMPAIGN_GRID} --out campaign.ci1.jsonl --jobs 1
# shellcheck disable=SC2086
"${DIDE}" campaign run ${CAMPAIGN_GRID} --out campaign.ci4.jsonl --jobs 4
cmp campaign.ci1.jsonl campaign.ci4.jsonl \
  || { echo "campaign store differs between --jobs 1 and --jobs 4" >&2; exit 1; }
grep -q '"schema":"dide-campaign-store/v1"' campaign.ci1.jsonl \
  || { echo "campaign store lacks the dide-campaign-store/v1 header" >&2; exit 1; }
grep -q '"schema":"dide-stats/v1"' campaign.ci1.jsonl \
  || { echo "campaign store lacks dide-stats/v1 records" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 -c 'import json
for line in open("campaign.ci1.jsonl"):
    json.loads(line)' || { echo "campaign store is not line-delimited JSON" >&2; exit 1; }
fi
"${DIDE}" campaign report --store campaign.ci1.jsonl --where elim=cfi --group-by benchmark \
  | grep -q "expr" || { echo "campaign report lost the expr group" >&2; exit 1; }
rm -f campaign.ci1.jsonl campaign.ci1.jsonl.cursor campaign.ci4.jsonl campaign.ci4.jsonl.cursor

echo "== clustered backend smoke (E18 + steering determinism) =="
# The clustered backend (DESIGN.md §11) must hold its invariants end to
# end: the E18 golden pins the full steering sweep table and the clustered
# stats export, and a clustered campaign grid must stay byte-identical
# across --jobs values (the steering decision is part of the canonical
# job, so any scheduler-order dependence would show up here).
cargo run --release --bin dide -- verify --golden --only e18,stats_expr_clustered.json
CLUSTER_GRID="--benchmarks expr,route --machines contended,clustered --elims off,cfi"
DIDE=./target/release/dide
rm -f cluster.ci1.jsonl cluster.ci1.jsonl.cursor cluster.ci4.jsonl cluster.ci4.jsonl.cursor
# shellcheck disable=SC2086
"${DIDE}" campaign run ${CLUSTER_GRID} --out cluster.ci1.jsonl --jobs 1
# shellcheck disable=SC2086
"${DIDE}" campaign run ${CLUSTER_GRID} --out cluster.ci4.jsonl --jobs 4
cmp cluster.ci1.jsonl cluster.ci4.jsonl \
  || { echo "clustered campaign store differs between --jobs 1 and --jobs 4" >&2; exit 1; }
grep -q '"machine":"clustered"' cluster.ci1.jsonl \
  || { echo "clustered campaign store lacks clustered-machine records" >&2; exit 1; }
rm -f cluster.ci1.jsonl cluster.ci1.jsonl.cursor cluster.ci4.jsonl cluster.ci4.jsonl.cursor

echo "== streaming smoke (bounded memory) =="
# The streamed pipeline must survive an address-space budget that the
# materializing path cannot: expr at scale 16 materializes a ~53 MiB
# trace (doubled again inside the emulator's growth pattern and the
# analysis verdict arrays), while the streamed path retains at most two
# 65536-record epochs (~5 MiB). Measured floors: the materializing run
# aborts below ~256 MiB of address space, the streamed run survives
# down to 24 MiB — so a 128 MiB budget has 2x margin on both sides.
STREAM_VM_KB=131072
DIDE=./target/release/dide
( ulimit -v "${STREAM_VM_KB}"; "${DIDE}" run expr --scale 16 --stream > /dev/null ) \
  || { echo "streamed run of expr@s16 failed under ulimit -v ${STREAM_VM_KB}" >&2; exit 1; }
if ( ulimit -v "${STREAM_VM_KB}"; "${DIDE}" run expr --scale 16 > /dev/null 2>&1 ); then
  echo "materializing run of expr@s16 fit under ulimit -v ${STREAM_VM_KB};" >&2
  echo "the streaming smoke budget no longer discriminates — tighten it" >&2
  exit 1
fi
echo "streamed expr@s16 fits in ${STREAM_VM_KB} KiB; materializing path does not"

echo "CI gate passed."
