#!/usr/bin/env bash
# The full CI gate, runnable locally. Mirrors .github/workflows/ci.yml:
#
#   ./ci.sh            # fmt + clippy + tier-1 (release build + full tests)
#
# The tier-1 gate is the pair of commands ROADMAP.md designates as the
# regression bar: `cargo build --release` and `cargo test -q`.

set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: test suite =="
cargo test -q

echo "CI gate passed."
