//! Offline drop-in replacement for the subset of [`rand`] 0.8 used by this
//! workspace.
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` crate cannot be fetched. The workloads only need a deterministic,
//! seedable PRNG with a handful of convenience methods; this shim provides
//! exactly that API surface (`StdRng::seed_from_u64`, `gen`, `gen_range`,
//! `gen_bool`, `gen_ratio`, and slice `shuffle`) on top of xoshiro256**
//! seeded through SplitMix64.
//!
//! The generated streams differ from upstream `rand`'s ChaCha-based
//! `StdRng`, but every consumer in this workspace only requires determinism
//! for a fixed seed — which this shim guarantees across platforms and
//! releases (the algorithm is frozen on purpose; do not "upgrade" it, or
//! every golden workload trace changes).
//!
//! [`rand`]: https://crates.io/crates/rand

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their full value range by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value covering the full range of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `0.0..=1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        // 53 uniform mantissa bits, exactly as upstream.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero or `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "zero denominator");
        assert!(numerator <= denominator, "ratio {numerator}/{denominator} > 1");
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random sequence operations, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Unlike upstream's `StdRng` this stream is part of the workspace
    /// contract — workload programs are derived from it, so it must never
    /// change.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed, per Vigna's reference code.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { state: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut n = [s0, s1, s2, s3];
            n[2] ^= n[0];
            n[3] ^= n[1];
            n[1] ^= n[2];
            n[0] ^= n[3];
            n[2] ^= t;
            n[3] = n[3].rotate_left(45);
            self.state = n;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&u));
            let z = rng.gen_range(0usize..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_ratio_rough_frequency() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 32 elements should move something");
    }
}
