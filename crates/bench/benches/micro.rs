//! Microbenchmarks of the substrate layers: emulator, deadness analysis,
//! predictors, caches and the timing core. These bound the cost of the
//! experiment harness and catch performance regressions in the simulator
//! itself.
//!
//! ```sh
//! cargo bench -p dide-bench --bench micro
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use dide::prelude::*;
use dide_predictor::future::CfSignature;

fn fixture() -> (&'static Trace, &'static DeadnessAnalysis) {
    use std::sync::OnceLock;
    static FIX: OnceLock<(Trace, DeadnessAnalysis)> = OnceLock::new();
    let (t, a) = FIX.get_or_init(|| {
        let spec = *dide::suite().iter().find(|s| s.name == "expr").unwrap();
        let program = spec.build(OptLevel::O2, 2);
        let trace = Emulator::new(&program).run().expect("expr halts");
        let analysis = DeadnessAnalysis::analyze(&trace);
        (trace, analysis)
    });
    (t, a)
}

fn emulator_throughput(c: &mut Criterion) {
    let spec = *dide::suite().iter().find(|s| s.name == "expr").unwrap();
    let program = spec.build(OptLevel::O2, 1);
    let len = Emulator::new(&program).run().unwrap().len() as u64;
    let mut g = c.benchmark_group("emulator");
    g.throughput(Throughput::Elements(len));
    g.bench_function("trace_expr_scale1", |b| {
        b.iter(|| black_box(Emulator::new(&program).run().unwrap()));
    });
    g.finish();
}

fn analysis_throughput(c: &mut Criterion) {
    let (trace, _) = fixture();
    let mut g = c.benchmark_group("analysis");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("deadness_expr", |b| {
        b.iter(|| black_box(DeadnessAnalysis::analyze(trace)));
    });
    g.finish();

    // objstore is the store-heavy benchmark: its analyze cost is dominated
    // by the shadow-memory last-writer table rather than register
    // bookkeeping, so it isolates regressions in the memory fast paths.
    let spec = *dide::suite().iter().find(|s| s.name == "objstore").unwrap();
    let program = spec.build(OptLevel::O2, 1);
    let store_trace = Emulator::new(&program).run().expect("objstore halts");
    let mut g = c.benchmark_group("analysis");
    g.throughput(Throughput::Elements(store_trace.len() as u64));
    g.bench_function("deadness_objstore", |b| {
        b.iter(|| black_box(DeadnessAnalysis::analyze(&store_trace)));
    });
    g.finish();
}

fn predictor_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictor");
    g.bench_function("cfi_predict_train", |b| {
        let mut p = CfiDeadPredictor::new(CfiConfig::default());
        let mut pc = 0u32;
        b.iter(|| {
            pc = pc.wrapping_add(97) & 0xffff;
            let input = dide_predictor::dead::PredictInput {
                seq: u64::from(pc),
                static_index: pc,
                signature: CfSignature::new((pc & 0xf) as u16, 4),
            };
            let predicted = p.predict(&input);
            p.train(&input, pc & 7 == 0);
            black_box(predicted)
        });
    });
    g.bench_function("gshare_predict_update", |b| {
        let mut gsh = Gshare::new(10, 12);
        let mut pc = 0u32;
        b.iter(|| {
            pc = pc.wrapping_add(13) & 0xfff;
            let t = gsh.predict(pc);
            gsh.update(pc, pc & 3 == 0);
            black_box(t)
        });
    });
    g.finish();
}

fn pipeline_throughput(c: &mut Criterion) {
    let (trace, analysis) = fixture();
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("contended_no_elim", |b| {
        let core = Core::new(PipelineConfig::contended());
        b.iter(|| black_box(core.run(trace, analysis)));
    });
    g.bench_function("contended_with_elim", |b| {
        let core =
            Core::new(PipelineConfig::contended().with_elimination(DeadElimConfig::default()));
        b.iter(|| black_box(core.run(trace, analysis)));
    });
    g.finish();
}

criterion_group!(
    micro,
    emulator_throughput,
    analysis_throughput,
    predictor_ops,
    pipeline_throughput
);
criterion_main!(micro);
