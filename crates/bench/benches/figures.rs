//! Regenerates every table and figure of the paper (experiments E1–E12)
//! and times each regeneration with Criterion.
//!
//! Each bench first *prints* the regenerated table — so the output of
//! `cargo bench` contains the full set of paper artifacts — and then
//! measures the cost of producing it.
//!
//! ```sh
//! cargo bench -p dide-bench --bench figures
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dide::experiments::e01_dead_fraction::DeadFraction;
use dide::experiments::e02_dead_breakdown::DeadBreakdown;
use dide::experiments::e03_static_behavior::StaticBehaviorCensus;
use dide::experiments::e04_locality::Locality;
use dide::experiments::e05_compiler_effect::CompilerEffect;
use dide::experiments::e06_predictor_sizing::PredictorSizing;
use dide::experiments::e07_cfi_value::CfiValue;
use dide::experiments::e08_resource_savings::ResourceSavingsReport;
use dide::experiments::e09_speedup::Speedup;
use dide::experiments::e10_machine_config::MachineConfigTable;
use dide::experiments::e11_confidence_sweep::ConfidenceSweep;
use dide::experiments::e12_elimination_ablation::EliminationAblation;
use dide::experiments::e13_jump_aware::JumpAware;
use dide::experiments::e14_oracle_limit::OracleLimit;
use dide::experiments::e15_penalty_sweep::PenaltySweep;
use dide::experiments::e16_dead_lifetimes::DeadLifetimeReport;
use dide::experiments::e17_register_sweep::RegisterSweep;
use dide_bench::{pipeline_subset, suite_o0, suite_o2};

fn characterization(c: &mut Criterion) {
    let o2 = suite_o2();
    let o0 = suite_o0();
    println!("\n{}\n", DeadFraction::run(o2));
    println!("{}\n", DeadBreakdown::run(o2));
    println!("{}\n", StaticBehaviorCensus::run(o2));
    println!("{}\n", Locality::run(o2));
    println!("{}\n", CompilerEffect::run(o0, o2));

    let mut g = c.benchmark_group("characterization");
    g.sample_size(10);
    g.bench_function("e1_dead_fraction", |b| b.iter(|| black_box(DeadFraction::run(o2))));
    g.bench_function("e2_dead_breakdown", |b| b.iter(|| black_box(DeadBreakdown::run(o2))));
    g.bench_function("e3_static_behavior", |b| {
        b.iter(|| black_box(StaticBehaviorCensus::run(o2)));
    });
    g.bench_function("e4_locality", |b| b.iter(|| black_box(Locality::run(o2))));
    g.bench_function("e5_compiler_effect", |b| {
        b.iter(|| black_box(CompilerEffect::run(o0, o2)));
    });
    g.finish();
}

fn prediction(c: &mut Criterion) {
    let o2 = suite_o2();
    println!("\n{}\n", PredictorSizing::run(o2));
    println!("{}\n", CfiValue::run(o2));

    let mut g = c.benchmark_group("prediction");
    g.sample_size(10);
    g.bench_function("e6_predictor_sizing", |b| {
        b.iter(|| black_box(PredictorSizing::run(o2)));
    });
    g.bench_function("e7_cfi_value", |b| b.iter(|| black_box(CfiValue::run(o2))));
    g.finish();
}

fn elimination(c: &mut Criterion) {
    let o2 = suite_o2();
    let small = pipeline_subset();
    println!("\n{}\n", MachineConfigTable::collect());
    println!("{}\n", ResourceSavingsReport::run(o2));
    println!("{}\n", Speedup::run(o2));
    println!("{}\n", ConfidenceSweep::run(small));
    println!("{}\n", EliminationAblation::run(small));
    println!("{}\n", JumpAware::run(small));
    println!("{}\n", OracleLimit::run(small));
    println!("{}\n", PenaltySweep::run(small));
    println!("{}\n", DeadLifetimeReport::run(o2));
    println!("{}\n", RegisterSweep::run(small));

    let mut g = c.benchmark_group("elimination");
    g.sample_size(10);
    g.bench_function("e8_resource_savings", |b| {
        b.iter(|| black_box(ResourceSavingsReport::run(small)));
    });
    g.bench_function("e9_speedup", |b| b.iter(|| black_box(Speedup::run(small))));
    g.bench_function("e11_confidence_sweep", |b| {
        b.iter(|| black_box(ConfidenceSweep::run(small)));
    });
    g.bench_function("e12_elimination_ablation", |b| {
        b.iter(|| black_box(EliminationAblation::run(small)));
    });
    g.bench_function("e13_jump_aware", |b| b.iter(|| black_box(JumpAware::run(small))));
    g.bench_function("e14_oracle_limit", |b| b.iter(|| black_box(OracleLimit::run(small))));
    g.bench_function("e15_penalty_sweep", |b| b.iter(|| black_box(PenaltySweep::run(small))));
    g.bench_function("e16_dead_lifetimes", |b| {
        b.iter(|| black_box(DeadLifetimeReport::run(o2)));
    });
    g.bench_function("e17_register_sweep", |b| {
        b.iter(|| black_box(RegisterSweep::run(small)));
    });
    g.finish();
}

criterion_group!(figures, characterization, prediction, elimination);
criterion_main!(figures);
