//! Benchmark-harness support: shared fixtures for the Criterion benches
//! that regenerate every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::OnceLock;

use dide::{OptLevel, Workbench};

/// The full suite at `O2`, scale 1, built once per bench process.
pub fn suite_o2() -> &'static Workbench {
    static WB: OnceLock<Workbench> = OnceLock::new();
    WB.get_or_init(|| Workbench::full(OptLevel::O2, 1))
}

/// The full suite at `O0`, scale 1, built once per bench process.
pub fn suite_o0() -> &'static Workbench {
    static WB: OnceLock<Workbench> = OnceLock::new();
    WB.get_or_init(|| Workbench::full(OptLevel::O0, 1))
}

/// A small pipeline-friendly subset for the expensive timing experiments.
pub fn pipeline_subset() -> &'static Workbench {
    static WB: OnceLock<Workbench> = OnceLock::new();
    WB.get_or_init(|| Workbench::subset(&["expr", "parse", "objstore", "route"], OptLevel::O2, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert_eq!(pipeline_subset().cases().len(), 4);
    }
}
