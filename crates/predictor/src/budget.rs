//! Hardware state accounting.

use std::fmt;

/// A hardware state budget, counted in bits.
///
/// The paper's headline predictor claim is accuracy/coverage *within less
/// than 5 KB of state*; every predictor reports its budget through this type
/// so that sizing sweeps (experiment E6) compare like for like.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateBudget {
    bits: u64,
}

impl StateBudget {
    /// A budget of `bits` bits.
    #[must_use]
    pub fn from_bits(bits: u64) -> StateBudget {
        StateBudget { bits }
    }

    /// A budget of `entries` table entries of `bits_per_entry` bits each.
    #[must_use]
    pub fn from_entries(entries: u64, bits_per_entry: u64) -> StateBudget {
        StateBudget { bits: entries * bits_per_entry }
    }

    /// Total bits.
    #[must_use]
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Total bytes, rounded up.
    #[must_use]
    pub fn bytes(self) -> u64 {
        self.bits.div_ceil(8)
    }

    /// Total kibibytes, as a float (for report tables).
    #[must_use]
    pub fn kib(self) -> f64 {
        self.bits as f64 / 8.0 / 1024.0
    }

    /// Sum of two budgets.
    #[must_use]
    pub fn plus(self, other: StateBudget) -> StateBudget {
        StateBudget { bits: self.bits + other.bits }
    }
}

impl fmt::Display for StateBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} KiB", self.kib())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let b = StateBudget::from_entries(2048, 18);
        assert_eq!(b.bits(), 36_864);
        assert_eq!(b.bytes(), 4_608);
        assert!((b.kib() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn rounding_up_bytes() {
        assert_eq!(StateBudget::from_bits(9).bytes(), 2);
        assert_eq!(StateBudget::from_bits(8).bytes(), 1);
    }

    #[test]
    fn plus_adds() {
        let a = StateBudget::from_bits(100).plus(StateBudget::from_bits(28));
        assert_eq!(a.bits(), 128);
    }

    #[test]
    fn display_kib() {
        assert_eq!(StateBudget::from_bits(8 * 1024 * 5).to_string(), "5.00 KiB");
    }
}
