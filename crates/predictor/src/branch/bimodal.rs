//! PC-indexed bimodal direction predictor.

use super::{BranchPredictor, Counter2};
use crate::budget::StateBudget;

/// A classic bimodal predictor: one 2-bit counter per PC-indexed entry.
#[derive(Debug, Clone)]
pub struct BimodalBranch {
    table: Vec<Counter2>,
    mask: u32,
}

impl BimodalBranch {
    /// Creates a predictor with `2^log2_entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `log2_entries` exceeds 24 (a 16 M-entry table is beyond any
    /// plausible hardware budget and almost certainly a configuration bug).
    #[must_use]
    pub fn new(log2_entries: u32) -> BimodalBranch {
        assert!(log2_entries <= 24, "bimodal table too large: 2^{log2_entries}");
        let entries = 1usize << log2_entries;
        BimodalBranch { table: vec![Counter2::weakly_taken(); entries], mask: (entries - 1) as u32 }
    }

    fn index(&self, pc: u32) -> usize {
        (pc & self.mask) as usize
    }
}

impl BranchPredictor for BimodalBranch {
    fn predict(&mut self, pc: u32) -> bool {
        self.table[self.index(pc)].taken()
    }

    fn update(&mut self, pc: u32, taken: bool) {
        let idx = self.index(pc);
        self.table[idx].train(taken);
    }

    fn budget(&self) -> StateBudget {
        StateBudget::from_entries(self.table.len() as u64, 2)
    }

    fn name(&self) -> String {
        format!("bimodal-{}", self.table.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branch() {
        let mut p = BimodalBranch::new(4);
        for _ in 0..4 {
            p.update(5, true);
        }
        assert!(p.predict(5));
        for _ in 0..4 {
            p.update(5, false);
        }
        assert!(!p.predict(5));
    }

    #[test]
    fn entries_alias_by_mask() {
        let mut p = BimodalBranch::new(2); // 4 entries
        for _ in 0..4 {
            p.update(1, false);
        }
        // pc 5 aliases to the same entry as pc 1.
        assert!(!p.predict(5));
    }

    #[test]
    fn budget_is_two_bits_per_entry() {
        let p = BimodalBranch::new(10);
        assert_eq!(p.budget().bits(), 2048);
        assert_eq!(p.name(), "bimodal-1024");
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_table_panics() {
        let _ = BimodalBranch::new(25);
    }
}
