//! History-based indirect-jump target predictor (a "target cache" in the
//! style of Chang, Hao & Patt, 1997).

use crate::budget::StateBudget;

/// Configuration of a [`TargetCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetCacheConfig {
    /// `log2` of the number of table entries.
    pub log2_entries: u32,
    /// Tag bits per entry.
    pub tag_bits: u8,
    /// Bits of folded target history used in the index.
    pub history_bits: u32,
}

impl Default for TargetCacheConfig {
    fn default() -> Self {
        TargetCacheConfig { log2_entries: 9, tag_bits: 8, history_bits: 9 }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    tag: u16,
    target: u32,
}

/// Predicts indirect-jump targets from the jump PC *and* a folded history
/// of recent targets.
///
/// A plain BTB predicts "same target as last time", which fails on
/// interpreter dispatch loops where consecutive executions of the same
/// `jalr` go to different handlers. Folding recent targets into the index
/// lets the table learn the dispatch *sequence* — both improving frontend
/// redirects and providing a meaningful predicted-target event for
/// jump-aware CFI signatures (experiment E13).
///
/// # Example
///
/// ```
/// use dide_predictor::branch::TargetCache;
///
/// let mut cache = TargetCache::default();
/// // A jump alternating between two targets: learnable through history.
/// for i in 0..200u32 {
///     cache.update(7, if i % 2 == 0 { 100 } else { 200 });
/// }
/// assert_eq!(cache.predict(7), Some(100));
/// ```
#[derive(Debug, Clone)]
pub struct TargetCache {
    config: TargetCacheConfig,
    table: Vec<Option<Entry>>,
    history: u32,
    index_mask: u32,
    tag_mask: u16,
}

impl TargetCache {
    /// Creates an empty target cache.
    ///
    /// # Panics
    ///
    /// Panics if `log2_entries > 20` or `tag_bits > 16`.
    #[must_use]
    pub fn new(config: TargetCacheConfig) -> TargetCache {
        assert!(config.log2_entries <= 20, "target cache too large");
        assert!(config.tag_bits <= 16, "tag too wide");
        let entries = 1usize << config.log2_entries;
        TargetCache {
            config,
            table: vec![None; entries],
            history: 0,
            index_mask: (entries - 1) as u32,
            tag_mask: if config.tag_bits == 0 { 0 } else { ((1u32 << config.tag_bits) - 1) as u16 },
        }
    }

    fn slot(&self, pc: u32) -> (usize, u16) {
        let hist_mask = if self.config.history_bits >= 32 {
            u32::MAX
        } else {
            (1u32 << self.config.history_bits) - 1
        };
        let h = (u64::from(pc) ^ (u64::from(self.history & hist_mask) << 13))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let index = ((h >> 16) as u32 & self.index_mask) as usize;
        let tag = (((h >> 48) as u16) & self.tag_mask).max(1); // 0 = never matches empty
        (index, tag)
    }

    /// Predicts the target of the indirect jump at `pc`, or `None` on a
    /// (cold or conflicting) miss.
    #[must_use]
    pub fn predict(&self, pc: u32) -> Option<u32> {
        let (index, tag) = self.slot(pc);
        self.table[index].filter(|e| e.tag == tag).map(|e| e.target)
    }

    /// Trains with the jump's resolved target and folds it into the
    /// history.
    pub fn update(&mut self, pc: u32, target: u32) {
        let (index, tag) = self.slot(pc);
        self.table[index] = Some(Entry { tag, target });
        self.history = (self.history << 3) ^ ((target.wrapping_mul(0x9E37_79B9) >> 26) & 0x3f);
    }

    /// Hardware state: tag + 32-bit target per entry, plus the history
    /// register.
    #[must_use]
    pub fn budget(&self) -> StateBudget {
        StateBudget::from_entries(self.table.len() as u64, u64::from(self.config.tag_bits) + 32)
            .plus(StateBudget::from_bits(u64::from(self.config.history_bits)))
    }
}

impl Default for TargetCache {
    fn default() -> Self {
        TargetCache::new(TargetCacheConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_learns() {
        let mut tc = TargetCache::default();
        assert_eq!(tc.predict(5), None);
        tc.update(5, 100);
        // Same history point next time around.
        let mut tc2 = TargetCache::default();
        tc2.update(5, 100);
        assert_eq!(tc2.history, tc.history);
    }

    #[test]
    fn learns_alternating_targets_through_history() {
        // One jalr alternating between two targets: a last-target BTB is
        // wrong every time after warmup; the target cache learns it.
        let mut tc = TargetCache::default();
        let mut correct = 0;
        let mut total = 0;
        for i in 0..400u32 {
            let target = if i % 2 == 0 { 100 } else { 200 };
            if i >= 50 {
                total += 1;
                correct += u32::from(tc.predict(7) == Some(target));
            }
            tc.update(7, target);
        }
        assert!(correct * 10 >= total * 9, "{correct}/{total}");
    }

    #[test]
    fn learns_a_repeating_phrase() {
        let phrase = [10u32, 30, 20, 10, 40, 20, 50, 10];
        let mut tc = TargetCache::default();
        let mut correct = 0;
        let mut total = 0;
        for i in 0..800usize {
            let target = phrase[i % phrase.len()];
            if i >= 100 {
                total += 1;
                correct += u32::from(tc.predict(7) == Some(target));
            }
            tc.update(7, target);
        }
        assert!(correct * 10 >= total * 9, "{correct}/{total}");
    }

    #[test]
    fn budget_counts_table_and_history() {
        let tc = TargetCache::default();
        assert_eq!(tc.budget().bits(), 512 * 40 + 9);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_panics() {
        let _ = TargetCache::new(TargetCacheConfig { log2_entries: 21, ..Default::default() });
    }
}
