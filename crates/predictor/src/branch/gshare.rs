//! Gshare direction predictor.

use super::{BranchPredictor, Counter2};
use crate::budget::StateBudget;

/// Gshare: a table of 2-bit counters indexed by `pc XOR global-history`.
///
/// The global history register is updated at `update` time with the resolved
/// direction (the simulator trains in commit order, so this matches a
/// frontend with history repair on misprediction).
///
/// # Example
///
/// ```
/// use dide_predictor::branch::{BranchPredictor, Gshare};
///
/// let mut gshare = Gshare::new(10, 12);
/// for _ in 0..4 {
///     gshare.update(7, true); // a strongly taken branch
/// }
/// assert!(gshare.predict(7));
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<Counter2>,
    history: u32,
    history_bits: u32,
    mask: u32,
}

impl Gshare {
    /// Creates a gshare with `2^log2_entries` counters and `history_bits`
    /// bits of global history.
    ///
    /// # Panics
    ///
    /// Panics if `log2_entries > 24` or `history_bits > 32`.
    #[must_use]
    pub fn new(history_bits: u32, log2_entries: u32) -> Gshare {
        assert!(log2_entries <= 24, "gshare table too large: 2^{log2_entries}");
        assert!(history_bits <= 32, "history too long: {history_bits}");
        let entries = 1usize << log2_entries;
        Gshare {
            table: vec![Counter2::weakly_taken(); entries],
            history: 0,
            history_bits,
            mask: (entries - 1) as u32,
        }
    }

    fn index(&self, pc: u32) -> usize {
        let hist_mask =
            if self.history_bits == 32 { u32::MAX } else { (1u32 << self.history_bits) - 1 };
        ((pc ^ (self.history & hist_mask)) & self.mask) as usize
    }

    /// Current global history value (for tests and diagnostics).
    #[must_use]
    pub fn history(&self) -> u32 {
        self.history
    }
}

impl BranchPredictor for Gshare {
    fn predict(&mut self, pc: u32) -> bool {
        self.table[self.index(pc)].taken()
    }

    fn update(&mut self, pc: u32, taken: bool) {
        let idx = self.index(pc);
        self.table[idx].train(taken);
        self.history = (self.history << 1) | u32::from(taken);
    }

    fn budget(&self) -> StateBudget {
        StateBudget::from_entries(self.table.len() as u64, 2)
            .plus(StateBudget::from_bits(u64::from(self.history_bits)))
    }

    fn name(&self) -> String {
        format!("gshare-{}x{}h", self.table.len(), self.history_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_alternating_pattern_with_history() {
        // A branch that strictly alternates T,N,T,N is unpredictable for
        // bimodal but trivial for gshare once history disambiguates.
        let mut g = Gshare::new(8, 12);
        let mut correct = 0;
        let mut total = 0;
        for i in 0..400u32 {
            let taken = i % 2 == 0;
            let p = g.predict(7);
            if i >= 100 {
                total += 1;
                correct += u32::from(p == taken);
            }
            g.update(7, taken);
        }
        assert!(correct as f64 / total as f64 > 0.95, "{correct}/{total}");
    }

    #[test]
    fn history_shifts_in_outcomes() {
        let mut g = Gshare::new(4, 6);
        g.update(0, true);
        g.update(0, false);
        g.update(0, true);
        assert_eq!(g.history() & 0b111, 0b101);
    }

    #[test]
    fn budget_counts_table_and_history() {
        let g = Gshare::new(10, 12);
        assert_eq!(g.budget().bits(), 2 * 4096 + 10);
        assert!(g.name().contains("gshare"));
    }

    #[test]
    #[should_panic(expected = "history too long")]
    fn oversized_history_panics() {
        let _ = Gshare::new(33, 10);
    }
}
