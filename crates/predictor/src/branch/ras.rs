//! Return-address stack.

use crate::budget::StateBudget;

/// A bounded return-address stack.
///
/// `jal`-with-link pushes the return index; a return (`jalr` through `ra`)
/// pops the prediction. Overflow wraps (oldest entry is lost), like real
/// hardware.
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    slots: Vec<u32>,
    top: usize,
    len: usize,
}

impl ReturnAddressStack {
    /// Creates a stack with `depth` entries.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    #[must_use]
    pub fn new(depth: usize) -> ReturnAddressStack {
        assert!(depth > 0, "RAS needs at least one entry");
        ReturnAddressStack { slots: vec![0; depth], top: 0, len: 0 }
    }

    /// Pushes a return address, overwriting the oldest entry when full.
    pub fn push(&mut self, return_index: u32) {
        self.top = (self.top + 1) % self.slots.len();
        self.slots[self.top] = return_index;
        self.len = (self.len + 1).min(self.slots.len());
    }

    /// Pops the predicted return address (`None` when empty).
    pub fn pop(&mut self) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let value = self.slots[self.top];
        self.top = (self.top + self.slots.len() - 1) % self.slots.len();
        self.len -= 1;
        Some(value)
    }

    /// Current number of valid entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the stack is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Hardware state: 32 bits per slot.
    #[must_use]
    pub fn budget(&self) -> StateBudget {
        StateBudget::from_entries(self.slots.len() as u64, 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_lifo() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(1);
        ras.push(2);
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), Some(1));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // evicts 1
        assert_eq!(ras.len(), 2);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn empty_checks() {
        let mut ras = ReturnAddressStack::new(2);
        assert!(ras.is_empty());
        ras.push(5);
        assert!(!ras.is_empty());
    }

    #[test]
    fn budget() {
        assert_eq!(ReturnAddressStack::new(16).budget().bits(), 512);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_depth_panics() {
        let _ = ReturnAddressStack::new(0);
    }
}
