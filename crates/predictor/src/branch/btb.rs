//! Branch target buffer.

use crate::budget::StateBudget;

/// Configuration of a set-associative [`Btb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl Default for BtbConfig {
    fn default() -> Self {
        BtbConfig { sets: 128, ways: 4 }
    }
}

#[derive(Debug, Clone, Copy)]
struct BtbEntry {
    tag: u32,
    target: u32,
    /// Larger = more recently used.
    lru: u64,
}

/// A set-associative branch target buffer mapping branch PCs to predicted
/// targets.
///
/// The frontend can only redirect fetch on a predicted-taken branch if the
/// BTB knows the target; a BTB miss on a taken branch costs a misfetch
/// (modeled by the pipeline as a short redirect penalty).
#[derive(Debug, Clone)]
pub struct Btb {
    config: BtbConfig,
    entries: Vec<Option<BtbEntry>>,
    tick: u64,
}

impl Btb {
    /// Creates an empty BTB.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    #[must_use]
    pub fn new(config: BtbConfig) -> Btb {
        assert!(config.sets.is_power_of_two(), "BTB sets must be a power of two");
        assert!(config.ways > 0, "BTB needs at least one way");
        Btb { config, entries: vec![None; config.sets * config.ways], tick: 0 }
    }

    fn set_range(&self, pc: u32) -> std::ops::Range<usize> {
        let set = (pc as usize) & (self.config.sets - 1);
        let start = set * self.config.ways;
        start..start + self.config.ways
    }

    /// Looks up the predicted target for the branch at `pc`.
    pub fn lookup(&mut self, pc: u32) -> Option<u32> {
        self.tick += 1;
        let range = self.set_range(pc);
        let tick = self.tick;
        for e in self.entries[range].iter_mut().flatten() {
            if e.tag == pc {
                e.lru = tick;
                return Some(e.target);
            }
        }
        None
    }

    /// Installs or refreshes the target for the branch at `pc`.
    pub fn insert(&mut self, pc: u32, target: u32) {
        self.tick += 1;
        let range = self.set_range(pc);
        let tick = self.tick;
        // Hit: update in place.
        for e in self.entries[range.clone()].iter_mut().flatten() {
            if e.tag == pc {
                e.target = target;
                e.lru = tick;
                return;
            }
        }
        // Miss: fill an empty way or evict LRU.
        let victim = self.entries[range.clone()]
            .iter()
            .enumerate()
            .min_by_key(|(_, slot)| slot.map_or(0, |e| e.lru))
            .map(|(i, _)| i)
            .expect("ways > 0");
        self.entries[range][victim] = Some(BtbEntry { tag: pc, target, lru: tick });
    }

    /// Hardware state: tag + target + LRU bits per entry (approximated as
    /// 32 + 32 + 2 bits).
    #[must_use]
    pub fn budget(&self) -> StateBudget {
        StateBudget::from_entries(self.entries.len() as u64, 66)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut btb = Btb::new(BtbConfig { sets: 4, ways: 2 });
        assert_eq!(btb.lookup(100), None);
        btb.insert(100, 7);
        assert_eq!(btb.lookup(100), Some(7));
    }

    #[test]
    fn update_in_place() {
        let mut btb = Btb::new(BtbConfig::default());
        btb.insert(100, 7);
        btb.insert(100, 9);
        assert_eq!(btb.lookup(100), Some(9));
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut btb = Btb::new(BtbConfig { sets: 1, ways: 2 });
        btb.insert(1, 11);
        btb.insert(2, 22);
        // Touch 1 so 2 becomes LRU.
        assert_eq!(btb.lookup(1), Some(11));
        btb.insert(3, 33);
        assert_eq!(btb.lookup(2), None, "2 should have been evicted");
        assert_eq!(btb.lookup(1), Some(11));
        assert_eq!(btb.lookup(3), Some(33));
    }

    #[test]
    fn budget_scales_with_entries() {
        let btb = Btb::new(BtbConfig { sets: 128, ways: 4 });
        assert_eq!(btb.budget().bits(), 512 * 66);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_panics() {
        let _ = Btb::new(BtbConfig { sets: 3, ways: 1 });
    }
}
