//! Branch-direction predictors, branch target buffer, return-address stack.
//!
//! The dead-instruction predictor leans on branch prediction twice: the
//! pipeline frontend uses it to follow the predicted path, and the CFI
//! signature (see [`crate::future`]) is assembled from the *predicted*
//! directions of upcoming branches, so branch-prediction quality bounds
//! dead-prediction quality (experiment E7).

mod bimodal;
mod btb;
mod gshare;
mod ras;
mod target_cache;

pub use bimodal::BimodalBranch;
pub use btb::{Btb, BtbConfig};
pub use gshare::Gshare;
pub use ras::ReturnAddressStack;
pub use target_cache::{TargetCache, TargetCacheConfig};

use crate::budget::StateBudget;

/// A conditional-branch direction predictor.
///
/// `pc` is the static instruction index of the branch. Implementations are
/// updated with the resolved direction via [`BranchPredictor::update`];
/// callers must call `predict` before `update` for each dynamic branch, in
/// program order.
pub trait BranchPredictor {
    /// Predicts the direction of the branch at `pc` (`true` = taken).
    fn predict(&mut self, pc: u32) -> bool;

    /// Trains the predictor with the branch's resolved direction.
    fn update(&mut self, pc: u32, taken: bool);

    /// Hardware state used by the predictor.
    fn budget(&self) -> StateBudget;

    /// Short human-readable name for reports.
    fn name(&self) -> String;
}

/// A perfect direction predictor, for limit studies (oracle CFI in E7).
///
/// `predict` replays a queue of oracle outcomes pushed by the caller via
/// [`PerfectBranch::provide`] before each prediction.
#[derive(Debug, Default)]
pub struct PerfectBranch {
    next: std::collections::VecDeque<bool>,
}

impl PerfectBranch {
    /// Creates an empty perfect predictor.
    #[must_use]
    pub fn new() -> PerfectBranch {
        PerfectBranch::default()
    }

    /// Supplies the actual outcome of the next branch to be predicted.
    pub fn provide(&mut self, taken: bool) {
        self.next.push_back(taken);
    }
}

impl BranchPredictor for PerfectBranch {
    fn predict(&mut self, _pc: u32) -> bool {
        self.next.pop_front().expect("PerfectBranch::provide must precede predict")
    }

    fn update(&mut self, _pc: u32, _taken: bool) {}

    fn budget(&self) -> StateBudget {
        StateBudget::from_bits(0)
    }

    fn name(&self) -> String {
        "perfect".to_string()
    }
}

/// A 2-bit saturating counter, the building block of direction predictors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct Counter2(u8);

impl Counter2 {
    /// Weakly-taken initial state.
    pub(crate) fn weakly_taken() -> Counter2 {
        Counter2(2)
    }

    pub(crate) fn taken(self) -> bool {
        self.0 >= 2
    }

    pub(crate) fn train(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter2_saturates() {
        let mut c = Counter2::default();
        assert!(!c.taken());
        for _ in 0..10 {
            c.train(true);
        }
        assert!(c.taken());
        c.train(false);
        assert!(c.taken()); // hysteresis: 3 -> 2 still predicts taken
        c.train(false);
        assert!(!c.taken());
        for _ in 0..10 {
            c.train(false);
        }
        assert!(!c.taken());
    }

    #[test]
    fn perfect_branch_replays_provided_outcomes() {
        let mut p = PerfectBranch::new();
        p.provide(true);
        p.provide(false);
        assert!(p.predict(0));
        assert!(!p.predict(0));
        assert_eq!(p.budget().bits(), 0);
    }

    #[test]
    #[should_panic(expected = "provide must precede")]
    fn perfect_branch_requires_provide() {
        let mut p = PerfectBranch::new();
        let _ = p.predict(0);
    }
}
