//! Future control-flow (CFI) signatures.
//!
//! The paper's key accuracy lever: the deadness of an instance of a static
//! instruction is strongly correlated with *where control goes next* —
//! whether the paths that would have consumed the value are about to be
//! taken. The frontend already knows this: the branch predictor has
//! predicted the directions of the branches that follow. A **CFI signature**
//! packages the predicted directions of the next *L* conditional branches
//! after an instruction into a small bit pattern that indexes the dead
//! predictor alongside the PC.

use dide_emu::Trace;

use crate::branch::BranchPredictor;

/// Maximum supported lookahead, in conditional branches.
pub const MAX_LOOKAHEAD: u8 = 16;

/// The predicted (or oracle) directions of the next `len` conditional
/// branches following an instruction, packed little-endian (bit 0 = the
/// nearest branch; `true` = taken).
///
/// Near the end of a run fewer than `len` branches may remain; `len`
/// reflects how many bits are valid so that short signatures do not alias
/// padded long ones.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct CfSignature {
    bits: u16,
    len: u8,
}

impl CfSignature {
    /// Builds a signature from packed direction bits and a valid length.
    ///
    /// # Panics
    ///
    /// Panics if `len > MAX_LOOKAHEAD`.
    #[must_use]
    pub fn new(bits: u16, len: u8) -> CfSignature {
        assert!(len <= MAX_LOOKAHEAD, "lookahead {len} exceeds {MAX_LOOKAHEAD}");
        let mask = if len == 0 { 0 } else { u16::MAX >> (16 - u16::from(len).min(16)) };
        CfSignature { bits: bits & mask, len }
    }

    /// The empty signature (lookahead 0 — degenerates to PC-only
    /// prediction).
    #[must_use]
    pub fn empty() -> CfSignature {
        CfSignature::default()
    }

    /// Packed direction bits.
    #[must_use]
    pub fn bits(self) -> u16 {
        self.bits
    }

    /// Number of valid direction bits.
    #[must_use]
    pub fn len(self) -> u8 {
        self.len
    }

    /// Whether the signature carries no control-flow information.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// Mixes the signature with a PC into a table index hash.
    #[must_use]
    pub fn hash_with(self, pc: u32) -> u64 {
        // Fibonacci-style mixing; cheap and adequate for table indexing.
        let x = u64::from(pc).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let y = (u64::from(self.bits) | (u64::from(self.len) << 16))
            .wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        let mut h = x ^ y.rotate_left(31);
        h ^= h >> 29;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 32;
        h
    }
}

/// One upcoming control-flow event contributing to a [`CfSignature`].
///
/// The paper builds signatures from conditional-branch *directions*. The
/// [`CfEvent::Indirect`] variant is this reproduction's extension
/// (experiment E13): a small hash of an indirect jump's *predicted target*
/// — the information that distinguishes interpreter handlers, where
/// conditional directions say nothing about which operands die.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CfEvent {
    /// A conditional branch's (predicted) direction.
    Cond(bool),
    /// A 3-bit hash of an indirect jump's (predicted) target.
    Indirect(u8),
}

impl CfEvent {
    /// The event's contribution: `(value, bit width)`.
    #[must_use]
    pub fn bits(self) -> (u16, u8) {
        match self {
            CfEvent::Cond(taken) => (u16::from(taken), 1),
            CfEvent::Indirect(hash) => (u16::from(hash & 7), 3),
        }
    }

    /// Hashes an indirect-jump target index into the 3-bit event space.
    #[must_use]
    pub fn hash_target(target: u32) -> u8 {
        ((u64::from(target).wrapping_mul(0x9E37_79B9) >> 29) & 7) as u8
    }
}

/// Packs the first events of `events` into a signature, nearest event in
/// the low bits, stopping when the 16-bit window is full.
#[must_use]
pub fn pack_events<I: IntoIterator<Item = CfEvent>>(events: I, max_events: u8) -> CfSignature {
    let mut bits = 0u16;
    let mut pos = 0u8;
    let mut len = 0u8;
    for event in events {
        if len == max_events {
            break;
        }
        let (value, width) = event.bits();
        if pos + width > 16 {
            break;
        }
        bits |= value << pos;
        pos += width;
        len += 1;
    }
    CfSignature { bits, len }
}

/// Per-branch bookkeeping from one pass of a direction predictor over a
/// trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Dynamic conditional branches.
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub mispredicts: u64,
}

impl dide_obs::Observe for BranchStats {
    fn observe(&self, scope: &mut dide_obs::Scope<'_>) {
        scope.counter("branches", self.branches);
        scope.counter("mispredicts", self.mispredicts);
    }
}

impl BranchStats {
    /// Direction-prediction accuracy in `[0, 1]`.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.branches == 0 {
            1.0
        } else {
            1.0 - self.mispredicts as f64 / self.branches as f64
        }
    }
}

/// The CFI signature of every dynamic instruction in a trace, computed from
/// a direction predictor's *predictions* (the information the frontend
/// actually has), plus the predictor's accuracy on this trace.
///
/// The signature at seq `i` covers the first `lookahead` conditional
/// branches with seq strictly greater than `i`.
pub fn signatures_predicted(
    trace: &Trace,
    predictor: &mut dyn BranchPredictor,
    lookahead: u8,
) -> (Vec<CfSignature>, BranchStats) {
    assert!(lookahead <= MAX_LOOKAHEAD, "lookahead {lookahead} exceeds {MAX_LOOKAHEAD}");
    let mut stats = BranchStats::default();
    let mut events: Vec<(u64, CfEvent)> = Vec::new();
    for r in trace {
        if r.is_cond_branch() {
            let predicted = predictor.predict(r.index);
            stats.branches += 1;
            stats.mispredicts += u64::from(predicted != r.taken());
            events.push((r.seq, CfEvent::Cond(predicted)));
            predictor.update(r.index, r.taken());
        }
    }
    (pack_signatures(trace, &events, lookahead), stats)
}

/// Jump-aware CFI signatures (experiment E13): like
/// [`signatures_predicted`], but indirect jumps (`jalr`) also contribute an
/// event — a 3-bit hash of the jump's predicted target, produced by a
/// history-based [`TargetCache`](crate::branch::TargetCache) (the same
/// structure the frontend uses to redirect fetch).
pub fn signatures_jump_aware(
    trace: &Trace,
    predictor: &mut dyn BranchPredictor,
    lookahead: u8,
) -> (Vec<CfSignature>, BranchStats) {
    assert!(lookahead <= MAX_LOOKAHEAD, "lookahead {lookahead} exceeds {MAX_LOOKAHEAD}");
    let mut stats = BranchStats::default();
    let mut targets = crate::branch::TargetCache::default();
    let mut events: Vec<(u64, CfEvent)> = Vec::new();
    for r in trace {
        if r.is_cond_branch() {
            let predicted = predictor.predict(r.index);
            stats.branches += 1;
            stats.mispredicts += u64::from(predicted != r.taken());
            events.push((r.seq, CfEvent::Cond(predicted)));
            predictor.update(r.index, r.taken());
        } else if matches!(r.op.kind(), dide_isa::OpcodeKind::Jalr) {
            // Returns are RAS-predicted and carry no dispatch information;
            // they neither contribute an event nor pollute the history.
            let is_return = r.rs1 == dide_isa::Reg::RA && r.rd.is_zero();
            if !is_return {
                let predicted = targets.predict(r.index).unwrap_or(0);
                events.push((r.seq, CfEvent::Indirect(CfEvent::hash_target(predicted))));
                targets.update(r.index, r.next_index);
            }
        }
    }
    (pack_signatures(trace, &events, lookahead), stats)
}

/// Oracle CFI signatures: built from the *actual* directions of upcoming
/// branches. Used as the limit case in experiment E7.
#[must_use]
pub fn signatures_oracle(trace: &Trace, lookahead: u8) -> Vec<CfSignature> {
    assert!(lookahead <= MAX_LOOKAHEAD, "lookahead {lookahead} exceeds {MAX_LOOKAHEAD}");
    let events: Vec<(u64, CfEvent)> = trace
        .iter()
        .filter(|r| r.is_cond_branch())
        .map(|r| (r.seq, CfEvent::Cond(r.taken())))
        .collect();
    pack_signatures(trace, &events, lookahead)
}

fn pack_signatures(trace: &Trace, events: &[(u64, CfEvent)], lookahead: u8) -> Vec<CfSignature> {
    let n = trace.len();
    let mut out = vec![CfSignature::empty(); n];
    if lookahead == 0 {
        return out;
    }
    // `next` = index of the first event with seq > i, maintained by a
    // backward sweep.
    let mut next = events.len();
    for i in (0..n).rev() {
        while next > 0 && events[next - 1].0 > i as u64 {
            next -= 1;
        }
        out[i] = pack_events(events[next..].iter().map(|&(_, e)| e), lookahead);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::Gshare;
    use dide_emu::Emulator;
    use dide_isa::{ProgramBuilder, Reg};

    fn loop_trace(iters: i64) -> Trace {
        let mut b = ProgramBuilder::new("loop");
        b.li(Reg::T0, 0); // 0
        b.li(Reg::T1, iters); // 1
        let top = b.label();
        b.bind(top);
        b.addi(Reg::T0, Reg::T0, 1); // 2
        b.blt(Reg::T0, Reg::T1, top); // 3
        b.out(Reg::T0); // 4
        b.halt(); // 5
        Emulator::new(&b.build().unwrap()).run().unwrap()
    }

    #[test]
    fn oracle_signature_matches_actual_directions() {
        let t = loop_trace(3);
        // Dynamic stream: li li (addi blt)*3 out halt; branch outcomes T,T,N.
        let sigs = signatures_oracle(&t, 2);
        // First instruction sees branches (T, T) => bits 0b11, len 2.
        assert_eq!(sigs[0], CfSignature::new(0b11, 2));
        // The first addi (seq 2) sees its own following branches (T, T).
        assert_eq!(sigs[2], CfSignature::new(0b11, 2));
        // The second branch (seq 5) sees (N) only... the remaining branch is
        // the third one, outcome N => bits 0, len 1.
        assert_eq!(sigs[5], CfSignature::new(0b0, 1));
        // Last instruction sees no further branches.
        assert_eq!(sigs[t.len() - 1], CfSignature::empty());
    }

    #[test]
    fn signature_excludes_own_branch() {
        let t = loop_trace(2);
        let sigs = signatures_oracle(&t, 1);
        // Branch records themselves see the *next* branch, not their own.
        let branch_seqs: Vec<u64> =
            t.iter().filter(|r| r.is_cond_branch()).map(|r| r.seq).collect();
        assert_eq!(branch_seqs.len(), 2);
        // The first branch's signature is the second branch's outcome (N).
        assert_eq!(sigs[branch_seqs[0] as usize], CfSignature::new(0, 1));
    }

    #[test]
    fn predicted_signatures_track_predictor() {
        let t = loop_trace(50);
        let mut g = Gshare::new(8, 10);
        let (sigs, stats) = signatures_predicted(&t, &mut g, 4);
        assert_eq!(sigs.len(), t.len());
        assert_eq!(stats.branches, 50);
        // A monotone loop branch is easy; accuracy should be high.
        assert!(stats.accuracy() > 0.9, "accuracy {}", stats.accuracy());
    }

    #[test]
    fn zero_lookahead_gives_empty_signatures() {
        let t = loop_trace(3);
        let sigs = signatures_oracle(&t, 0);
        assert!(sigs.iter().all(|s| s.is_empty()));
    }

    #[test]
    fn signature_masks_extra_bits() {
        let s = CfSignature::new(0b1111, 2);
        assert_eq!(s.bits(), 0b11);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn hash_differs_by_signature() {
        let a = CfSignature::new(0b01, 2).hash_with(100);
        let b = CfSignature::new(0b10, 2).hash_with(100);
        let c = CfSignature::new(0b01, 2).hash_with(101);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn padded_and_unpadded_signatures_differ() {
        let short = CfSignature::new(0b0, 1);
        let long = CfSignature::new(0b00, 2);
        assert_ne!(short, long);
        assert_ne!(short.hash_with(5), long.hash_with(5));
    }

    #[test]
    fn branch_stats_accuracy_empty() {
        assert_eq!(BranchStats::default().accuracy(), 1.0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_lookahead_panics() {
        let t = loop_trace(1);
        let _ = signatures_oracle(&t, 17);
    }

    #[test]
    fn pack_events_mixes_widths() {
        let sig =
            pack_events([CfEvent::Cond(true), CfEvent::Indirect(0b101), CfEvent::Cond(false)], 4);
        // Layout: bit 0 = cond(true); bits 1..4 = indirect 0b101; bit 4 = 0.
        #[allow(clippy::unusual_byte_groupings)] // grouped by event: cond | indirect | cond
        {
            assert_eq!(sig.bits(), 0b0_101_1);
        }
        assert_eq!(sig.len(), 3);
    }

    #[test]
    fn pack_events_respects_window_and_count() {
        // Six 3-bit events exceed the 16-bit window after five.
        let sig = pack_events(std::iter::repeat_n(CfEvent::Indirect(7), 6), 16);
        assert_eq!(sig.len(), 5);
        let sig = pack_events(std::iter::repeat_n(CfEvent::Cond(true), 6), 2);
        assert_eq!(sig.len(), 2);
        assert_eq!(sig.bits(), 0b11);
    }

    #[test]
    fn target_hash_distinguishes_stride_aligned_targets() {
        // Handler-table targets differ by a fixed stride; the hash must
        // still separate them.
        let hashes: std::collections::HashSet<u8> =
            (0..8u32).map(|h| CfEvent::hash_target(100 + h * 8)).collect();
        assert!(hashes.len() >= 4, "got {hashes:?}");
    }

    fn jalr_trace() -> Trace {
        // Alternating dispatch between two targets via jalr.
        let mut b = ProgramBuilder::new("jalr");
        let main = b.label();
        b.j(main);
        // target 1 (index 1)
        b.raw(dide_isa::Inst::new(dide_isa::Opcode::Jalr, Reg::ZERO, Reg::S1, Reg::ZERO, 0));
        // target 2 (index 2)
        b.raw(dide_isa::Inst::new(dide_isa::Opcode::Jalr, Reg::ZERO, Reg::S1, Reg::ZERO, 0));
        b.bind(main);
        b.li(Reg::T0, 0);
        b.li(Reg::T1, 6);
        let top = b.label();
        b.bind(top);
        b.andi(Reg::T2, Reg::T0, 1);
        b.addi(Reg::T2, Reg::T2, 1); // handler index 1 or 2
                                     // return-to register: continue after the jalr below
        let after = b.here() + 2;
        b.li(Reg::S1, i64::from(after));
        b.jalr(Reg::ZERO, Reg::T2, 0);
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, top);
        b.out(Reg::T0);
        b.halt();
        Emulator::new(&b.build().unwrap()).run().unwrap()
    }

    #[test]
    fn jump_aware_signatures_see_indirect_targets() {
        let t = jalr_trace();
        let mut g = Gshare::new(8, 10);
        let (jump_aware, _) = signatures_jump_aware(&t, &mut g, 4);
        let mut g2 = Gshare::new(8, 10);
        let (cond_only, _) = signatures_predicted(&t, &mut g2, 4);
        assert_eq!(jump_aware.len(), t.len());
        // Some signature must differ: the trace contains jalr events.
        assert!(
            jump_aware.iter().zip(&cond_only).any(|(a, b)| a != b),
            "indirect events must be visible in signatures"
        );
    }
}
