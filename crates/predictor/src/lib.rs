//! Branch predictors and dead-instruction predictors.
//!
//! This crate implements the paper's core contribution — the
//! **dead-instruction predictor** — together with the branch-prediction
//! substrate it relies on:
//!
//! * [`branch`] — bimodal and gshare direction predictors, a branch target
//!   buffer and a return-address stack (used by the pipeline frontend and by
//!   the CFI signature stream);
//! * [`future`] — **future control-flow (CFI) signatures**: the predicted
//!   directions of the next *L* conditional branches after an instruction,
//!   the information that lets the predictor distinguish dead from useful
//!   instances of the same static instruction;
//! * [`dead`] — the predictors themselves: [`dead::LastOutcomePredictor`],
//!   [`dead::BimodalDeadPredictor`] (PC-only), [`dead::CfiDeadPredictor`]
//!   (the paper's design, PC × CFI-signature indexed with confidence), and
//!   [`dead::OracleDeadPredictor`] for limit studies — plus an offline
//!   evaluation harness producing the paper's coverage/accuracy metrics.
//!
//! # Example
//!
//! Evaluate the CFI predictor on a toy loop:
//!
//! ```
//! use dide_isa::{ProgramBuilder, Reg};
//! use dide_emu::Emulator;
//! use dide_analysis::DeadnessAnalysis;
//! use dide_predictor::branch::Gshare;
//! use dide_predictor::dead::{evaluate, CfiConfig, CfiDeadPredictor};
//!
//! let mut b = ProgramBuilder::new("loop");
//! b.li(Reg::T0, 0).li(Reg::T1, 100);
//! let top = b.label();
//! b.bind(top);
//! b.slt(Reg::T2, Reg::T0, Reg::T1); // dead on all but the last iteration
//! b.addi(Reg::T0, Reg::T0, 1);
//! b.blt(Reg::T0, Reg::T1, top);
//! b.out(Reg::T2);
//! b.halt();
//! let trace = Emulator::new(&b.build()?).run()?;
//! let analysis = DeadnessAnalysis::analyze(&trace);
//!
//! let mut predictor = CfiDeadPredictor::new(CfiConfig::default());
//! let mut gshare = Gshare::new(10, 12);
//! let report = evaluate(&trace, &analysis, &mut predictor, &mut gshare, 4);
//! assert!(report.coverage() > 0.5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod dead;
pub mod future;

mod budget;

pub use budget::StateBudget;
