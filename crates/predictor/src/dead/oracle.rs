//! Oracle dead predictor for limit studies.

use dide_analysis::{DeadnessAnalysis, Verdict};

use super::{DeadPredictor, PredictInput};
use crate::budget::StateBudget;

/// A perfect dead predictor: answers from the oracle deadness analysis.
///
/// Used as the coverage/accuracy upper bound in predictor studies and as
/// the "perfect elimination" limit in the pipeline (experiments E6–E9
/// report it as the `oracle` row).
#[derive(Debug, Clone)]
pub struct OracleDeadPredictor {
    dead_by_seq: Vec<bool>,
}

impl OracleDeadPredictor {
    /// Builds the oracle from an analysis of the trace that will be
    /// predicted.
    #[must_use]
    pub fn new(analysis: &DeadnessAnalysis) -> OracleDeadPredictor {
        OracleDeadPredictor::from_verdicts(analysis.verdicts())
    }

    /// Builds the oracle from a bare verdict vector — what the windowed
    /// (streaming) analysis hands the pipeline, which retains no
    /// `DeadnessAnalysis`.
    #[must_use]
    pub fn from_verdicts(verdicts: &[Verdict]) -> OracleDeadPredictor {
        OracleDeadPredictor { dead_by_seq: verdicts.iter().map(|v| v.is_dead()).collect() }
    }
}

impl DeadPredictor for OracleDeadPredictor {
    fn predict(&mut self, input: &PredictInput) -> bool {
        self.dead_by_seq.get(input.seq as usize).copied().unwrap_or(false)
    }

    fn train(&mut self, _input: &PredictInput, _was_dead: bool) {}

    fn budget(&self) -> StateBudget {
        StateBudget::from_bits(0)
    }

    fn name(&self) -> String {
        "oracle".to_string()
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::future::CfSignature;
    use dide_emu::Emulator;
    use dide_isa::{ProgramBuilder, Reg};

    #[test]
    fn oracle_reports_exact_deadness() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1); // dead
        b.li(Reg::T0, 2); // useful
        b.out(Reg::T0);
        b.halt();
        let trace = Emulator::new(&b.build().unwrap()).run().unwrap();
        let analysis = DeadnessAnalysis::analyze(&trace);
        let mut o = OracleDeadPredictor::new(&analysis);
        let at = |seq| PredictInput { seq, static_index: 0, signature: CfSignature::empty() };
        assert!(o.predict(&at(0)));
        assert!(!o.predict(&at(1)));
        assert!(!o.predict(&at(99)), "out of range predicts useful");
        assert_eq!(o.budget().bits(), 0);
    }
}
