//! Dead-instruction predictors (the paper's contribution) and their offline
//! evaluation harness.
//!
//! All predictors implement [`DeadPredictor`]: given a static instruction
//! and its CFI signature, they answer "will this dynamic instance be dead?".
//! Prediction happens at rename time in the pipeline; training happens at
//! commit, when the oracle deadness of the committed instruction is known.
//!
//! A *dead* prediction is only acted on when the predictor is highly
//! confident, because acting on a wrong one costs a squash-and-replay; the
//! confidence machinery therefore trades coverage for accuracy
//! (experiment E11).

mod bimodal;
mod cfi;
mod eval;
mod last;
mod oracle;

pub use bimodal::{BimodalDeadConfig, BimodalDeadPredictor};
pub use cfi::{CfiConfig, CfiDeadPredictor};
pub use eval::{evaluate, evaluate_with_signatures, DeadPredictionReport};
pub use last::LastOutcomePredictor;
pub use oracle::OracleDeadPredictor;

use crate::budget::StateBudget;
use crate::future::CfSignature;

/// Everything a dead predictor may consult for one dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictInput {
    /// Dynamic sequence number (used only by the oracle predictor).
    pub seq: u64,
    /// Static instruction index (the PC in instruction units).
    pub static_index: u32,
    /// Future control-flow signature available at prediction time.
    pub signature: CfSignature,
}

/// A dead-instruction predictor.
///
/// Callers must interleave `predict` and `train` in program order, exactly
/// once each per eligible dynamic instruction.
pub trait DeadPredictor {
    /// Predicts whether this dynamic instance will be dead.
    fn predict(&mut self, input: &PredictInput) -> bool;

    /// Trains with the instance's oracle outcome.
    fn train(&mut self, input: &PredictInput, was_dead: bool);

    /// Hardware state used by the predictor.
    fn budget(&self) -> StateBudget;

    /// Short human-readable name for reports.
    fn name(&self) -> String;

    /// Resets all learned state (between benchmark runs in sweeps).
    fn reset(&mut self);
}

/// An `n`-bit saturating confidence counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct Confidence {
    value: u8,
    max: u8,
}

impl Confidence {
    pub(crate) fn new(bits: u8) -> Confidence {
        assert!((1..=7).contains(&bits), "confidence bits must be 1..=7");
        Confidence { value: 0, max: (1u8 << bits) - 1 }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn value(self) -> u8 {
        self.value
    }

    pub(crate) fn is_at_least(self, threshold: u8) -> bool {
        self.value >= threshold
    }

    /// Strengthen on a confirming outcome.
    pub(crate) fn strengthen(&mut self) {
        self.value = (self.value + 1).min(self.max);
    }

    /// Collapse on a disconfirming outcome. Dead mispredictions are
    /// expensive, so confidence resets rather than decays.
    pub(crate) fn collapse(&mut self) {
        self.value = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confidence_saturates_and_collapses() {
        let mut c = Confidence::new(4);
        for _ in 0..20 {
            c.strengthen();
        }
        assert_eq!(c.value(), 15);
        assert!(c.is_at_least(15));
        c.collapse();
        assert_eq!(c.value(), 0);
        assert!(!c.is_at_least(1));
    }

    #[test]
    #[should_panic(expected = "confidence bits")]
    fn zero_bits_panics() {
        let _ = Confidence::new(0);
    }
}
