//! PC-only (bimodal) dead predictor with confidence.

use super::{Confidence, DeadPredictor, PredictInput};
use crate::budget::StateBudget;

/// Configuration for [`BimodalDeadPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BimodalDeadConfig {
    /// `log2` of the number of table entries.
    pub log2_entries: u32,
    /// Bits per confidence counter.
    pub counter_bits: u8,
    /// Minimum confidence at which a dead prediction is made.
    pub threshold: u8,
}

impl Default for BimodalDeadConfig {
    fn default() -> Self {
        BimodalDeadConfig { log2_entries: 11, counter_bits: 4, threshold: 12 }
    }
}

/// A dead predictor indexed by PC only.
///
/// Equivalent to the CFI predictor with lookahead 0: it can learn statics
/// that are (almost) always dead, but has no way to separate the dead from
/// the useful instances of a *partially dead* static — which is where most
/// dead instances come from (experiment E3). Its coverage ceiling is what
/// motivates CFI indexing (experiment E7).
#[derive(Debug, Clone)]
pub struct BimodalDeadPredictor {
    config: BimodalDeadConfig,
    table: Vec<Confidence>,
    mask: u32,
}

impl BimodalDeadPredictor {
    /// Creates a predictor from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `log2_entries > 24`, `counter_bits` is outside `1..=7`, or
    /// the threshold exceeds the counter maximum.
    #[must_use]
    pub fn new(config: BimodalDeadConfig) -> BimodalDeadPredictor {
        assert!(config.log2_entries <= 24, "table too large");
        assert!(
            (1..=7).contains(&config.counter_bits),
            "counter bits {} outside 1..=7",
            config.counter_bits
        );
        let max = (1u16 << config.counter_bits) - 1;
        assert!(
            u16::from(config.threshold) <= max,
            "threshold {} exceeds counter max {max}",
            config.threshold
        );
        let entries = 1usize << config.log2_entries;
        BimodalDeadPredictor {
            config,
            table: vec![Confidence::new(config.counter_bits); entries],
            mask: (entries - 1) as u32,
        }
    }

    fn index(&self, pc: u32) -> usize {
        (pc & self.mask) as usize
    }
}

impl DeadPredictor for BimodalDeadPredictor {
    fn predict(&mut self, input: &PredictInput) -> bool {
        self.table[self.index(input.static_index)].is_at_least(self.config.threshold)
    }

    fn train(&mut self, input: &PredictInput, was_dead: bool) {
        let idx = self.index(input.static_index);
        if was_dead {
            self.table[idx].strengthen();
        } else {
            self.table[idx].collapse();
        }
    }

    fn budget(&self) -> StateBudget {
        StateBudget::from_entries(self.table.len() as u64, u64::from(self.config.counter_bits))
    }

    fn name(&self) -> String {
        format!(
            "bimodal-dead-{}x{}b@{}",
            self.table.len(),
            self.config.counter_bits,
            self.config.threshold
        )
    }

    fn reset(&mut self) {
        self.table.fill(Confidence::new(self.config.counter_bits));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::future::CfSignature;

    fn input(pc: u32) -> PredictInput {
        PredictInput { seq: 0, static_index: pc, signature: CfSignature::empty() }
    }

    fn predictor(threshold: u8) -> BimodalDeadPredictor {
        BimodalDeadPredictor::new(BimodalDeadConfig { log2_entries: 6, counter_bits: 4, threshold })
    }

    #[test]
    fn needs_sustained_deadness_to_predict() {
        let mut p = predictor(3);
        for _ in 0..2 {
            p.train(&input(9), true);
        }
        assert!(!p.predict(&input(9)), "below threshold");
        p.train(&input(9), true);
        assert!(p.predict(&input(9)));
    }

    #[test]
    fn one_useful_instance_collapses_confidence() {
        let mut p = predictor(3);
        for _ in 0..10 {
            p.train(&input(9), true);
        }
        assert!(p.predict(&input(9)));
        p.train(&input(9), false);
        assert!(!p.predict(&input(9)));
    }

    #[test]
    fn cannot_separate_alternating_instances() {
        // A partially dead static alternating dead/useful never reaches a
        // threshold of 12 — coverage 0, by design.
        let mut p = BimodalDeadPredictor::new(BimodalDeadConfig::default());
        let mut predicted_dead = 0;
        for i in 0..100 {
            predicted_dead += u32::from(p.predict(&input(5)));
            p.train(&input(5), i % 2 == 0);
        }
        assert_eq!(predicted_dead, 0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn threshold_above_counter_max_panics() {
        let _ = BimodalDeadPredictor::new(BimodalDeadConfig {
            log2_entries: 4,
            counter_bits: 2,
            threshold: 4,
        });
    }

    #[test]
    fn budget_and_name() {
        let p = BimodalDeadPredictor::new(BimodalDeadConfig::default());
        assert_eq!(p.budget().bits(), 2048 * 4);
        assert!(p.name().contains("bimodal-dead"));
    }
}
