//! Last-outcome dead predictor (the weakest baseline).

use super::{DeadPredictor, PredictInput};
use crate::budget::StateBudget;

/// Predicts that an instance will be dead iff the previous instance of the
/// same (PC-indexed, untagged) entry was dead. One bit of state per entry.
///
/// This baseline shows why partially dead static instructions defeat
/// history-free prediction: any static that alternates between dead and
/// useful instances mispredicts on every transition.
#[derive(Debug, Clone)]
pub struct LastOutcomePredictor {
    table: Vec<bool>,
    mask: u32,
}

impl LastOutcomePredictor {
    /// Creates a predictor with `2^log2_entries` one-bit entries.
    ///
    /// # Panics
    ///
    /// Panics if `log2_entries > 24`.
    #[must_use]
    pub fn new(log2_entries: u32) -> LastOutcomePredictor {
        assert!(log2_entries <= 24, "table too large: 2^{log2_entries}");
        let entries = 1usize << log2_entries;
        LastOutcomePredictor { table: vec![false; entries], mask: (entries - 1) as u32 }
    }

    fn index(&self, pc: u32) -> usize {
        (pc & self.mask) as usize
    }
}

impl DeadPredictor for LastOutcomePredictor {
    fn predict(&mut self, input: &PredictInput) -> bool {
        self.table[self.index(input.static_index)]
    }

    fn train(&mut self, input: &PredictInput, was_dead: bool) {
        let idx = self.index(input.static_index);
        self.table[idx] = was_dead;
    }

    fn budget(&self) -> StateBudget {
        StateBudget::from_entries(self.table.len() as u64, 1)
    }

    fn name(&self) -> String {
        format!("last-outcome-{}", self.table.len())
    }

    fn reset(&mut self) {
        self.table.fill(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::future::CfSignature;

    fn input(pc: u32) -> PredictInput {
        PredictInput { seq: 0, static_index: pc, signature: CfSignature::empty() }
    }

    #[test]
    fn follows_last_outcome() {
        let mut p = LastOutcomePredictor::new(4);
        assert!(!p.predict(&input(3)));
        p.train(&input(3), true);
        assert!(p.predict(&input(3)));
        p.train(&input(3), false);
        assert!(!p.predict(&input(3)));
    }

    #[test]
    fn reset_clears() {
        let mut p = LastOutcomePredictor::new(4);
        p.train(&input(3), true);
        p.reset();
        assert!(!p.predict(&input(3)));
    }

    #[test]
    fn budget_one_bit_per_entry() {
        assert_eq!(LastOutcomePredictor::new(10).budget().bits(), 1024);
    }
}
