//! The paper's dead-instruction predictor: PC × CFI-signature indexed,
//! tagged, with confidence.

use super::{Confidence, DeadPredictor, PredictInput};
use crate::budget::StateBudget;
use crate::future::CfSignature;

/// Configuration for [`CfiDeadPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CfiConfig {
    /// `log2` of the number of table entries.
    pub log2_entries: u32,
    /// Tag bits stored per entry (reduces destructive aliasing).
    pub tag_bits: u8,
    /// Bits per confidence counter.
    pub counter_bits: u8,
    /// Minimum confidence at which a dead prediction is made.
    pub threshold: u8,
}

impl Default for CfiConfig {
    /// The paper-scale default: 2048 entries × (8-bit tag + 4-bit counter)
    /// = 3 KiB — comfortably under the 5 KB headline budget.
    fn default() -> Self {
        CfiConfig { log2_entries: 11, tag_bits: 8, counter_bits: 4, threshold: 12 }
    }
}

impl CfiConfig {
    /// Hardware state implied by this configuration.
    #[must_use]
    pub fn budget(&self) -> StateBudget {
        StateBudget::from_entries(
            1u64 << self.log2_entries,
            u64::from(self.tag_bits) + u64::from(self.counter_bits),
        )
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    tag: u16,
    valid: bool,
    confidence: Confidence,
}

/// The paper's dead-instruction predictor.
///
/// Each table entry is selected by a hash of the instruction's PC *and* its
/// CFI signature (the predicted directions of the next *L* conditional
/// branches — see [`crate::future`]). A partially dead static instruction
/// therefore occupies *different* entries for the future paths on which its
/// value dies and those on which it is consumed, which is what lifts
/// coverage past the PC-only ceiling while holding accuracy high.
///
/// Entries are tagged to suppress aliasing and carry a saturating
/// confidence counter that is strengthened by confirmed-dead outcomes and
/// collapsed by useful ones; a dead prediction is only made above a (high)
/// confidence threshold, because acting on a wrong one triggers a pipeline
/// squash.
///
/// # Example
///
/// ```
/// use dide_predictor::dead::{CfiConfig, CfiDeadPredictor, DeadPredictor, PredictInput};
/// use dide_predictor::future::CfSignature;
///
/// let mut p = CfiDeadPredictor::new(CfiConfig { threshold: 3, ..CfiConfig::default() });
/// // Same PC, two control-flow futures: dead when the next branch is
/// // taken, useful when it is not.
/// let dead_ctx = PredictInput { seq: 0, static_index: 42, signature: CfSignature::new(1, 1) };
/// let live_ctx = PredictInput { seq: 0, static_index: 42, signature: CfSignature::new(0, 1) };
/// for _ in 0..5 {
///     p.train(&dead_ctx, true);
///     p.train(&live_ctx, false);
/// }
/// assert!(p.predict(&dead_ctx));
/// assert!(!p.predict(&live_ctx));
/// ```
#[derive(Debug, Clone)]
pub struct CfiDeadPredictor {
    config: CfiConfig,
    table: Vec<Entry>,
    index_mask: u64,
    tag_mask: u16,
}

impl CfiDeadPredictor {
    /// Creates a predictor from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `log2_entries > 24`, `tag_bits > 16`, `counter_bits` is
    /// outside `1..=7`, or `threshold` exceeds the counter maximum.
    #[must_use]
    pub fn new(config: CfiConfig) -> CfiDeadPredictor {
        assert!(config.log2_entries <= 24, "table too large");
        assert!(config.tag_bits <= 16, "tag too wide");
        assert!(
            (1..=7).contains(&config.counter_bits),
            "counter bits {} outside 1..=7",
            config.counter_bits
        );
        let max = (1u16 << config.counter_bits) - 1;
        assert!(
            u16::from(config.threshold) <= max,
            "threshold {} exceeds counter max {max}",
            config.threshold
        );
        let entries = 1usize << config.log2_entries;
        // Subtract before narrowing: at tag_bits == 16 the shifted value is
        // 0x1_0000, which narrows to 0 and makes `0u16 - 1` panic.
        let tag_mask = ((1u32 << config.tag_bits) - 1) as u16;
        CfiDeadPredictor {
            config,
            table: vec![Entry::default(); entries],
            index_mask: (entries - 1) as u64,
            tag_mask,
        }
    }

    /// The predictor's configuration.
    #[must_use]
    pub fn config(&self) -> CfiConfig {
        self.config
    }

    fn slot(&self, pc: u32, sig: CfSignature) -> (usize, u16) {
        let h = sig.hash_with(pc);
        let index = (h & self.index_mask) as usize;
        let tag = ((h >> self.config.log2_entries) as u16) & self.tag_mask;
        (index, tag)
    }
}

impl DeadPredictor for CfiDeadPredictor {
    fn predict(&mut self, input: &PredictInput) -> bool {
        let (index, tag) = self.slot(input.static_index, input.signature);
        let e = &self.table[index];
        e.valid && e.tag == tag && e.confidence.is_at_least(self.config.threshold)
    }

    fn train(&mut self, input: &PredictInput, was_dead: bool) {
        let (index, tag) = self.slot(input.static_index, input.signature);
        let e = &mut self.table[index];
        if e.valid && e.tag == tag {
            if was_dead {
                e.confidence.strengthen();
            } else {
                e.confidence.collapse();
            }
        } else if was_dead {
            // Allocate on dead outcomes only; useful instances do not evict
            // learned dead contexts.
            let mut confidence = Confidence::new(self.config.counter_bits);
            confidence.strengthen();
            *e = Entry { tag, valid: true, confidence };
        }
    }

    fn budget(&self) -> StateBudget {
        self.config.budget()
    }

    fn name(&self) -> String {
        format!(
            "cfi-{}x({}t+{}c)@{}",
            self.table.len(),
            self.config.tag_bits,
            self.config.counter_bits,
            self.config.threshold
        )
    }

    fn reset(&mut self) {
        self.table.fill(Entry::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(pc: u32, bits: u16, len: u8) -> PredictInput {
        PredictInput { seq: 0, static_index: pc, signature: CfSignature::new(bits, len) }
    }

    fn small() -> CfiDeadPredictor {
        CfiDeadPredictor::new(CfiConfig {
            log2_entries: 8,
            tag_bits: 8,
            counter_bits: 4,
            threshold: 3,
        })
    }

    #[test]
    fn separates_instances_by_signature() {
        let mut p = small();
        // Same PC: dead when the next branch is taken, useful otherwise.
        for _ in 0..10 {
            p.train(&input(42, 0b1, 1), true);
            p.train(&input(42, 0b0, 1), false);
        }
        assert!(p.predict(&input(42, 0b1, 1)), "dead context should predict dead");
        assert!(!p.predict(&input(42, 0b0, 1)), "useful context should not");
    }

    #[test]
    fn confidence_gate_requires_repeats() {
        let mut p = small();
        p.train(&input(7, 0, 0), true);
        assert!(!p.predict(&input(7, 0, 0)), "one observation is not enough");
        p.train(&input(7, 0, 0), true);
        p.train(&input(7, 0, 0), true);
        assert!(p.predict(&input(7, 0, 0)));
    }

    #[test]
    fn useful_outcome_collapses_entry() {
        let mut p = small();
        for _ in 0..10 {
            p.train(&input(7, 0, 0), true);
        }
        assert!(p.predict(&input(7, 0, 0)));
        p.train(&input(7, 0, 0), false);
        assert!(!p.predict(&input(7, 0, 0)));
    }

    #[test]
    fn useful_outcomes_do_not_allocate() {
        let mut p = small();
        for _ in 0..100 {
            p.train(&input(9, 0, 0), false);
        }
        // Entry for pc 9 never allocated; a dead context at another pc that
        // hashes elsewhere is unaffected.
        assert!(!p.predict(&input(9, 0, 0)));
    }

    #[test]
    fn default_config_is_under_5kb() {
        let p = CfiDeadPredictor::new(CfiConfig::default());
        assert!(p.budget().kib() < 5.0, "budget {}", p.budget());
    }

    #[test]
    fn reset_clears_state() {
        let mut p = small();
        for _ in 0..10 {
            p.train(&input(7, 0, 0), true);
        }
        p.reset();
        assert!(!p.predict(&input(7, 0, 0)));
    }

    #[test]
    #[should_panic(expected = "tag too wide")]
    fn oversized_tag_panics() {
        let _ = CfiDeadPredictor::new(CfiConfig {
            log2_entries: 8,
            tag_bits: 17,
            counter_bits: 4,
            threshold: 3,
        });
    }

    #[test]
    fn widest_tag_uses_all_sixteen_bits() {
        // Regression: `(1u32 << 16) as u16` narrows to 0, so computing the
        // mask as `shifted as u16 - 1` panicked for the widest legal tag.
        let mut p = CfiDeadPredictor::new(CfiConfig {
            log2_entries: 8,
            tag_bits: 16,
            counter_bits: 4,
            threshold: 3,
        });
        assert_eq!(p.tag_mask, u16::MAX);
        for _ in 0..5 {
            p.train(&input(42, 0b1, 1), true);
        }
        assert!(p.predict(&input(42, 0b1, 1)));
    }

    #[test]
    fn zero_tag_bits_disables_tagging() {
        let p = CfiDeadPredictor::new(CfiConfig {
            log2_entries: 8,
            tag_bits: 0,
            counter_bits: 4,
            threshold: 3,
        });
        assert_eq!(p.tag_mask, 0);
    }

    #[test]
    fn counter_bits_bounds_are_usable() {
        for (bits, threshold) in [(1u8, 1u8), (7, 127)] {
            let mut p = CfiDeadPredictor::new(CfiConfig {
                log2_entries: 8,
                tag_bits: 8,
                counter_bits: bits,
                threshold,
            });
            // Threshold equal to the counter maximum: reachable by
            // saturation, so the gate must still open.
            for _ in 0..200 {
                p.train(&input(42, 0b1, 1), true);
            }
            assert!(p.predict(&input(42, 0b1, 1)), "counter_bits {bits}");
        }
    }

    #[test]
    #[should_panic(expected = "counter bits")]
    fn zero_counter_bits_panics() {
        let _ = CfiDeadPredictor::new(CfiConfig {
            log2_entries: 8,
            tag_bits: 8,
            counter_bits: 0,
            threshold: 0,
        });
    }

    #[test]
    #[should_panic(expected = "counter bits")]
    fn oversized_counter_bits_panics() {
        // Regression: `1u16 << counter_bits` itself overflows for
        // counter_bits >= 16, so the old constructor panicked with a shift
        // overflow instead of a validation message.
        let _ = CfiDeadPredictor::new(CfiConfig {
            log2_entries: 8,
            tag_bits: 8,
            counter_bits: 16,
            threshold: 0,
        });
    }

    #[test]
    #[should_panic(expected = "exceeds counter max")]
    fn threshold_above_counter_max_panics() {
        let _ = CfiDeadPredictor::new(CfiConfig {
            log2_entries: 8,
            tag_bits: 8,
            counter_bits: 4,
            threshold: 16,
        });
    }
}
