//! Offline evaluation of dead predictors over a trace.

use std::fmt;

use dide_analysis::DeadnessAnalysis;
use dide_emu::Trace;

use super::{DeadPredictor, PredictInput};
use crate::branch::BranchPredictor;
use crate::future::{signatures_predicted, BranchStats, CfSignature};

/// Coverage/accuracy report for one dead-predictor run — the paper's
/// predictor metrics (93% accuracy at 91% coverage).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeadPredictionReport {
    /// Eligible (value-producing) dynamic instructions considered.
    pub eligible: u64,
    /// Of those, actually dead per the oracle.
    pub actual_dead: u64,
    /// Predicted dead.
    pub predicted_dead: u64,
    /// Predicted dead and actually dead.
    pub true_positives: u64,
    /// Predicted dead but actually useful (the costly mispredictions).
    pub false_positives: u64,
    /// Actually dead but predicted useful (missed opportunity).
    pub false_negatives: u64,
    /// Predicted useful and actually useful.
    pub true_negatives: u64,
    /// Branch-direction statistics of the run that produced the CFI
    /// signatures.
    pub branch: BranchStats,
}

impl DeadPredictionReport {
    /// Coverage: the fraction of actually-dead instructions identified
    /// (recall). The paper reports >91%.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.actual_dead == 0 {
            0.0
        } else {
            self.true_positives as f64 / self.actual_dead as f64
        }
    }

    /// Accuracy: the fraction of dead predictions that were correct
    /// (precision). The paper reports 93%.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.predicted_dead == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.predicted_dead as f64
        }
    }

    /// Fraction of all eligible instructions mispredicted in either
    /// direction.
    #[must_use]
    pub fn misprediction_rate(&self) -> f64 {
        if self.eligible == 0 {
            0.0
        } else {
            (self.false_positives + self.false_negatives) as f64 / self.eligible as f64
        }
    }
}

impl dide_obs::Observe for DeadPredictionReport {
    fn observe(&self, scope: &mut dide_obs::Scope<'_>) {
        scope.counter("eligible", self.eligible);
        scope.counter("actual_dead", self.actual_dead);
        scope.counter("predicted_dead", self.predicted_dead);
        scope.counter("true_positives", self.true_positives);
        scope.counter("false_positives", self.false_positives);
        scope.counter("false_negatives", self.false_negatives);
        scope.counter("true_negatives", self.true_negatives);
        scope.observe("branch", &self.branch);
    }
}

impl fmt::Display for DeadPredictionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "eligible {} | dead {} | predicted {} (tp {}, fp {}, fn {}, tn {})",
            self.eligible,
            self.actual_dead,
            self.predicted_dead,
            self.true_positives,
            self.false_positives,
            self.false_negatives,
            self.true_negatives
        )?;
        write!(
            f,
            "coverage {:.2}% | accuracy {:.2}% | branch accuracy {:.2}%",
            100.0 * self.coverage(),
            100.0 * self.accuracy(),
            100.0 * self.branch.accuracy()
        )
    }
}

/// Evaluates `predictor` over `trace` with CFI signatures built from
/// `branch_predictor`'s predictions with the given `lookahead`.
///
/// Each eligible dynamic instruction is predicted, scored against the
/// oracle, then used for training — the same predict-at-rename /
/// train-at-commit ordering the pipeline uses.
pub fn evaluate(
    trace: &Trace,
    analysis: &DeadnessAnalysis,
    predictor: &mut dyn DeadPredictor,
    branch_predictor: &mut dyn BranchPredictor,
    lookahead: u8,
) -> DeadPredictionReport {
    let (signatures, branch) = signatures_predicted(trace, branch_predictor, lookahead);
    let mut report = evaluate_with_signatures(trace, analysis, predictor, &signatures);
    report.branch = branch;
    report
}

/// Evaluates `predictor` with externally supplied signatures (e.g. oracle
/// signatures from [`crate::future::signatures_oracle`]).
///
/// # Panics
///
/// Panics if `signatures.len() != trace.len()`.
pub fn evaluate_with_signatures(
    trace: &Trace,
    analysis: &DeadnessAnalysis,
    predictor: &mut dyn DeadPredictor,
    signatures: &[CfSignature],
) -> DeadPredictionReport {
    assert_eq!(signatures.len(), trace.len(), "one signature per record required");
    let mut report = DeadPredictionReport::default();
    for r in trace {
        let verdict = analysis.verdict(r.seq);
        if !verdict.is_eligible() {
            continue;
        }
        report.eligible += 1;
        let was_dead = verdict.is_dead();
        report.actual_dead += u64::from(was_dead);

        let input = PredictInput {
            seq: r.seq,
            static_index: r.index,
            signature: signatures[r.seq as usize],
        };
        let predicted = predictor.predict(&input);
        report.predicted_dead += u64::from(predicted);
        match (predicted, was_dead) {
            (true, true) => report.true_positives += 1,
            (true, false) => report.false_positives += 1,
            (false, true) => report.false_negatives += 1,
            (false, false) => report.true_negatives += 1,
        }
        predictor.train(&input, was_dead);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::Gshare;
    use crate::dead::{
        BimodalDeadConfig, BimodalDeadPredictor, CfiConfig, CfiDeadPredictor, OracleDeadPredictor,
    };
    use crate::future::signatures_oracle;
    use dide_emu::Emulator;
    use dide_isa::{ProgramBuilder, Reg};

    /// A loop with a partially dead static: `t2 = x & mask` is consumed only
    /// on iterations where an inner condition takes the consuming path.
    fn partial_dead_workload() -> Trace {
        let mut b = ProgramBuilder::new("pd");
        b.li(Reg::T0, 0); // i
        b.li(Reg::T1, 2000); // n
        b.li(Reg::S0, 0); // acc
        let top = b.label();
        let skip = b.label();
        b.bind(top);
        b.andi(Reg::T2, Reg::T0, 0xff); // partially dead: used only when branch not taken
        b.andi(Reg::T3, Reg::T0, 3);
        b.bne(Reg::T3, Reg::ZERO, skip); // taken 3/4 of the time -> t2 dead
        b.add(Reg::S0, Reg::S0, Reg::T2); // consumes t2 on the fallthrough path
        b.bind(skip);
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, top);
        b.out(Reg::S0);
        b.halt();
        Emulator::new(&b.build().unwrap()).run().unwrap()
    }

    #[test]
    fn oracle_scores_perfectly() {
        let t = partial_dead_workload();
        let analysis = DeadnessAnalysis::analyze(&t);
        let mut oracle = OracleDeadPredictor::new(&analysis);
        let sigs = signatures_oracle(&t, 0);
        let r = evaluate_with_signatures(&t, &analysis, &mut oracle, &sigs);
        assert_eq!(r.false_positives, 0);
        assert_eq!(r.false_negatives, 0);
        assert!((r.coverage() - 1.0).abs() < 1e-12);
        assert!((r.accuracy() - 1.0).abs() < 1e-12);
        assert!(r.actual_dead > 0);
    }

    #[test]
    fn cfi_beats_bimodal_on_partially_dead_static() {
        let t = partial_dead_workload();
        let analysis = DeadnessAnalysis::analyze(&t);

        let mut bimodal = BimodalDeadPredictor::new(BimodalDeadConfig {
            log2_entries: 10,
            counter_bits: 4,
            threshold: 8,
        });
        let mut g1 = Gshare::new(10, 12);
        let bi = evaluate(&t, &analysis, &mut bimodal, &mut g1, 0);

        let mut cfi = CfiDeadPredictor::new(CfiConfig {
            log2_entries: 10,
            tag_bits: 8,
            counter_bits: 4,
            threshold: 8,
        });
        let mut g2 = Gshare::new(10, 12);
        let cf = evaluate(&t, &analysis, &mut cfi, &mut g2, 2);

        assert!(
            cf.coverage() > bi.coverage() + 0.2,
            "cfi coverage {:.3} vs bimodal {:.3}",
            cf.coverage(),
            bi.coverage()
        );
        assert!(cf.accuracy() > 0.9, "cfi accuracy {:.3}", cf.accuracy());
    }

    #[test]
    fn high_threshold_trades_coverage_for_accuracy() {
        let t = partial_dead_workload();
        let analysis = DeadnessAnalysis::analyze(&t);
        let run = |threshold: u8| {
            let mut p = CfiDeadPredictor::new(CfiConfig { threshold, ..CfiConfig::default() });
            let mut g = Gshare::new(10, 12);
            evaluate(&t, &analysis, &mut p, &mut g, 2)
        };
        let low = run(1);
        let high = run(15);
        assert!(low.coverage() >= high.coverage());
        assert!(high.accuracy() >= low.accuracy() - 1e-9);
    }

    #[test]
    fn report_display_and_rates() {
        let r = DeadPredictionReport {
            eligible: 100,
            actual_dead: 20,
            predicted_dead: 15,
            true_positives: 14,
            false_positives: 1,
            false_negatives: 6,
            true_negatives: 79,
            branch: BranchStats { branches: 10, mispredicts: 1 },
        };
        assert!((r.coverage() - 0.7).abs() < 1e-12);
        assert!((r.accuracy() - 14.0 / 15.0).abs() < 1e-12);
        assert!((r.misprediction_rate() - 0.07).abs() < 1e-12);
        let text = r.to_string();
        assert!(text.contains("coverage"));
        assert!(text.contains("accuracy"));
    }

    #[test]
    fn empty_report_degenerate_metrics() {
        let r = DeadPredictionReport::default();
        assert_eq!(r.coverage(), 0.0);
        assert_eq!(r.accuracy(), 1.0);
        assert_eq!(r.misprediction_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "one signature per record")]
    fn signature_length_mismatch_panics() {
        let t = partial_dead_workload();
        let analysis = DeadnessAnalysis::analyze(&t);
        let mut p = CfiDeadPredictor::new(CfiConfig::default());
        let _ = evaluate_with_signatures(&t, &analysis, &mut p, &[]);
    }
}
