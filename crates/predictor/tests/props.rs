//! Property-based tests for the predictors: signatures are well-formed for
//! any input, and the confidence gate really gates.

use dide_predictor::dead::{
    CfiConfig, CfiDeadPredictor, DeadPredictor, LastOutcomePredictor, PredictInput,
};
use dide_predictor::future::CfSignature;
use proptest::prelude::*;

fn arb_signature() -> impl Strategy<Value = CfSignature> {
    (any::<u16>(), 0u8..=16).prop_map(|(bits, len)| CfSignature::new(bits, len))
}

proptest! {
    #[test]
    fn signature_masks_invalid_bits(bits: u16, len in 0u8..=16) {
        let s = CfSignature::new(bits, len);
        prop_assert_eq!(s.len(), len);
        if len < 16 {
            prop_assert_eq!(s.bits() >> len, 0, "no bits beyond len");
        }
    }

    #[test]
    fn signature_hash_is_deterministic(sig in arb_signature(), pc: u32) {
        prop_assert_eq!(sig.hash_with(pc), sig.hash_with(pc));
    }

    #[test]
    fn cfi_never_predicts_below_threshold(
        pc: u32,
        sig in arb_signature(),
        trainings in 0usize..12,
    ) {
        let config = CfiConfig { threshold: 12, ..CfiConfig::default() };
        let mut p = CfiDeadPredictor::new(config);
        let input = PredictInput { seq: 0, static_index: pc, signature: sig };
        for _ in 0..trainings {
            p.train(&input, true);
        }
        // Fewer than `threshold` confirmations: the gate must stay closed.
        prop_assert!(!p.predict(&input));
    }

    #[test]
    fn cfi_one_useful_outcome_closes_the_gate(pc: u32, sig in arb_signature()) {
        let config = CfiConfig { threshold: 4, ..CfiConfig::default() };
        let mut p = CfiDeadPredictor::new(config);
        let input = PredictInput { seq: 0, static_index: pc, signature: sig };
        for _ in 0..20 {
            p.train(&input, true);
        }
        prop_assert!(p.predict(&input));
        p.train(&input, false);
        prop_assert!(!p.predict(&input));
    }

    #[test]
    fn reset_forgets_everything(pc: u32, sig in arb_signature()) {
        let mut p = CfiDeadPredictor::new(CfiConfig { threshold: 1, ..CfiConfig::default() });
        let input = PredictInput { seq: 0, static_index: pc, signature: sig };
        for _ in 0..20 {
            p.train(&input, true);
        }
        p.reset();
        prop_assert!(!p.predict(&input));
    }

    #[test]
    fn last_outcome_tracks_exactly(outcomes in proptest::collection::vec(any::<bool>(), 1..50)) {
        let mut p = LastOutcomePredictor::new(4);
        let input = PredictInput { seq: 0, static_index: 3, signature: CfSignature::empty() };
        let mut last = false;
        for &o in &outcomes {
            prop_assert_eq!(p.predict(&input), last);
            p.train(&input, o);
            last = o;
        }
    }
}
