//! Property-based tests for the cache: hit/miss behaviour must match a
//! straightforward reference model of a set-associative true-LRU cache.

use dide_mem::{Cache, CacheConfig};
use proptest::prelude::*;

/// Reference model: per set, a most-recently-used-last vector of tags.
struct RefCache {
    sets: Vec<Vec<u64>>,
    ways: usize,
    line_bits: u32,
    set_mask: u64,
}

impl RefCache {
    fn new(config: CacheConfig) -> RefCache {
        let sets = config.sets();
        RefCache {
            sets: vec![Vec::new(); sets],
            ways: config.ways,
            line_bits: config.line_bytes.trailing_zeros(),
            set_mask: (sets - 1) as u64,
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_bits;
        let set = (line & self.set_mask) as usize;
        let tag = line >> (self.set_mask.count_ones());
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|&t| t == tag) {
            let t = entries.remove(pos);
            entries.push(t);
            true
        } else {
            if entries.len() == self.ways {
                entries.remove(0); // evict LRU
            }
            entries.push(tag);
            false
        }
    }
}

proptest! {
    #[test]
    fn matches_reference_lru(
        addrs in proptest::collection::vec((0u64..0x4000, any::<bool>()), 1..400),
    ) {
        let config = CacheConfig { size_bytes: 512, line_bytes: 32, ways: 2, hit_latency: 1 };
        let mut cache = Cache::new(config);
        let mut reference = RefCache::new(config);
        for &(addr, write) in &addrs {
            let got = cache.access(addr, write);
            let expected = reference.access(addr);
            prop_assert_eq!(got, expected, "divergence at address {:#x}", addr);
        }
    }

    #[test]
    fn stats_are_consistent(
        addrs in proptest::collection::vec((0u64..0x2000, any::<bool>()), 1..200),
    ) {
        let config = CacheConfig { size_bytes: 256, line_bytes: 16, ways: 4, hit_latency: 1 };
        let mut cache = Cache::new(config);
        for &(addr, write) in &addrs {
            cache.access(addr, write);
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert_eq!(s.reads + s.writes, s.accesses);
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        prop_assert!(s.writebacks <= s.misses, "writebacks only happen on refills");
    }

    #[test]
    fn probe_agrees_with_next_access(
        addrs in proptest::collection::vec(0u64..0x1000, 1..100),
        probe_addr in 0u64..0x1000,
    ) {
        let config = CacheConfig { size_bytes: 128, line_bytes: 16, ways: 2, hit_latency: 1 };
        let mut cache = Cache::new(config);
        for &addr in &addrs {
            cache.access(addr, false);
        }
        let resident = cache.probe(probe_addr);
        let hit = cache.access(probe_addr, false);
        prop_assert_eq!(resident, hit);
    }
}
