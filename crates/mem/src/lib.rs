//! Set-associative cache hierarchy model for the DIDE timing simulator.
//!
//! Models the paper's memory system: split L1 instruction/data caches backed
//! by a unified L2 and a flat-latency main memory. Caches are
//! write-allocate / write-back with true-LRU replacement, and every level
//! counts accesses, hits, misses and writebacks — the D-cache access count
//! is one of the resource-utilization metrics the elimination mechanism
//! reduces (experiment E8).
//!
//! # Example
//!
//! ```
//! use dide_mem::{CacheConfig, HierarchyConfig, MemoryHierarchy};
//!
//! let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
//! let cold = mem.access_data(0x1000_0000, false);
//! let warm = mem.access_data(0x1000_0000, false);
//! assert!(cold > warm, "first touch misses all the way to memory");
//! assert_eq!(warm, mem.config().l1d.hit_latency);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod hierarchy;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{HierarchyConfig, HierarchyStats, MemoryHierarchy};
