//! A single set-associative cache level.

use std::fmt;

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Latency of a hit, in cycles.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`Cache::new`]).
    #[must_use]
    pub fn sets(&self) -> usize {
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(self.ways > 0, "associativity must be at least 1");
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines > 0 && lines.is_multiple_of(self.ways),
            "capacity {} not divisible into {}-way sets of {}-byte lines",
            self.size_bytes,
            self.ways,
            self.line_bytes
        );
        let sets = lines / self.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two, got {sets}");
        sets
    }
}

/// Access counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses (reads + writes).
    pub accesses: u64,
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

impl dide_obs::Observe for CacheStats {
    fn observe(&self, scope: &mut dide_obs::Scope<'_>) {
        scope.counter("accesses", self.accesses);
        scope.counter("reads", self.reads);
        scope.counter("writes", self.writes);
        scope.counter("hits", self.hits);
        scope.counter("misses", self.misses);
        scope.counter("writebacks", self.writebacks);
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses ({} rd, {} wr), {} misses ({:.2}%), {} writebacks",
            self.accesses,
            self.reads,
            self.writes,
            self.misses,
            100.0 * self.miss_rate(),
            self.writebacks
        )
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    /// Larger = more recently used.
    lru: u64,
}

/// One write-allocate, write-back, true-LRU set-associative cache.
///
/// # Example
///
/// ```
/// use dide_mem::{Cache, CacheConfig};
///
/// let mut cache = Cache::new(CacheConfig {
///     size_bytes: 1024,
///     line_bytes: 64,
///     ways: 2,
///     hit_latency: 1,
/// });
/// assert!(!cache.access(0x1000, false), "cold miss");
/// assert!(cache.access(0x1000, false), "now resident");
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: usize,
    lines: Vec<Option<Line>>,
    stats: CacheStats,
    tick: u64,
    offset_bits: u32,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the line size is not a power of two, the associativity is
    /// zero, or the capacity does not divide evenly into power-of-two sets.
    #[must_use]
    pub fn new(config: CacheConfig) -> Cache {
        let sets = config.sets();
        Cache {
            config,
            sets,
            lines: vec![None; sets * config.ways],
            stats: CacheStats::default(),
            tick: 0,
            offset_bits: config.line_bytes.trailing_zeros(),
        }
    }

    /// The cache's configuration.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Access counters so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr >> self.offset_bits;
        ((line_addr as usize) & (self.sets - 1), line_addr >> self.sets.trailing_zeros())
    }

    /// Performs one access. Returns `true` on a hit. On a miss the line is
    /// (re)filled; a dirty eviction increments the writeback counter and the
    /// caller is expected to charge the next level.
    pub fn access(&mut self, addr: u64, write: bool) -> bool {
        self.tick += 1;
        self.stats.accesses += 1;
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.config.ways;
        let ways = &mut self.lines[base..base + self.config.ways];

        for l in ways.iter_mut().flatten() {
            if l.tag == tag {
                l.lru = self.tick;
                l.dirty |= write;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        // Fill: pick an invalid way, else the LRU way.
        let victim = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.map_or(0, |l| l.lru))
            .map(|(i, _)| i)
            .expect("ways > 0");
        if let Some(old) = ways[victim] {
            if old.dirty {
                self.stats.writebacks += 1;
            }
        }
        ways[victim] = Some(Line { tag, dirty: write, lru: self.tick });
        false
    }

    /// Whether `addr`'s line is currently resident (no state change).
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.config.ways;
        self.lines[base..base + self.config.ways].iter().any(|l| l.is_some_and(|l| l.tag == tag))
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        self.lines.fill(None);
        self.stats = CacheStats::default();
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 16-byte lines = 64 bytes.
        Cache::new(CacheConfig { size_bytes: 64, line_bytes: 16, ways: 2, hit_latency: 1 })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x100, false));
        assert!(c.access(0x100, false));
        assert!(c.access(0x10f, false), "same line");
        assert!(!c.access(0x110, false), "next line");
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny();
        // Three distinct lines mapping to set 0 (line addr even): line size
        // 16, 2 sets -> set = (addr >> 4) & 1.
        c.access(0x000, false); // set 0
        c.access(0x020, false); // set 0
        c.access(0x000, false); // touch first
        c.access(0x040, false); // set 0: evicts 0x020
        assert!(c.probe(0x000));
        assert!(!c.probe(0x020));
        assert!(c.probe(0x040));
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = tiny();
        c.access(0x000, true); // dirty
        c.access(0x020, false);
        c.access(0x040, false); // evicts dirty 0x000
        c.access(0x060, false); // evicts clean 0x020
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x000, true); // hit, now dirty
        c.access(0x020, false);
        c.access(0x040, false); // evict 0x000 (LRU) -> writeback
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn stats_accounting() {
        let mut c = tiny();
        c.access(0x0, false);
        c.access(0x0, true);
        let s = c.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert!((s.miss_rate() - 0.5).abs() < 1e-12);
        assert!(s.to_string().contains("accesses"));
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0x0, true);
        c.reset();
        assert!(!c.probe(0x0));
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn empty_miss_rate_zero() {
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn four_way_eviction_follows_exact_lru_order() {
        // 1 set x 4 ways: victims must come out in recency order, not
        // insertion order.
        let mut c =
            Cache::new(CacheConfig { size_bytes: 64, line_bytes: 16, ways: 4, hit_latency: 1 });
        for addr in [0x00u64, 0x10, 0x20, 0x30] {
            c.access(addr, false);
        }
        // Recency now 0x00 < 0x10 < 0x20 < 0x30. Touch 0x00 and 0x20 so
        // the LRU order becomes 0x10 < 0x30 < 0x00 < 0x20.
        c.access(0x00, false);
        c.access(0x20, false);
        c.access(0x40, false); // evicts 0x10
        assert!(!c.probe(0x10));
        assert!(c.probe(0x30) && c.probe(0x00) && c.probe(0x20));
        c.access(0x50, false); // evicts 0x30
        assert!(!c.probe(0x30));
        c.access(0x60, false); // evicts 0x00
        assert!(!c.probe(0x00));
        assert!(c.probe(0x20), "most recently used line survives three evictions");
    }

    #[test]
    fn probe_changes_neither_lru_nor_stats() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x020, false);
        let before = c.stats();
        // If probing updated recency, these probes of 0x000 would protect
        // it from the next eviction.
        for _ in 0..8 {
            assert!(c.probe(0x000));
        }
        assert_eq!(c.stats(), before, "probe must not count as an access");
        c.access(0x020, false);
        c.access(0x040, false); // evicts the true LRU line, 0x000
        assert!(!c.probe(0x000));
        assert!(c.probe(0x020));
    }

    #[test]
    fn counters_are_conserved_over_a_random_workload() {
        let mut c = tiny();
        // Deterministic pseudo-random accesses (LCG) over a footprint large
        // enough to force plenty of misses and writebacks.
        let mut x = 0x1234_5678_u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
            c.access((x >> 16) & 0x3ff, x & 1 == 1);
        }
        let s = c.stats();
        assert_eq!(s.accesses, 10_000);
        assert_eq!(s.hits + s.misses, s.accesses);
        assert_eq!(s.reads + s.writes, s.accesses);
        assert!(s.writebacks <= s.misses, "a writeback needs an eviction, which needs a miss");
        assert!(s.misses > 0 && s.writebacks > 0, "workload exercises both paths");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = Cache::new(CacheConfig { size_bytes: 64, line_bytes: 12, ways: 2, hit_latency: 1 });
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_capacity_panics() {
        let _ = Cache::new(CacheConfig { size_bytes: 48, line_bytes: 16, ways: 2, hit_latency: 1 });
    }
}
