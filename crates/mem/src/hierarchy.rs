//! The full L1I / L1D / L2 / memory hierarchy.

use std::fmt;

use crate::cache::{Cache, CacheConfig, CacheStats};

/// Configuration of the whole hierarchy (defaults follow DESIGN.md §4, a
/// 2002-era part).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Flat main-memory latency in cycles.
    pub memory_latency: u32,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1i: CacheConfig { size_bytes: 16 * 1024, line_bytes: 64, ways: 2, hit_latency: 1 },
            l1d: CacheConfig { size_bytes: 16 * 1024, line_bytes: 64, ways: 4, hit_latency: 3 },
            l2: CacheConfig { size_bytes: 256 * 1024, line_bytes: 64, ways: 8, hit_latency: 12 },
            memory_latency: 80,
        }
    }
}

/// Counters for every level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 instruction cache counters.
    pub l1i: CacheStats,
    /// L1 data cache counters.
    pub l1d: CacheStats,
    /// Unified L2 counters.
    pub l2: CacheStats,
    /// Accesses that went all the way to memory.
    pub memory_accesses: u64,
}

impl dide_obs::Observe for HierarchyStats {
    fn observe(&self, scope: &mut dide_obs::Scope<'_>) {
        scope.observe("l1i", &self.l1i);
        scope.observe("l1d", &self.l1d);
        scope.observe("l2", &self.l2);
        scope.counter("memory_accesses", self.memory_accesses);
    }
}

impl fmt::Display for HierarchyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "L1I: {}", self.l1i)?;
        writeln!(f, "L1D: {}", self.l1d)?;
        writeln!(f, "L2 : {}", self.l2)?;
        write!(f, "MEM: {} accesses", self.memory_accesses)
    }
}

/// Split-L1, unified-L2 cache hierarchy with flat-latency memory behind it.
///
/// Accesses are blocking and return a total latency in cycles; the pipeline
/// overlaps them through its load/store queue occupancy rather than through
/// MSHR modeling (see DESIGN.md substitutions).
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    memory_accesses: u64,
}

impl MemoryHierarchy {
    /// Creates an empty hierarchy.
    #[must_use]
    pub fn new(config: HierarchyConfig) -> MemoryHierarchy {
        MemoryHierarchy {
            config,
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            memory_accesses: 0,
        }
    }

    /// The hierarchy's configuration.
    #[must_use]
    pub fn config(&self) -> HierarchyConfig {
        self.config
    }

    /// Fetches an instruction line; returns total latency in cycles.
    pub fn access_inst(&mut self, addr: u64) -> u32 {
        if self.l1i.access(addr, false) {
            return self.config.l1i.hit_latency;
        }
        self.config.l1i.hit_latency + self.access_l2(addr, false)
    }

    /// Performs a data access; returns total latency in cycles.
    pub fn access_data(&mut self, addr: u64, write: bool) -> u32 {
        if self.l1d.access(addr, write) {
            return self.config.l1d.hit_latency;
        }
        self.config.l1d.hit_latency + self.access_l2(addr, write)
    }

    fn access_l2(&mut self, addr: u64, write: bool) -> u32 {
        if self.l2.access(addr, write) {
            return self.config.l2.hit_latency;
        }
        self.memory_accesses += 1;
        self.config.l2.hit_latency + self.config.memory_latency
    }

    /// Counters for every level.
    #[must_use]
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            memory_accesses: self.memory_accesses,
        }
    }

    /// Clears contents and counters of every level.
    pub fn reset(&mut self) {
        self.l1i.reset();
        self.l1d.reset();
        self.l2.reset();
        self.memory_accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stack_on_cold_access() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        let cfg = m.config();
        let cold = m.access_data(0x2000, false);
        assert_eq!(cold, cfg.l1d.hit_latency + cfg.l2.hit_latency + cfg.memory_latency);
        let warm = m.access_data(0x2000, false);
        assert_eq!(warm, cfg.l1d.hit_latency);
        assert_eq!(m.stats().memory_accesses, 1);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        // Access enough distinct lines to spill L1D but stay within L2.
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        let cfg = m.config();
        let lines = cfg.l1d.size_bytes / cfg.l1d.line_bytes * 2;
        for i in 0..lines as u64 {
            m.access_data(0x10_0000 + i * cfg.l1d.line_bytes as u64, false);
        }
        // The first line has been evicted from L1D but is still in L2.
        let lat = m.access_data(0x10_0000, false);
        assert_eq!(lat, cfg.l1d.hit_latency + cfg.l2.hit_latency);
    }

    #[test]
    fn inst_and_data_paths_are_split() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        m.access_inst(0x40_0000);
        m.access_data(0x40_0000, false); // same address, different L1
        let s = m.stats();
        assert_eq!(s.l1i.accesses, 1);
        assert_eq!(s.l1d.accesses, 1);
        assert_eq!(s.l1i.misses, 1);
        assert_eq!(s.l1d.misses, 1);
        // Second L2 access hits (unified).
        assert_eq!(s.l2.hits, 1);
        assert_eq!(s.l2.misses, 1);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        m.access_data(0x2000, true);
        m.reset();
        assert_eq!(m.stats(), HierarchyStats::default());
        let cold = m.access_data(0x2000, false);
        assert!(cold > m.config().l1d.hit_latency);
    }

    #[test]
    fn l2_traffic_is_exactly_the_l1_misses() {
        // Inclusion law of the blocking hierarchy: every L1I or L1D miss
        // makes exactly one L2 access, and every L2 miss goes to memory.
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        let mut x = 0xdead_beef_u64;
        for i in 0..5_000u64 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
            m.access_inst((x >> 8) & 0xf_ffff);
            m.access_data((x >> 24) & 0xf_ffff, i % 3 == 0);
        }
        let s = m.stats();
        assert_eq!(s.l2.accesses, s.l1i.misses + s.l1d.misses);
        assert_eq!(s.memory_accesses, s.l2.misses);
        for level in [s.l1i, s.l1d, s.l2] {
            assert_eq!(level.hits + level.misses, level.accesses);
            assert_eq!(level.reads + level.writes, level.accesses);
        }
        assert!(s.l2.misses > 0, "footprint exceeds L2");
    }

    #[test]
    fn dirty_l1_evictions_count_writebacks() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        let cfg = m.config();
        // Dirty one line, then stream enough clean lines through its set's
        // cache to evict it.
        m.access_data(0x0, true);
        let lines = (cfg.l1d.size_bytes / cfg.l1d.line_bytes) as u64;
        for i in 1..=lines {
            m.access_data(i * cfg.l1d.line_bytes as u64, false);
        }
        let s = m.stats();
        assert_eq!(s.l1d.writebacks, 1);
        assert_eq!(s.l1d.writes, 1);
        assert_eq!(s.l1d.reads, lines);
    }

    #[test]
    fn stats_display() {
        let m = MemoryHierarchy::new(HierarchyConfig::default());
        let text = m.stats().to_string();
        assert!(text.contains("L1D"));
        assert!(text.contains("MEM"));
    }
}
