//! The `dide experiments` runner: schedules the E1–E18 experiment modules
//! across a worker pool, reuses cached fixtures, and reports per-phase
//! wall-clock timing.
//!
//! The runner is a library function (rather than living in `bin/dide.rs`)
//! so integration tests can assert its central invariant: the rendered
//! tables are **byte-identical for any `--jobs` value**. Experiments are
//! rendered to per-experiment strings by the pool and concatenated in
//! experiment-ID order; timing goes to a separate report, never into the
//! tables.

use crate::experiments as ex;
use crate::harness::{self, Phase};
use crate::statsrun::DEFAULT_EPOCH_LEN;
use crate::{OptLevel, Table, Workbench};

/// Options accepted by [`run_experiments`] (the `dide experiments` CLI).
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    /// Workload scale factor.
    pub scale: u32,
    /// Lower-cased experiment ids to run (`None` = all).
    pub only: Option<Vec<String>>,
    /// Worker threads for experiment execution (`0` = available
    /// parallelism). `1` preserves strictly serial execution.
    pub jobs: usize,
    /// Whether the caller wants the per-span timing detail view.
    pub timings: bool,
    /// Run the streamed-pipeline table ([`STREAM_ENROLLMENTS`]) instead of
    /// the E1–E18 suite.
    pub stream: bool,
    /// Epoch length for `stream` runs.
    pub epoch: usize,
}

impl Default for ExperimentOptions {
    fn default() -> ExperimentOptions {
        ExperimentOptions {
            scale: 1,
            only: None,
            jobs: 0,
            timings: false,
            stream: false,
            epoch: DEFAULT_EPOCH_LEN,
        }
    }
}

impl ExperimentOptions {
    fn wants(&self, id: &str) -> bool {
        self.only.as_ref().is_none_or(|only| only.iter().any(|x| x == id))
    }

    fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            harness::default_jobs()
        } else {
            self.jobs
        }
    }
}

/// The rendered result of one [`run_experiments`] call.
#[derive(Debug, Clone)]
pub struct ExperimentRun {
    /// Every requested experiment's table in E1..E18 order, each followed
    /// by a blank line — byte-identical for any job count.
    pub tables: String,
    /// The same tables keyed by experiment id (`e1`..`e18`), for golden
    /// snapshot comparison.
    pub per_experiment: Vec<(String, String)>,
    /// Per-phase timing summary (wall-clock; varies run to run).
    pub timing_summary: String,
    /// Per-span timing detail (the `--timings` view).
    pub timing_detail: String,
}

/// Experiment ids that read the O2 workbench (everything but the static
/// configuration table E10; E5 additionally reads O0).
const NEEDS_O2: [&str; 17] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e11", "e12", "e13", "e14", "e15", "e16",
    "e17", "e18",
];

/// The streamed-experiments enrollment: `(benchmark, scale)` pairs run
/// through the bounded-memory streaming pipeline by
/// `dide experiments --stream`. The list deliberately includes one
/// scale-100+ workload (`expr@100`) so the streamed table exercises a
/// trace far larger than anything the materializing suite builds.
pub const STREAM_ENROLLMENTS: [(&str, u32); 3] = [("expr", 100), ("route", 16), ("matmul", 64)];

/// Runs the streamed-pipeline table: every [`STREAM_ENROLLMENTS`] workload
/// with elimination off and with the CFI predictor, through the windowed
/// analysis and streaming core. Numbers differ from the materializing
/// E1–E18 tables by design (windowed analysis is conservative), so they
/// get their own table instead of replacing golden-pinned ones.
fn run_streamed_experiments(options: &ExperimentOptions) -> ExperimentRun {
    use crate::statsrun::{run_stats, RunSelection, StatsOptions};

    let jobs = options.effective_jobs();
    eprintln!(
        "running {} streamed workloads (epoch {}, {jobs} jobs)...",
        STREAM_ENROLLMENTS.len() * 2,
        options.epoch
    );
    let runs: Vec<(&str, u32, bool)> = STREAM_ENROLLMENTS
        .iter()
        .flat_map(|&(name, scale)| [(name, scale, false), (name, scale, true)])
        .collect();
    let rows = harness::map_ordered(jobs, &runs, |&(name, scale, eliminate)| {
        let label = format!("stream:{name}@s{scale}/{}", if eliminate { "cfi" } else { "off" });
        let select = RunSelection {
            benchmark: name.to_string(),
            scale,
            eliminate,
            stream: true,
            epoch: options.epoch,
            ..RunSelection::default()
        };
        let run = harness::time(&label, Phase::Simulate, || {
            run_stats(&StatsOptions { select, format: None }).expect("enrollment names are valid")
        });
        assert!(run.violations.is_empty(), "streamed {label}: {:?}", run.violations);
        let c = &run.counters;
        [
            name.to_string(),
            scale.to_string(),
            if eliminate { "cfi" } else { "off" }.to_string(),
            c.expect("pipeline.committed").to_string(),
            c.expect("pipeline.cycles").to_string(),
            c.expect("stream.epochs").to_string(),
            c.expect("stream.escaped").to_string(),
            c.expect("stream.mem_peak_bytes").to_string(),
        ]
    });

    let mut table = Table::new([
        "benchmark",
        "scale",
        "elim",
        "committed",
        "cycles",
        "epochs",
        "escaped",
        "peak bytes",
    ]);
    for row in rows {
        table.row(row);
    }
    let tables =
        format!("S1: streamed pipeline (windowed analysis, epoch {})\n{table}\n\n", options.epoch);
    let records = harness::timing_records();
    ExperimentRun {
        per_experiment: vec![("s1".to_string(), tables.trim_end().to_string())],
        tables,
        timing_summary: harness::timing_summary(&records),
        timing_detail: harness::timing_detail(&records),
    }
}

/// Runs the requested experiments and renders their tables.
///
/// Independent experiments execute across a worker pool of
/// `options.jobs` threads, and the heavy pipeline experiments additionally
/// fan their per-benchmark inner loops out on the same job budget. With
/// `stream` set, the streamed-pipeline table replaces the E1–E18 suite.
/// Progress messages go to stderr; the returned tables contain no timing
/// data.
///
/// # Panics
///
/// Panics if a workload fails to build or trace (a workload-generator bug).
#[must_use]
pub fn run_experiments(options: &ExperimentOptions) -> ExperimentRun {
    if options.stream {
        return run_streamed_experiments(options);
    }
    let jobs = options.effective_jobs();
    let scale = options.scale;

    // Build only the fixture sets the selection actually reads.
    let o2_store = NEEDS_O2.iter().any(|id| options.wants(id)).then(|| {
        eprintln!("building the O2 suite at scale {scale} ({jobs} jobs)...");
        Workbench::full(OptLevel::O2, scale)
    });
    let o0_store = options.wants("e5").then(|| {
        eprintln!("building the O0 suite at scale {scale} ({jobs} jobs)...");
        Workbench::full(OptLevel::O0, scale)
    });
    let o2 = || o2_store.as_ref().expect("O2 suite built for this selection");
    let o0 = || o0_store.as_ref().expect("O0 suite built for this selection");

    type Job<'wb> = (&'static str, Box<dyn Fn() -> String + Send + Sync + 'wb>);
    let mut schedule: Vec<Job> = Vec::new();
    schedule.push(("e1", Box::new(|| ex::e01_dead_fraction::DeadFraction::run(o2()).to_string())));
    schedule
        .push(("e2", Box::new(|| ex::e02_dead_breakdown::DeadBreakdown::run(o2()).to_string())));
    schedule.push((
        "e3",
        Box::new(|| ex::e03_static_behavior::StaticBehaviorCensus::run(o2()).to_string()),
    ));
    schedule.push(("e4", Box::new(|| ex::e04_locality::Locality::run(o2()).to_string())));
    schedule.push((
        "e5",
        Box::new(|| ex::e05_compiler_effect::CompilerEffect::run(o0(), o2()).to_string()),
    ));
    schedule.push((
        "e6",
        Box::new(|| ex::e06_predictor_sizing::PredictorSizing::run(o2()).to_string()),
    ));
    schedule.push(("e7", Box::new(|| ex::e07_cfi_value::CfiValue::run(o2()).to_string())));
    schedule.push((
        "e8",
        Box::new(move || {
            ex::e08_resource_savings::ResourceSavingsReport::run_jobs(o2(), jobs).to_string()
        }),
    ));
    schedule
        .push(("e9", Box::new(move || ex::e09_speedup::Speedup::run_jobs(o2(), jobs).to_string())));
    schedule.push((
        "e10",
        Box::new(|| ex::e10_machine_config::MachineConfigTable::collect().to_string()),
    ));
    schedule.push((
        "e11",
        Box::new(move || {
            ex::e11_confidence_sweep::ConfidenceSweep::run_jobs(o2(), jobs).to_string()
        }),
    ));
    schedule.push((
        "e12",
        Box::new(move || {
            ex::e12_elimination_ablation::EliminationAblation::run_jobs(o2(), jobs).to_string()
        }),
    ));
    schedule.push((
        "e13",
        Box::new(move || ex::e13_jump_aware::JumpAware::run_jobs(o2(), jobs).to_string()),
    ));
    schedule.push((
        "e14",
        Box::new(move || ex::e14_oracle_limit::OracleLimit::run_jobs(o2(), jobs).to_string()),
    ));
    schedule.push((
        "e15",
        Box::new(move || ex::e15_penalty_sweep::PenaltySweep::run_jobs(o2(), jobs).to_string()),
    ));
    schedule.push((
        "e16",
        Box::new(move || {
            ex::e16_dead_lifetimes::DeadLifetimeReport::run_jobs(o2(), jobs).to_string()
        }),
    ));
    schedule.push((
        "e17",
        Box::new(move || ex::e17_register_sweep::RegisterSweep::run_jobs(o2(), jobs).to_string()),
    ));
    schedule.push((
        "e18",
        Box::new(move || {
            ex::e18_cluster_steering::ClusterSteering::run_jobs(o2(), jobs).to_string()
        }),
    ));
    schedule.retain(|(id, _)| options.wants(id));

    let rendered = harness::map_ordered(jobs, &schedule, |(id, job)| {
        (id.to_string(), harness::time(id, Phase::Simulate, job))
    });

    let mut tables = String::new();
    for (_, table) in &rendered {
        tables.push_str(table);
        tables.push_str("\n\n");
    }

    let records = harness::timing_records();
    ExperimentRun {
        tables,
        per_experiment: rendered,
        timing_summary: harness::timing_summary(&records),
        timing_detail: harness::timing_detail(&records),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subset_options(jobs: usize) -> ExperimentOptions {
        ExperimentOptions {
            only: Some(vec!["e1".into(), "e10".into()]),
            jobs,
            ..ExperimentOptions::default()
        }
    }

    #[test]
    fn only_filter_selects_tables_in_id_order() {
        let run = run_experiments(&subset_options(1));
        let e1 = run.tables.find("E1:").expect("E1 present");
        let e10 = run.tables.find("E10:").expect("E10 present");
        assert!(e1 < e10);
        assert!(!run.tables.contains("E9:"));
    }

    #[test]
    fn timing_reports_cover_the_run() {
        let run = run_experiments(&subset_options(2));
        assert!(run.timing_summary.contains("simulate"));
        assert!(run.timing_detail.contains("e1"));
    }

    #[test]
    fn job_count_does_not_change_tables() {
        let serial = run_experiments(&subset_options(1));
        let parallel = run_experiments(&subset_options(4));
        assert_eq!(serial.tables, parallel.tables);
    }

    #[test]
    fn streamed_table_is_deterministic_across_jobs() {
        // A small epoch keeps this test fast while still exercising
        // multi-epoch streaming on every enrollment.
        let options = |jobs| ExperimentOptions {
            jobs,
            stream: true,
            epoch: 8192,
            ..ExperimentOptions::default()
        };
        let serial = run_experiments(&options(1));
        assert!(serial.tables.contains("S1: streamed pipeline"), "{}", serial.tables);
        assert!(serial.tables.contains("expr"), "{}", serial.tables);
        assert!(serial.tables.contains("100"), "scale-100 enrollment present");
        assert!(!serial.tables.contains("E1:"), "--stream replaces the E1-E17 suite");
        let parallel = run_experiments(&options(4));
        assert_eq!(serial.tables, parallel.tables);
    }
}
