//! **E7 — The value of future control-flow information.**
//!
//! The paper's central accuracy argument: distinguishing dead from useful
//! *instances of the same static instruction* requires knowing where
//! control goes next. This experiment compares
//!
//! * history-free baselines (last-outcome, PC-only bimodal),
//! * the CFI predictor across lookahead depths (0 = PC-only), and
//! * the CFI predictor with *oracle* branch outcomes (the upper bound set
//!   by branch-prediction quality).

use std::fmt;

use dide_predictor::branch::Gshare;
use dide_predictor::dead::{
    evaluate, evaluate_with_signatures, BimodalDeadConfig, BimodalDeadPredictor, CfiConfig,
    CfiDeadPredictor, DeadPredictor, LastOutcomePredictor,
};
use dide_predictor::future::signatures_oracle;

use crate::experiments::pct;
use crate::{Table, Workbench};

/// One predictor variant's pooled results.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Variant label.
    pub variant: String,
    /// Pooled coverage.
    pub coverage: f64,
    /// Pooled accuracy.
    pub accuracy: f64,
}

/// The E7 result set.
#[derive(Debug, Clone, PartialEq)]
pub struct CfiValue {
    /// One row per variant.
    pub rows: Vec<Row>,
}

/// Pools a closure-run evaluation over all cases.
fn pooled<F>(bench: &Workbench, mut run_case: F) -> (f64, f64)
where
    F: FnMut(&crate::BenchCase) -> dide_predictor::dead::DeadPredictionReport,
{
    let (mut tp, mut dead, mut predicted) = (0u64, 0u64, 0u64);
    for case in bench.cases() {
        let r = run_case(case);
        tp += r.true_positives;
        dead += r.actual_dead;
        predicted += r.predicted_dead;
    }
    let coverage = if dead == 0 { 0.0 } else { tp as f64 / dead as f64 };
    let accuracy = if predicted == 0 { 1.0 } else { tp as f64 / predicted as f64 };
    (coverage, accuracy)
}

impl CfiValue {
    /// Lookahead depths swept for the CFI predictor.
    pub const LOOKAHEADS: [u8; 5] = [0, 1, 2, 4, 8];

    /// Runs all variants over the workbench.
    #[must_use]
    pub fn run(bench: &Workbench) -> CfiValue {
        let mut rows = Vec::new();

        let (coverage, accuracy) = pooled(bench, |case| {
            let mut p = LastOutcomePredictor::new(11);
            let mut g = Gshare::new(10, 12);
            evaluate(&case.trace, &case.analysis, &mut p, &mut g, 0)
        });
        rows.push(Row { variant: "last-outcome".to_string(), coverage, accuracy });

        let (coverage, accuracy) = pooled(bench, |case| {
            let mut p = BimodalDeadPredictor::new(BimodalDeadConfig::default());
            let mut g = Gshare::new(10, 12);
            evaluate(&case.trace, &case.analysis, &mut p, &mut g, 0)
        });
        rows.push(Row { variant: "bimodal (PC only)".to_string(), coverage, accuracy });

        for lookahead in Self::LOOKAHEADS {
            let (coverage, accuracy) = pooled(bench, |case| {
                let mut p = CfiDeadPredictor::new(CfiConfig::default());
                p.reset();
                let mut g = Gshare::new(10, 12);
                evaluate(&case.trace, &case.analysis, &mut p, &mut g, lookahead)
            });
            rows.push(Row { variant: format!("cfi lookahead {lookahead}"), coverage, accuracy });
        }

        let (coverage, accuracy) = pooled(bench, |case| {
            let mut p = CfiDeadPredictor::new(CfiConfig::default());
            p.reset();
            let sigs = signatures_oracle(&case.trace, 4);
            evaluate_with_signatures(&case.trace, &case.analysis, &mut p, &sigs)
        });
        rows.push(Row {
            variant: "cfi lookahead 4 (oracle branches)".to_string(),
            coverage,
            accuracy,
        });

        CfiValue { rows }
    }

    /// Convenience accessor: the row for a given variant label.
    #[must_use]
    pub fn variant(&self, label: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.variant == label)
    }
}

impl fmt::Display for CfiValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E7: value of future control-flow information (paper: CFI is what enables high accuracy+coverage)"
        )?;
        let mut t = Table::new(["variant", "coverage", "accuracy"]);
        for r in &self.rows {
            t.row([r.variant.clone(), pct(r.coverage), pct(r.accuracy)]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testbench::small_o2;

    #[test]
    fn cfi_beats_pc_only_coverage() {
        let result = CfiValue::run(small_o2());
        let pc_only = result.variant("cfi lookahead 0").unwrap();
        let cfi4 = result.variant("cfi lookahead 4").unwrap();
        assert!(
            cfi4.coverage > pc_only.coverage + 0.2,
            "cfi4 {} vs pc-only {}",
            cfi4.coverage,
            pc_only.coverage
        );
    }

    #[test]
    fn oracle_branches_bound_predicted_branches() {
        let result = CfiValue::run(small_o2());
        let predicted = result.variant("cfi lookahead 4").unwrap();
        let oracle = result.variant("cfi lookahead 4 (oracle branches)").unwrap();
        assert!(oracle.coverage >= predicted.coverage - 0.02);
    }

    #[test]
    fn last_outcome_has_poor_accuracy_on_partial_statics() {
        let result = CfiValue::run(small_o2());
        let last = result.variant("last-outcome").unwrap();
        let cfi4 = result.variant("cfi lookahead 4").unwrap();
        assert!(cfi4.accuracy > last.accuracy, "{} vs {}", cfi4.accuracy, last.accuracy);
    }
}
