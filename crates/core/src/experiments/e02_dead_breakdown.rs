//! **E2 — Breakdown of dead instructions by kind.**
//!
//! Splits each benchmark's dead instructions into the paper's categories:
//! register results overwritten before any read, register results never
//! read, overwritten stores, never-loaded stores, and transitively dead
//! instructions (read only by dead readers).

use std::fmt;

use dide_analysis::DeadKind;

use crate::experiments::pct;
use crate::{Table, Workbench};

/// One benchmark's kind breakdown (fractions of its dead instructions).
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Total dead instructions.
    pub dead: u64,
    /// Fraction per kind, ordered as [`DeadKind::ALL`].
    pub kind_fractions: [f64; 5],
}

/// The E2 result set.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadBreakdown {
    /// Per-benchmark rows.
    pub rows: Vec<Row>,
}

impl DeadBreakdown {
    /// Measures every benchmark in the workbench.
    #[must_use]
    pub fn run(bench: &Workbench) -> DeadBreakdown {
        let rows = bench
            .cases()
            .iter()
            .map(|case| {
                let s = case.analysis.stats();
                let dead = s.dead_total.max(1);
                let mut kind_fractions = [0.0; 5];
                for (i, kind) in DeadKind::ALL.into_iter().enumerate() {
                    kind_fractions[i] = s.kind_count(kind) as f64 / dead as f64;
                }
                Row { benchmark: case.spec.name.to_string(), dead: s.dead_total, kind_fractions }
            })
            .collect();
        DeadBreakdown { rows }
    }
}

impl fmt::Display for DeadBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E2: breakdown of dead instructions by kind (fractions of dead)")?;
        let mut headers = vec!["benchmark".to_string(), "dead".to_string()];
        headers.extend(DeadKind::ALL.iter().map(|k| k.label().to_string()));
        let mut t = Table::new(headers);
        for r in &self.rows {
            let mut cells = vec![r.benchmark.clone(), r.dead.to_string()];
            cells.extend(r.kind_fractions.iter().map(|&x| pct(x)));
            t.row(cells);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testbench::small_o2;

    #[test]
    fn fractions_sum_to_one_when_dead_exists() {
        let result = DeadBreakdown::run(small_o2());
        for r in &result.rows {
            if r.dead > 0 {
                let sum: f64 = r.kind_fractions.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "{}: sum {sum}", r.benchmark);
            }
        }
    }

    #[test]
    fn expr_has_transitive_deadness() {
        let result = DeadBreakdown::run(small_o2());
        let expr = result.rows.iter().find(|r| r.benchmark == "expr").unwrap();
        // expr's no-consumer path kills whole chains: transitive share > 0.
        assert!(expr.kind_fractions[4] > 0.05, "transitive {}", expr.kind_fractions[4]);
    }

    #[test]
    fn display_lists_kind_labels() {
        let text = DeadBreakdown::run(small_o2()).to_string();
        assert!(text.contains("reg-overwritten"));
        assert!(text.contains("transitive"));
    }
}
