//! **E5 — Effect of compiler instruction scheduling.**
//!
//! The paper attributes a significant portion of partial deadness to
//! compiler code motion. Our workload generator makes that causal claim
//! testable: `O2` hoists computations above the branches that guard their
//! consumers, `O0` sinks them into the consuming block. The dead fraction
//! gap between the two is the scheduling contribution.

use std::fmt;

use crate::experiments::pct;
use crate::{Table, Workbench};

/// One benchmark's O0-vs-O2 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Dead fraction without hoisting.
    pub dead_o0: f64,
    /// Dead fraction with hoisting.
    pub dead_o2: f64,
}

impl Row {
    /// Percentage points of deadness attributable to scheduling.
    #[must_use]
    pub fn scheduling_contribution(&self) -> f64 {
        self.dead_o2 - self.dead_o0
    }
}

/// The E5 result set.
#[derive(Debug, Clone, PartialEq)]
pub struct CompilerEffect {
    /// Per-benchmark rows.
    pub rows: Vec<Row>,
}

impl CompilerEffect {
    /// Compares two workbenches built at `O0` and `O2` over the same
    /// benchmarks.
    ///
    /// # Panics
    ///
    /// Panics if the two workbenches contain different benchmark sets.
    #[must_use]
    pub fn run(o0: &Workbench, o2: &Workbench) -> CompilerEffect {
        assert_eq!(o0.cases().len(), o2.cases().len(), "workbenches must match");
        let rows = o0
            .cases()
            .iter()
            .zip(o2.cases())
            .map(|(c0, c2)| {
                assert_eq!(c0.spec.name, c2.spec.name, "workbenches must match");
                Row {
                    benchmark: c0.spec.name.to_string(),
                    dead_o0: c0.analysis.stats().dead_fraction(),
                    dead_o2: c2.analysis.stats().dead_fraction(),
                }
            })
            .collect();
        CompilerEffect { rows }
    }
}

impl fmt::Display for CompilerEffect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E5: effect of compiler scheduling on deadness (O0 = no hoisting, O2 = hoisting)"
        )?;
        let mut t = Table::new(["benchmark", "dead @O0", "dead @O2", "scheduling adds"]);
        for r in &self.rows {
            t.row([
                r.benchmark.clone(),
                pct(r.dead_o0),
                pct(r.dead_o2),
                format!("{:+.1} pts", 100.0 * r.scheduling_contribution()),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testbench::{small_o0, small_o2};

    #[test]
    fn hoisting_adds_deadness_on_expr() {
        let result = CompilerEffect::run(small_o0(), small_o2());
        let expr = result.rows.iter().find(|r| r.benchmark == "expr").unwrap();
        assert!(
            expr.scheduling_contribution() > 0.05,
            "expected >5 points from scheduling, got {}",
            expr.scheduling_contribution()
        );
    }

    #[test]
    fn stream_is_scheduling_insensitive() {
        let result = CompilerEffect::run(small_o0(), small_o2());
        let stream = result.rows.iter().find(|r| r.benchmark == "stream").unwrap();
        assert!(stream.scheduling_contribution().abs() < 0.01);
    }

    #[test]
    fn display_shows_points() {
        let text = CompilerEffect::run(small_o0(), small_o2()).to_string();
        assert!(text.contains("pts"));
    }
}
