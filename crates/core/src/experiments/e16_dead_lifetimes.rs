//! **E16 — Dead-value lifetimes.**
//!
//! How long do dead register values squat in their registers? Each dead
//! register write occupies a physical register from rename until its
//! architectural register is next overwritten *and that overwriter
//! commits* — so long lifetimes amplify the register-pressure cost of dead
//! instructions, and with it the benefit of never allocating for them.

use std::fmt;

use dide_analysis::DeadLifetimes;

use crate::{harness, Table, Workbench};

/// One benchmark's lifetime distribution summary (dynamic instructions
/// between the dead write and its overwriter).
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Dead register values measured.
    pub count: usize,
    /// Mean lifetime.
    pub mean: f64,
    /// Median lifetime.
    pub p50: u64,
    /// 90th-percentile lifetime.
    pub p90: u64,
    /// Maximum lifetime.
    pub max: u64,
}

/// The E16 result set.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadLifetimeReport {
    /// Per-benchmark rows.
    pub rows: Vec<Row>,
}

impl DeadLifetimeReport {
    /// Measures every benchmark in the workbench.
    #[must_use]
    pub fn run(bench: &Workbench) -> DeadLifetimeReport {
        DeadLifetimeReport::run_jobs(bench, 1)
    }

    /// Like [`DeadLifetimeReport::run`], fanning the per-benchmark
    /// measurements out across `jobs` worker threads.
    #[must_use]
    pub fn run_jobs(bench: &Workbench, jobs: usize) -> DeadLifetimeReport {
        let rows = harness::map_ordered(jobs, bench.cases(), |case| {
            let lt = DeadLifetimes::compute(&case.trace, &case.analysis);
            Row {
                benchmark: case.spec.name.to_string(),
                count: lt.len(),
                mean: lt.mean(),
                p50: lt.quantile(0.5).unwrap_or(0),
                p90: lt.quantile(0.9).unwrap_or(0),
                max: lt.quantile(1.0).unwrap_or(0),
            }
        });
        DeadLifetimeReport { rows }
    }
}

impl fmt::Display for DeadLifetimeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E16: dead-value lifetimes in dynamic instructions (register occupancy of dead writes)"
        )?;
        let mut t = Table::new(["benchmark", "dead values", "mean", "p50", "p90", "max"]);
        for r in &self.rows {
            t.row([
                r.benchmark.clone(),
                r.count.to_string(),
                format!("{:.1}", r.mean),
                r.p50.to_string(),
                r.p90.to_string(),
                r.max.to_string(),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testbench::small_o2;

    #[test]
    fn lifetimes_are_loop_scale() {
        let result = DeadLifetimeReport::run(small_o2());
        let expr = result.rows.iter().find(|r| r.benchmark == "expr").unwrap();
        // Hoisted candidates die when the next iteration recomputes them:
        // lifetime on the order of one loop body.
        assert!(expr.count > 1000);
        assert!(expr.p50 >= 5 && expr.p50 <= 100, "p50 {}", expr.p50);
        assert!(expr.p90 >= expr.p50);
        assert!(expr.max >= expr.p90);
        assert!(expr.mean > 0.0);
    }

    #[test]
    fn quantiles_are_ordered_everywhere() {
        for r in &DeadLifetimeReport::run(small_o2()).rows {
            assert!(r.p50 <= r.p90 && r.p90 <= r.max, "{}", r.benchmark);
        }
    }
}
