//! The experiment harness: one module per table/figure of the paper.
//!
//! Experiment IDs follow DESIGN.md §3:
//!
//! | ID | module | paper artifact |
//! |----|--------|----------------|
//! | E1 | [`e01_dead_fraction`] | fraction of dynamically dead instructions |
//! | E2 | [`e02_dead_breakdown`] | breakdown of dead instructions by kind |
//! | E3 | [`e03_static_behavior`] | fully vs partially dead static instructions |
//! | E4 | [`e04_locality`] | locality of dead instances over statics |
//! | E5 | [`e05_compiler_effect`] | effect of instruction scheduling (O0 vs O2) |
//! | E6 | [`e06_predictor_sizing`] | predictor coverage/accuracy vs state budget |
//! | E7 | [`e07_cfi_value`] | value of future control-flow information |
//! | E8 | [`e08_resource_savings`] | resource-utilization reductions |
//! | E9 | [`e09_speedup`] | speedup under resource contention |
//! | E10 | [`e10_machine_config`] | simulated machine configuration |
//! | E11 | [`e11_confidence_sweep`] | confidence threshold sensitivity |
//! | E12 | [`e12_elimination_ablation`] | elimination policy ablation |
//! | E13 | [`e13_jump_aware`] | extension: jump-aware CFI signatures |
//! | E14 | [`e14_oracle_limit`] | oracle-elimination limit study |
//! | E15 | [`e15_penalty_sweep`] | violation-penalty sensitivity |
//! | E16 | [`e16_dead_lifetimes`] | dead-value lifetime distribution |
//! | E17 | [`e17_register_sweep`] | elimination expressed in physical registers |
//! | E18 | [`e18_cluster_steering`] | extension: clustered backend + dead steering |
//!
//! Every experiment takes a prepared [`Workbench`](crate::Workbench) so the
//! cost of tracing and oracle analysis is paid once, and renders itself as
//! an aligned text table via `Display`.

pub mod e01_dead_fraction;
pub mod e02_dead_breakdown;
pub mod e03_static_behavior;
pub mod e04_locality;
pub mod e05_compiler_effect;
pub mod e06_predictor_sizing;
pub mod e07_cfi_value;
pub mod e08_resource_savings;
pub mod e09_speedup;
pub mod e10_machine_config;
pub mod e11_confidence_sweep;
pub mod e12_elimination_ablation;
pub mod e13_jump_aware;
pub mod e14_oracle_limit;
pub mod e15_penalty_sweep;
pub mod e16_dead_lifetimes;
pub mod e17_register_sweep;
pub mod e18_cluster_steering;

/// Geometric mean of strictly positive values (1.0 for an empty slice).
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean (0.0 for an empty slice).
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", 100.0 * fraction)
}

#[cfg(test)]
pub(crate) mod testbench {
    use std::sync::OnceLock;

    use crate::{OptLevel, Workbench};

    /// Benchmarks in the shared test workbench: one hoisting-heavy, one
    /// store-heavy, one nearly dead-free.
    pub(crate) const NAMES: [&str; 3] = ["expr", "objstore", "stream"];

    /// A small shared workbench for experiment unit tests (built once).
    pub(crate) fn small_o2() -> &'static Workbench {
        static WB: OnceLock<Workbench> = OnceLock::new();
        WB.get_or_init(|| Workbench::subset(&NAMES, OptLevel::O2, 1))
    }

    /// The matching O0 workbench for the compiler-effect experiment.
    pub(crate) fn small_o0() -> &'static Workbench {
        static WB: OnceLock<Workbench> = OnceLock::new();
        WB.get_or_init(|| Workbench::subset(&NAMES, OptLevel::O0, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_speedups() {
        assert!((geomean(&[2.0, 0.5]) - 1.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn mean_basics() {
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.1234), "12.3%");
    }
}
