//! **E12 — Elimination policy ablation.**
//!
//! Separates the mechanism's contributions on the contended machine:
//! stores only, registers only, and the full mechanism, against `Off`.
//!
//! The striking result: `RegOnly` is *counterproductive* — a dead store
//! whose data register was produced by an eliminated instruction reads a
//! dead tag and triggers a recovery, and because dead values flow in
//! chains this happens systematically. The mechanism must cover whole
//! chains, which is exactly why the paper eliminates stores too.

use std::fmt;

use dide_pipeline::{Core, DeadElimConfig, EliminationPolicy, PipelineConfig};

use crate::experiments::geomean;
use crate::{harness, Table, Workbench};

/// One policy's pooled results.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// The elimination policy.
    pub policy: EliminationPolicy,
    /// Geometric-mean speedup vs `Off` on the contended machine.
    pub speedup: f64,
    /// Total eliminated instructions.
    pub eliminated: u64,
    /// Total physical-register allocations saved.
    pub allocs_saved: u64,
    /// Total D-cache accesses saved.
    pub dcache_saved: u64,
}

/// The E12 result set.
#[derive(Debug, Clone, PartialEq)]
pub struct EliminationAblation {
    /// One row per policy.
    pub rows: Vec<Row>,
}

impl EliminationAblation {
    /// Runs the ablation over the workbench.
    #[must_use]
    pub fn run(bench: &Workbench) -> EliminationAblation {
        EliminationAblation::run_jobs(bench, 1)
    }

    /// Like [`EliminationAblation::run`], fanning each policy's per-benchmark
    /// simulations out across `jobs` worker threads.
    #[must_use]
    pub fn run_jobs(bench: &Workbench, jobs: usize) -> EliminationAblation {
        let machine = PipelineConfig::contended();
        // Baseline cycles per case.
        let base_cycles: Vec<u64> = harness::map_ordered(jobs, bench.cases(), |case| {
            Core::new(machine).run(&case.trace, &case.analysis).cycles
        });

        let rows = [
            EliminationPolicy::Off,
            EliminationPolicy::StoreOnly,
            EliminationPolicy::RegOnly,
            EliminationPolicy::RegAndStore,
        ]
        .into_iter()
        .map(|policy| {
            let cfg =
                machine.with_elimination(DeadElimConfig { policy, ..DeadElimConfig::default() });
            let stats = harness::map_ordered(jobs, bench.cases(), |case| {
                Core::new(cfg).run(&case.trace, &case.analysis)
            });
            let mut speedups = Vec::new();
            let (mut eliminated, mut allocs_saved, mut dcache_saved) = (0, 0, 0);
            for (s, &base) in stats.iter().zip(&base_cycles) {
                speedups.push(base as f64 / s.cycles as f64);
                eliminated += s.dead_predicted;
                allocs_saved += s.savings.phys_allocs_saved;
                dcache_saved += s.savings.dcache_accesses_saved;
            }
            Row { policy, speedup: geomean(&speedups), eliminated, allocs_saved, dcache_saved }
        })
        .collect();
        EliminationAblation { rows }
    }
}

fn policy_label(policy: EliminationPolicy) -> &'static str {
    match policy {
        EliminationPolicy::Off => "off",
        EliminationPolicy::StoreOnly => "stores only",
        EliminationPolicy::RegOnly => "registers only",
        EliminationPolicy::RegAndStore => "registers + stores",
    }
}

impl fmt::Display for EliminationAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E12: elimination policy ablation (contended machine)")?;
        let mut t = Table::new(["policy", "speedup", "eliminated", "allocs saved", "D$ saved"]);
        for r in &self.rows {
            t.row([
                policy_label(r.policy).to_string(),
                format!("{:+.1}%", 100.0 * (r.speedup - 1.0)),
                r.eliminated.to_string(),
                r.allocs_saved.to_string(),
                r.dcache_saved.to_string(),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testbench::small_o2;

    #[test]
    fn off_policy_is_identity() {
        let result = EliminationAblation::run(small_o2());
        let off = &result.rows[0];
        assert_eq!(off.policy, EliminationPolicy::Off);
        assert!((off.speedup - 1.0).abs() < 1e-9);
        assert_eq!(off.eliminated, 0);
    }

    #[test]
    fn stores_add_dcache_savings() {
        let result = EliminationAblation::run(small_o2());
        let store_only = &result.rows[1];
        let reg_only = &result.rows[2];
        let full = &result.rows[3];
        assert!(full.dcache_saved >= reg_only.dcache_saved);
        assert!(full.eliminated >= reg_only.eliminated);
        assert!(store_only.dcache_saved > 0);
        assert_eq!(store_only.allocs_saved, 0, "stores allocate no registers");
    }

    #[test]
    fn full_policy_dominates_reg_only() {
        let result = EliminationAblation::run(small_o2());
        let reg_only = &result.rows[2];
        let full = &result.rows[3];
        // RegOnly suffers dead-tag violations from non-eliminated dead
        // stores; the full policy removes those chains entirely.
        assert!(full.speedup > reg_only.speedup);
    }
}
