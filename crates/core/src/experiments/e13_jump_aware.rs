//! **E13 — Jump-aware CFI signatures (extension).**
//!
//! The paper's signatures carry conditional-branch *directions*. In
//! interpreter-style code (`interp`), whether a speculatively fetched
//! operand dies depends on which handler an *indirect jump* selects —
//! information a direction-only signature cannot carry, so the baseline
//! predictor (correctly) sits at ≈0% coverage there (see E7's negative
//! case). This extension folds a 3-bit hash of each indirect jump's
//! *predicted target* into the signature, using only information the
//! frontend already has (its target predictor).

use std::fmt;

use dide_pipeline::{Core, DeadElimConfig, PipelineConfig};
use dide_predictor::branch::Gshare;
use dide_predictor::dead::{evaluate_with_signatures, CfiConfig, CfiDeadPredictor};
use dide_predictor::future::{signatures_jump_aware, signatures_predicted};

use crate::experiments::pct;
use crate::{harness, BenchCase, Table, Workbench};

/// One benchmark's direction-only vs jump-aware comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Offline coverage with direction-only signatures.
    pub coverage_cond: f64,
    /// Offline coverage with jump-aware signatures.
    pub coverage_jump: f64,
    /// Offline accuracy with jump-aware signatures.
    pub accuracy_jump: f64,
    /// Contended-machine speedup with direction-only signatures.
    pub speedup_cond: f64,
    /// Contended-machine speedup with jump-aware signatures.
    pub speedup_jump: f64,
}

/// The E13 result set.
#[derive(Debug, Clone, PartialEq)]
pub struct JumpAware {
    /// Per-benchmark rows.
    pub rows: Vec<Row>,
}

fn offline(case: &BenchCase, jump_aware: bool) -> (f64, f64) {
    let mut p = CfiDeadPredictor::new(CfiConfig::default());
    let mut g = Gshare::new(10, 12);
    let sigs = if jump_aware {
        signatures_jump_aware(&case.trace, &mut g, 4).0
    } else {
        signatures_predicted(&case.trace, &mut g, 4).0
    };
    let r = evaluate_with_signatures(&case.trace, &case.analysis, &mut p, &sigs);
    (r.coverage(), r.accuracy())
}

fn speedup(case: &BenchCase, jump_aware: bool) -> f64 {
    let machine = PipelineConfig::contended();
    let base = Core::new(machine).run(&case.trace, &case.analysis);
    let elim_cfg =
        machine.with_elimination(DeadElimConfig { jump_aware, ..DeadElimConfig::default() });
    let elim = Core::new(elim_cfg).run(&case.trace, &case.analysis);
    base.cycles as f64 / elim.cycles as f64
}

impl JumpAware {
    /// Runs the comparison over the workbench.
    #[must_use]
    pub fn run(bench: &Workbench) -> JumpAware {
        JumpAware::run_jobs(bench, 1)
    }

    /// Like [`JumpAware::run`], fanning the per-benchmark work out across
    /// `jobs` worker threads.
    #[must_use]
    pub fn run_jobs(bench: &Workbench, jobs: usize) -> JumpAware {
        let rows = harness::map_ordered(jobs, bench.cases(), |case| {
            let (coverage_cond, _) = offline(case, false);
            let (coverage_jump, accuracy_jump) = offline(case, true);
            Row {
                benchmark: case.spec.name.to_string(),
                coverage_cond,
                coverage_jump,
                accuracy_jump,
                speedup_cond: speedup(case, false),
                speedup_jump: speedup(case, true),
            }
        });
        JumpAware { rows }
    }
}

impl fmt::Display for JumpAware {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E13 (extension): jump-aware CFI signatures — indirect-jump targets join the signature"
        )?;
        let mut t = Table::new([
            "benchmark",
            "coverage (cond)",
            "coverage (jump-aware)",
            "accuracy (jump-aware)",
            "speedup (cond)",
            "speedup (jump-aware)",
        ]);
        for r in &self.rows {
            t.row([
                r.benchmark.clone(),
                pct(r.coverage_cond),
                pct(r.coverage_jump),
                pct(r.accuracy_jump),
                format!("{:+.1}%", 100.0 * (r.speedup_cond - 1.0)),
                format!("{:+.1}%", 100.0 * (r.speedup_jump - 1.0)),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OptLevel, Workbench};

    #[test]
    fn interp_coverage_jumps_with_indirect_targets() {
        let wb = Workbench::subset(&["interp"], OptLevel::O2, 1);
        let result = JumpAware::run(&wb);
        let interp = &result.rows[0];
        assert!(interp.coverage_cond < 0.10, "baseline near zero: {}", interp.coverage_cond);
        assert!(
            interp.coverage_jump > interp.coverage_cond + 0.15,
            "jump-aware must unlock interp: {} -> {}",
            interp.coverage_cond,
            interp.coverage_jump
        );
        assert!(interp.accuracy_jump > 0.85, "accuracy {}", interp.accuracy_jump);
        // The IPC effect is bounded, not necessarily positive: interp is
        // frontend-bound once the target cache tames its dispatch
        // mispredicts, so violations can offset the modest savings.
        assert!(
            interp.speedup_jump > interp.speedup_cond - 0.02,
            "jump-aware must not cost real IPC: {} vs {}",
            interp.speedup_jump,
            interp.speedup_cond
        );
    }

    #[test]
    fn branch_dominated_benchmarks_are_unaffected() {
        let wb = Workbench::subset(&["expr"], OptLevel::O2, 1);
        let result = JumpAware::run(&wb);
        let expr = &result.rows[0];
        assert!(
            (expr.coverage_jump - expr.coverage_cond).abs() < 0.10,
            "no indirect jumps -> similar coverage: {} vs {}",
            expr.coverage_cond,
            expr.coverage_jump
        );
    }
}
