//! **E6 — Predictor coverage/accuracy vs hardware state budget.**
//!
//! Reproduces the paper's predictor sizing result: the CFI dead predictor
//! reaches ~91% coverage at ~93% accuracy in *under 5 KB*. The sweep runs
//! the full predictor (fresh per benchmark, like per-program hardware
//! warmup) across table sizes and pools the confusion counts over the
//! suite.

use std::fmt;

use dide_predictor::branch::Gshare;
use dide_predictor::dead::{evaluate, CfiConfig, CfiDeadPredictor, DeadPredictor};
use dide_predictor::StateBudget;

use crate::experiments::pct;
use crate::{Table, Workbench};

/// Branch lookahead used throughout the sizing sweep.
pub const LOOKAHEAD: u8 = 4;

/// One table size's pooled results.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Predictor table entries.
    pub entries: u64,
    /// Hardware state of the dead predictor.
    pub budget: StateBudget,
    /// Pooled coverage over the workbench.
    pub coverage: f64,
    /// Pooled accuracy over the workbench.
    pub accuracy: f64,
}

/// The E6 result set.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorSizing {
    /// One row per table size, ascending.
    pub rows: Vec<Row>,
}

impl PredictorSizing {
    /// Table sizes swept (log2 entries).
    pub const SIZES: [u32; 6] = [8, 9, 10, 11, 12, 13];

    /// Runs the sweep over the workbench.
    #[must_use]
    pub fn run(bench: &Workbench) -> PredictorSizing {
        let rows = Self::SIZES
            .iter()
            .map(|&log2_entries| {
                let config = CfiConfig { log2_entries, ..CfiConfig::default() };
                let (tp, dead, predicted) = pooled_counts(bench, config);
                Row {
                    entries: 1 << log2_entries,
                    budget: config.budget(),
                    coverage: ratio(tp, dead),
                    accuracy: if predicted == 0 { 1.0 } else { ratio(tp, predicted) },
                }
            })
            .collect();
        PredictorSizing { rows }
    }
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

/// Pools (true positives, actual dead, predicted dead) over all cases,
/// with fresh predictor state per case.
fn pooled_counts(bench: &Workbench, config: CfiConfig) -> (u64, u64, u64) {
    let mut tp = 0;
    let mut dead = 0;
    let mut predicted = 0;
    for case in bench.cases() {
        let mut predictor = CfiDeadPredictor::new(config);
        predictor.reset();
        let mut gshare = Gshare::new(10, 12);
        let report = evaluate(&case.trace, &case.analysis, &mut predictor, &mut gshare, LOOKAHEAD);
        tp += report.true_positives;
        dead += report.actual_dead;
        predicted += report.predicted_dead;
    }
    (tp, dead, predicted)
}

impl fmt::Display for PredictorSizing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E6: CFI predictor sizing (paper: >91% coverage at 93% accuracy under 5 KB)")?;
        let mut t = Table::new(["entries", "state", "coverage", "accuracy"]);
        for r in &self.rows {
            t.row([r.entries.to_string(), r.budget.to_string(), pct(r.coverage), pct(r.accuracy)]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testbench::small_o2;

    #[test]
    fn coverage_grows_with_size() {
        let result = PredictorSizing::run(small_o2());
        assert_eq!(result.rows.len(), PredictorSizing::SIZES.len());
        let first = &result.rows[0];
        let last = result.rows.last().unwrap();
        assert!(last.coverage >= first.coverage - 0.02, "sizing should not hurt coverage");
        assert!(last.accuracy > 0.9, "large tables stay accurate: {}", last.accuracy);
    }

    #[test]
    fn default_size_is_under_5kb_and_effective() {
        let result = PredictorSizing::run(small_o2());
        let default = result.rows.iter().find(|r| r.entries == 2048).unwrap();
        assert!(default.budget.kib() < 5.0);
        assert!(default.coverage > 0.5, "coverage {}", default.coverage);
        assert!(default.accuracy > 0.9, "accuracy {}", default.accuracy);
    }

    #[test]
    fn display_lists_budgets() {
        let text = PredictorSizing::run(small_o2()).to_string();
        assert!(text.contains("KiB"));
    }
}
