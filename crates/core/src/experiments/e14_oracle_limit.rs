//! **E14 — Oracle-elimination limit study.**
//!
//! Replaces the CFI predictor with the deadness oracle: every dead
//! instruction is eliminated with perfect foresight, and (because whole
//! chains go together) no dead-tag violations occur. The gap between the
//! real predictor and this bound says how much of the opportunity the
//! predictor converts — the paper's style of limit analysis.

use std::fmt;

use dide_pipeline::{Core, DeadElimConfig, PipelineConfig};

use crate::experiments::geomean;
use crate::{harness, Table, Workbench};

/// One benchmark's predictor-vs-oracle comparison on the contended machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Speedup with the real CFI predictor.
    pub speedup_predictor: f64,
    /// Speedup with oracle elimination.
    pub speedup_oracle: f64,
    /// Violations with the real predictor.
    pub violations_predictor: u64,
    /// Violations with the oracle (must be zero).
    pub violations_oracle: u64,
    /// Instructions eliminated by the oracle.
    pub eliminated_oracle: u64,
}

impl Row {
    /// Fraction of the oracle's cycle savings captured by the predictor
    /// (1.0 = predictor reaches the limit; values can exceed 1 when both
    /// round to no savings).
    #[must_use]
    pub fn conversion(&self) -> f64 {
        let oracle_gain = self.speedup_oracle - 1.0;
        if oracle_gain.abs() < 1e-9 {
            1.0
        } else {
            (self.speedup_predictor - 1.0) / oracle_gain
        }
    }
}

/// The E14 result set.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleLimit {
    /// Per-benchmark rows.
    pub rows: Vec<Row>,
}

impl OracleLimit {
    /// Runs the limit study on the contended machine.
    #[must_use]
    pub fn run(bench: &Workbench) -> OracleLimit {
        OracleLimit::run_jobs(bench, 1)
    }

    /// Like [`OracleLimit::run`], fanning the per-benchmark simulations out
    /// across `jobs` worker threads.
    #[must_use]
    pub fn run_jobs(bench: &Workbench, jobs: usize) -> OracleLimit {
        let machine = PipelineConfig::contended();
        let predictor_cfg = machine.with_elimination(DeadElimConfig::default());
        let oracle_cfg =
            machine.with_elimination(DeadElimConfig { oracle: true, ..DeadElimConfig::default() });
        let rows = harness::map_ordered(jobs, bench.cases(), |case| {
            let base = Core::new(machine).run(&case.trace, &case.analysis);
            let pred = Core::new(predictor_cfg).run(&case.trace, &case.analysis);
            let oracle = Core::new(oracle_cfg).run(&case.trace, &case.analysis);
            Row {
                benchmark: case.spec.name.to_string(),
                speedup_predictor: base.cycles as f64 / pred.cycles as f64,
                speedup_oracle: base.cycles as f64 / oracle.cycles as f64,
                violations_predictor: pred.dead_violations,
                violations_oracle: oracle.dead_violations,
                eliminated_oracle: oracle.dead_predicted,
            }
        });
        OracleLimit { rows }
    }

    /// Geometric-mean speedups: (predictor, oracle).
    #[must_use]
    pub fn mean_speedups(&self) -> (f64, f64) {
        (
            geomean(&self.rows.iter().map(|r| r.speedup_predictor).collect::<Vec<_>>()),
            geomean(&self.rows.iter().map(|r| r.speedup_oracle).collect::<Vec<_>>()),
        )
    }
}

impl fmt::Display for OracleLimit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E14: oracle-elimination limit (how much of the perfect-foresight gain the predictor converts)"
        )?;
        let mut t = Table::new([
            "benchmark",
            "predictor speedup",
            "oracle speedup",
            "conversion",
            "violations (pred/oracle)",
        ]);
        for r in &self.rows {
            t.row([
                r.benchmark.clone(),
                format!("{:+.1}%", 100.0 * (r.speedup_predictor - 1.0)),
                format!("{:+.1}%", 100.0 * (r.speedup_oracle - 1.0)),
                format!("{:.0}%", 100.0 * r.conversion()),
                format!("{} / {}", r.violations_predictor, r.violations_oracle),
            ]);
        }
        let (p, o) = self.mean_speedups();
        t.row([
            "GEOMEAN".to_string(),
            format!("{:+.1}%", 100.0 * (p - 1.0)),
            format!("{:+.1}%", 100.0 * (o - 1.0)),
            String::new(),
            String::new(),
        ]);
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testbench::small_o2;

    #[test]
    fn oracle_never_violates_and_bounds_the_predictor() {
        let result = OracleLimit::run(small_o2());
        for r in &result.rows {
            assert_eq!(r.violations_oracle, 0, "{}: oracle must not violate", r.benchmark);
            assert!(
                r.speedup_oracle >= r.speedup_predictor - 0.01,
                "{}: oracle {} must bound predictor {}",
                r.benchmark,
                r.speedup_oracle,
                r.speedup_predictor
            );
        }
    }

    #[test]
    fn conversion_tracks_chain_completeness() {
        let result = OracleLimit::run(small_o2());
        // objstore's dead stores are leaf-dead and near-fully covered: the
        // predictor converts almost the whole limit.
        let objstore = result.rows.iter().find(|r| r.benchmark == "objstore").unwrap();
        assert!(objstore.conversion() > 0.85, "conversion {:.2}", objstore.conversion());
        // expr's deadness flows in multi-instruction chains; the ~86%
        // coverage leaves chain fragments whose dead-tag violations eat a
        // large share of the limit — the predictor converts some, not all.
        let expr = result.rows.iter().find(|r| r.benchmark == "expr").unwrap();
        assert!(expr.speedup_oracle > 1.05);
        assert!(
            expr.conversion() > 0.1 && expr.conversion() < 0.9,
            "conversion {:.2}",
            expr.conversion()
        );
        assert!(expr.violations_predictor > 100, "chain fragments violate");
    }

    #[test]
    fn display_has_geomean() {
        let text = OracleLimit::run(small_o2()).to_string();
        assert!(text.contains("GEOMEAN"));
    }
}
