//! **E11 — Confidence-threshold sensitivity.**
//!
//! The predictor only acts on high-confidence entries because a wrong dead
//! prediction costs a recovery. Sweeping the threshold traces the
//! coverage/accuracy frontier and its effect on contended-machine speedup.

use std::fmt;

use dide_pipeline::{Core, DeadElimConfig, PipelineConfig};
use dide_predictor::branch::Gshare;
use dide_predictor::dead::{evaluate, CfiConfig, CfiDeadPredictor};

use crate::experiments::{geomean, pct};
use crate::{harness, Table, Workbench};

/// One threshold's pooled results.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Confidence threshold (out of the 4-bit counter's 15 max).
    pub threshold: u8,
    /// Pooled offline coverage.
    pub coverage: f64,
    /// Pooled offline accuracy.
    pub accuracy: f64,
    /// Geometric-mean speedup on the contended machine.
    pub speedup: f64,
    /// Total dead-tag violations across the workbench.
    pub violations: u64,
}

/// The E11 result set.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfidenceSweep {
    /// One row per threshold, ascending.
    pub rows: Vec<Row>,
}

impl ConfidenceSweep {
    /// Thresholds swept.
    pub const THRESHOLDS: [u8; 6] = [2, 4, 8, 12, 14, 15];

    /// Runs the sweep over the workbench.
    #[must_use]
    pub fn run(bench: &Workbench) -> ConfidenceSweep {
        ConfidenceSweep::run_jobs(bench, 1)
    }

    /// Like [`ConfidenceSweep::run`], fanning each threshold's per-benchmark
    /// work out across `jobs` worker threads. Per-case measurements are
    /// collected in suite order before pooling, so the rows are identical
    /// for every job count.
    #[must_use]
    pub fn run_jobs(bench: &Workbench, jobs: usize) -> ConfidenceSweep {
        let rows = Self::THRESHOLDS
            .iter()
            .map(|&threshold| {
                let predictor_cfg = CfiConfig { threshold, ..CfiConfig::default() };
                let base_cfg = PipelineConfig::contended();
                let elim_cfg = base_cfg.with_elimination(DeadElimConfig {
                    predictor: predictor_cfg,
                    ..DeadElimConfig::default()
                });

                // (tp, dead, predicted, speedup, violations) per case.
                let per_case = harness::map_ordered(jobs, bench.cases(), |case| {
                    let mut p = CfiDeadPredictor::new(predictor_cfg);
                    let mut g = Gshare::new(10, 12);
                    let r = evaluate(&case.trace, &case.analysis, &mut p, &mut g, 4);
                    let base = Core::new(base_cfg).run(&case.trace, &case.analysis);
                    let elim = Core::new(elim_cfg).run(&case.trace, &case.analysis);
                    (
                        r.true_positives,
                        r.actual_dead,
                        r.predicted_dead,
                        base.cycles as f64 / elim.cycles as f64,
                        elim.dead_violations,
                    )
                });

                let (mut tp, mut dead, mut predicted) = (0u64, 0u64, 0u64);
                let mut speedups = Vec::new();
                let mut violations = 0;
                for (case_tp, case_dead, case_predicted, speedup, case_violations) in per_case {
                    tp += case_tp;
                    dead += case_dead;
                    predicted += case_predicted;
                    speedups.push(speedup);
                    violations += case_violations;
                }

                Row {
                    threshold,
                    coverage: if dead == 0 { 0.0 } else { tp as f64 / dead as f64 },
                    accuracy: if predicted == 0 { 1.0 } else { tp as f64 / predicted as f64 },
                    speedup: geomean(&speedups),
                    violations,
                }
            })
            .collect();
        ConfidenceSweep { rows }
    }
}

impl fmt::Display for ConfidenceSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E11: confidence-threshold sensitivity (coverage/accuracy frontier and its speedup effect)"
        )?;
        let mut t = Table::new(["threshold", "coverage", "accuracy", "speedup", "violations"]);
        for r in &self.rows {
            t.row([
                r.threshold.to_string(),
                pct(r.coverage),
                pct(r.accuracy),
                format!("{:+.1}%", 100.0 * (r.speedup - 1.0)),
                r.violations.to_string(),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testbench::small_o2;

    #[test]
    fn threshold_trades_coverage_for_accuracy() {
        let result = ConfidenceSweep::run(small_o2());
        let low = &result.rows[0];
        let high = result.rows.last().unwrap();
        assert!(low.coverage >= high.coverage - 1e-9);
        assert!(high.accuracy >= low.accuracy - 1e-9);
    }

    #[test]
    fn all_thresholds_present() {
        let result = ConfidenceSweep::run(small_o2());
        assert_eq!(result.rows.len(), ConfidenceSweep::THRESHOLDS.len());
    }
}
