//! **E18 — Clustered backend and dead-instruction steering (extension).**
//!
//! Runs each benchmark on the contended machine three ways — unified
//! backend, clustered with round-robin steering, and clustered with
//! dead-instruction steering — across a small sweep of cluster counts and
//! inter-cluster bypass penalties (DESIGN.md §11). The paper eliminates
//! dead instructions; this extension asks what they are worth as *steering
//! hints*: routing predicted-dead work to a designated cheap cluster keeps
//! it off the clusters doing live work, so the dead-steered machine should
//! recover part of the clustering penalty without eliminating anything.

use std::fmt;

use dide_pipeline::{ClusterConfig, Core, PipelineConfig, SteerPolicy};

use crate::experiments::geomean;
use crate::{harness, Table, Workbench};

/// The `(clusters, bypass_penalty)` sweep points every benchmark runs at.
pub const SWEEP: [(usize, u32); 4] = [(2, 1), (2, 4), (4, 1), (4, 4)];

/// One benchmark at one sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Execution clusters.
    pub clusters: usize,
    /// Inter-cluster bypass penalty (cycles).
    pub penalty: u32,
    /// Unified-backend cycles (no clustering).
    pub unified_cycles: u64,
    /// Cycles with round-robin steering.
    pub rr_cycles: u64,
    /// Cycles with dead-instruction steering (steering only, no
    /// elimination).
    pub dead_cycles: u64,
    /// Instructions the dead-steer run routed to the cheap cluster.
    pub steered_dead: u64,
}

impl Row {
    /// Cycle cost of clustering under round-robin (>1 = slower than the
    /// unified backend).
    #[must_use]
    pub fn rr_slowdown(&self) -> f64 {
        self.rr_cycles as f64 / self.unified_cycles as f64
    }

    /// Speedup of dead steering over round-robin on the same clustered
    /// machine (>1 = steering by deadness helped).
    #[must_use]
    pub fn steer_gain(&self) -> f64 {
        self.rr_cycles as f64 / self.dead_cycles as f64
    }
}

/// The E18 result set.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSteering {
    /// Rows in (benchmark, sweep-point) order.
    pub rows: Vec<Row>,
}

impl ClusterSteering {
    /// Runs the sweep on the contended machine.
    #[must_use]
    pub fn run(bench: &Workbench) -> ClusterSteering {
        ClusterSteering::run_jobs(bench, 1)
    }

    /// Like [`ClusterSteering::run`], fanning the per-benchmark
    /// simulations out across `jobs` worker threads.
    #[must_use]
    pub fn run_jobs(bench: &Workbench, jobs: usize) -> ClusterSteering {
        let machine = PipelineConfig::contended();
        let per_case = harness::map_ordered(jobs, bench.cases(), |case| {
            let unified = Core::new(machine).run(&case.trace, &case.analysis);
            SWEEP
                .iter()
                .map(|&(clusters, penalty)| {
                    let clustered = |steer| {
                        machine.with_cluster(ClusterConfig {
                            clusters,
                            bypass_penalty: penalty,
                            steer,
                        })
                    };
                    let rr = Core::new(clustered(SteerPolicy::RoundRobin))
                        .run(&case.trace, &case.analysis);
                    let dead = Core::new(clustered(SteerPolicy::DeadSteer))
                        .run(&case.trace, &case.analysis);
                    Row {
                        benchmark: case.spec.name.to_string(),
                        clusters,
                        penalty,
                        unified_cycles: unified.cycles,
                        rr_cycles: rr.cycles,
                        dead_cycles: dead.cycles,
                        steered_dead: dead.steer.dead,
                    }
                })
                .collect::<Vec<Row>>()
        });
        ClusterSteering { rows: per_case.into_iter().flatten().collect() }
    }

    /// Geometric-mean dead-steering gain over round-robin across all rows.
    #[must_use]
    pub fn mean_steer_gain(&self) -> f64 {
        geomean(&self.rows.iter().map(Row::steer_gain).collect::<Vec<_>>())
    }
}

impl fmt::Display for ClusterSteering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E18: clustered backend — dead-instruction steering vs round-robin (extension)"
        )?;
        let mut t = Table::new([
            "benchmark",
            "clusters",
            "bypass",
            "unified cycles",
            "rr cycles",
            "dead-steer cycles",
            "steered",
            "rr cost",
            "steer gain",
        ]);
        for r in &self.rows {
            t.row([
                r.benchmark.clone(),
                r.clusters.to_string(),
                r.penalty.to_string(),
                r.unified_cycles.to_string(),
                r.rr_cycles.to_string(),
                r.dead_cycles.to_string(),
                r.steered_dead.to_string(),
                format!("{:+.1}%", 100.0 * (r.rr_slowdown() - 1.0)),
                format!("{:+.1}%", 100.0 * (r.steer_gain() - 1.0)),
            ]);
        }
        t.row([
            "GEOMEAN".to_string(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            format!("{:+.1}%", 100.0 * (self.mean_steer_gain() - 1.0)),
        ]);
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testbench::small_o2;

    #[test]
    fn clustering_costs_cycles_and_steering_recovers_some() {
        let result = ClusterSteering::run(small_o2());
        assert_eq!(result.rows.len(), 3 * SWEEP.len());
        // Clustering a contended machine is never free on these workloads.
        assert!(
            result.rows.iter().all(|r| r.rr_cycles >= r.unified_cycles),
            "round-robin clustering must not beat the unified backend"
        );
        // The acceptance criterion: dead steering differs measurably from
        // round-robin on at least one benchmark/sweep point.
        assert!(
            result.rows.iter().any(|r| r.rr_cycles != r.dead_cycles),
            "dead steering must change cycle counts somewhere in the sweep"
        );
        assert!(result.rows.iter().any(|r| r.steered_dead > 0), "dead work must be steered");
    }

    #[test]
    fn rows_are_deterministic_across_job_counts() {
        let serial = ClusterSteering::run_jobs(small_o2(), 1);
        let parallel = ClusterSteering::run_jobs(small_o2(), 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn display_has_geomean_and_sweep_axes() {
        let text = ClusterSteering::run(small_o2()).to_string();
        assert!(text.contains("GEOMEAN"));
        assert!(text.contains("steer gain"));
        assert!(text.contains("E18:"));
    }
}
