//! **E9 — Speedup under resource contention.**
//!
//! Runs each benchmark on the contended machine with and without
//! elimination. Paper claim: performance improves by an average of 3.6% on
//! an architecture exhibiting resource contention.

use std::fmt;

use dide_pipeline::{Core, DeadElimConfig, PipelineConfig};

use crate::experiments::geomean;
use crate::{harness, Table, Workbench};

/// One benchmark's speedup measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Baseline (no elimination) cycles.
    pub base_cycles: u64,
    /// Cycles with elimination.
    pub elim_cycles: u64,
    /// Baseline IPC.
    pub base_ipc: f64,
    /// IPC with elimination.
    pub elim_ipc: f64,
}

impl Row {
    /// Speedup factor (>1 means elimination helped).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.base_cycles as f64 / self.elim_cycles as f64
    }
}

/// The E9 result set.
#[derive(Debug, Clone, PartialEq)]
pub struct Speedup {
    /// Per-benchmark rows.
    pub rows: Vec<Row>,
    /// The machine both variants ran on.
    pub machine: PipelineConfig,
}

impl Speedup {
    /// Runs the comparison on the contended machine.
    #[must_use]
    pub fn run(bench: &Workbench) -> Speedup {
        Speedup::run_on(bench, PipelineConfig::contended())
    }

    /// Like [`Speedup::run`], fanning the per-benchmark simulations out
    /// across `jobs` worker threads.
    #[must_use]
    pub fn run_jobs(bench: &Workbench, jobs: usize) -> Speedup {
        Speedup::run_on_jobs(bench, PipelineConfig::contended(), jobs)
    }

    /// Runs the comparison on an arbitrary machine.
    #[must_use]
    pub fn run_on(bench: &Workbench, machine: PipelineConfig) -> Speedup {
        Speedup::run_on_jobs(bench, machine, 1)
    }

    /// Like [`Speedup::run_on`], with a worker-thread budget.
    #[must_use]
    pub fn run_on_jobs(bench: &Workbench, machine: PipelineConfig, jobs: usize) -> Speedup {
        let elim_cfg = machine.with_elimination(DeadElimConfig::default());
        let rows = harness::map_ordered(jobs, bench.cases(), |case| {
            let base = Core::new(machine).run(&case.trace, &case.analysis);
            let elim = Core::new(elim_cfg).run(&case.trace, &case.analysis);
            Row {
                benchmark: case.spec.name.to_string(),
                base_cycles: base.cycles,
                elim_cycles: elim.cycles,
                base_ipc: base.ipc(),
                elim_ipc: elim.ipc(),
            }
        });
        Speedup { rows, machine }
    }

    /// Geometric-mean speedup across benchmarks.
    #[must_use]
    pub fn mean_speedup(&self) -> f64 {
        geomean(&self.rows.iter().map(Row::speedup).collect::<Vec<_>>())
    }
}

impl fmt::Display for Speedup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E9: speedup from elimination on the contended machine (paper: +3.6% average)"
        )?;
        let mut t = Table::new([
            "benchmark",
            "base cycles",
            "elim cycles",
            "base IPC",
            "elim IPC",
            "speedup",
        ]);
        for r in &self.rows {
            t.row([
                r.benchmark.clone(),
                r.base_cycles.to_string(),
                r.elim_cycles.to_string(),
                format!("{:.3}", r.base_ipc),
                format!("{:.3}", r.elim_ipc),
                format!("{:+.1}%", 100.0 * (r.speedup() - 1.0)),
            ]);
        }
        t.row([
            "GEOMEAN".to_string(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            format!("{:+.1}%", 100.0 * (self.mean_speedup() - 1.0)),
        ]);
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testbench::small_o2;

    #[test]
    fn expr_speeds_up_under_contention() {
        let result = Speedup::run(small_o2());
        let expr = result.rows.iter().find(|r| r.benchmark == "expr").unwrap();
        assert!(expr.speedup() > 1.0, "speedup {:.4}", expr.speedup());
    }

    #[test]
    fn elimination_never_catastrophic() {
        for r in &Speedup::run(small_o2()).rows {
            assert!(r.speedup() > 0.97, "{}: {:.4}", r.benchmark, r.speedup());
        }
    }

    #[test]
    fn display_has_geomean() {
        let text = Speedup::run(small_o2()).to_string();
        assert!(text.contains("GEOMEAN"));
    }
}
