//! **E8 — Resource-utilization reductions.**
//!
//! Runs each benchmark through the baseline machine with elimination
//! enabled and reports the relative reduction in physical-register
//! management, register-file traffic, and D-cache accesses. Paper claim:
//! reductions averaging over 5% and sometimes exceeding 10%.

use std::fmt;

use dide_pipeline::{Core, DeadElimConfig, PipelineConfig, PipelineStats};

use crate::experiments::{mean, pct};
use crate::{harness, Table, Workbench};

/// One benchmark's reductions.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Relative reduction in physical-register allocations.
    pub alloc_reduction: f64,
    /// Relative reduction in register-file reads.
    pub rf_read_reduction: f64,
    /// Relative reduction in register-file writes.
    pub rf_write_reduction: f64,
    /// Relative reduction in D-cache accesses.
    pub dcache_reduction: f64,
    /// Dead-tag violations (recovery events).
    pub violations: u64,
    /// Elimination accuracy in the pipeline.
    pub accuracy: f64,
    /// Elimination coverage in the pipeline.
    pub coverage: f64,
}

/// The E8 result set.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceSavingsReport {
    /// Per-benchmark rows.
    pub rows: Vec<Row>,
}

impl ResourceSavingsReport {
    /// Runs every benchmark on the baseline machine with the default
    /// elimination configuration.
    #[must_use]
    pub fn run(bench: &Workbench) -> ResourceSavingsReport {
        ResourceSavingsReport::run_jobs(bench, 1)
    }

    /// Like [`ResourceSavingsReport::run`], fanning the per-benchmark
    /// simulations out across `jobs` worker threads.
    #[must_use]
    pub fn run_jobs(bench: &Workbench, jobs: usize) -> ResourceSavingsReport {
        let config = PipelineConfig::baseline().with_elimination(DeadElimConfig::default());
        let rows = harness::map_ordered(jobs, bench.cases(), |case| {
            let s = Core::new(config).run(&case.trace, &case.analysis);
            // Rows read the unified counter registry — the same snapshot
            // `dide stats` exports — so the table and the exported document
            // can never disagree about a counter.
            let c = s.counters();
            let reduction =
                |used: &str, saved: &str| PipelineStats::reduction(c.expect(used), c.expect(saved));
            Row {
                benchmark: case.spec.name.to_string(),
                alloc_reduction: reduction(
                    "pipeline.phys_allocs",
                    "pipeline.savings.phys_allocs_saved",
                ),
                rf_read_reduction: reduction(
                    "pipeline.rf_reads",
                    "pipeline.savings.rf_reads_saved",
                ),
                rf_write_reduction: reduction(
                    "pipeline.rf_writes",
                    "pipeline.savings.rf_writes_saved",
                ),
                dcache_reduction: reduction(
                    "pipeline.mem.l1d.accesses",
                    "pipeline.savings.dcache_accesses_saved",
                ),
                violations: c.expect("pipeline.dead_violations"),
                accuracy: s.elimination_accuracy(),
                coverage: s.elimination_coverage(),
            }
        });
        ResourceSavingsReport { rows }
    }

    /// Mean reduction across benchmarks for each resource, in the order
    /// (allocs, RF reads, RF writes, D-cache).
    #[must_use]
    pub fn means(&self) -> (f64, f64, f64, f64) {
        (
            mean(&self.rows.iter().map(|r| r.alloc_reduction).collect::<Vec<_>>()),
            mean(&self.rows.iter().map(|r| r.rf_read_reduction).collect::<Vec<_>>()),
            mean(&self.rows.iter().map(|r| r.rf_write_reduction).collect::<Vec<_>>()),
            mean(&self.rows.iter().map(|r| r.dcache_reduction).collect::<Vec<_>>()),
        )
    }
}

impl fmt::Display for ResourceSavingsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E8: resource-utilization reductions on the baseline machine (paper: >5% average)"
        )?;
        let mut t = Table::new([
            "benchmark",
            "allocs",
            "RF reads",
            "RF writes",
            "D$ accesses",
            "violations",
            "accuracy",
            "coverage",
        ]);
        for r in &self.rows {
            t.row([
                r.benchmark.clone(),
                pct(r.alloc_reduction),
                pct(r.rf_read_reduction),
                pct(r.rf_write_reduction),
                pct(r.dcache_reduction),
                r.violations.to_string(),
                pct(r.accuracy),
                pct(r.coverage),
            ]);
        }
        let (a, rr, rw, d) = self.means();
        t.row([
            "MEAN".to_string(),
            pct(a),
            pct(rr),
            pct(rw),
            pct(d),
            String::new(),
            String::new(),
            String::new(),
        ]);
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testbench::small_o2;

    #[test]
    fn expr_reductions_exceed_five_percent() {
        let result = ResourceSavingsReport::run(small_o2());
        let expr = result.rows.iter().find(|r| r.benchmark == "expr").unwrap();
        assert!(expr.alloc_reduction > 0.05, "allocs {}", expr.alloc_reduction);
        assert!(expr.rf_write_reduction > 0.05, "rf writes {}", expr.rf_write_reduction);
        assert!(expr.accuracy > 0.85, "accuracy {}", expr.accuracy);
    }

    #[test]
    fn stream_reductions_are_small() {
        let result = ResourceSavingsReport::run(small_o2());
        let stream = result.rows.iter().find(|r| r.benchmark == "stream").unwrap();
        assert!(stream.alloc_reduction < 0.08, "allocs {}", stream.alloc_reduction);
    }

    #[test]
    fn display_has_mean_row() {
        let text = ResourceSavingsReport::run(small_o2()).to_string();
        assert!(text.contains("MEAN"));
    }
}
