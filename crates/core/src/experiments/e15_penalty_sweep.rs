//! **E15 — Violation-penalty sensitivity.**
//!
//! Our violation recovery is modeled as a fixed rename stall
//! (`DeadElimConfig::violation_penalty`, default 15 cycles) standing in for
//! the paper's re-injection datapath. This sweep shows how the contended-
//! machine speedup depends on that modeling choice — i.e. how robust the
//! E9 conclusion is to the recovery-cost assumption.

use std::fmt;

use dide_pipeline::{Core, DeadElimConfig, PipelineConfig};

use crate::experiments::geomean;
use crate::{harness, Table, Workbench};

/// One penalty value's pooled results.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Violation penalty in cycles.
    pub penalty: u32,
    /// Geometric-mean speedup over the workbench.
    pub speedup: f64,
    /// Total violations across the workbench (penalty-independent: the
    /// same predictions are made regardless of the recovery cost).
    pub violations: u64,
}

/// The E15 result set.
#[derive(Debug, Clone, PartialEq)]
pub struct PenaltySweep {
    /// One row per penalty, ascending.
    pub rows: Vec<Row>,
}

impl PenaltySweep {
    /// Penalties swept, in cycles.
    pub const PENALTIES: [u32; 5] = [5, 10, 15, 25, 40];

    /// Runs the sweep on the contended machine.
    #[must_use]
    pub fn run(bench: &Workbench) -> PenaltySweep {
        PenaltySweep::run_jobs(bench, 1)
    }

    /// Like [`PenaltySweep::run`], fanning each penalty's per-benchmark
    /// simulations out across `jobs` worker threads.
    #[must_use]
    pub fn run_jobs(bench: &Workbench, jobs: usize) -> PenaltySweep {
        let machine = PipelineConfig::contended();
        let base_cycles: Vec<u64> = harness::map_ordered(jobs, bench.cases(), |case| {
            Core::new(machine).run(&case.trace, &case.analysis).cycles
        });
        let rows = Self::PENALTIES
            .iter()
            .map(|&penalty| {
                let cfg = machine.with_elimination(DeadElimConfig {
                    violation_penalty: penalty,
                    ..DeadElimConfig::default()
                });
                let stats = harness::map_ordered(jobs, bench.cases(), |case| {
                    Core::new(cfg).run(&case.trace, &case.analysis)
                });
                let mut speedups = Vec::new();
                let mut violations = 0;
                for (s, &base) in stats.iter().zip(&base_cycles) {
                    speedups.push(base as f64 / s.cycles as f64);
                    violations += s.dead_violations;
                }
                Row { penalty, speedup: geomean(&speedups), violations }
            })
            .collect();
        PenaltySweep { rows }
    }
}

impl fmt::Display for PenaltySweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E15: violation-penalty sensitivity (robustness of the E9 speedup to the recovery-cost model)"
        )?;
        let mut t = Table::new(["penalty (cy)", "speedup", "violations"]);
        for r in &self.rows {
            t.row([
                r.penalty.to_string(),
                format!("{:+.1}%", 100.0 * (r.speedup - 1.0)),
                r.violations.to_string(),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testbench::small_o2;

    #[test]
    fn speedup_degrades_monotonically_with_penalty() {
        let result = PenaltySweep::run(small_o2());
        for pair in result.rows.windows(2) {
            assert!(
                pair[1].speedup <= pair[0].speedup + 1e-9,
                "penalty {} -> {} must not increase speedup",
                pair[0].penalty,
                pair[1].penalty
            );
        }
    }

    #[test]
    fn conclusion_is_robust_at_40_cycles() {
        let result = PenaltySweep::run(small_o2());
        let worst = result.rows.last().unwrap();
        assert_eq!(worst.penalty, 40);
        assert!(
            worst.speedup > 1.0,
            "elimination must still pay off at a 40-cycle recovery: {:.4}",
            worst.speedup
        );
    }

    #[test]
    fn violation_counts_are_penalty_independent() {
        let result = PenaltySweep::run(small_o2());
        let first = result.rows[0].violations;
        for r in &result.rows {
            // Timing shifts can change interleavings slightly, but the
            // count must stay in the same ballpark.
            assert!(
                (r.violations as i64 - first as i64).unsigned_abs() <= first / 4 + 8,
                "penalty {}: {} vs {}",
                r.penalty,
                r.violations,
                first
            );
        }
    }
}
