//! **E3 — Static instruction behaviour.**
//!
//! The paper's key observation about *where* dead instructions come from:
//! most dead dynamic instances are produced by static instructions that
//! also produce useful values (*partially dead* statics). This is what
//! makes naive PC-indexed prediction insufficient and motivates CFI.

use std::fmt;

use dide_analysis::StaticBehavior;

use crate::experiments::pct;
use crate::{Table, Workbench};

/// One benchmark's static-behaviour census.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Static instructions that executed at least once.
    pub statics_executed: usize,
    /// Statics whose eligible instances were never dead.
    pub never_dead: usize,
    /// Statics with both dead and useful instances.
    pub partially_dead: usize,
    /// Statics whose eligible instances were always dead.
    pub fully_dead: usize,
    /// Fraction of dead dynamic instances coming from partially dead
    /// statics.
    pub dead_from_partial: f64,
}

/// The E3 result set.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticBehaviorCensus {
    /// Per-benchmark rows.
    pub rows: Vec<Row>,
}

impl StaticBehaviorCensus {
    /// Measures every benchmark in the workbench.
    #[must_use]
    pub fn run(bench: &Workbench) -> StaticBehaviorCensus {
        let rows = bench
            .cases()
            .iter()
            .map(|case| {
                let p = case.analysis.static_profile(&case.trace);
                Row {
                    benchmark: case.spec.name.to_string(),
                    statics_executed: p.records().iter().filter(|r| r.executions > 0).count(),
                    never_dead: p.count_behavior(StaticBehavior::NeverDead),
                    partially_dead: p.count_behavior(StaticBehavior::PartiallyDead),
                    fully_dead: p.count_behavior(StaticBehavior::FullyDead),
                    dead_from_partial: p.partial_dead_fraction(),
                }
            })
            .collect();
        StaticBehaviorCensus { rows }
    }
}

impl fmt::Display for StaticBehaviorCensus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E3: static instruction behaviour (paper: most dead instances come from partially dead statics)"
        )?;
        let mut t = Table::new([
            "benchmark",
            "statics",
            "never-dead",
            "partial",
            "fully-dead",
            "dead from partial",
        ]);
        for r in &self.rows {
            t.row([
                r.benchmark.clone(),
                r.statics_executed.to_string(),
                r.never_dead.to_string(),
                r.partially_dead.to_string(),
                r.fully_dead.to_string(),
                pct(r.dead_from_partial),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testbench::small_o2;

    #[test]
    fn expr_dead_comes_from_partial_statics() {
        let result = StaticBehaviorCensus::run(small_o2());
        let expr = result.rows.iter().find(|r| r.benchmark == "expr").unwrap();
        assert!(expr.partially_dead > 0);
        assert!(
            expr.dead_from_partial > 0.5,
            "majority from partial statics, got {}",
            expr.dead_from_partial
        );
    }

    #[test]
    fn counts_are_consistent() {
        let result = StaticBehaviorCensus::run(small_o2());
        for r in &result.rows {
            assert!(r.never_dead + r.partially_dead + r.fully_dead <= r.statics_executed);
        }
    }
}
