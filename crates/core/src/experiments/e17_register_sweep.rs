//! **E17 — Register-pressure sweep.**
//!
//! Sweeps the physical-register file size on the contended machine, with
//! and without elimination. Because eliminated instructions never allocate
//! a rename register, elimination is worth some number of physical
//! registers: the sweep shows the eliminated machine matching a larger
//! baseline machine, and the gap closing as registers stop being the
//! bottleneck — the cleanest visualization of the paper's "architecture
//! exhibiting resource contention" framing.

use std::fmt;

use dide_pipeline::{Core, DeadElimConfig, PipelineConfig};

use crate::experiments::geomean;
use crate::{harness, Table, Workbench};

/// One register-file size's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Physical registers (including the 32 architectural).
    pub phys_regs: usize,
    /// Geometric-mean IPC without elimination.
    pub ipc_base: f64,
    /// Geometric-mean IPC with elimination.
    pub ipc_elim: f64,
    /// Mean rename-stall cycles per benchmark without elimination.
    pub no_phys_stalls_base: u64,
    /// Mean rename-stall cycles per benchmark with elimination.
    pub no_phys_stalls_elim: u64,
}

impl Row {
    /// Speedup from elimination at this register-file size.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.ipc_base == 0.0 {
            1.0
        } else {
            self.ipc_elim / self.ipc_base
        }
    }
}

/// The E17 result set.
#[derive(Debug, Clone, PartialEq)]
pub struct RegisterSweep {
    /// One row per register-file size, ascending.
    pub rows: Vec<Row>,
}

impl RegisterSweep {
    /// Register-file sizes swept.
    pub const SIZES: [usize; 6] = [40, 48, 64, 96, 128, 160];

    /// Runs the sweep (contended machine otherwise).
    #[must_use]
    pub fn run(bench: &Workbench) -> RegisterSweep {
        RegisterSweep::run_jobs(bench, 1)
    }

    /// Like [`RegisterSweep::run`], fanning each size's per-benchmark
    /// simulations out across `jobs` worker threads.
    #[must_use]
    pub fn run_jobs(bench: &Workbench, jobs: usize) -> RegisterSweep {
        let rows = Self::SIZES
            .iter()
            .map(|&phys_regs| {
                let machine = PipelineConfig { phys_regs, ..PipelineConfig::contended() };
                let elim = machine.with_elimination(DeadElimConfig::default());
                let per_case = harness::map_ordered(jobs, bench.cases(), |case| {
                    let b = Core::new(machine).run(&case.trace, &case.analysis);
                    let e = Core::new(elim).run(&case.trace, &case.analysis);
                    (b.ipc(), e.ipc(), b.no_phys_stalls, e.no_phys_stalls)
                });
                let mut ipc_base = Vec::new();
                let mut ipc_elim = Vec::new();
                let (mut stalls_base, mut stalls_elim) = (0, 0);
                for (b_ipc, e_ipc, b_stalls, e_stalls) in per_case {
                    ipc_base.push(b_ipc);
                    ipc_elim.push(e_ipc);
                    stalls_base += b_stalls;
                    stalls_elim += e_stalls;
                }
                let n = bench.cases().len().max(1) as u64;
                Row {
                    phys_regs,
                    ipc_base: geomean(&ipc_base),
                    ipc_elim: geomean(&ipc_elim),
                    no_phys_stalls_base: stalls_base / n,
                    no_phys_stalls_elim: stalls_elim / n,
                }
            })
            .collect();
        RegisterSweep { rows }
    }

    /// How many *extra baseline registers* the eliminated machine at
    /// `phys_regs` is worth: the smallest swept size whose baseline IPC
    /// meets the eliminated IPC, minus `phys_regs`.
    ///
    /// Returns `None` when no swept size catches up — elimination also
    /// saves issue-queue slots and function-unit bandwidth, so on
    /// workloads where those bind, even an unbounded register file cannot
    /// match it. `None` is therefore a *stronger* statement than any
    /// finite equivalent.
    #[must_use]
    pub fn register_equivalent(&self, phys_regs: usize) -> Option<usize> {
        let row = self.rows.iter().find(|r| r.phys_regs == phys_regs)?;
        let target = row.ipc_elim;
        self.rows
            .iter()
            .find(|r| r.ipc_base >= target * 0.999)
            .map(|r| r.phys_regs.saturating_sub(phys_regs))
    }
}

impl fmt::Display for RegisterSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E17: register-pressure sweep (elimination expressed in physical registers)")?;
        let mut t =
            Table::new(["phys regs", "IPC base", "IPC elim", "speedup", "rename stalls base/elim"]);
        for r in &self.rows {
            t.row([
                r.phys_regs.to_string(),
                format!("{:.3}", r.ipc_base),
                format!("{:.3}", r.ipc_elim),
                format!("{:+.1}%", 100.0 * (r.speedup() - 1.0)),
                format!("{} / {}", r.no_phys_stalls_base, r.no_phys_stalls_elim),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testbench::small_o2;

    #[test]
    fn elimination_matters_most_when_registers_are_scarce() {
        let result = RegisterSweep::run(small_o2());
        let tight = result.rows.first().unwrap();
        let roomy = result.rows.last().unwrap();
        assert!(tight.speedup() > roomy.speedup(), "{} vs {}", tight.speedup(), roomy.speedup());
        assert!(
            tight.no_phys_stalls_elim < tight.no_phys_stalls_base,
            "elimination relieves rename stalls: {} vs {}",
            tight.no_phys_stalls_elim,
            tight.no_phys_stalls_base
        );
    }

    #[test]
    fn baseline_ipc_is_monotone_in_registers() {
        let result = RegisterSweep::run(small_o2());
        for pair in result.rows.windows(2) {
            assert!(
                pair[1].ipc_base >= pair[0].ipc_base - 0.02,
                "{} regs {:.3} -> {} regs {:.3}",
                pair[0].phys_regs,
                pair[0].ipc_base,
                pair[1].phys_regs,
                pair[1].ipc_base
            );
        }
    }

    #[test]
    fn register_equivalent_is_positive_under_pressure() {
        let result = RegisterSweep::run(small_o2());
        let equiv = result.register_equivalent(48);
        assert!(equiv.is_some());
    }
}
