//! **E4 — Locality of dead instances over static instructions.**
//!
//! The paper's locality claim: a small set of static instructions produces
//! most of the dead dynamic instances — the property that lets a small
//! (<5 KB) predictor capture most of the opportunity.

use std::fmt;

use crate::{Table, Workbench};

/// One benchmark's locality quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Total dead dynamic instances.
    pub dead: u64,
    /// Statics producing at least one dead instance.
    pub dead_statics: usize,
    /// Smallest number of statics covering 50% of dead instances.
    pub statics_50: Option<usize>,
    /// Smallest number of statics covering 90% of dead instances.
    pub statics_90: Option<usize>,
    /// Smallest number of statics covering 99% of dead instances.
    pub statics_99: Option<usize>,
}

/// The E4 result set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Locality {
    /// Per-benchmark rows.
    pub rows: Vec<Row>,
}

impl Locality {
    /// Measures every benchmark in the workbench.
    #[must_use]
    pub fn run(bench: &Workbench) -> Locality {
        let rows = bench
            .cases()
            .iter()
            .map(|case| {
                let cdf = case.analysis.locality(&case.trace);
                Row {
                    benchmark: case.spec.name.to_string(),
                    dead: cdf.total_dead(),
                    dead_statics: cdf.dead_statics(),
                    statics_50: cdf.statics_for(0.5),
                    statics_90: cdf.statics_for(0.9),
                    statics_99: cdf.statics_for(0.99),
                }
            })
            .collect();
        Locality { rows }
    }
}

fn opt_count(v: Option<usize>) -> String {
    v.map_or_else(|| "-".to_string(), |n| n.to_string())
}

impl fmt::Display for Locality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E4: locality of dead instances (statics needed to cover 50/90/99% of dead)")?;
        let mut t = Table::new(["benchmark", "dead", "dead statics", "50%", "90%", "99%"]);
        for r in &self.rows {
            t.row([
                r.benchmark.clone(),
                r.dead.to_string(),
                r.dead_statics.to_string(),
                opt_count(r.statics_50),
                opt_count(r.statics_90),
                opt_count(r.statics_99),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testbench::small_o2;

    #[test]
    fn locality_is_strong() {
        let result = Locality::run(small_o2());
        let expr = result.rows.iter().find(|r| r.benchmark == "expr").unwrap();
        // Half the dead instances come from a handful of statics.
        assert!(expr.statics_50.unwrap() <= 5, "statics_50 {:?}", expr.statics_50);
        assert!(expr.statics_90.unwrap() <= expr.dead_statics);
    }

    #[test]
    fn quantiles_are_monotone() {
        for r in &Locality::run(small_o2()).rows {
            if let (Some(a), Some(b), Some(c)) = (r.statics_50, r.statics_90, r.statics_99) {
                assert!(a <= b && b <= c);
            }
        }
    }

    #[test]
    fn display_renders_dashes_for_no_dead() {
        assert_eq!(opt_count(None), "-");
        assert_eq!(opt_count(Some(3)), "3");
    }
}
