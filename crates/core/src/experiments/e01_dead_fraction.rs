//! **E1 — Fraction of dynamically dead instructions.**
//!
//! Reproduces the paper's headline characterization figure: the fraction of
//! dynamic instructions that are dead, per benchmark. Paper claim: 3–16%
//! across SPEC CPU2000; our suite is calibrated to span the same range.

use std::fmt;

use crate::experiments::pct;
use crate::{Table, Workbench};

/// One benchmark's dead-fraction measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Total dynamic instructions.
    pub total: u64,
    /// Eligible (value-producing) dynamic instructions.
    pub eligible: u64,
    /// Dead dynamic instructions.
    pub dead: u64,
    /// Dead as a fraction of all dynamic instructions.
    pub fraction_of_all: f64,
    /// Dead as a fraction of value producers.
    pub fraction_of_producers: f64,
}

/// The E1 result set.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadFraction {
    /// Per-benchmark rows, in suite order.
    pub rows: Vec<Row>,
}

impl DeadFraction {
    /// Measures every benchmark in the workbench.
    #[must_use]
    pub fn run(bench: &Workbench) -> DeadFraction {
        let rows = bench
            .cases()
            .iter()
            .map(|case| {
                let s = case.analysis.stats();
                Row {
                    benchmark: case.spec.name.to_string(),
                    total: s.total,
                    eligible: s.eligible,
                    dead: s.dead_total,
                    fraction_of_all: s.dead_fraction(),
                    fraction_of_producers: s.dead_fraction_of_eligible(),
                }
            })
            .collect();
        DeadFraction { rows }
    }

    /// Smallest and largest dead fraction across benchmarks.
    #[must_use]
    pub fn range(&self) -> (f64, f64) {
        let mut min = f64::MAX;
        let mut max = 0.0f64;
        for r in &self.rows {
            min = min.min(r.fraction_of_all);
            max = max.max(r.fraction_of_all);
        }
        (min.min(max), max)
    }
}

impl fmt::Display for DeadFraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E1: fraction of dynamically dead instructions (paper: 3-16%)")?;
        let mut t = Table::new([
            "benchmark",
            "dyn insts",
            "producers",
            "dead",
            "% of all",
            "% of producers",
        ]);
        for r in &self.rows {
            t.row([
                r.benchmark.clone(),
                r.total.to_string(),
                r.eligible.to_string(),
                r.dead.to_string(),
                pct(r.fraction_of_all),
                pct(r.fraction_of_producers),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testbench::small_o2;

    #[test]
    fn rows_cover_workbench() {
        let result = DeadFraction::run(small_o2());
        assert_eq!(result.rows.len(), 3);
        let expr = result.rows.iter().find(|r| r.benchmark == "expr").unwrap();
        assert!(expr.fraction_of_all > 0.10 && expr.fraction_of_all < 0.20);
        let stream = result.rows.iter().find(|r| r.benchmark == "stream").unwrap();
        assert!(stream.fraction_of_all < 0.06);
        let (min, max) = result.range();
        assert!(min <= max);
    }

    #[test]
    fn display_contains_benchmarks() {
        let text = DeadFraction::run(small_o2()).to_string();
        assert!(text.contains("expr"));
        assert!(text.contains("stream"));
        assert!(text.contains("E1"));
    }
}
