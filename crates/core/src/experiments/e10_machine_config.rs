//! **E10 — Simulated machine configuration table.**
//!
//! Not a measurement: renders the two machine configurations (baseline and
//! contended) and the dead-predictor hardware, mirroring the paper's
//! methodology table.

use std::fmt;

use dide_pipeline::{DeadElimConfig, PipelineConfig};

use crate::Table;

/// The rendered configuration table.
#[derive(Debug, Clone)]
pub struct MachineConfigTable {
    /// The baseline machine.
    pub baseline: PipelineConfig,
    /// The contended machine.
    pub contended: PipelineConfig,
    /// The elimination hardware.
    pub dead: DeadElimConfig,
}

impl MachineConfigTable {
    /// Collects the standard configurations.
    #[must_use]
    pub fn collect() -> MachineConfigTable {
        MachineConfigTable {
            baseline: PipelineConfig::baseline(),
            contended: PipelineConfig::contended(),
            dead: DeadElimConfig::default(),
        }
    }
}

impl Default for MachineConfigTable {
    fn default() -> Self {
        MachineConfigTable::collect()
    }
}

impl fmt::Display for MachineConfigTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E10: simulated machine configurations")?;
        let (b, c) = (&self.baseline, &self.contended);
        let mut t = Table::new(["parameter", "baseline", "contended"]);
        t.row([
            "pipeline width (F/R/I/C)".to_string(),
            format!("{}/{}/{}/{}", b.fetch_width, b.rename_width, b.issue_width, b.commit_width),
            format!("{}/{}/{}/{}", c.fetch_width, c.rename_width, c.issue_width, c.commit_width),
        ]);
        t.row(["ROB entries".to_string(), b.rob_entries.to_string(), c.rob_entries.to_string()]);
        t.row(["issue queue".to_string(), b.iq_entries.to_string(), c.iq_entries.to_string()]);
        t.row([
            "LQ / SQ".to_string(),
            format!("{} / {}", b.lq_entries, b.sq_entries),
            format!("{} / {}", c.lq_entries, c.sq_entries),
        ]);
        t.row(["physical registers".to_string(), b.phys_regs.to_string(), c.phys_regs.to_string()]);
        t.row([
            "ALU / MUL / DIV / mem ports".to_string(),
            format!("{}/{}/{}/{}", b.fu.alus, b.fu.muls, b.fu.divs, b.fu.mem_ports),
            format!("{}/{}/{}/{}", c.fu.alus, c.fu.muls, c.fu.divs, c.fu.mem_ports),
        ]);
        t.row([
            "branch predictor".to_string(),
            format!("gshare 2^{} x {}h", b.gshare_log2_entries, b.gshare_history_bits),
            format!("gshare 2^{} x {}h", c.gshare_log2_entries, c.gshare_history_bits),
        ]);
        t.row([
            "mispredict / BTB-miss penalty".to_string(),
            format!("{} / {}", b.mispredict_penalty, b.btb_miss_penalty),
            format!("{} / {}", c.mispredict_penalty, c.btb_miss_penalty),
        ]);
        t.row([
            "L1D".to_string(),
            format!(
                "{} KB {}-way, {} cy",
                b.hierarchy.l1d.size_bytes / 1024,
                b.hierarchy.l1d.ways,
                b.hierarchy.l1d.hit_latency
            ),
            "same".to_string(),
        ]);
        t.row([
            "L2 / memory".to_string(),
            format!(
                "{} KB {} cy / {} cy",
                b.hierarchy.l2.size_bytes / 1024,
                b.hierarchy.l2.hit_latency,
                b.hierarchy.memory_latency
            ),
            "same".to_string(),
        ]);
        t.row([
            "dead predictor".to_string(),
            format!(
                "CFI 2^{} entries ({}), lookahead {}, threshold {}",
                self.dead.predictor.log2_entries,
                self.dead.predictor.budget(),
                self.dead.lookahead,
                self.dead.predictor.threshold
            ),
            "same".to_string(),
        ]);
        t.row([
            "violation penalty".to_string(),
            self.dead.violation_penalty.to_string(),
            "same".to_string(),
        ]);
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_both_machines() {
        let text = MachineConfigTable::collect().to_string();
        assert!(text.contains("baseline"));
        assert!(text.contains("contended"));
        assert!(text.contains("physical registers"));
        assert!(text.contains("dead predictor"));
    }

    #[test]
    fn dead_predictor_is_under_5kb() {
        let t = MachineConfigTable::collect();
        assert!(t.dead.predictor.budget().kib() < 5.0);
    }
}
