//! Strict parsing of numeric CLI flag values.
//!
//! Shared by every `dide` subcommand so a bad `--scale`, `--scales`,
//! `--last` or `--sample-every` is rejected with a one-line error instead
//! of panicking deep inside a workload build (scale 0 builds a degenerate
//! program; a zero sampling period would divide by zero in the event
//! trace).

/// Parses one positive (>= 1) integer flag value.
///
/// # Errors
///
/// Returns a one-line message naming the flag when the value is empty,
/// non-numeric, or zero.
pub fn parse_positive(flag: &str, value: &str) -> Result<u32, String> {
    match value.trim().parse::<u32>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("invalid {flag} `{value}` (expected an integer >= 1)")),
    }
}

/// Parses a non-empty comma-separated list of positive integers
/// (e.g. `--scales 1,4`).
///
/// # Errors
///
/// Returns a one-line message naming the flag when the list is empty or
/// any element is empty, non-numeric, or zero.
pub fn parse_positive_list(flag: &str, value: &str) -> Result<Vec<u32>, String> {
    if value.trim().is_empty() {
        return Err(format!("invalid {flag} `{value}` (expected a non-empty list like 1,4)"));
    }
    value.split(',').map(|item| parse_positive(flag, item)).collect()
}

/// Parses a non-empty comma-separated list of `u64` seeds (zero is a
/// valid seed, unlike scales).
///
/// # Errors
///
/// Returns a one-line message naming the flag when the list is empty or
/// any element is empty or non-numeric.
pub fn parse_seed_list(flag: &str, value: &str) -> Result<Vec<u64>, String> {
    if value.trim().is_empty() {
        return Err(format!("invalid {flag} `{value}` (expected a non-empty list like 0,1,2)"));
    }
    value
        .split(',')
        .map(|item| {
            item.trim()
                .parse::<u64>()
                .map_err(|_| format!("invalid {flag} `{value}` (expected integer seeds >= 0)"))
        })
        .collect()
}

/// Parses a non-empty comma-separated list of names (e.g.
/// `--benchmarks expr,route`). Elements are trimmed; empty elements are
/// rejected so `a,,b` and trailing commas fail loudly.
///
/// # Errors
///
/// Returns a one-line message naming the flag when the list or any
/// element is empty.
pub fn parse_name_list(flag: &str, value: &str) -> Result<Vec<String>, String> {
    if value.trim().is_empty() {
        return Err(format!("invalid {flag} `{value}` (expected a non-empty list like a,b)"));
    }
    value
        .split(',')
        .map(|item| {
            let item = item.trim();
            if item.is_empty() {
                Err(format!("invalid {flag} `{value}` (empty element in list)"))
            } else {
                Ok(item.to_string())
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_accepts_and_trims() {
        assert_eq!(parse_positive("--scale", "4"), Ok(4));
        assert_eq!(parse_positive("--scale", " 7 "), Ok(7));
    }

    #[test]
    fn positive_rejects_zero_empty_and_garbage() {
        for bad in ["0", "", "  ", "-1", "1.5", "abc", "4x"] {
            let err = parse_positive("--scale", bad).unwrap_err();
            assert!(err.contains("--scale"), "{err}");
            assert!(err.contains(">= 1"), "{err}");
        }
    }

    #[test]
    fn list_parses_and_trims_elements() {
        assert_eq!(parse_positive_list("--scales", "1,4"), Ok(vec![1, 4]));
        assert_eq!(parse_positive_list("--scales", " 2 , 8 "), Ok(vec![2, 8]));
    }

    #[test]
    fn list_rejects_empty_zero_and_trailing_comma() {
        for bad in ["", "  ", "1,0", "0", "1,,4", "1,4,", "a,b"] {
            let err = parse_positive_list("--scales", bad).unwrap_err();
            assert!(err.contains("--scales"), "{err}");
        }
    }

    #[test]
    fn seed_list_allows_zero_and_trims() {
        assert_eq!(parse_seed_list("--seeds", "0,1, 2"), Ok(vec![0, 1, 2]));
        assert_eq!(parse_seed_list("--seeds", "18446744073709551615"), Ok(vec![u64::MAX]));
    }

    #[test]
    fn seed_list_rejects_empty_and_garbage() {
        for bad in ["", " ", "1,,2", "1,x", "-1", "1,2,"] {
            let err = parse_seed_list("--seeds", bad).unwrap_err();
            assert!(err.contains("--seeds"), "{err}");
        }
    }

    #[test]
    fn name_list_trims_and_rejects_empties() {
        assert_eq!(
            parse_name_list("--benchmarks", "expr, route"),
            Ok(vec!["expr".to_string(), "route".to_string()])
        );
        for bad in ["", "  ", "a,,b", "a,b,"] {
            let err = parse_name_list("--benchmarks", bad).unwrap_err();
            assert!(err.contains("--benchmarks"), "{err}");
        }
    }
}
