//! Strict parsing of numeric CLI flag values.
//!
//! Shared by every `dide` subcommand so a bad `--scale`, `--scales`,
//! `--last` or `--sample-every` is rejected with a one-line error instead
//! of panicking deep inside a workload build (scale 0 builds a degenerate
//! program; a zero sampling period would divide by zero in the event
//! trace).

/// Parses one positive (>= 1) integer flag value.
///
/// # Errors
///
/// Returns a one-line message naming the flag when the value is empty,
/// non-numeric, or zero.
pub fn parse_positive(flag: &str, value: &str) -> Result<u32, String> {
    match value.trim().parse::<u32>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("invalid {flag} `{value}` (expected an integer >= 1)")),
    }
}

/// Parses a non-empty comma-separated list of positive integers
/// (e.g. `--scales 1,4`).
///
/// # Errors
///
/// Returns a one-line message naming the flag when the list is empty or
/// any element is empty, non-numeric, or zero.
pub fn parse_positive_list(flag: &str, value: &str) -> Result<Vec<u32>, String> {
    if value.trim().is_empty() {
        return Err(format!("invalid {flag} `{value}` (expected a non-empty list like 1,4)"));
    }
    value.split(',').map(|item| parse_positive(flag, item)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_accepts_and_trims() {
        assert_eq!(parse_positive("--scale", "4"), Ok(4));
        assert_eq!(parse_positive("--scale", " 7 "), Ok(7));
    }

    #[test]
    fn positive_rejects_zero_empty_and_garbage() {
        for bad in ["0", "", "  ", "-1", "1.5", "abc", "4x"] {
            let err = parse_positive("--scale", bad).unwrap_err();
            assert!(err.contains("--scale"), "{err}");
            assert!(err.contains(">= 1"), "{err}");
        }
    }

    #[test]
    fn list_parses_and_trims_elements() {
        assert_eq!(parse_positive_list("--scales", "1,4"), Ok(vec![1, 4]));
        assert_eq!(parse_positive_list("--scales", " 2 , 8 "), Ok(vec![2, 8]));
    }

    #[test]
    fn list_rejects_empty_zero_and_trailing_comma() {
        for bad in ["", "  ", "1,0", "0", "1,,4", "1,4,", "a,b"] {
            let err = parse_positive_list("--scales", bad).unwrap_err();
            assert!(err.contains("--scales"), "{err}");
        }
    }
}
