//! Append-only JSONL result store for campaign runs.
//!
//! A campaign writes one **header** line describing the grid, then one
//! single-line JSON **record** per unique job, in job-sequence order. The
//! format is append-only and line-oriented on purpose:
//!
//! * records are written strictly in sequence order (the work-stealing
//!   scheduler's in-order sink), so the file is **byte-identical for any
//!   `--jobs` count** — determinism is checked by `cmp`, not by a schema
//!   validator;
//! * a crash leaves a clean prefix plus at most one torn trailing line; a
//!   sidecar **cursor** (written with fsync + atomic rename on every commit
//!   batch) records how many records and bytes are durable, so `--resume`
//!   truncates to the cursor and continues from the next sequence number,
//!   producing a final store byte-identical to an uninterrupted run.
//!
//! Records are flat JSON objects (string and `u64` values only — counters
//! come from [`dide_obs::CounterSet`], which is integer-valued by design),
//! so the hand-rolled parser here stays small and total. The build host has
//! no serde; this mirrors the `BENCH.json` approach.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Schema tag of the store header line (record lines carry the
/// `dide-stats/v1` schema of their counter payload).
pub const CAMPAIGN_STORE_SCHEMA: &str = "dide-campaign-store/v1";

/// Schema tag of the cursor sidecar.
pub const CURSOR_SCHEMA: &str = "dide-campaign-cursor/v1";

/// A flat JSON field value: campaign records hold nothing else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// A JSON string.
    Str(String),
    /// A non-negative JSON integer.
    Num(u64),
}

impl FieldValue {
    /// The value rendered the way `--where` matches it: strings verbatim,
    /// numbers in decimal.
    #[must_use]
    pub fn as_match_text(&self) -> String {
        match self {
            FieldValue::Str(s) => s.clone(),
            FieldValue::Num(n) => n.to_string(),
        }
    }
}

/// Parses one single-line flat JSON object (string / `u64` values) into
/// ordered `(name, value)` pairs.
///
/// # Errors
///
/// Returns a one-line description if the line is not a flat object of
/// string and integer fields (torn tail lines fail here and are dropped by
/// readers).
pub fn parse_record_fields(line: &str) -> Result<Vec<(String, FieldValue)>, String> {
    let mut fields = Vec::new();
    let bytes = line.trim();
    let inner = bytes
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .ok_or_else(|| "record is not a JSON object".to_string())?;
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let (name, after) = parse_json_string(rest)?;
        let after = after
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| format!("missing `:` after field `{name}`"))?
            .trim_start();
        let (value, after) = if after.starts_with('"') {
            let (s, a) = parse_json_string(after)?;
            (FieldValue::Str(s), a)
        } else {
            let end = after.find(|c: char| !c.is_ascii_digit()).unwrap_or(after.len());
            let digits = &after[..end];
            let num = digits
                .parse::<u64>()
                .map_err(|_| format!("field `{name}` has a non-integer value"))?;
            (FieldValue::Num(num), &after[end..])
        };
        fields.push((name, value));
        rest = after.trim_start();
        match rest.strip_prefix(',') {
            Some(r) => rest = r.trim_start(),
            None if rest.is_empty() => break,
            None => return Err("expected `,` between fields".to_string()),
        }
    }
    Ok(fields)
}

/// Parses a leading JSON string, returning `(decoded, remainder)`.
fn parse_json_string(s: &str) -> Result<(String, &str), String> {
    let rest = s.strip_prefix('"').ok_or_else(|| "expected `\"`".to_string())?;
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &rest[i + 1..])),
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, c @ ('"' | '\\' | '/'))) => out.push(c),
                Some((j, 'u')) => {
                    let hex = rest.get(j + 1..j + 5).ok_or("truncated \\u escape")?;
                    let code =
                        u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
                    out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    for _ in 0..4 {
                        chars.next();
                    }
                }
                _ => return Err("bad escape in string".to_string()),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

/// Renders ordered `(name, value)` fields as one compact JSON line (no
/// trailing newline).
#[must_use]
pub fn render_record(fields: &[(String, FieldValue)]) -> String {
    let mut out = String::from("{");
    for (i, (name, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":", dide_obs::json_escape(name)));
        match value {
            FieldValue::Str(s) => out.push_str(&format!("\"{}\"", dide_obs::json_escape(s))),
            FieldValue::Num(n) => out.push_str(&n.to_string()),
        }
    }
    out.push('}');
    out
}

fn cursor_path(store: &Path) -> PathBuf {
    let mut name = store.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".cursor");
    store.with_file_name(name)
}

/// The durable progress marker of a store: how many records (and bytes)
/// survived the last committed batch, and the fingerprint of the grid that
/// produced them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cursor {
    /// Fingerprint of the expanded, canonicalized grid.
    pub grid: String,
    /// Number of durable records (header line excluded).
    pub records: u64,
    /// Store size in bytes up to and including the last durable record.
    pub bytes: u64,
}

impl Cursor {
    fn render(&self) -> String {
        render_record(&[
            ("schema".to_string(), FieldValue::Str(CURSOR_SCHEMA.to_string())),
            ("grid".to_string(), FieldValue::Str(self.grid.clone())),
            ("records".to_string(), FieldValue::Num(self.records)),
            ("bytes".to_string(), FieldValue::Num(self.bytes)),
        ])
    }

    fn parse(text: &str) -> Result<Cursor, String> {
        let fields = parse_record_fields(text.lines().next().unwrap_or(""))?;
        let get = |name: &str| {
            fields
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| format!("cursor is missing `{name}`"))
        };
        match get("schema")? {
            FieldValue::Str(s) if s == CURSOR_SCHEMA => {}
            other => return Err(format!("unsupported cursor schema {other:?}")),
        }
        let grid = match get("grid")? {
            FieldValue::Str(s) => s,
            FieldValue::Num(_) => return Err("cursor `grid` must be a string".to_string()),
        };
        let num = |v: FieldValue, name: &str| match v {
            FieldValue::Num(n) => Ok(n),
            FieldValue::Str(_) => Err(format!("cursor `{name}` must be an integer")),
        };
        let records = num(get("records")?, "records")?;
        let bytes = num(get("bytes")?, "bytes")?;
        Ok(Cursor { grid, records, bytes })
    }
}

/// Append-only writer of a campaign store plus its fsync'd cursor sidecar.
#[derive(Debug)]
pub struct StoreWriter {
    file: File,
    path: PathBuf,
    grid: String,
    records: u64,
    bytes: u64,
    pending: u64,
    flush_every: u64,
}

impl StoreWriter {
    /// Creates (truncating) a store at `path`, writes the header line and
    /// commits an empty cursor. `flush_every` is the commit batch size in
    /// records (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Any I/O failure creating or syncing the files.
    pub fn create(
        path: &Path,
        grid_fingerprint: &str,
        jobs_unique: u64,
        flush_every: u64,
    ) -> io::Result<StoreWriter> {
        let mut file = File::create(path)?;
        let header = render_record(&[
            ("schema".to_string(), FieldValue::Str(CAMPAIGN_STORE_SCHEMA.to_string())),
            ("grid".to_string(), FieldValue::Str(grid_fingerprint.to_string())),
            ("jobs".to_string(), FieldValue::Num(jobs_unique)),
        ]);
        file.write_all(header.as_bytes())?;
        file.write_all(b"\n")?;
        let bytes = (header.len() + 1) as u64;
        let mut writer = StoreWriter {
            file,
            path: path.to_path_buf(),
            grid: grid_fingerprint.to_string(),
            records: 0,
            bytes,
            pending: 0,
            flush_every: flush_every.max(1),
        };
        writer.commit()?;
        Ok(writer)
    }

    /// Reopens an existing store for resumption: validates the header and
    /// cursor against `grid_fingerprint`, truncates any uncommitted tail,
    /// and returns the writer positioned after the last durable record.
    ///
    /// # Errors
    ///
    /// Fails if the store or cursor is missing or malformed, or if either
    /// fingerprint does not match (resuming a different grid would silently
    /// interleave incompatible records).
    pub fn resume(
        path: &Path,
        grid_fingerprint: &str,
        flush_every: u64,
    ) -> io::Result<StoreWriter> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let cursor_text = fs::read_to_string(cursor_path(path))
            .map_err(|e| bad(format!("cannot read cursor for {}: {e}", path.display())))?;
        let cursor = Cursor::parse(&cursor_text).map_err(bad)?;
        if cursor.grid != grid_fingerprint {
            return Err(bad(format!(
                "cursor grid {} does not match this campaign grid {grid_fingerprint}",
                cursor.grid
            )));
        }
        let contents = fs::read_to_string(path)?;
        let header_line = contents.lines().next().unwrap_or("");
        let header = parse_record_fields(header_line).map_err(bad)?;
        match header.iter().find(|(n, _)| n == "grid") {
            Some((_, FieldValue::Str(g))) if g == grid_fingerprint => {}
            _ => return Err(bad("store header grid mismatch".to_string())),
        }
        if (contents.len() as u64) < cursor.bytes {
            return Err(bad("store is shorter than its cursor".to_string()));
        }
        // Drop the uncommitted tail (possibly torn) past the cursor.
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(cursor.bytes)?;
        drop(file);
        let mut file = OpenOptions::new().append(true).open(path)?;
        file.flush()?;
        Ok(StoreWriter {
            file,
            path: path.to_path_buf(),
            grid: grid_fingerprint.to_string(),
            records: cursor.records,
            bytes: cursor.bytes,
            pending: 0,
            flush_every: flush_every.max(1),
        })
    }

    /// Number of durable + appended records so far.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Appends one record line, committing (fsync store, then atomically
    /// replace the cursor) every `flush_every` records.
    ///
    /// # Errors
    ///
    /// Any I/O failure appending or committing.
    pub fn append(&mut self, line: &str) -> io::Result<()> {
        debug_assert!(!line.contains('\n'), "records are single lines");
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.bytes += (line.len() + 1) as u64;
        self.records += 1;
        self.pending += 1;
        if self.pending >= self.flush_every {
            self.commit()?;
        }
        Ok(())
    }

    /// Forces a commit: fsync the store, then write the cursor sidecar via
    /// write-temp + fsync + rename so the cursor is always a complete
    /// document pointing at durable bytes.
    ///
    /// # Errors
    ///
    /// Any I/O failure syncing or renaming.
    pub fn commit(&mut self) -> io::Result<()> {
        self.file.flush()?;
        self.file.sync_data()?;
        let cursor = Cursor { grid: self.grid.clone(), records: self.records, bytes: self.bytes };
        let final_path = cursor_path(&self.path);
        let tmp_path = final_path.with_extension("cursor.tmp");
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(cursor.render().as_bytes())?;
        tmp.write_all(b"\n")?;
        tmp.sync_data()?;
        drop(tmp);
        fs::rename(&tmp_path, &final_path)?;
        self.pending = 0;
        Ok(())
    }
}

/// A fully parsed campaign store: header fields plus per-record fields.
#[derive(Debug)]
pub struct StoreReader {
    /// Parsed header fields.
    pub header: Vec<(String, FieldValue)>,
    /// Parsed records, in file (= job sequence) order.
    pub records: Vec<Vec<(String, FieldValue)>>,
}

impl StoreReader {
    /// Reads and parses a store file. A torn trailing line (no newline, or
    /// unparseable) is dropped, matching crash semantics; torn lines
    /// *before* the end are an error.
    ///
    /// # Errors
    ///
    /// Missing file, malformed header, or a malformed non-final record.
    pub fn open(path: &Path) -> io::Result<StoreReader> {
        let contents = fs::read_to_string(path)?;
        StoreReader::parse(&contents).map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))
    }

    /// Parses store contents (see [`StoreReader::open`]).
    ///
    /// # Errors
    ///
    /// Malformed header or a malformed non-final record.
    pub fn parse(contents: &str) -> Result<StoreReader, String> {
        let mut lines = contents.split_inclusive('\n');
        let header_line = lines.next().ok_or_else(|| "store is empty (no header)".to_string())?;
        if !header_line.ends_with('\n') {
            return Err("store header is torn".to_string());
        }
        let header = parse_record_fields(header_line)?;
        match header.iter().find(|(n, _)| n == "schema") {
            Some((_, FieldValue::Str(s))) if s == CAMPAIGN_STORE_SCHEMA => {}
            other => return Err(format!("unsupported store schema: {other:?}")),
        }
        let mut records = Vec::new();
        let mut pending: Option<String> = None;
        for line in lines {
            if let Some(torn) = pending.take() {
                return Err(format!("malformed record before end of store: {torn}"));
            }
            let complete = line.ends_with('\n');
            match parse_record_fields(line) {
                Ok(fields) if complete => records.push(fields),
                // A torn or unparseable final line is dropped; remember it
                // so the same defect mid-file still errors.
                _ => pending = Some(line.trim_end().to_string()),
            }
        }
        Ok(StoreReader { header, records })
    }

    /// The match-text value of `field` in record `i`, if present.
    #[must_use]
    pub fn field(&self, i: usize, field: &str) -> Option<String> {
        self.records.get(i)?.iter().find(|(n, _)| n == field).map(|(_, v)| v.as_match_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dide-store-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("campaign.jsonl")
    }

    fn record(seq: u64, bench: &str) -> String {
        render_record(&[
            ("seq".to_string(), FieldValue::Num(seq)),
            ("benchmark".to_string(), FieldValue::Str(bench.to_string())),
        ])
    }

    #[test]
    fn roundtrip_parse_render() {
        let fields = vec![
            ("schema".to_string(), FieldValue::Str("dide-stats/v1".to_string())),
            ("seq".to_string(), FieldValue::Num(3)),
            ("name".to_string(), FieldValue::Str("a\"b\\c".to_string())),
        ];
        let line = render_record(&fields);
        assert_eq!(parse_record_fields(&line).unwrap(), fields);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_record_fields("not json").is_err());
        assert!(parse_record_fields("{\"a\":}").is_err());
        assert!(parse_record_fields("{\"a\":1.5}").is_err());
        assert!(parse_record_fields("{\"a\":1 \"b\":2}").is_err());
    }

    #[test]
    fn writer_then_reader_roundtrip() {
        let path = tmp("roundtrip");
        let mut w = StoreWriter::create(&path, "f00d", 2, 1).unwrap();
        w.append(&record(0, "expr")).unwrap();
        w.append(&record(1, "route")).unwrap();
        w.commit().unwrap();
        let r = StoreReader::open(&path).unwrap();
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.field(0, "benchmark").as_deref(), Some("expr"));
        assert_eq!(r.field(1, "seq").as_deref(), Some("1"));
    }

    #[test]
    fn torn_tail_is_dropped_but_mid_file_damage_errors() {
        let path = tmp("torn");
        let mut w = StoreWriter::create(&path, "f00d", 2, 10).unwrap();
        w.append(&record(0, "expr")).unwrap();
        w.commit().unwrap();
        let mut contents = fs::read_to_string(&path).unwrap();
        contents.push_str("{\"seq\":1,\"bench");
        let r = StoreReader::parse(&contents).unwrap();
        assert_eq!(r.records.len(), 1, "torn tail dropped");
        let damaged = contents.clone() + "\n" + &record(2, "sort") + "\n";
        assert!(StoreReader::parse(&damaged).is_err(), "mid-file damage must not be silent");
    }

    #[test]
    fn resume_truncates_uncommitted_tail() {
        let path = tmp("resume");
        let mut w = StoreWriter::create(&path, "f00d", 3, 100).unwrap();
        w.append(&record(0, "expr")).unwrap();
        w.commit().unwrap();
        // Appended but never committed: durable store may contain it, the
        // cursor does not.
        w.append(&record(1, "route")).unwrap();
        drop(w);
        let mut w = StoreWriter::resume(&path, "f00d", 100).unwrap();
        assert_eq!(w.records(), 1);
        w.append(&record(1, "route")).unwrap();
        w.commit().unwrap();
        let r = StoreReader::open(&path).unwrap();
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.field(1, "benchmark").as_deref(), Some("route"));
    }

    #[test]
    fn resume_rejects_grid_mismatch() {
        let path = tmp("mismatch");
        let w = StoreWriter::create(&path, "f00d", 0, 1).unwrap();
        drop(w);
        let err = StoreWriter::resume(&path, "beef", 1).unwrap_err();
        assert!(err.to_string().contains("does not match"), "{err}");
    }
}
