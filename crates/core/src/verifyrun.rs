//! The `dide verify` driver: differential fuzzing and golden-table
//! regression from the command line.
//!
//! Two modes share the subcommand:
//!
//! * **fuzz** ([`run_verify`]) — replay the on-disk corpus of previously
//!   found failures first, then fan fresh seeds over the worker pool;
//!   every seed runs the full differential check (second liveness oracle
//!   and metamorphic invariants, see the `dide-verify` crate). New failures
//!   are shrunk to a minimal generator configuration and persisted to the
//!   corpus.
//! * **golden** ([`run_golden`]) — render the E1–E18 experiment tables and
//!   compare them byte-for-byte against committed snapshots
//!   (`--bless` rewrites them).
//!
//! Like the experiment runner, both reports are **byte-identical for any
//! `--jobs` value**: work is fanned out by [`harness::map_ordered`], which
//! reassembles results in input order, and nothing timing-dependent goes
//! into the report.

use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;

use dide_verify::{
    bless_golden, check_invariants, check_streaming, compare_golden, differential_verdicts,
    load_corpus, save_case, shrink_case, verify_seed, verify_seed_with, CorpusCase,
};
use dide_workloads::random_program;

use crate::harness;
use crate::runner::{run_experiments, ExperimentOptions};
use crate::statsrun::{run_stats, RunSelection, StatsOptions};
use crate::workbench::BenchCase;
use dide_workloads::OptLevel;

/// Options for [`run_verify`] (the fuzzing mode of `dide verify`).
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Number of fresh random seeds to check (seeds `0..seeds`).
    pub seeds: u64,
    /// Worker threads (`0` = available parallelism; `1` = serial). The
    /// report is byte-identical for every value.
    pub jobs: usize,
    /// Corpus directory: previously failing cases are replayed from here
    /// before fresh seeds, and new failures are shrunk and saved here.
    /// `None` disables persistence entirely.
    pub corpus: Option<PathBuf>,
}

impl Default for VerifyOptions {
    fn default() -> VerifyOptions {
        VerifyOptions { seeds: 64, jobs: 0, corpus: None }
    }
}

/// The result of one [`run_verify`] call.
#[derive(Debug, Clone)]
pub struct VerifyRun {
    /// Human-readable report (deterministic for a given option set).
    pub report: String,
    /// Corpus cases replayed before the random sweep.
    pub corpus_replayed: usize,
    /// Fresh seeds checked.
    pub seeds_checked: u64,
    /// Total failing cases (corpus replays still failing + new failures).
    pub failures: usize,
}

impl VerifyRun {
    /// Whether every corpus case and every fresh seed passed.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.failures == 0
    }
}

fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        harness::default_jobs()
    } else {
        jobs
    }
}

/// Replays the corpus, then sweeps fresh seeds through the differential
/// verifier, shrinking and persisting any new failure.
///
/// # Errors
///
/// Propagates filesystem errors from corpus loading and saving; a missing
/// corpus directory is an empty corpus, not an error. Verification
/// failures are reported in the returned [`VerifyRun`], not as `Err`.
pub fn run_verify(options: &VerifyOptions) -> io::Result<VerifyRun> {
    let jobs = effective_jobs(options.jobs);
    let mut report = String::new();
    let mut failures = 0usize;

    // Shipped `.asm` workloads first: each runs the same differential
    // check (second liveness oracle + metamorphic invariants) as a fuzz
    // seed, so hand-written external programs exercise paths the
    // generator's canonical encodings never produce.
    for spec in dide_workloads::asm_suite() {
        let case = BenchCase::cached(spec, OptLevel::O2, 1);
        let mismatches = differential_verdicts(&case.trace, &case.analysis);
        let violations = check_invariants(&case.trace, &case.analysis);
        if mismatches.is_empty() && violations.is_empty() {
            let _ = writeln!(report, "asm {}: clean ({} insts)", spec.name, case.trace.len());
        } else {
            failures += 1;
            let _ = writeln!(
                report,
                "asm {}: FAILURE ({} verdict mismatch(es), {} invariant violation(s))",
                spec.name,
                mismatches.len(),
                violations.len()
            );
            for m in mismatches.iter().take(3) {
                let _ = writeln!(report, "  {m}");
            }
            for v in violations.iter().take(3) {
                let _ = writeln!(report, "  {v}");
            }
        }
    }

    // The one `.asm` workload with a scale knob (matmul's outer rounds
    // loop) additionally runs the full streaming differential on a scaled
    // build, so the multi-epoch bench enrollments rest on a verified path.
    {
        let spec = dide_workloads::find_workload("matmul").expect("matmul is enrolled");
        let scale = 2;
        let case = BenchCase::cached(spec, OptLevel::O2, scale);
        let program = spec.build(OptLevel::O2, scale);
        let violations = check_streaming(&program, &case.trace, &case.analysis);
        if violations.is_empty() {
            let _ = writeln!(
                report,
                "asm matmul@s{scale} (streamed): clean ({} insts)",
                case.trace.len()
            );
        } else {
            failures += 1;
            let _ = writeln!(
                report,
                "asm matmul@s{scale} (streamed): FAILURE ({} violation(s))",
                violations.len()
            );
            for v in violations.iter().take(3) {
                let _ = writeln!(report, "  {v}");
            }
        }
    }

    // Corpus replay before fresh seeds: a once-found bug stays found
    // until fixed.
    let corpus = match &options.corpus {
        Some(dir) => load_corpus(dir)?,
        None => Vec::new(),
    };
    if !corpus.is_empty() {
        let _ = writeln!(report, "replaying {} corpus case(s)", corpus.len());
        let replayed =
            harness::map_ordered(jobs, &corpus, |case| verify_seed_with(case.seed, &case.config));
        for (case, result) in corpus.iter().zip(&replayed) {
            if result.is_clean() {
                let _ = writeln!(
                    report,
                    "  seed {:#018x}: clean (fixed — the case file can be deleted)",
                    case.seed
                );
            } else {
                failures += 1;
                let _ = writeln!(report, "  STILL FAILING: {}", result.describe());
            }
        }
    }

    // Fresh random sweep. Each seed derives its own generator config, so
    // the fuzzer explores program shapes as well as contents.
    let seeds: Vec<u64> = (0..options.seeds).collect();
    let results = harness::map_ordered(jobs, &seeds, |&seed| verify_seed(seed));
    let mut total_insts = 0u64;
    let mut total_dead = 0u64;
    for result in &results {
        total_insts += result.trace_len as u64;
        total_dead += result.dead_total;
        if result.is_clean() {
            continue;
        }
        failures += 1;
        let _ = writeln!(report, "FAILURE: {}", result.describe());
        // Shrink serially (it re-runs the whole check O(log) times per
        // config field) and persist, so the failure reproduces minimally
        // on the next run.
        if let Some(dir) = &options.corpus {
            let shrunk = shrink_case(result.seed, &result.config, |seed, config| {
                !verify_seed_with(seed, config).is_clean()
            });
            let minimal = verify_seed_with(result.seed, &shrunk);
            let reason = minimal
                .mismatches
                .iter()
                .chain(&minimal.violations)
                .cloned()
                .collect::<Vec<_>>()
                .join("\n");
            let listing = random_program(result.seed, &shrunk).listing();
            let case = CorpusCase { seed: result.seed, config: shrunk, reason };
            let path = save_case(dir, &case, &listing)?;
            let _ = writeln!(report, "  shrunk case saved to {}", path.display());
        }
    }

    let _ = writeln!(
        report,
        "checked {} seed(s) ({} dynamic instructions, {} oracle-dead): {} failure(s)",
        options.seeds, total_insts, total_dead, failures
    );
    Ok(VerifyRun { report, corpus_replayed: corpus.len(), seeds_checked: options.seeds, failures })
}

/// Options for [`run_golden`] (the snapshot mode of `dide verify`).
#[derive(Debug, Clone)]
pub struct GoldenOptions {
    /// Snapshot directory (the committed tree uses `tests/golden`).
    pub dir: PathBuf,
    /// Lower-cased experiment ids to check (`None` = all of E1–E18).
    pub only: Option<Vec<String>>,
    /// Worker threads for rendering (`0` = available parallelism). Does
    /// not affect the rendered bytes.
    pub jobs: usize,
    /// Rewrite the snapshots instead of comparing against them.
    pub bless: bool,
}

impl Default for GoldenOptions {
    fn default() -> GoldenOptions {
        GoldenOptions { dir: PathBuf::from("tests/golden"), only: None, jobs: 0, bless: false }
    }
}

/// The result of one [`run_golden`] call.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    /// Human-readable report.
    pub report: String,
    /// Experiments whose table differs from (or lacks) a snapshot. Always
    /// `0` after a bless.
    pub mismatches: usize,
}

/// Renders the (selected) experiment tables at scale 1 and compares them
/// byte-for-byte against the snapshots in `options.dir` — or rewrites the
/// snapshots when `options.bless` is set.
///
/// # Errors
///
/// Propagates filesystem errors; table mismatches are reported in the
/// returned [`GoldenRun`], not as `Err`.
///
/// # Panics
///
/// Panics if a workload fails to build or trace (a workload-generator
/// bug), as [`run_experiments`] does.
pub fn run_golden(options: &GoldenOptions) -> io::Result<GoldenRun> {
    let run = run_experiments(&ExperimentOptions {
        only: options.only.clone(),
        jobs: options.jobs,
        ..ExperimentOptions::default()
    });
    let mut rendered = run.per_experiment.clone();
    rendered.extend(stats_documents(options.only.as_deref()));
    rendered.extend(asm_documents(options.only.as_deref()));
    let mut report = String::new();
    if options.bless {
        bless_golden(&options.dir, &rendered)?;
        let _ =
            writeln!(report, "blessed {} snapshot(s) in {}", rendered.len(), options.dir.display());
        return Ok(GoldenRun { report, mismatches: 0 });
    }
    let mismatches = compare_golden(&options.dir, &rendered)?;
    for m in &mismatches {
        let _ = writeln!(report, "MISMATCH {}: {}", m.id, m.message);
    }
    let _ = writeln!(
        report,
        "compared {} table(s) against {}: {} mismatch(es)",
        rendered.len(),
        options.dir.display(),
        mismatches.len()
    );
    Ok(GoldenRun { report, mismatches: mismatches.len() })
}

/// The `dide stats` documents snapshotted alongside the experiment tables:
/// one CFI-elimination run, one oracle run on the baseline machine, and
/// one clustered dead-steering run (elimination off, so every predicted
/// verdict shows up as steering rather than squashing). Stats output is a
/// pure function of the committed code (fixtures are deterministic and
/// jobs-independent), so it goldens exactly like a table.
fn stats_documents(only: Option<&[String]>) -> Vec<(String, String)> {
    let docs: [(&str, RunSelection); 3] = [
        ("stats_expr.json", RunSelection { eliminate: true, ..RunSelection::default() }),
        (
            "stats_route.json",
            RunSelection {
                benchmark: "route".to_string(),
                contended: false,
                oracle: true,
                ..RunSelection::default()
            },
        ),
        (
            "stats_expr_clustered.json",
            RunSelection {
                cluster: Some(dide_pipeline::ClusterConfig {
                    clusters: 2,
                    bypass_penalty: 2,
                    steer: dide_pipeline::SteerPolicy::DeadSteer,
                }),
                ..RunSelection::default()
            },
        ),
    ];
    docs.into_iter()
        .filter(|(id, _)| only.is_none_or(|ids| ids.iter().any(|x| x == id)))
        .map(|(id, select)| {
            let stats =
                run_stats(&StatsOptions { select, format: None }).expect("suite benchmark exists");
            (id.to_string(), stats.output)
        })
        .collect()
}

/// Snapshots pinning the assembly frontend:
///
/// * `run_prime.txt` — the exact stdout of `dide run asm/prime.asm`
///   (default machine, no elimination), so the end-to-end path from `.asm`
///   text through emulation and the pipeline stays byte-stable;
/// * `stats_prime.json` — a full `dide stats` document for an `.asm`
///   workload with CFI elimination enabled;
/// * `asm_errors.txt` — the parser's diagnostic messages over a fixed
///   bad-input corpus, so error-message drift shows up as a reviewable
///   diff.
fn asm_documents(only: Option<&[String]>) -> Vec<(String, String)> {
    type Render = fn() -> String;
    let mut docs: Vec<(&str, Render)> = Vec::new();
    docs.push(("run_prime.txt", || {
        let spec = dide_workloads::find_workload("prime").expect("prime is enrolled");
        let case = BenchCase::cached(spec, OptLevel::O2, 1);
        let stats = dide_pipeline::Core::new(dide_pipeline::PipelineConfig::contended())
            .run(&case.trace, &case.analysis);
        // `dide run` prints the stats via `println!`, so the golden ends
        // with the extra newline.
        format!("{stats}\n")
    }));
    docs.push(("stats_prime.json", || {
        let select = RunSelection {
            benchmark: "prime".to_string(),
            eliminate: true,
            ..RunSelection::default()
        };
        run_stats(&StatsOptions { select, format: None }).expect("prime is enrolled").output
    }));
    docs.push(("asm_errors.txt", dide_asm::diagnostic_snapshot));
    docs.into_iter()
        .filter(|(id, _)| only.is_none_or(|ids| ids.iter().any(|x| x == id)))
        .map(|(id, render)| (id.to_string(), render()))
        .collect()
}
