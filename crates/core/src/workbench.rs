//! Shared benchmark fixtures: traces and oracle analyses, built once and
//! reused across experiments.

use dide_analysis::DeadnessAnalysis;
use dide_emu::{Emulator, Trace};
use dide_workloads::{suite, OptLevel, WorkloadSpec};

/// One benchmark instance: its spec, trace and oracle analysis.
#[derive(Debug)]
pub struct BenchCase {
    /// The workload descriptor.
    pub spec: WorkloadSpec,
    /// Optimization level the program was built at.
    pub opt: OptLevel,
    /// The committed-path dynamic trace.
    pub trace: Trace,
    /// Oracle deadness labels for the trace.
    pub analysis: DeadnessAnalysis,
}

impl BenchCase {
    /// Builds, runs and analyzes one workload.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark program traps — that would be a bug in the
    /// workload generator, not a user error.
    #[must_use]
    pub fn build(spec: WorkloadSpec, opt: OptLevel, scale: u32) -> BenchCase {
        let program = spec.build(opt, scale);
        let trace = Emulator::new(&program)
            .run()
            .unwrap_or_else(|e| panic!("benchmark {} must run to halt: {e}", spec.name));
        let analysis = DeadnessAnalysis::analyze(&trace);
        BenchCase { spec, opt, trace, analysis }
    }
}

/// A set of prepared benchmark cases.
///
/// Experiments take a `Workbench` so that test runs can use a cheap subset
/// while the full harness uses the entire suite at a larger scale.
#[derive(Debug)]
pub struct Workbench {
    cases: Vec<BenchCase>,
}

impl Workbench {
    /// Prepares the full benchmark suite.
    #[must_use]
    pub fn full(opt: OptLevel, scale: u32) -> Workbench {
        Workbench { cases: suite().into_iter().map(|s| BenchCase::build(s, opt, scale)).collect() }
    }

    /// Prepares a named subset of the suite.
    ///
    /// # Panics
    ///
    /// Panics if a name does not match any benchmark.
    #[must_use]
    pub fn subset(names: &[&str], opt: OptLevel, scale: u32) -> Workbench {
        let all = suite();
        let cases = names
            .iter()
            .map(|&n| {
                let spec = *all
                    .iter()
                    .find(|s| s.name == n)
                    .unwrap_or_else(|| panic!("unknown benchmark `{n}`"));
                BenchCase::build(spec, opt, scale)
            })
            .collect();
        Workbench { cases }
    }

    /// The prepared cases, in suite order.
    #[must_use]
    pub fn cases(&self) -> &[BenchCase] {
        &self.cases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_builds_requested_cases() {
        let wb = Workbench::subset(&["stream"], OptLevel::O2, 1);
        assert_eq!(wb.cases().len(), 1);
        assert_eq!(wb.cases()[0].spec.name, "stream");
        assert!(wb.cases()[0].trace.len() > 1000);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        let _ = Workbench::subset(&["nope"], OptLevel::O2, 1);
    }
}
