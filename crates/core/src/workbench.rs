//! Shared benchmark fixtures: traces and oracle analyses, built once per
//! process and reused across experiments, examples, and benches.
//!
//! A [`BenchCase`] is a pure function of `(spec, opt, scale)` — workload
//! programs are generated from fixed seeds, emulation is deterministic, and
//! the oracle analysis is a pure function of the trace. [`BenchCase::cached`]
//! therefore memoizes cases in a process-wide table, and [`Workbench`]
//! construction fans the (independent) per-benchmark builds out across
//! threads; experiments, the `dide experiments` runner, the examples and the
//! bench harness all share one set of fixtures instead of re-deriving them.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use dide_analysis::DeadnessAnalysis;
use dide_emu::{Emulator, Trace};
use dide_workloads::{suite, OptLevel, WorkloadSpec};

use crate::harness::{self, Phase};

/// One benchmark instance: its spec, trace and oracle analysis.
#[derive(Debug)]
pub struct BenchCase {
    /// The workload descriptor.
    pub spec: WorkloadSpec,
    /// Optimization level the program was built at.
    pub opt: OptLevel,
    /// Scale factor the program was built at.
    pub scale: u32,
    /// The committed-path dynamic trace.
    pub trace: Trace,
    /// Oracle deadness labels for the trace.
    pub analysis: DeadnessAnalysis,
}

/// Memo key: a case is a pure function of this tuple.
type CaseKey = (&'static str, OptLevel, u32);

/// Per-key cells so two threads racing on the *same* case build it once,
/// while builds of different cases proceed in parallel.
type CaseCell = Arc<OnceLock<Arc<BenchCase>>>;

fn case_cache() -> &'static Mutex<HashMap<CaseKey, CaseCell>> {
    static CACHE: OnceLock<Mutex<HashMap<CaseKey, CaseCell>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

impl BenchCase {
    /// Builds, runs and analyzes one workload, bypassing the fixture cache.
    ///
    /// Records build/trace/analyze wall-clock in the timing registry
    /// (see [`crate::harness`]). Prefer [`BenchCase::cached`] unless a
    /// freshly built, uniquely owned case is required.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark program traps — that would be a bug in the
    /// workload generator, not a user error.
    #[must_use]
    pub fn build(spec: WorkloadSpec, opt: OptLevel, scale: u32) -> BenchCase {
        let label = format!("{}@{opt}/s{scale}", spec.name);
        let program = harness::time(&label, Phase::Build, || spec.build(opt, scale));
        let trace = harness::time(&label, Phase::Trace, || {
            Emulator::new(&program)
                .run()
                .unwrap_or_else(|e| panic!("benchmark {} must run to halt: {e}", spec.name))
        });
        let analysis = harness::time(&label, Phase::Analyze, || DeadnessAnalysis::analyze(&trace));
        BenchCase { spec, opt, scale, trace, analysis }
    }

    /// Returns the process-wide shared instance of this case, building it
    /// on first use.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark program traps (see [`BenchCase::build`]).
    #[must_use]
    pub fn cached(spec: WorkloadSpec, opt: OptLevel, scale: u32) -> Arc<BenchCase> {
        let cell = {
            let mut cache = case_cache().lock().unwrap();
            cache.entry((spec.name, opt, scale)).or_default().clone()
        };
        // Building outside the cache lock keeps distinct cases parallel;
        // the per-key cell still deduplicates racing builds of one case.
        cell.get_or_init(|| Arc::new(BenchCase::build(spec, opt, scale))).clone()
    }
}

/// A set of prepared benchmark cases.
///
/// Experiments take a `Workbench` so that test runs can use a cheap subset
/// while the full harness uses the entire suite at a larger scale. Cases
/// are built concurrently (one thread per missing case) and shared through
/// the process-wide fixture cache.
#[derive(Debug)]
pub struct Workbench {
    cases: Vec<Arc<BenchCase>>,
}

impl Workbench {
    /// Prepares the full benchmark suite.
    #[must_use]
    pub fn full(opt: OptLevel, scale: u32) -> Workbench {
        Workbench::of_specs(&suite(), opt, scale)
    }

    /// Prepares a named subset of the suite.
    ///
    /// # Panics
    ///
    /// Panics if a name does not match any benchmark.
    #[must_use]
    pub fn subset(names: &[&str], opt: OptLevel, scale: u32) -> Workbench {
        let all = suite();
        let specs: Vec<WorkloadSpec> = names
            .iter()
            .map(|&n| {
                *all.iter()
                    .find(|s| s.name == n)
                    .unwrap_or_else(|| panic!("unknown benchmark `{n}`"))
            })
            .collect();
        Workbench::of_specs(&specs, opt, scale)
    }

    fn of_specs(specs: &[WorkloadSpec], opt: OptLevel, scale: u32) -> Workbench {
        let jobs = harness::default_jobs();
        let cases = harness::map_ordered(jobs, specs, |&spec| BenchCase::cached(spec, opt, scale));
        Workbench { cases }
    }

    /// The prepared cases, in suite order.
    #[must_use]
    pub fn cases(&self) -> &[Arc<BenchCase>] {
        &self.cases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_builds_requested_cases() {
        let wb = Workbench::subset(&["stream"], OptLevel::O2, 1);
        assert_eq!(wb.cases().len(), 1);
        assert_eq!(wb.cases()[0].spec.name, "stream");
        assert_eq!(wb.cases()[0].scale, 1);
        assert!(wb.cases()[0].trace.len() > 1000);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        let _ = Workbench::subset(&["nope"], OptLevel::O2, 1);
    }

    #[test]
    fn cache_returns_the_same_fixture() {
        let a = BenchCase::cached(suite()[0], OptLevel::O2, 1);
        let b = BenchCase::cached(suite()[0], OptLevel::O2, 1);
        assert!(Arc::ptr_eq(&a, &b), "same (spec, opt, scale) must share one build");
        let c = BenchCase::cached(suite()[0], OptLevel::O0, 1);
        assert!(!Arc::ptr_eq(&a, &c), "different opt levels are distinct cases");
    }

    #[test]
    fn workbenches_share_cached_cases() {
        let w1 = Workbench::subset(&["expr", "stream"], OptLevel::O2, 1);
        let w2 = Workbench::subset(&["stream"], OptLevel::O2, 1);
        assert!(Arc::ptr_eq(&w1.cases()[1], &w2.cases()[0]));
    }

    #[test]
    fn concurrent_cached_builds_converge() {
        let spec = *suite().iter().find(|s| s.name == "route").expect("route exists");
        let cases: Vec<Arc<BenchCase>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(move || BenchCase::cached(spec, OptLevel::O2, 1)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for case in &cases[1..] {
            assert!(Arc::ptr_eq(&cases[0], case));
        }
    }
}
