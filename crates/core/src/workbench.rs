//! Shared benchmark fixtures: traces and oracle analyses, built once per
//! process and reused across experiments, examples, benches and campaigns.
//!
//! A [`BenchCase`] is a pure function of `(kind, opt, scale)` — workload
//! programs are generated from fixed seeds, emulation is deterministic, and
//! the oracle analysis is a pure function of the trace. [`BenchCase::cached`]
//! therefore memoizes cases in a process-wide [`FixtureCache`], and
//! [`Workbench`] construction fans the (independent) per-benchmark builds
//! out across threads; experiments, the `dide experiments` runner, the
//! examples, the bench harness and the campaign engine all share one set of
//! fixtures instead of re-deriving them.
//!
//! The memo is **bounded**: a campaign grid can touch thousands of distinct
//! `(kind, opt, scale)` tuples, so the cache holds at most
//! [`FixtureCache::cap`] fixtures and evicts least-recently-used entries.
//! Holders keep their `Arc<BenchCase>` alive across an eviction; only the
//! shared handle is dropped. Hit/miss/eviction counts and the peak resident
//! size feed the campaign's dedup accounting.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use dide_analysis::DeadnessAnalysis;
use dide_emu::{Emulator, Trace};
use dide_workloads::{suite, BenchKind, OptLevel, WorkloadSpec};

use crate::harness::{self, Phase};

/// One benchmark instance: its spec, trace and oracle analysis.
#[derive(Debug)]
pub struct BenchCase {
    /// The workload descriptor.
    pub spec: WorkloadSpec,
    /// Optimization level the program was built at.
    pub opt: OptLevel,
    /// Scale factor the program was built at.
    pub scale: u32,
    /// The committed-path dynamic trace.
    pub trace: Trace,
    /// Oracle deadness labels for the trace.
    pub analysis: DeadnessAnalysis,
}

/// Memo key: a case is a pure function of this tuple. Keyed on the
/// [`BenchKind`] rather than the display name so seeded generator
/// workloads (`BenchKind::Gen`), which all share the static name `"gen"`,
/// still get one entry per seed.
type CaseKey = (BenchKind, OptLevel, u32);

/// Per-key cells so two threads racing on the *same* case build it once,
/// while builds of different cases proceed in parallel.
type CaseCell = Arc<OnceLock<Arc<BenchCase>>>;

/// Default [`FixtureCache`] capacity: far above anything the test suite or
/// the E1–E18 harness touches (two opt levels × one scale × the suite),
/// low enough that a campaign over thousands of tuples stays flat.
pub const DEFAULT_FIXTURE_CAP: usize = 256;

/// Counters snapshot of a [`FixtureCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixtureCacheStats {
    /// Lookups that found an existing (possibly still-building) fixture.
    pub hits: u64,
    /// Lookups that had to insert a fresh build cell.
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Fixtures currently resident.
    pub resident: usize,
    /// Highest resident count ever observed.
    pub peak_resident: usize,
    /// The capacity bound.
    pub cap: usize,
}

struct LruState {
    /// Cell plus last-touch tick, for least-recently-used eviction.
    entries: HashMap<CaseKey, (CaseCell, u64)>,
    tick: u64,
    cap: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    peak_resident: usize,
}

/// A bounded, process-shareable memo of built fixtures.
///
/// The global instance ([`fixture_cache`]) backs [`BenchCase::cached`];
/// tests that need a private capacity bound construct their own.
pub struct FixtureCache {
    state: Mutex<LruState>,
}

impl std::fmt::Debug for FixtureCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("FixtureCache").field("stats", &stats).finish()
    }
}

impl FixtureCache {
    /// Creates an empty cache holding at most `cap` fixtures (`cap` is
    /// clamped to at least 1 — a zero-capacity memo is a contradiction).
    #[must_use]
    pub fn with_cap(cap: usize) -> FixtureCache {
        FixtureCache {
            state: Mutex::new(LruState {
                entries: HashMap::new(),
                tick: 0,
                cap: cap.max(1),
                hits: 0,
                misses: 0,
                evictions: 0,
                peak_resident: 0,
            }),
        }
    }

    /// Re-bounds the cache, evicting least-recently-used entries if the new
    /// capacity is below the current resident count.
    pub fn set_cap(&self, cap: usize) {
        let mut s = self.state.lock().unwrap();
        s.cap = cap.max(1);
        while s.entries.len() > s.cap {
            evict_lru(&mut s);
        }
    }

    /// Current counters (see [`FixtureCacheStats`]).
    #[must_use]
    pub fn stats(&self) -> FixtureCacheStats {
        let s = self.state.lock().unwrap();
        FixtureCacheStats {
            hits: s.hits,
            misses: s.misses,
            evictions: s.evictions,
            resident: s.entries.len(),
            peak_resident: s.peak_resident,
            cap: s.cap,
        }
    }

    /// The shared instance of `(spec, opt, scale)`, building it on first
    /// use (and evicting the least-recently-used fixture if the cache is
    /// full).
    ///
    /// # Panics
    ///
    /// Panics if the benchmark program traps (see [`BenchCase::build`]).
    #[must_use]
    pub fn cached(&self, spec: WorkloadSpec, opt: OptLevel, scale: u32) -> Arc<BenchCase> {
        let cell = {
            let mut s = self.state.lock().unwrap();
            s.tick += 1;
            let tick = s.tick;
            if let Some((cell, touched)) = s.entries.get_mut(&(spec.kind, opt, scale)) {
                *touched = tick;
                let cell = cell.clone();
                s.hits += 1;
                cell
            } else {
                while s.entries.len() >= s.cap {
                    evict_lru(&mut s);
                }
                let cell = CaseCell::default();
                s.entries.insert((spec.kind, opt, scale), (cell.clone(), tick));
                s.misses += 1;
                s.peak_resident = s.peak_resident.max(s.entries.len());
                cell
            }
        };
        // Building outside the cache lock keeps distinct cases parallel;
        // the per-key cell still deduplicates racing builds of one case.
        cell.get_or_init(|| Arc::new(BenchCase::build(spec, opt, scale))).clone()
    }
}

fn evict_lru(s: &mut LruState) {
    let victim = s.entries.iter().min_by_key(|(_, (_, touched))| *touched).map(|(&k, _)| k);
    if let Some(key) = victim {
        s.entries.remove(&key);
        s.evictions += 1;
    }
}

/// The process-wide fixture memo (capacity [`DEFAULT_FIXTURE_CAP`]).
pub fn fixture_cache() -> &'static FixtureCache {
    static CACHE: OnceLock<FixtureCache> = OnceLock::new();
    CACHE.get_or_init(|| FixtureCache::with_cap(DEFAULT_FIXTURE_CAP))
}

impl BenchCase {
    /// Builds, runs and analyzes one workload, bypassing the fixture cache.
    ///
    /// Records build/trace/analyze wall-clock in the timing registry
    /// (see [`crate::harness`]). Prefer [`BenchCase::cached`] unless a
    /// freshly built, uniquely owned case is required.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark program traps — that would be a bug in the
    /// workload generator, not a user error.
    #[must_use]
    pub fn build(spec: WorkloadSpec, opt: OptLevel, scale: u32) -> BenchCase {
        let label = format!("{}@{opt}/s{scale}", spec.name);
        let program = harness::time(&label, Phase::Build, || spec.build(opt, scale));
        let trace = harness::time(&label, Phase::Trace, || {
            Emulator::new(&program)
                .run()
                .unwrap_or_else(|e| panic!("benchmark {} must run to halt: {e}", spec.name))
        });
        let analysis = harness::time(&label, Phase::Analyze, || DeadnessAnalysis::analyze(&trace));
        BenchCase { spec, opt, scale, trace, analysis }
    }

    /// Returns the process-wide shared instance of this case, building it
    /// on first use (see [`fixture_cache`]).
    ///
    /// # Panics
    ///
    /// Panics if the benchmark program traps (see [`BenchCase::build`]).
    #[must_use]
    pub fn cached(spec: WorkloadSpec, opt: OptLevel, scale: u32) -> Arc<BenchCase> {
        fixture_cache().cached(spec, opt, scale)
    }
}

/// A set of prepared benchmark cases.
///
/// Experiments take a `Workbench` so that test runs can use a cheap subset
/// while the full harness uses the entire suite at a larger scale. Cases
/// are built concurrently (one thread per missing case) and shared through
/// the process-wide fixture cache.
#[derive(Debug)]
pub struct Workbench {
    cases: Vec<Arc<BenchCase>>,
}

impl Workbench {
    /// Prepares the full benchmark suite.
    #[must_use]
    pub fn full(opt: OptLevel, scale: u32) -> Workbench {
        Workbench::of_specs(&suite(), opt, scale)
    }

    /// Prepares a named subset of the suite.
    ///
    /// # Panics
    ///
    /// Panics if a name does not match any benchmark.
    #[must_use]
    pub fn subset(names: &[&str], opt: OptLevel, scale: u32) -> Workbench {
        let all = suite();
        let specs: Vec<WorkloadSpec> = names
            .iter()
            .map(|&n| {
                *all.iter()
                    .find(|s| s.name == n)
                    .unwrap_or_else(|| panic!("unknown benchmark `{n}`"))
            })
            .collect();
        Workbench::of_specs(&specs, opt, scale)
    }

    fn of_specs(specs: &[WorkloadSpec], opt: OptLevel, scale: u32) -> Workbench {
        let jobs = harness::default_jobs();
        let cases = harness::map_ordered(jobs, specs, |&spec| BenchCase::cached(spec, opt, scale));
        Workbench { cases }
    }

    /// The prepared cases, in suite order.
    #[must_use]
    pub fn cases(&self) -> &[Arc<BenchCase>] {
        &self.cases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_builds_requested_cases() {
        let wb = Workbench::subset(&["stream"], OptLevel::O2, 1);
        assert_eq!(wb.cases().len(), 1);
        assert_eq!(wb.cases()[0].spec.name, "stream");
        assert_eq!(wb.cases()[0].scale, 1);
        assert!(wb.cases()[0].trace.len() > 1000);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        let _ = Workbench::subset(&["nope"], OptLevel::O2, 1);
    }

    #[test]
    fn cache_returns_the_same_fixture() {
        let a = BenchCase::cached(suite()[0], OptLevel::O2, 1);
        let b = BenchCase::cached(suite()[0], OptLevel::O2, 1);
        assert!(Arc::ptr_eq(&a, &b), "same (spec, opt, scale) must share one build");
        let c = BenchCase::cached(suite()[0], OptLevel::O0, 1);
        assert!(!Arc::ptr_eq(&a, &c), "different opt levels are distinct cases");
    }

    #[test]
    fn workbenches_share_cached_cases() {
        let w1 = Workbench::subset(&["expr", "stream"], OptLevel::O2, 1);
        let w2 = Workbench::subset(&["stream"], OptLevel::O2, 1);
        assert!(Arc::ptr_eq(&w1.cases()[1], &w2.cases()[0]));
    }

    #[test]
    fn concurrent_cached_builds_converge() {
        let spec = *suite().iter().find(|s| s.name == "route").expect("route exists");
        let cases: Vec<Arc<BenchCase>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(move || BenchCase::cached(spec, OptLevel::O2, 1)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for case in &cases[1..] {
            assert!(Arc::ptr_eq(&cases[0], case));
        }
    }

    #[test]
    fn gen_workloads_cache_per_seed() {
        let a = BenchCase::cached(WorkloadSpec::generated(7), OptLevel::O2, 1);
        let b = BenchCase::cached(WorkloadSpec::generated(7), OptLevel::O2, 1);
        let c = BenchCase::cached(WorkloadSpec::generated(8), OptLevel::O2, 1);
        assert!(Arc::ptr_eq(&a, &b), "same seed shares one build");
        assert!(!Arc::ptr_eq(&a, &c), "distinct seeds are distinct cases despite one name");
        assert!(!a.trace.is_empty() && !c.trace.is_empty());
    }

    /// The satellite pressure test: a private cache at cap 4 sees ten
    /// distinct fixtures; resident and peak must stay under the cap and
    /// the accounting must balance.
    #[test]
    fn lru_pressure_keeps_resident_under_cap() {
        let cache = FixtureCache::with_cap(4);
        let mut first_pass = Vec::new();
        for seed in 0..10 {
            first_pass.push(cache.cached(WorkloadSpec::generated(seed), OptLevel::O2, 1));
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 10, "ten distinct fixtures, zero reuse");
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.evictions, 6, "everything beyond the cap was evicted");
        assert_eq!(stats.resident, 4);
        assert!(stats.peak_resident <= stats.cap, "peak {} over cap", stats.peak_resident);
        // Evicted handles stay alive for their holders.
        assert!(first_pass.iter().all(|case| !case.trace.is_empty()));

        // The most recent four are still resident (hits); older seeds
        // rebuild (misses + evictions).
        let again = cache.cached(WorkloadSpec::generated(9), OptLevel::O2, 1);
        assert!(Arc::ptr_eq(&first_pass[9], &again));
        let rebuilt = cache.cached(WorkloadSpec::generated(0), OptLevel::O2, 1);
        assert!(!Arc::ptr_eq(&first_pass[0], &rebuilt), "seed 0 was evicted and rebuilt");
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 11);
        assert!(stats.resident <= 4);
    }

    #[test]
    fn set_cap_evicts_down_and_lru_order_is_respected() {
        let cache = FixtureCache::with_cap(8);
        for seed in 0..4 {
            let _ = cache.cached(WorkloadSpec::generated(100 + seed), OptLevel::O2, 1);
        }
        // Touch seed 100 so it becomes most-recently-used.
        let kept = cache.cached(WorkloadSpec::generated(100), OptLevel::O2, 1);
        cache.set_cap(1);
        let stats = cache.stats();
        assert_eq!(stats.resident, 1);
        assert_eq!(stats.evictions, 3);
        // The survivor is the most recently used entry.
        let again = cache.cached(WorkloadSpec::generated(100), OptLevel::O2, 1);
        assert!(Arc::ptr_eq(&kept, &again));
    }
}
