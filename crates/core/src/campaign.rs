//! The `dide campaign` driver: batch simulation over a parameter grid.
//!
//! A campaign is the cartesian product of benchmark × seed × opt × scale ×
//! machine × elimination × threshold × penalty, run through the
//! work-stealing scheduler ([`crate::harness::map_stealing_sink`]) and
//! recorded in an append-only JSONL store ([`crate::store`]). Three design
//! rules make a 10,000-job campaign practical and auditable:
//!
//! * **Canonical jobs, deduplicated.** Many grid points are aliases: with
//!   elimination off the predictor threshold and violation penalty are
//!   never consulted; the oracle ignores the threshold; seeded generator
//!   workloads ignore opt and scale. Every tuple is rewritten to its
//!   canonical form and duplicates are counted (`campaign.jobs_deduped`)
//!   instead of re-simulated.
//! * **Deterministic store bytes.** Unique jobs carry a sequence number and
//!   records are written strictly in sequence order by the scheduler's
//!   in-order sink, so the store is byte-identical for any `--jobs` count
//!   and `cmp` is the determinism check.
//! * **Crash-safe resume.** The store's fsync'd cursor marks the durable
//!   prefix; `--resume` truncates any torn tail and continues from the next
//!   sequence number, converging on the same bytes as an uninterrupted run.
//!
//! The run's own accounting lives in a `campaign.` / `fixture.` counter
//! registry and is checked against conservation rules
//! ([`campaign_rules`]) the same way pipeline runs are.

use std::fmt::Write as _;
use std::path::PathBuf;

use dide_obs::{check_rules, CounterSet, Expr, Rule};
use dide_pipeline::{
    ClusterConfig, Core, DeadElimConfig, PipelineConfig, PipelineStats, SteerPolicy,
};
use dide_workloads::{find_workload, OptLevel, WorkloadSpec};

use crate::harness::map_stealing_sink;
use crate::statsrun::{full_counters, STATS_SCHEMA};
use crate::store::{render_record, FieldValue, StoreReader, StoreWriter};
use crate::workbench::FixtureCache;
use crate::Table;

/// Elimination mode axis of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Elim {
    /// No elimination: thresholds and penalties are irrelevant.
    Off,
    /// The realistic CFI dead predictor.
    Cfi,
    /// The perfect-knowledge limit study.
    Oracle,
}

impl Elim {
    /// The axis value as written in records and flags.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Elim::Off => "off",
            Elim::Cfi => "cfi",
            Elim::Oracle => "oracle",
        }
    }

    /// Parses one `--elims` element.
    ///
    /// # Errors
    ///
    /// Returns a one-line message for anything but `off`, `cfi`, `oracle`.
    pub fn parse(value: &str) -> Result<Elim, String> {
        match value {
            "off" => Ok(Elim::Off),
            "cfi" => Ok(Elim::Cfi),
            "oracle" => Ok(Elim::Oracle),
            other => Err(format!("invalid --elims `{other}` (expected off, cfi or oracle)")),
        }
    }
}

/// Machine axis of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Machine {
    /// The wide baseline machine.
    Baseline,
    /// The resource-contended machine (the `dide run` default).
    Contended,
    /// The contended machine with the clustered backend (DESIGN.md §11):
    /// two clusters, bypass penalty 2, dead-instruction steering — the
    /// campaign-fixed clustered point; `dide run` exposes the full axes.
    Clustered,
}

impl Machine {
    /// The axis value as written in records and flags.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Machine::Baseline => "baseline",
            Machine::Contended => "contended",
            Machine::Clustered => "clustered",
        }
    }

    /// Parses one `--machines` element.
    ///
    /// # Errors
    ///
    /// Returns a one-line message for anything but `baseline`,
    /// `contended`, `clustered`.
    pub fn parse(value: &str) -> Result<Machine, String> {
        match value {
            "baseline" => Ok(Machine::Baseline),
            "contended" => Ok(Machine::Contended),
            "clustered" => Ok(Machine::Clustered),
            other => Err(format!(
                "invalid --machines `{other}` (expected baseline, contended or clustered)"
            )),
        }
    }

    /// The campaign's pipeline configuration for this machine.
    #[must_use]
    pub fn base_config(self) -> PipelineConfig {
        match self {
            Machine::Baseline => PipelineConfig::baseline(),
            Machine::Contended => PipelineConfig::contended(),
            Machine::Clustered => PipelineConfig::contended().with_cluster(ClusterConfig {
                clusters: 2,
                bypass_penalty: 2,
                steer: SteerPolicy::DeadSteer,
            }),
        }
    }

    /// The cluster count of [`Machine::base_config`] (`0` = unified).
    #[must_use]
    pub fn clusters(self) -> usize {
        self.base_config().cluster.map_or(0, |c| c.clusters)
    }
}

/// The requested parameter grid, before expansion and canonicalization.
#[derive(Debug, Clone)]
pub struct CampaignGrid {
    /// Named suite benchmarks.
    pub benchmarks: Vec<String>,
    /// Seeds for generated (`gen:<seed>`) workloads; empty = none.
    pub seeds: Vec<u64>,
    /// Optimization levels.
    pub opts: Vec<OptLevel>,
    /// Workload scales.
    pub scales: Vec<u32>,
    /// Machine axis.
    pub machines: Vec<Machine>,
    /// Elimination modes.
    pub elims: Vec<Elim>,
    /// CFI confidence thresholds.
    pub thresholds: Vec<u32>,
    /// Dead-tag violation penalties (cycles).
    pub penalties: Vec<u32>,
}

impl Default for CampaignGrid {
    fn default() -> CampaignGrid {
        let elim = DeadElimConfig::default();
        CampaignGrid {
            benchmarks: vec!["expr".to_string()],
            seeds: Vec::new(),
            opts: vec![OptLevel::O2],
            scales: vec![1],
            machines: vec![Machine::Contended],
            elims: vec![Elim::Off, Elim::Cfi],
            thresholds: vec![u32::from(elim.predictor.threshold)],
            penalties: vec![elim.violation_penalty],
        }
    }
}

/// One canonical, unique job of an expanded grid.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Position in the unique-job sequence (the store record order).
    pub seq: u64,
    /// Canonical identity string (the dedup key).
    pub id: String,
    /// The workload to build.
    pub spec: WorkloadSpec,
    /// Display name (`expr`, or `gen:<seed>` for seeded workloads).
    pub benchmark: String,
    /// Optimization level (canonical: `O2` for generated workloads).
    pub opt: OptLevel,
    /// Scale (canonical: 1 for generated workloads).
    pub scale: u32,
    /// Machine selector.
    pub machine: Machine,
    /// Elimination mode.
    pub elim: Elim,
    /// CFI threshold (canonical: the default when not consulted).
    pub threshold: u32,
    /// Violation penalty (canonical: the default when elimination is off).
    pub penalty: u32,
}

impl JobSpec {
    fn config(&self) -> PipelineConfig {
        let machine = self.machine.base_config();
        match self.elim {
            Elim::Off => machine,
            Elim::Cfi | Elim::Oracle => {
                let defaults = DeadElimConfig::default();
                let threshold =
                    u8::try_from(self.threshold).expect("expansion validated the threshold");
                machine.with_elimination(DeadElimConfig {
                    oracle: self.elim == Elim::Oracle,
                    violation_penalty: self.penalty,
                    predictor: dide_predictor::dead::CfiConfig { threshold, ..defaults.predictor },
                    ..defaults
                })
            }
        }
    }
}

/// The expanded grid: unique canonical jobs plus dedup accounting.
#[derive(Debug)]
pub struct ExpandedGrid {
    /// Unique canonical jobs in deterministic expansion order.
    pub jobs: Vec<JobSpec>,
    /// Grid points that canonicalized onto an earlier job.
    pub deduped: u64,
    /// FNV-1a fingerprint over the canonical job ids (hex).
    pub fingerprint: String,
}

/// Expands a grid into unique canonical jobs.
///
/// Canonicalization: `elim=off` pins threshold and penalty to their
/// defaults (neither is consulted); `elim=oracle` pins the threshold (the
/// oracle has no confidence table); generated workloads pin `opt=O2` and
/// `scale=1` (the generator ignores both). Tuples that collide after
/// canonicalization count as `deduped`.
///
/// # Errors
///
/// Returns a one-line message for an unknown benchmark name, an empty
/// axis, or a threshold that does not fit the predictor's counter width.
pub fn expand_grid(grid: &CampaignGrid) -> Result<ExpandedGrid, String> {
    let defaults = DeadElimConfig::default();
    let default_threshold = u32::from(defaults.predictor.threshold);
    let default_penalty = defaults.violation_penalty;

    let mut targets: Vec<(WorkloadSpec, String, bool)> = Vec::new();
    for name in &grid.benchmarks {
        let spec = find_workload(name)
            .ok_or_else(|| format!("unknown benchmark `{name}` (try `dide list`)"))?;
        targets.push((spec, name.clone(), false));
    }
    for &seed in &grid.seeds {
        targets.push((WorkloadSpec::generated(seed), format!("gen:{seed}"), true));
    }
    for (axis, len) in [
        ("benchmarks/seeds", targets.len()),
        ("--opts", grid.opts.len()),
        ("--scales", grid.scales.len()),
        ("--machines", grid.machines.len()),
        ("--elims", grid.elims.len()),
        ("--thresholds", grid.thresholds.len()),
        ("--penalties", grid.penalties.len()),
    ] {
        if len == 0 {
            return Err(format!("campaign grid axis {axis} is empty"));
        }
    }
    // The predictor's confidence counter saturates at 2^counter_bits - 1;
    // a threshold above that would panic at predictor construction.
    let threshold_max = (1u32 << defaults.predictor.counter_bits) - 1;
    for &threshold in &grid.thresholds {
        if threshold > threshold_max {
            return Err(format!(
                "invalid --thresholds `{threshold}` (expected 1..={threshold_max}, \
                 the confidence counter maximum)"
            ));
        }
    }

    let mut jobs: Vec<JobSpec> = Vec::new();
    let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut deduped = 0u64;
    for (spec, benchmark, is_gen) in &targets {
        for &opt in &grid.opts {
            for &scale in &grid.scales {
                for &machine in &grid.machines {
                    for &elim in &grid.elims {
                        for &threshold in &grid.thresholds {
                            for &penalty in &grid.penalties {
                                let (opt, scale) =
                                    if *is_gen { (OptLevel::O2, 1) } else { (opt, scale) };
                                let threshold = match elim {
                                    Elim::Cfi => threshold,
                                    Elim::Off | Elim::Oracle => default_threshold,
                                };
                                let penalty = match elim {
                                    Elim::Cfi | Elim::Oracle => penalty,
                                    Elim::Off => default_penalty,
                                };
                                let id = format!(
                                    "{benchmark}|{opt}|s{scale}|{}|{}|t{threshold}|p{penalty}",
                                    machine.label(),
                                    elim.label()
                                );
                                if !seen.insert(id.clone()) {
                                    deduped += 1;
                                    continue;
                                }
                                jobs.push(JobSpec {
                                    seq: jobs.len() as u64,
                                    id,
                                    spec: *spec,
                                    benchmark: benchmark.clone(),
                                    opt,
                                    scale,
                                    machine,
                                    elim,
                                    threshold,
                                    penalty,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    let fingerprint = fingerprint_ids(jobs.iter().map(|j| j.id.as_str()));
    Ok(ExpandedGrid { jobs, deduped, fingerprint })
}

/// FNV-1a (64-bit) over newline-joined ids, rendered as 16 hex digits.
fn fingerprint_ids<'a>(ids: impl Iterator<Item = &'a str>) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for id in ids {
        for &byte in id.as_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash ^= u64::from(b'\n');
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// Runs one job and renders its store record.
fn run_job(job: &JobSpec, cache: &FixtureCache) -> (String, u64) {
    let case = cache.cached(job.spec, job.opt, job.scale);
    let stats = Core::new(job.config()).run(&case.trace, &case.analysis);
    let counters = full_counters(&case, &stats);
    let violations =
        check_rules(&PipelineStats::conservation_rules_for(job.machine.clusters()), &counters);
    let mut fields: Vec<(String, FieldValue)> = vec![
        ("schema".to_string(), FieldValue::Str(STATS_SCHEMA.to_string())),
        ("seq".to_string(), FieldValue::Num(job.seq)),
        ("id".to_string(), FieldValue::Str(job.id.clone())),
        ("benchmark".to_string(), FieldValue::Str(job.benchmark.clone())),
        ("opt".to_string(), FieldValue::Str(job.opt.to_string())),
        ("scale".to_string(), FieldValue::Num(u64::from(job.scale))),
        ("machine".to_string(), FieldValue::Str(job.machine.label().to_string())),
        ("elim".to_string(), FieldValue::Str(job.elim.label().to_string())),
        ("threshold".to_string(), FieldValue::Num(u64::from(job.threshold))),
        ("penalty".to_string(), FieldValue::Num(u64::from(job.penalty))),
        ("violations".to_string(), FieldValue::Num(violations.len() as u64)),
    ];
    for (name, value) in counters.iter() {
        fields.push((name.to_string(), FieldValue::Num(value)));
    }
    (render_record(&fields), violations.len() as u64)
}

/// Options for [`run_campaign`] (the `dide campaign run` CLI).
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// The requested grid.
    pub grid: CampaignGrid,
    /// Store path (JSONL; the cursor sidecar lives next to it).
    pub out: PathBuf,
    /// Worker threads (`<= 1` runs inline on the calling thread).
    pub jobs: usize,
    /// Resume from the store's cursor instead of truncating.
    pub resume: bool,
    /// Commit (fsync + cursor) batch size in records.
    pub flush_every: u64,
    /// Capacity of the campaign's private fixture cache.
    pub fixture_cap: usize,
}

impl Default for CampaignOptions {
    fn default() -> CampaignOptions {
        CampaignOptions {
            grid: CampaignGrid::default(),
            out: PathBuf::from("campaign.jsonl"),
            jobs: 1,
            resume: false,
            flush_every: 32,
            fixture_cap: crate::workbench::DEFAULT_FIXTURE_CAP,
        }
    }
}

/// The result of one [`run_campaign`] call.
#[derive(Debug)]
pub struct CampaignRun {
    /// The campaign accounting registry (`campaign.` / `fixture.` scopes).
    pub counters: CounterSet,
    /// Violated campaign conservation rules (empty = healthy run).
    pub violations: Vec<String>,
    /// Human-readable summary (stdout).
    pub summary: String,
    /// The grid fingerprint (also in the store header).
    pub fingerprint: String,
}

/// The conservation laws every campaign run must satisfy.
#[must_use]
pub fn campaign_rules() -> Vec<Rule> {
    vec![
        Rule::eq(
            Expr::sum([
                "campaign.jobs_completed",
                "campaign.jobs_deduped",
                "campaign.jobs_skipped",
            ]),
            Expr::counter("campaign.jobs_total"),
        )
        .note("every grid point is completed, deduplicated or resume-skipped"),
        Rule::eq(
            Expr::sum(["campaign.jobs_completed", "campaign.jobs_skipped"]),
            Expr::counter("campaign.jobs_unique"),
        )
        .note("unique jobs split into completed and skipped"),
        Rule::eq(
            Expr::sum(["fixture.hits", "fixture.misses"]),
            Expr::counter("campaign.jobs_completed"),
        )
        .note("each completed job makes exactly one fixture lookup"),
        Rule::le(Expr::counter("fixture.peak_resident"), Expr::counter("fixture.cap"))
            .note("the fixture cache never exceeds its capacity bound"),
        Rule::le(Expr::counter("campaign.store_records"), Expr::counter("campaign.jobs_unique"))
            .note("the store holds at most one record per unique job"),
    ]
}

/// Expands the grid, runs every unique job not already durable in the
/// store, and writes records in sequence order.
///
/// # Errors
///
/// Returns a one-line message for grid errors or store I/O failures
/// (including `--resume` against a store from a different grid).
///
/// # Panics
///
/// Panics if a workload traps (a generator bug), propagated from worker
/// threads.
pub fn run_campaign(options: &CampaignOptions) -> Result<CampaignRun, String> {
    let expanded = expand_grid(&options.grid)?;
    let unique = expanded.jobs.len() as u64;
    let total = unique + expanded.deduped;

    let mut writer = if options.resume {
        StoreWriter::resume(&options.out, &expanded.fingerprint, options.flush_every)
            .map_err(|e| format!("cannot resume {}: {e}", options.out.display()))?
    } else {
        StoreWriter::create(&options.out, &expanded.fingerprint, unique, options.flush_every)
            .map_err(|e| format!("cannot create {}: {e}", options.out.display()))?
    };
    let skipped = writer.records();
    if skipped > unique {
        return Err(format!(
            "store {} holds {skipped} records but the grid has {unique} unique jobs",
            options.out.display()
        ));
    }

    let cache = FixtureCache::with_cap(options.fixture_cap);
    let remaining = &expanded.jobs[usize::try_from(skipped).expect("record count fits usize")..];
    let mut record_violations = 0u64;
    let mut io_error: Option<String> = None;
    let report = map_stealing_sink(
        options.jobs,
        remaining,
        |_, job| run_job(job, &cache),
        |_, (line, violations)| {
            record_violations += violations;
            if io_error.is_none() {
                if let Err(e) = writer.append(&line) {
                    io_error = Some(format!("cannot append to {}: {e}", options.out.display()));
                }
            }
        },
    );
    if let Some(e) = io_error {
        return Err(e);
    }
    writer.commit().map_err(|e| format!("cannot commit {}: {e}", options.out.display()))?;

    let completed = remaining.len() as u64;
    let fixture = cache.stats();
    let mut counters = CounterSet::new();
    let mut scope = counters.scope("campaign");
    scope.counter("jobs_total", total);
    scope.counter("jobs_unique", unique);
    scope.counter("jobs_completed", completed);
    scope.counter("jobs_deduped", expanded.deduped);
    scope.counter("jobs_skipped", skipped);
    scope.counter("store_records", writer.records());
    scope.counter("record_violations", record_violations);
    scope.counter("workers", report.workers as u64);
    scope.counter("steals", report.steals);
    drop(scope);
    let mut scope = counters.scope("fixture");
    scope.counter("hits", fixture.hits);
    scope.counter("misses", fixture.misses);
    scope.counter("evictions", fixture.evictions);
    scope.counter("peak_resident", fixture.peak_resident as u64);
    scope.counter("cap", fixture.cap as u64);
    drop(scope);
    let violations = check_rules(&campaign_rules(), &counters);

    let mut summary = format!(
        "== campaign: {total} grid points -> {unique} unique jobs ({} deduped) ==\n",
        expanded.deduped
    );
    let _ =
        writeln!(summary, "store      {} (grid {})", options.out.display(), expanded.fingerprint);
    let _ = writeln!(
        summary,
        "run        {completed} completed, {skipped} resumed-skipped, {} worker(s), {} steal(s)",
        report.workers, report.steals
    );
    let _ = writeln!(
        summary,
        "fixtures   {} built, {} reused, peak {} resident (cap {})",
        fixture.misses, fixture.hits, fixture.peak_resident, fixture.cap
    );
    if record_violations > 0 {
        let _ = writeln!(summary, "WARNING    {record_violations} record-level rule violation(s)");
    }
    if violations.is_empty() {
        summary.push_str("laws       campaign conservation rules hold\n");
    } else {
        for v in &violations {
            let _ = writeln!(summary, "VIOLATION  {v}");
        }
    }
    Ok(CampaignRun { counters, violations, summary, fingerprint: expanded.fingerprint })
}

/// The grid [`measure_campaign_throughput`] times: small enough for a CI
/// smoke stage, rich enough that canonical dedup actually fires (the
/// `off` rows alias across the threshold axis).
#[must_use]
pub fn bench_grid() -> CampaignGrid {
    CampaignGrid {
        benchmarks: vec!["expr".to_string(), "route".to_string(), "sort".to_string()],
        seeds: Vec::new(),
        opts: vec![OptLevel::O2],
        scales: vec![1],
        machines: vec![Machine::Contended],
        elims: vec![Elim::Off, Elim::Cfi],
        thresholds: vec![8, 12],
        penalties: vec![15],
    }
}

/// The `campaign` block of `BENCH.json`: scheduler throughput plus the
/// deterministic dedup/fixture accounting of [`bench_grid`].
#[derive(Debug, Clone)]
pub struct CampaignThroughput {
    /// Fingerprint of the measured grid.
    pub grid_fingerprint: String,
    /// Expanded grid points.
    pub jobs_total: u64,
    /// Unique canonical jobs.
    pub jobs_unique: u64,
    /// Grid points answered by the dedup pass.
    pub jobs_deduped: u64,
    /// Peak resident fixtures during the jobs=N run.
    pub peak_resident: u64,
    /// Fixture-cache capacity during the measurement.
    pub fixture_cap: u64,
    /// Wall-clock of a plain serial loop (no scheduler, no store).
    pub direct_ns: u128,
    /// Wall-clock of the full engine at `--jobs 1` (inline path + store).
    pub jobs1_ns: u128,
    /// Worker count of the parallel measurement.
    pub jobsn: usize,
    /// Wall-clock of the full engine at `--jobs N`.
    pub jobsn_ns: u128,
}

impl CampaignThroughput {
    /// Fraction of grid points answered without simulation.
    #[must_use]
    pub fn dedup_rate(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        if self.jobs_total == 0 {
            0.0
        } else {
            self.jobs_deduped as f64 / self.jobs_total as f64
        }
    }

    /// Unique jobs per second at `--jobs N`.
    #[must_use]
    pub fn jobs_per_sec(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        if self.jobsn_ns == 0 {
            0.0
        } else {
            self.jobs_unique as f64 / (self.jobsn_ns as f64 / 1e9)
        }
    }

    /// Engine-at-jobs-1 over plain-loop wall-clock: the scheduler + store
    /// overhead the acceptance criteria bound at 5%.
    #[must_use]
    pub fn scheduler_overhead(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        if self.direct_ns == 0 {
            1.0
        } else {
            self.jobs1_ns as f64 / self.direct_ns as f64
        }
    }
}

/// Times [`bench_grid`] three ways — a plain serial loop over the unique
/// jobs (no scheduler, no store), the engine at `--jobs 1`, and the engine
/// at `--jobs N` — writing throwaway stores under the system temp
/// directory. Each pass uses a fresh fixture cache so no pass inherits the
/// previous pass's builds.
///
/// # Errors
///
/// Propagates grid or store errors from [`run_campaign`].
pub fn measure_campaign_throughput(jobsn: usize) -> Result<CampaignThroughput, String> {
    use std::time::Instant;

    let expanded = expand_grid(&bench_grid())?;
    let dir = std::env::temp_dir().join(format!("dide-campaign-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;

    // Reference: the pre-campaign way of running a batch — a bare loop,
    // results kept in memory.
    let direct_cache = FixtureCache::with_cap(crate::workbench::DEFAULT_FIXTURE_CAP);
    let start = Instant::now();
    let mut lines = Vec::with_capacity(expanded.jobs.len());
    for job in &expanded.jobs {
        lines.push(run_job(job, &direct_cache));
    }
    let direct_ns = start.elapsed().as_nanos();
    drop(lines);

    let timed = |jobs: usize, name: &str| -> Result<(u128, CampaignRun), String> {
        let options = CampaignOptions {
            grid: bench_grid(),
            out: dir.join(name),
            jobs,
            ..CampaignOptions::default()
        };
        let start = Instant::now();
        let run = run_campaign(&options)?;
        Ok((start.elapsed().as_nanos(), run))
    };
    let (jobs1_ns, _) = timed(1, "jobs1.jsonl")?;
    let (jobsn_ns, run_n) = timed(jobsn.max(2), "jobsn.jsonl")?;

    Ok(CampaignThroughput {
        grid_fingerprint: expanded.fingerprint,
        jobs_total: run_n.counters.expect("campaign.jobs_total"),
        jobs_unique: run_n.counters.expect("campaign.jobs_unique"),
        jobs_deduped: run_n.counters.expect("campaign.jobs_deduped"),
        peak_resident: run_n.counters.expect("fixture.peak_resident"),
        fixture_cap: run_n.counters.expect("fixture.cap"),
        direct_ns,
        jobs1_ns,
        jobsn: jobsn.max(2),
        jobsn_ns,
    })
}

/// Options for [`run_campaign_report`] (the `dide campaign report` CLI).
#[derive(Debug, Clone, Default)]
pub struct ReportOptions {
    /// Store to query.
    pub store: PathBuf,
    /// Equality filters (`field=value`, all must match).
    pub wheres: Vec<(String, String)>,
    /// Fields to group by (empty = one global group).
    pub group_by: Vec<String>,
    /// Counters to sum per group (empty = a default set).
    pub metrics: Vec<String>,
}

/// Reads a store and renders a grouped aggregate table.
///
/// # Errors
///
/// Returns a one-line message for store I/O or parse failures.
pub fn run_campaign_report(options: &ReportOptions) -> Result<String, String> {
    let reader = StoreReader::open(&options.store)
        .map_err(|e| format!("cannot read {}: {e}", options.store.display()))?;
    let metrics: Vec<String> = if options.metrics.is_empty() {
        vec![
            "pipeline.cycles".to_string(),
            "pipeline.committed".to_string(),
            "violations".to_string(),
        ]
    } else {
        options.metrics.clone()
    };

    // group key -> (record count, summed metrics)
    let mut groups: std::collections::BTreeMap<Vec<String>, (u64, CounterSet)> =
        std::collections::BTreeMap::new();
    let mut matched = 0u64;
    for record in &reader.records {
        let field =
            |name: &str| record.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_match_text());
        if !options.wheres.iter().all(|(name, want)| field(name).as_deref() == Some(want)) {
            continue;
        }
        matched += 1;
        let key: Vec<String> =
            options.group_by.iter().map(|g| field(g).unwrap_or_else(|| "-".to_string())).collect();
        let entry = groups.entry(key).or_insert_with(|| (0, CounterSet::new()));
        entry.0 += 1;
        let mut delta = CounterSet::new();
        for metric in &metrics {
            let value = record
                .iter()
                .find_map(|(n, v)| match (n == metric, v) {
                    (true, FieldValue::Num(value)) => Some(*value),
                    _ => None,
                })
                .unwrap_or(0);
            delta.record(metric, value);
        }
        entry.1.accumulate(&delta);
    }

    let mut out = format!(
        "== campaign report: {} ({} record(s), {matched} matched) ==\n",
        options.store.display(),
        reader.records.len()
    );
    let mut headers: Vec<String> = options.group_by.clone();
    headers.push("records".to_string());
    headers.extend(metrics.iter().cloned());
    let mut table = Table::new(headers);
    for (key, (count, sums)) in &groups {
        let mut row: Vec<String> = key.clone();
        row.push(count.to_string());
        for metric in &metrics {
            row.push(sums.get(metric).unwrap_or(0).to_string());
        }
        table.row(row);
    }
    out.push_str(&table.to_string());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dide-campaign-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("campaign.jsonl")
    }

    fn small_grid() -> CampaignGrid {
        CampaignGrid {
            benchmarks: vec!["expr".to_string(), "stream".to_string()],
            seeds: vec![3],
            opts: vec![OptLevel::O0, OptLevel::O2],
            scales: vec![1],
            machines: vec![Machine::Contended],
            elims: vec![Elim::Off, Elim::Cfi],
            thresholds: vec![8, 12],
            penalties: vec![15],
        }
    }

    #[test]
    fn expansion_dedups_canonical_aliases() {
        let expanded = expand_grid(&small_grid()).unwrap();
        let total = expanded.jobs.len() as u64 + expanded.deduped;
        // 3 targets x 2 opts x 1 scale x 1 machine x 2 elims x 2 thresholds x 1 penalty.
        assert_eq!(total, 24);
        // Aliases: elim=off ignores the threshold axis (halves off jobs);
        // gen targets ignore the opt axis.
        assert!(expanded.deduped > 0, "grid must contain canonical aliases");
        let ids: std::collections::HashSet<&str> =
            expanded.jobs.iter().map(|j| j.id.as_str()).collect();
        assert_eq!(ids.len(), expanded.jobs.len(), "job ids are unique");
        assert!(expanded.jobs.iter().all(|j| { j.elim != Elim::Off || j.threshold == 12 }));
        assert!(expanded
            .jobs
            .iter()
            .filter(|j| j.benchmark.starts_with("gen:"))
            .all(|j| j.opt == OptLevel::O2 && j.scale == 1));
        // Sequence numbers are dense and ordered.
        for (i, job) in expanded.jobs.iter().enumerate() {
            assert_eq!(job.seq, i as u64);
        }
    }

    #[test]
    fn expansion_rejects_unknown_benchmarks_and_wide_thresholds() {
        let mut grid = small_grid();
        grid.benchmarks = vec!["nope".to_string()];
        assert!(expand_grid(&grid).unwrap_err().contains("unknown benchmark"));
        let mut grid = small_grid();
        grid.thresholds = vec![300];
        assert!(expand_grid(&grid).unwrap_err().contains("--thresholds"));
        let mut grid = small_grid();
        grid.opts.clear();
        assert!(expand_grid(&grid).unwrap_err().contains("--opts"));
    }

    #[test]
    fn fingerprint_tracks_grid_identity() {
        let a = expand_grid(&small_grid()).unwrap();
        let b = expand_grid(&small_grid()).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        let mut grid = small_grid();
        grid.thresholds = vec![8];
        let c = expand_grid(&grid).unwrap();
        assert_ne!(a.fingerprint, c.fingerprint);
    }

    #[test]
    fn campaign_is_deterministic_across_job_counts() {
        let out1 = tmp("jobs1");
        let out4 = tmp("jobs4");
        let grid = small_grid();
        let run1 = run_campaign(&CampaignOptions {
            grid: grid.clone(),
            out: out1.clone(),
            jobs: 1,
            ..CampaignOptions::default()
        })
        .unwrap();
        let run4 = run_campaign(&CampaignOptions {
            grid,
            out: out4.clone(),
            jobs: 4,
            flush_every: 3,
            ..CampaignOptions::default()
        })
        .unwrap();
        assert!(run1.violations.is_empty(), "{:?}", run1.violations);
        assert!(run4.violations.is_empty(), "{:?}", run4.violations);
        let bytes1 = std::fs::read(&out1).unwrap();
        let bytes4 = std::fs::read(&out4).unwrap();
        assert_eq!(bytes1, bytes4, "store bytes must not depend on --jobs");
        assert_eq!(run1.counters.expect("campaign.record_violations"), 0);
    }

    #[test]
    fn resume_skips_durable_prefix_and_converges() {
        let full = tmp("full");
        let partial = tmp("partial");
        let grid = small_grid();
        let _ = run_campaign(&CampaignOptions {
            grid: grid.clone(),
            out: full.clone(),
            flush_every: 1,
            ..CampaignOptions::default()
        })
        .unwrap();

        // Simulate a crash: keep only the first 4 committed records.
        let _ = run_campaign(&CampaignOptions {
            grid: grid.clone(),
            out: partial.clone(),
            flush_every: 1,
            ..CampaignOptions::default()
        })
        .unwrap();
        let contents = std::fs::read_to_string(&partial).unwrap();
        let keep: String = contents.split_inclusive('\n').take(5).collect();
        std::fs::write(&partial, &keep).unwrap();
        let reader = StoreReader::parse(&keep).unwrap();
        let cursor = format!(
            "{{\"schema\":\"dide-campaign-cursor/v1\",\"grid\":\"{}\",\"records\":{},\"bytes\":{}}}\n",
            expand_grid(&grid).unwrap().fingerprint,
            reader.records.len(),
            keep.len()
        );
        std::fs::write(partial.with_file_name("campaign.jsonl.cursor"), cursor).unwrap();

        let resumed = run_campaign(&CampaignOptions {
            grid,
            out: partial.clone(),
            jobs: 2,
            resume: true,
            ..CampaignOptions::default()
        })
        .unwrap();
        assert!(resumed.violations.is_empty(), "{:?}", resumed.violations);
        assert_eq!(resumed.counters.expect("campaign.jobs_skipped"), 4);
        assert!(resumed.counters.expect("campaign.jobs_completed") > 0);
        assert_eq!(std::fs::read(&full).unwrap(), std::fs::read(&partial).unwrap());
    }

    #[test]
    fn resume_rejects_a_different_grid() {
        let out = tmp("wronggrid");
        let _ = run_campaign(&CampaignOptions { out: out.clone(), ..CampaignOptions::default() })
            .unwrap();
        let grid = CampaignGrid { scales: vec![2], ..CampaignGrid::default() };
        let err = run_campaign(&CampaignOptions {
            grid,
            out,
            resume: true,
            ..CampaignOptions::default()
        })
        .unwrap_err();
        assert!(err.contains("cannot resume"), "{err}");
        assert!(!err.contains('\n'));
    }

    #[test]
    fn report_filters_and_groups() {
        let out = tmp("report");
        let _ = run_campaign(&CampaignOptions {
            grid: small_grid(),
            out: out.clone(),
            ..CampaignOptions::default()
        })
        .unwrap();
        let report = run_campaign_report(&ReportOptions {
            store: out.clone(),
            wheres: vec![("elim".to_string(), "cfi".to_string())],
            group_by: vec!["benchmark".to_string()],
            metrics: vec!["pipeline.committed".to_string()],
        })
        .unwrap();
        assert!(report.contains("benchmark"), "{report}");
        assert!(report.contains("expr"), "{report}");
        assert!(report.contains("gen:3"), "{report}");
        // Filtering works: `off` rows are excluded, so grouping by elim
        // under the same filter yields exactly one group.
        let by_elim = run_campaign_report(&ReportOptions {
            store: out,
            wheres: vec![("elim".to_string(), "cfi".to_string())],
            group_by: vec!["elim".to_string()],
            metrics: vec!["pipeline.committed".to_string()],
        })
        .unwrap();
        assert!(by_elim.contains("cfi"));
        assert!(!by_elim.lines().any(|l| l.starts_with("off")));
    }

    #[test]
    fn fixture_cap_bounds_resident_fixtures() {
        let out = tmp("cap");
        let run = run_campaign(&CampaignOptions {
            grid: small_grid(),
            out,
            jobs: 2,
            fixture_cap: 2,
            ..CampaignOptions::default()
        })
        .unwrap();
        assert!(run.violations.is_empty(), "{:?}", run.violations);
        assert!(run.counters.expect("fixture.peak_resident") <= 2);
        assert!(run.counters.expect("fixture.evictions") > 0);
    }
}
