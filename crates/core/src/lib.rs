//! **DIDE** — Dynamic dead-Instruction Detection and Elimination.
//!
//! Top-level library of the reproduction of Butts & Sohi, *Dynamic
//! dead-instruction detection and elimination* (ASPLOS 2002). It ties the
//! substrate crates together and provides the experiment harness that
//! regenerates every table and figure of the paper (see `DESIGN.md` and
//! `EXPERIMENTS.md` at the repository root).
//!
//! The stack, bottom to top:
//!
//! | layer | crate |
//! |-------|-------|
//! | ISA (SIR) | [`dide_isa`] |
//! | functional emulator + traces | [`dide_emu`] |
//! | oracle deadness analysis | [`dide_analysis`] |
//! | branch + dead predictors | [`dide_predictor`] |
//! | cache hierarchy | [`dide_mem`] |
//! | out-of-order core + elimination | [`dide_pipeline`] |
//! | benchmark suite | [`dide_workloads`] |
//! | experiments (this crate) | [`experiments`] |
//!
//! # Quickstart
//!
//! Measure the dead-instruction fraction of one benchmark and eliminate
//! its dead instructions on the contended machine:
//!
//! ```
//! use dide::prelude::*;
//!
//! let spec = *dide::suite().iter().find(|s| s.name == "expr").unwrap();
//! let program = spec.build(OptLevel::O2, 1);
//! let trace = Emulator::new(&program).run()?;
//! let analysis = DeadnessAnalysis::analyze(&trace);
//! println!("dead: {:.1}%", 100.0 * analysis.stats().dead_fraction());
//!
//! let config = PipelineConfig::contended().with_elimination(DeadElimConfig::default());
//! let stats = Core::new(config).run(&trace, &analysis);
//! println!("IPC {:.3}, eliminated {}", stats.ipc(), stats.dead_predicted);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchrun;
pub mod campaign;
pub mod cli;
pub mod experiments;
pub mod harness;
pub mod runner;
pub mod statsrun;
pub mod store;
mod table;
pub mod verifyrun;
mod workbench;

pub use benchrun::{
    check_campaign_regression, check_mem_regression, check_regression, measure_events_overhead,
    parse_baseline, parse_campaign_baseline, parse_stream_baseline, run_bench, BaselineEntry,
    BenchOptions, BenchRun, CampaignBaselineEntry, EventsOverhead, RegressionCheck,
    StreamBaselineEntry, StreamMeasurement,
};
pub use campaign::{
    bench_grid, campaign_rules, expand_grid, measure_campaign_throughput, run_campaign,
    run_campaign_report, CampaignGrid, CampaignOptions, CampaignRun, CampaignThroughput, Elim,
    ExpandedGrid, JobSpec, Machine, ReportOptions,
};
pub use runner::{run_experiments, ExperimentOptions, ExperimentRun};
pub use statsrun::{
    run_events, run_stats, EventsOptions, EventsRun, RunSelection, StatsFormat, StatsOptions,
    StatsRun, DEFAULT_EPOCH_LEN, STATS_SCHEMA,
};
pub use store::{parse_record_fields, StoreReader, StoreWriter, CAMPAIGN_STORE_SCHEMA};
pub use table::Table;
pub use verifyrun::{run_golden, run_verify, GoldenOptions, GoldenRun, VerifyOptions, VerifyRun};
pub use workbench::{
    fixture_cache, BenchCase, FixtureCache, FixtureCacheStats, Workbench, DEFAULT_FIXTURE_CAP,
};

pub use dide_workloads::{asm_suite, find_workload, suite, OptLevel, WorkloadSpec};

pub use dide_asm as asm;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use dide_analysis::{
        DeadKind, DeadnessAnalysis, StaticBehavior, StreamedDeadness, Verdict,
    };
    pub use dide_emu::{DynInst, Emulator, Trace, TraceStream};
    pub use dide_isa::{Inst, Opcode, Program, ProgramBuilder, Reg};
    pub use dide_pipeline::{
        ClusterConfig, ClusterStats, Core, DeadElimConfig, EliminationPolicy, PipelineConfig,
        PipelineStats, SteerPolicy, SteerStats,
    };
    pub use dide_predictor::branch::{BimodalBranch, BranchPredictor, Gshare};
    pub use dide_predictor::dead::{
        evaluate, BimodalDeadConfig, BimodalDeadPredictor, CfiConfig, CfiDeadPredictor,
        DeadPredictionReport, DeadPredictor, LastOutcomePredictor, OracleDeadPredictor,
    };
    pub use dide_workloads::{suite, OptLevel, WorkloadSpec};

    pub use crate::workbench::{BenchCase, Workbench};
}
