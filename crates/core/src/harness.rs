//! Execution substrate for the experiment harness and the campaign
//! engine: a deterministic work-stealing scheduler ([`map_stealing_sink`]),
//! the ordered parallel map the experiment runner uses ([`map_ordered`], a
//! thin wrapper), and a process-wide phase-timing registry.
//!
//! The scheduler drains an arbitrary item list: indices are striped
//! round-robin across per-worker deques, each worker pops its own deque
//! from the front and steals from a victim's back when it runs dry, and
//! every result is sequence-stamped with its input index. A consumer on
//! the calling thread releases results **strictly in input order** as the
//! completed prefix grows — which is what keeps experiment tables and
//! campaign result stores byte-identical for every worker count, and what
//! lets the campaign store flush a crash-safe completion cursor that is a
//! plain record count.
//!
//! Everything here is std-only (`std::thread::scope` + `std::time::Instant`);
//! the build environment has no access to crates.io, so no rayon or tracing
//! dependencies are available — nor needed at this scale.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::Table;

/// Default worker count: the machine's available parallelism.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Scheduler observability for one [`map_stealing_sink`] drain.
///
/// Steal counts depend on thread timing and are **not** deterministic —
/// they belong in progress reports, never in byte-compared output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealReport {
    /// Worker threads actually spawned (0 = the drain ran inline).
    pub workers: usize,
    /// Items executed from another worker's deque.
    pub steals: u64,
}

/// One item's outcome, parked until the in-order consumer releases it.
type Slot<U> = Option<std::thread::Result<U>>;

/// Per-worker deques plus completion slots shared between workers and the
/// in-order consumer.
struct StealState<U> {
    slots: Vec<Slot<U>>,
    /// Next index the consumer will release.
    next: usize,
    steals: u64,
}

/// Applies `f(index, item)` to every item across `jobs` workers that drain
/// per-worker deques with stealing, delivering `sink(index, result)` on the
/// **calling thread, strictly in input order**.
///
/// The in-order sink is the campaign store's write path: results stream out
/// as the completed prefix grows (a reorder buffer holds out-of-order
/// completions, bounded in practice by the worker count), so an
/// append-only store is byte-identical for every worker count and a crash
/// leaves a clean prefix. With `jobs <= 1` (or a single item) everything
/// runs inline on the calling thread with no queues, locks or threads —
/// the scheduler's jobs=1 overhead is one closure call per item.
///
/// # Panics
///
/// Propagates the first (by input order) panic raised by `f`.
pub fn map_stealing_sink<T, U, F>(
    jobs: usize,
    items: &[T],
    f: F,
    mut sink: impl FnMut(usize, U),
) -> StealReport
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = jobs.max(1).min(items.len());
    if workers <= 1 {
        for (index, item) in items.iter().enumerate() {
            sink(index, f(index, item));
        }
        return StealReport { workers: 0, steals: 0 };
    }

    // Indices striped round-robin: worker w owns items w, w+workers, ...
    // Workers therefore progress roughly in global input order, keeping the
    // consumer's reorder buffer small.
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|w| Mutex::new((w..items.len()).step_by(workers).collect())).collect();
    let state = Mutex::new(StealState {
        slots: (0..items.len()).map(|_| None).collect::<Vec<Slot<U>>>(),
        next: 0,
        steals: 0,
    });
    let done = Condvar::new();

    let mut report = StealReport { workers, steals: 0 };
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (queues, state, done, f) = (&queues, &state, &done, &f);
            scope.spawn(move || loop {
                // Own deque from the front; steal from a victim's back.
                let mut claimed = queues[w].lock().unwrap().pop_front().map(|i| (i, false));
                if claimed.is_none() {
                    for v in (1..workers).map(|d| (w + d) % workers) {
                        if let Some(i) = queues[v].lock().unwrap().pop_back() {
                            claimed = Some((i, true));
                            break;
                        }
                    }
                }
                let Some((index, stolen)) = claimed else { break };
                let value = catch_unwind(AssertUnwindSafe(|| f(index, &items[index])));
                let mut s = state.lock().unwrap();
                s.slots[index] = Some(value);
                if stolen {
                    s.steals += 1;
                }
                drop(s);
                done.notify_one();
            });
        }

        // In-order consumer: release the completed prefix as it grows.
        let mut s = state.lock().unwrap();
        while s.next < items.len() {
            while s.slots[s.next].is_none() {
                s = done.wait(s).unwrap();
            }
            // Drain the contiguous completed prefix outside the lock so the
            // sink (which may fsync) never blocks the workers.
            let mut batch = Vec::new();
            while s.next < items.len() && s.slots[s.next].is_some() {
                let index = s.next;
                let value = s.slots[index].take().expect("slot checked Some");
                batch.push((index, value));
                s.next += 1;
            }
            drop(s);
            for (index, value) in batch {
                match value {
                    Ok(value) => sink(index, value),
                    Err(payload) => resume_unwind(payload),
                }
            }
            s = state.lock().unwrap();
        }
        report.steals = s.steals;
    });
    report
}

/// Applies `f` to every item on up to `jobs` worker threads, returning the
/// results **in input order** (the sequence-stamped [`map_stealing_sink`]
/// collected into a `Vec`).
///
/// Output ordering is what keeps the experiment tables byte-identical
/// regardless of the worker count. With `jobs <= 1` (or a single item) the
/// items run inline on the calling thread, preserving strictly serial
/// behavior.
///
/// # Panics
///
/// Propagates the first panic raised by `f`.
pub fn map_ordered<T, U, F>(jobs: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    map_stealing_sink(jobs, items, |_, item| f(item), |_, value| out.push(value));
    out
}

/// A phase of the experiment pipeline, for timing attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Program construction (workload generator).
    Build,
    /// Functional emulation producing the committed-path trace.
    Trace,
    /// Oracle deadness analysis of the trace.
    Analyze,
    /// Cycle-level simulation and table rendering (per experiment).
    Simulate,
}

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; 4] = [Phase::Build, Phase::Trace, Phase::Analyze, Phase::Simulate];

    /// Lower-case label used in timing tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Phase::Build => "build",
            Phase::Trace => "trace",
            Phase::Analyze => "analyze",
            Phase::Simulate => "simulate",
        }
    }
}

/// One timed span: which fixture or experiment, which phase, how long.
#[derive(Debug, Clone)]
pub struct TimingRecord {
    /// What was timed (a benchmark fixture or an experiment id).
    pub label: String,
    /// The pipeline phase the span belongs to.
    pub phase: Phase,
    /// Wall-clock duration of the span.
    pub elapsed: Duration,
}

fn registry() -> &'static Mutex<Vec<TimingRecord>> {
    static RECORDS: OnceLock<Mutex<Vec<TimingRecord>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Records one timed span in the process-wide registry.
pub fn record(label: impl Into<String>, phase: Phase, elapsed: Duration) {
    registry().lock().unwrap().push(TimingRecord { label: label.into(), phase, elapsed });
}

/// Times `f`, records the span, and returns its result.
pub fn time<T>(label: &str, phase: Phase, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let value = f();
    record(label, phase, start.elapsed());
    value
}

/// Snapshots every span recorded so far (fixture phases are recorded once —
/// cached fixtures do not re-record).
#[must_use]
pub fn timing_records() -> Vec<TimingRecord> {
    registry().lock().unwrap().clone()
}

/// Renders the per-phase summary: total wall-clock and span count per
/// phase, plus per-experiment simulate times.
#[must_use]
pub fn timing_summary(records: &[TimingRecord]) -> String {
    let mut out = String::from("== timing summary (wall-clock per phase) ==\n");
    let mut t = Table::new(["phase", "spans", "total"]);
    for phase in Phase::ALL {
        let spans: Vec<&TimingRecord> = records.iter().filter(|r| r.phase == phase).collect();
        let total: Duration = spans.iter().map(|r| r.elapsed).sum();
        t.row([phase.label().to_string(), spans.len().to_string(), fmt_duration(total)]);
    }
    out.push_str(&t.to_string());
    let simulated: Vec<&TimingRecord> =
        records.iter().filter(|r| r.phase == Phase::Simulate).collect();
    if !simulated.is_empty() {
        out.push_str("\n== per-experiment wall-clock ==\n");
        let mut t = Table::new(["experiment", "time"]);
        for r in simulated {
            t.row([r.label.clone(), fmt_duration(r.elapsed)]);
        }
        out.push_str(&t.to_string());
    }
    out
}

/// Renders every recorded span (the `--timings` detail view).
#[must_use]
pub fn timing_detail(records: &[TimingRecord]) -> String {
    let mut out = String::from("== timing detail (every span) ==\n");
    let mut t = Table::new(["label", "phase", "time"]);
    for r in records {
        t.row([r.label.clone(), r.phase.label().to_string(), fmt_duration(r.elapsed)]);
    }
    out.push_str(&t.to_string());
    out
}

/// Formats a duration compactly for timing tables.
#[must_use]
pub fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.2} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_ordered_preserves_input_order() {
        let items: Vec<u32> = (0..100).collect();
        for jobs in [1, 2, 4, 16] {
            let doubled = map_ordered(jobs, &items, |&x| x * 2);
            assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>(), "jobs {jobs}");
        }
    }

    #[test]
    fn map_ordered_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_ordered(8, &empty, |&x| x).is_empty());
        assert_eq!(map_ordered(8, &[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn map_ordered_runs_every_item_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..57).collect();
        let out = map_ordered(4, &items, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 57);
        assert_eq!(counter.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn stealing_sink_delivers_in_order_with_uneven_item_costs() {
        let items: Vec<u64> = (0..64).collect();
        for jobs in [1, 3, 8] {
            let mut seen = Vec::new();
            let report = map_stealing_sink(
                jobs,
                &items,
                |index, &x| {
                    // Make early items slow so later ones finish first and
                    // park in the reorder buffer.
                    if index < 4 {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    x * 3
                },
                |index, value| seen.push((index, value)),
            );
            let expected: Vec<(usize, u64)> = items.iter().map(|&x| (x as usize, x * 3)).collect();
            assert_eq!(seen, expected, "jobs {jobs}");
            assert_eq!(report.workers, if jobs == 1 { 0 } else { jobs });
        }
    }

    #[test]
    fn stealing_sink_propagates_worker_panics() {
        let items: Vec<u32> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            map_stealing_sink(
                4,
                &items,
                |_, &x| {
                    assert!(x != 17, "boom at 17");
                    x
                },
                |_, _| {},
            )
        });
        assert!(result.is_err(), "the panic must reach the caller");
    }

    #[test]
    fn inline_path_reports_zero_workers() {
        let mut count = 0;
        let report = map_stealing_sink(1, &[1, 2, 3], |_, &x| x, |_, _| count += 1);
        assert_eq!(report, StealReport { workers: 0, steals: 0 });
        assert_eq!(count, 3);
    }

    #[test]
    fn timing_summary_mentions_all_phases() {
        let records = vec![
            TimingRecord {
                label: "x".into(),
                phase: Phase::Build,
                elapsed: Duration::from_millis(2),
            },
            TimingRecord {
                label: "e9".into(),
                phase: Phase::Simulate,
                elapsed: Duration::from_secs(1),
            },
        ];
        let summary = timing_summary(&records);
        for phase in Phase::ALL {
            assert!(summary.contains(phase.label()), "missing {}", phase.label());
        }
        assert!(summary.contains("e9"));
        let detail = timing_detail(&records);
        assert!(detail.contains("2.00 ms"));
    }

    #[test]
    fn duration_formatting_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(15)), "15 ns");
        assert_eq!(fmt_duration(Duration::from_micros(3)), "3.0 µs");
        assert_eq!(fmt_duration(Duration::from_millis(7)), "7.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
