//! Execution substrate for the experiment harness: a deterministic
//! work-stealing parallel map and a process-wide phase-timing registry.
//!
//! Everything here is std-only (`std::thread::scope` + `std::time::Instant`);
//! the build environment has no access to crates.io, so no rayon or tracing
//! dependencies are available — nor needed at this scale.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::Table;

/// Default worker count: the machine's available parallelism.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Applies `f` to every item on up to `jobs` worker threads, returning the
/// results **in input order**.
///
/// Output ordering is what keeps the experiment tables byte-identical
/// regardless of the worker count: items are claimed from a shared counter
/// (so fast workers take more), but results are reassembled by index.
/// With `jobs <= 1` (or a single item) the items run inline on the calling
/// thread, preserving strictly serial behavior.
///
/// # Panics
///
/// Propagates the first panic raised by `f`.
pub fn map_ordered<T, U, F>(jobs: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = jobs.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let results = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(index) else { break };
                let value = f(item);
                results.lock().unwrap().push((index, value));
            });
        }
    });
    let mut indexed = results.into_inner().unwrap();
    indexed.sort_unstable_by_key(|&(index, _)| index);
    indexed.into_iter().map(|(_, value)| value).collect()
}

/// A phase of the experiment pipeline, for timing attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Program construction (workload generator).
    Build,
    /// Functional emulation producing the committed-path trace.
    Trace,
    /// Oracle deadness analysis of the trace.
    Analyze,
    /// Cycle-level simulation and table rendering (per experiment).
    Simulate,
}

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; 4] = [Phase::Build, Phase::Trace, Phase::Analyze, Phase::Simulate];

    /// Lower-case label used in timing tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Phase::Build => "build",
            Phase::Trace => "trace",
            Phase::Analyze => "analyze",
            Phase::Simulate => "simulate",
        }
    }
}

/// One timed span: which fixture or experiment, which phase, how long.
#[derive(Debug, Clone)]
pub struct TimingRecord {
    /// What was timed (a benchmark fixture or an experiment id).
    pub label: String,
    /// The pipeline phase the span belongs to.
    pub phase: Phase,
    /// Wall-clock duration of the span.
    pub elapsed: Duration,
}

fn registry() -> &'static Mutex<Vec<TimingRecord>> {
    static RECORDS: OnceLock<Mutex<Vec<TimingRecord>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Records one timed span in the process-wide registry.
pub fn record(label: impl Into<String>, phase: Phase, elapsed: Duration) {
    registry().lock().unwrap().push(TimingRecord { label: label.into(), phase, elapsed });
}

/// Times `f`, records the span, and returns its result.
pub fn time<T>(label: &str, phase: Phase, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let value = f();
    record(label, phase, start.elapsed());
    value
}

/// Snapshots every span recorded so far (fixture phases are recorded once —
/// cached fixtures do not re-record).
#[must_use]
pub fn timing_records() -> Vec<TimingRecord> {
    registry().lock().unwrap().clone()
}

/// Renders the per-phase summary: total wall-clock and span count per
/// phase, plus per-experiment simulate times.
#[must_use]
pub fn timing_summary(records: &[TimingRecord]) -> String {
    let mut out = String::from("== timing summary (wall-clock per phase) ==\n");
    let mut t = Table::new(["phase", "spans", "total"]);
    for phase in Phase::ALL {
        let spans: Vec<&TimingRecord> = records.iter().filter(|r| r.phase == phase).collect();
        let total: Duration = spans.iter().map(|r| r.elapsed).sum();
        t.row([phase.label().to_string(), spans.len().to_string(), fmt_duration(total)]);
    }
    out.push_str(&t.to_string());
    let simulated: Vec<&TimingRecord> =
        records.iter().filter(|r| r.phase == Phase::Simulate).collect();
    if !simulated.is_empty() {
        out.push_str("\n== per-experiment wall-clock ==\n");
        let mut t = Table::new(["experiment", "time"]);
        for r in simulated {
            t.row([r.label.clone(), fmt_duration(r.elapsed)]);
        }
        out.push_str(&t.to_string());
    }
    out
}

/// Renders every recorded span (the `--timings` detail view).
#[must_use]
pub fn timing_detail(records: &[TimingRecord]) -> String {
    let mut out = String::from("== timing detail (every span) ==\n");
    let mut t = Table::new(["label", "phase", "time"]);
    for r in records {
        t.row([r.label.clone(), r.phase.label().to_string(), fmt_duration(r.elapsed)]);
    }
    out.push_str(&t.to_string());
    out
}

/// Formats a duration compactly for timing tables.
#[must_use]
pub fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.2} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_ordered_preserves_input_order() {
        let items: Vec<u32> = (0..100).collect();
        for jobs in [1, 2, 4, 16] {
            let doubled = map_ordered(jobs, &items, |&x| x * 2);
            assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>(), "jobs {jobs}");
        }
    }

    #[test]
    fn map_ordered_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_ordered(8, &empty, |&x| x).is_empty());
        assert_eq!(map_ordered(8, &[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn map_ordered_runs_every_item_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..57).collect();
        let out = map_ordered(4, &items, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 57);
        assert_eq!(counter.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn timing_summary_mentions_all_phases() {
        let records = vec![
            TimingRecord {
                label: "x".into(),
                phase: Phase::Build,
                elapsed: Duration::from_millis(2),
            },
            TimingRecord {
                label: "e9".into(),
                phase: Phase::Simulate,
                elapsed: Duration::from_secs(1),
            },
        ];
        let summary = timing_summary(&records);
        for phase in Phase::ALL {
            assert!(summary.contains(phase.label()), "missing {}", phase.label());
        }
        assert!(summary.contains("e9"));
        let detail = timing_detail(&records);
        assert!(detail.contains("2.00 ms"));
    }

    #[test]
    fn duration_formatting_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(15)), "15 ns");
        assert_eq!(fmt_duration(Duration::from_micros(3)), "3.0 µs");
        assert_eq!(fmt_duration(Duration::from_millis(7)), "7.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
