//! Minimal text-table rendering for experiment reports.

use std::fmt;

/// A simple aligned text table.
///
/// Cells whose content parses as a number (after stripping `%`, `x` and
/// thousands separators) are right-aligned; everything else is
/// left-aligned.
///
/// # Example
///
/// ```
/// use dide::Table;
///
/// let mut t = Table::new(["benchmark", "dead %"]);
/// t.row(["expr", "15.5"]);
/// let text = t.to_string();
/// assert!(text.contains("benchmark"));
/// assert!(text.contains("expr"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

fn is_numeric(cell: &str) -> bool {
    let cleaned: String =
        cell.chars().filter(|c| !matches!(c, '%' | 'x' | ',' | '+' | ' ')).collect();
    !cleaned.is_empty() && cleaned.parse::<f64>().is_ok()
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Table {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header count.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width must match headers");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as RFC-4180-style CSV (quoting cells that contain
    /// commas, quotes or newlines), for plotting pipelines.
    ///
    /// # Example
    ///
    /// ```
    /// use dide::Table;
    ///
    /// let mut t = Table::new(["benchmark", "dead %"]);
    /// t.row(["expr", "15.5"]);
    /// assert_eq!(t.to_csv(), "benchmark,dead %\nexpr,15.5\n");
    /// ```
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn field(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| field(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.headers);
        for row in &self.rows {
            write_row(row);
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                if is_numeric(cell) {
                    write!(f, "{cell:>width$}", width = widths[i])?;
                } else {
                    write!(f, "{cell:<width$}", width = widths[i])?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        for (i, w) in widths.iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{}", "-".repeat(*w))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        let _ = cols;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1.5"]);
        t.row(["b", "123.25"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // Numeric column right-aligned: both values end at the same column.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn numeric_detection() {
        assert!(is_numeric("123"));
        assert!(is_numeric("12.5%"));
        assert!(is_numeric("1.05x"));
        assert!(is_numeric("-3.6"));
        assert!(!is_numeric("expr"));
        assert!(!is_numeric(""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["a"]);
        assert!(t.is_empty());
        t.row(["x"]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(["name", "note"]);
        t.row(["a,b", "say \"hi\"\nbye"]);
        assert_eq!(t.to_csv(), "name,note\n\"a,b\",\"say \"\"hi\"\"\nbye\"\n");
    }
}
