//! `dide` — command-line front end for the reproduction.
//!
//! ```text
//! dide list                               list the benchmark suite
//! dide disasm <bench> [--opt O0|O2]       print a benchmark's assembly
//! dide trace <bench> [--scale N]          run + oracle deadness summary
//! dide run <bench> [--machine M] [--eliminate] [--oracle] [--jump-aware]
//!                                         cycle-level pipeline run
//! dide experiments [--scale N] [--only LIST]
//!                                         regenerate paper tables (e1..e14)
//! ```

use std::process::ExitCode;

use dide::experiments as ex;
use dide::prelude::*;
use dide::{OptLevel, Workbench};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    let command = it.next().unwrap_or("help");
    let rest: Vec<&str> = it.collect();
    match command {
        "list" => list(),
        "disasm" => disasm(&rest),
        "trace" => trace(&rest),
        "run" => run(&rest),
        "experiments" => experiments(&rest),
        "help" | "--help" | "-h" => {
            print!("{}", USAGE);
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
dide — dynamic dead-instruction detection and elimination

USAGE:
  dide list
  dide disasm <benchmark> [--opt O0|O2]
  dide trace <benchmark> [--scale N] [--opt O0|O2] [--hot N]
  dide run <benchmark> [--machine baseline|contended] [--eliminate] [--oracle] [--jump-aware] [--scale N]
  dide experiments [--scale N] [--only e1,e9,...]
";

fn flag_value<'a>(rest: &[&'a str], name: &str) -> Option<&'a str> {
    rest.iter().position(|&a| a == name).and_then(|i| rest.get(i + 1).copied())
}

fn has_flag(rest: &[&str], name: &str) -> bool {
    rest.contains(&name)
}

fn parse_opt(rest: &[&str]) -> Result<OptLevel, String> {
    match flag_value(rest, "--opt") {
        None | Some("O2") | Some("o2") => Ok(OptLevel::O2),
        Some("O0") | Some("o0") => Ok(OptLevel::O0),
        Some(other) => Err(format!("unknown optimization level `{other}` (use O0 or O2)")),
    }
}

fn parse_scale(rest: &[&str]) -> Result<u32, String> {
    match flag_value(rest, "--scale") {
        None => Ok(1),
        Some(s) => s.parse().map_err(|_| format!("invalid scale `{s}`")),
    }
}

fn find_spec(name: Option<&&str>) -> Result<dide::WorkloadSpec, String> {
    let name = name.ok_or("missing benchmark name (try `dide list`)")?;
    dide::suite()
        .into_iter()
        .find(|s| s.name == *name)
        .ok_or_else(|| format!("unknown benchmark `{name}` (try `dide list`)"))
}

fn fail(message: String) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::FAILURE
}

fn list() -> ExitCode {
    let mut t = dide::Table::new(["name", "description"]);
    for s in dide::suite() {
        t.row([s.name, s.description]);
    }
    print!("{t}");
    ExitCode::SUCCESS
}

fn disasm(rest: &[&str]) -> ExitCode {
    let spec = match find_spec(rest.first()) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let opt = match parse_opt(rest) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    print!("{}", spec.build(opt, 1).listing());
    ExitCode::SUCCESS
}

fn trace(rest: &[&str]) -> ExitCode {
    let spec = match find_spec(rest.first()) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let (opt, scale) = match (parse_opt(rest), parse_scale(rest)) {
        (Ok(o), Ok(s)) => (o, s),
        (Err(e), _) | (_, Err(e)) => return fail(e),
    };
    let program = spec.build(opt, scale);
    let trace = match Emulator::new(&program).run() {
        Ok(t) => t,
        Err(e) => return fail(format!("emulation trapped: {e}")),
    };
    println!("== trace summary ==\n{}", trace.summary());
    let analysis = DeadnessAnalysis::analyze(&trace);
    println!("\n== oracle deadness ==\n{}", analysis.stats());
    println!("\n== static profile ==\n{}", analysis.static_profile(&trace));
    println!("\n== locality ==\n{}", analysis.locality(&trace));

    if let Some(n) = flag_value(rest, "--hot") {
        let Ok(n) = n.parse::<usize>() else {
            return fail(format!("invalid --hot count `{n}`"));
        };
        let profile = analysis.static_profile(&trace);
        let mut hot: Vec<(usize, u64, u64)> = profile
            .records()
            .iter()
            .enumerate()
            .filter(|(_, r)| r.dead > 0)
            .map(|(idx, r)| (idx, r.dead, r.eligible))
            .collect();
        hot.sort_by_key(|&(_, dead, _)| std::cmp::Reverse(dead));
        println!("\n== hottest dead statics ==");
        let mut t = dide::Table::new(["index", "instruction", "dead", "of eligible"]);
        for &(idx, dead, eligible) in hot.iter().take(n) {
            t.row([
                idx.to_string(),
                program.insts()[idx].to_string(),
                dead.to_string(),
                eligible.to_string(),
            ]);
        }
        print!("{t}");
    }
    ExitCode::SUCCESS
}

fn run(rest: &[&str]) -> ExitCode {
    let spec = match find_spec(rest.first()) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let (opt, scale) = match (parse_opt(rest), parse_scale(rest)) {
        (Ok(o), Ok(s)) => (o, s),
        (Err(e), _) | (_, Err(e)) => return fail(e),
    };
    let machine = match flag_value(rest, "--machine") {
        None | Some("contended") => PipelineConfig::contended(),
        Some("baseline") => PipelineConfig::baseline(),
        Some(other) => return fail(format!("unknown machine `{other}`")),
    };
    let config = if has_flag(rest, "--eliminate") || has_flag(rest, "--oracle") {
        machine.with_elimination(DeadElimConfig {
            oracle: has_flag(rest, "--oracle"),
            jump_aware: has_flag(rest, "--jump-aware"),
            ..DeadElimConfig::default()
        })
    } else {
        machine
    };

    let program = spec.build(opt, scale);
    let trace = match Emulator::new(&program).run() {
        Ok(t) => t,
        Err(e) => return fail(format!("emulation trapped: {e}")),
    };
    let analysis = DeadnessAnalysis::analyze(&trace);
    let stats = Core::new(config).run(&trace, &analysis);
    println!("{stats}");
    ExitCode::SUCCESS
}

fn experiments(rest: &[&str]) -> ExitCode {
    let scale = match parse_scale(rest) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let only: Option<Vec<String>> = flag_value(rest, "--only")
        .map(|s| s.split(',').map(|x| x.trim().to_lowercase()).collect());
    let want = |id: &str| only.as_ref().is_none_or(|o| o.iter().any(|x| x == id));

    eprintln!("building the suite (O2 and O0) at scale {scale}...");
    let o2 = Workbench::full(OptLevel::O2, scale);
    let o0 = Workbench::full(OptLevel::O0, scale);

    if want("e1") {
        println!("{}\n", ex::e01_dead_fraction::DeadFraction::run(&o2));
    }
    if want("e2") {
        println!("{}\n", ex::e02_dead_breakdown::DeadBreakdown::run(&o2));
    }
    if want("e3") {
        println!("{}\n", ex::e03_static_behavior::StaticBehaviorCensus::run(&o2));
    }
    if want("e4") {
        println!("{}\n", ex::e04_locality::Locality::run(&o2));
    }
    if want("e5") {
        println!("{}\n", ex::e05_compiler_effect::CompilerEffect::run(&o0, &o2));
    }
    if want("e6") {
        println!("{}\n", ex::e06_predictor_sizing::PredictorSizing::run(&o2));
    }
    if want("e7") {
        println!("{}\n", ex::e07_cfi_value::CfiValue::run(&o2));
    }
    if want("e8") {
        println!("{}\n", ex::e08_resource_savings::ResourceSavingsReport::run(&o2));
    }
    if want("e9") {
        println!("{}\n", ex::e09_speedup::Speedup::run(&o2));
    }
    if want("e10") {
        println!("{}\n", ex::e10_machine_config::MachineConfigTable::collect());
    }
    if want("e11") {
        println!("{}\n", ex::e11_confidence_sweep::ConfidenceSweep::run(&o2));
    }
    if want("e12") {
        println!("{}\n", ex::e12_elimination_ablation::EliminationAblation::run(&o2));
    }
    if want("e13") {
        println!("{}\n", ex::e13_jump_aware::JumpAware::run(&o2));
    }
    if want("e14") {
        println!("{}\n", ex::e14_oracle_limit::OracleLimit::run(&o2));
    }
    if want("e15") {
        println!("{}\n", ex::e15_penalty_sweep::PenaltySweep::run(&o2));
    }
    if want("e16") {
        println!("{}\n", ex::e16_dead_lifetimes::DeadLifetimeReport::run(&o2));
    }
    if want("e17") {
        println!("{}\n", ex::e17_register_sweep::RegisterSweep::run(&o2));
    }
    ExitCode::SUCCESS
}
