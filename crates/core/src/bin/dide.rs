//! `dide` — command-line front end for the reproduction.
//!
//! ```text
//! dide list                               list the benchmark suite
//! dide disasm <bench> [--opt O0|O2]       print a benchmark's assembly
//! dide trace <bench> [--scale N]          run + oracle deadness summary
//! dide run <bench> [--machine M] [--eliminate] [--oracle] [--jump-aware]
//!                                         cycle-level pipeline run
//!
//! `trace`, `run`, `stats`, `events`, and `bench` take `--stream`
//! (with an optional `--epoch N`) to drive the bounded-memory streaming
//! stack instead of materializing the whole trace.
//!
//! `disasm`, `trace`, and `run` also accept a path to an external `.asm`
//! file (e.g. `dide run asm/prime.asm`), assembled by `dide-asm` and fed
//! through the same emu -> analysis -> pipeline stack.
//! dide experiments [--scale N] [--only LIST] [--jobs N] [--timings]
//!                                         regenerate paper tables (e1..e18)
//! dide campaign run [axis flags] [--out PATH] [--jobs N] [--resume]
//!                                         batch grid simulation -> JSONL store
//! dide campaign report [--store PATH] [--where k=v] [--group-by LIST]
//!                                         grouped aggregates over a store
//! dide bench [--quick] [--out PATH] [--scales 1,4] [--check-against PATH]
//!                                         timed phase harness -> BENCH.json
//! dide verify [--seeds N] [--jobs N] [--corpus DIR]
//!                                         differential fuzzing of the stack
//! dide verify --golden [--bless] [--dir DIR] [--only LIST] [--jobs N]
//!                                         golden-table regression
//! dide stats [--benchmark NAME] [--json|--csv]
//!                                         full-stack counter registry dump
//! dide events [--benchmark NAME] [--last N] [--sample-every N]
//!                                         cycle-event trace tail
//! ```

use std::process::ExitCode;

use dide::prelude::*;
use dide::{ExperimentOptions, OptLevel};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    let command = it.next().unwrap_or("help");
    let rest: Vec<&str> = it.collect();
    match command {
        "list" => list(),
        "disasm" => disasm(&rest),
        "trace" => trace(&rest),
        "run" => run(&rest),
        "experiments" => experiments(&rest),
        "campaign" => campaign(&rest),
        "bench" => bench(&rest),
        "verify" => verify(&rest),
        "stats" => stats(&rest),
        "events" => events(&rest),
        "help" | "--help" | "-h" => {
            print!("{}", USAGE);
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
dide — dynamic dead-instruction detection and elimination

USAGE:
  dide list
  dide disasm <benchmark|path.asm> [--opt O0|O2]
  dide trace <benchmark|path.asm> [--scale N] [--opt O0|O2] [--hot N] [--stream [--epoch N]]
  dide run <benchmark|path.asm> [--machine baseline|contended|clustered] [--clusters N] [--bypass N] [--steer rr|affinity|dead]
                                [--eliminate] [--oracle] [--jump-aware] [--scale N] [--stream [--epoch N]]
  dide experiments [--scale N] [--only e1,e9,...] [--jobs N] [--timings] [--stream [--epoch N]]
  dide campaign run [--benchmarks L] [--seeds L] [--opts L] [--scales L] [--machines L]
                    [--elims L] [--thresholds L] [--penalties L]
                    [--out PATH] [--jobs N] [--resume] [--flush-every N] [--fixture-cap N]
  dide campaign report [--store PATH] [--where field=value ...] [--group-by L] [--metrics L]
  dide bench [--quick] [--out PATH] [--scales 1,4] [--check-against PATH] [--stream] [--epoch N]
  dide verify [--seeds N] [--jobs N] [--corpus DIR]
  dide verify --golden [--bless] [--dir DIR] [--only e1,e9,...] [--jobs N]
  dide stats [--benchmark NAME] [--json|--csv] [run flags]
  dide events [--benchmark NAME] [--last N] [--sample-every N] [run flags]

STREAMING (bounded memory):
  --stream     run the emu->analysis->pipeline stack over bounded epochs
               instead of materializing the whole trace: the windowed
               analysis carries a live-out frontier across epochs
               (cross-epoch escapes are conservatively useful) and the
               pipeline recycles epochs as the ROB drains past them.
               run/trace/stats/events take it as a run flag; for bench it
               restricts the run to the streamed enrollments.
  --epoch N    records per epoch (default 65536)

EXPERIMENTS:
  --jobs N     worker threads (default: available parallelism; 1 = serial).
               Tables are byte-identical for every N.
  --timings    print the per-span timing detail in addition to the summary
               (timing always goes to stderr; tables go to stdout)
  --stream     render the streamed table (S1) over the streamed enrollments
               instead of the materializing tables E1..E18

CLUSTERED BACKEND (DESIGN.md \u{a7}11):
  --machine clustered  partition the IQ and function units of the selected
               base into execution clusters; cross-cluster operand
               forwarding pays --bypass cycles. Passing any cluster axis
               implies the clustered backend.
  --clusters N         execution clusters (default 2, max 8)
  --bypass N           inter-cluster forwarding penalty in cycles (default 2)
  --steer rr|affinity|dead
               dispatch steering: round-robin, follow the producing
               cluster, or route predicted-dead instructions to the
               cheap cluster (squash pre-dispatch when --eliminate)

CAMPAIGN (batch grid simulation):
  run expands the cartesian product of the axis flags (comma-separated
  lists; defaults: expr / O2 / scale 1 / contended / off,cfi / the default
  threshold and penalty; --machines takes baseline, contended and
  clustered, the latter fixed at 2 clusters / bypass 2 / dead steering),
  canonicalizes redundant points (elim=off pins
  threshold+penalty; oracle pins threshold; gen workloads pin opt+scale),
  and simulates the unique jobs on a work-stealing pool. Results land in
  an append-only JSONL store whose bytes are identical for every --jobs N.
  --seeds L        enroll generated workloads gen:<seed> alongside --benchmarks
  --out PATH       store path (default campaign.jsonl); a fsync'd cursor
                   sidecar <PATH>.cursor tracks the durable prefix
  --resume         continue an interrupted campaign from the cursor; the
                   finished store is byte-identical to an uninterrupted run
  --flush-every N  records per durable commit (default 32)
  --fixture-cap N  LRU capacity of the per-campaign fixture cache
  report reads a store back and prints grouped aggregate sums:
  --where f=v      equality filter, repeatable (all must match)
  --group-by L     axis fields to group rows by (e.g. benchmark,elim)
  --metrics L      counters to sum (default pipeline.cycles,
                   pipeline.committed, violations)

BENCH (perf tracking):
  --quick      smoke subset (expr, objstore, route at scale 1) for CI
  --out PATH   where to write the JSON report (default BENCH.json)
  --scales L   comma-separated workload scales (default 1,4)
               every phase is re-run uncached; wall-clock goes to stderr,
               machine-readable nanoseconds go to the JSON file
  --check-against PATH
               compare the simulate phase against a committed BENCH.json
               and exit 1 on a >2x (and >5ms) slowdown; the tolerance is
               generous because CI timings on a shared CPU are noisy

VERIFY (differential fuzzing):
  --seeds N    fresh random seeds to check (default 64); each seed runs the
               second liveness oracle and the metamorphic invariants
  --corpus DIR replay previously failing cases from DIR first; shrink and
               persist new failures there
  --jobs N     worker threads; the report is byte-identical for every N

VERIFY (golden tables):
  --golden     compare rendered experiment tables byte-for-byte against
               tests/golden/ snapshots (exit 1 on any difference)
  --bless      rewrite the snapshots instead of comparing
  --dir DIR    snapshot directory (default tests/golden)

ASSEMBLY WORKLOADS:
  disasm/trace/run accept a `.asm` file path anywhere a benchmark name is
  expected; the shipped benchmarks under asm/ (prime, matmul, strsearch)
  are also enrolled by name in `dide list`, stats, events, and bench.
  `.asm` programs ignore --opt; they also ignore --scale except matmul,
  whose outer rounds loop scales linearly with --scale.

STATS / EVENTS (observability):
  both take the `dide run` flags [--opt O0|O2] [--scale N]
  [--machine baseline|contended|clustered] [--clusters N] [--bypass N]
  [--steer P] [--eliminate] [--oracle] [--jump-aware];
  the benchmark is chosen with --benchmark NAME (default expr)
  --json       stats: emit the dide-stats/v1 JSON document (default)
  --csv        stats: emit `# dide-stats/v1` then counter,value rows
  --last N     events: show the N most recent events (default 32)
  --sample-every N
               events: occupancy sampling period in cycles (default 64)
";

fn flag_value<'a>(rest: &[&'a str], name: &str) -> Option<&'a str> {
    rest.iter().position(|&a| a == name).and_then(|i| rest.get(i + 1).copied())
}

fn has_flag(rest: &[&str], name: &str) -> bool {
    rest.contains(&name)
}

fn parse_opt(rest: &[&str]) -> Result<OptLevel, String> {
    match flag_value(rest, "--opt") {
        None | Some("O2") | Some("o2") => Ok(OptLevel::O2),
        Some("O0") | Some("o0") => Ok(OptLevel::O0),
        Some(other) => Err(format!("unknown optimization level `{other}` (use O0 or O2)")),
    }
}

fn parse_scale(rest: &[&str]) -> Result<u32, String> {
    match flag_value(rest, "--scale") {
        None => Ok(1),
        Some(s) => dide::cli::parse_positive("--scale", s),
    }
}

fn parse_epoch(rest: &[&str]) -> Result<usize, String> {
    match flag_value(rest, "--epoch") {
        None => Ok(dide::DEFAULT_EPOCH_LEN),
        Some(s) => dide::cli::parse_positive("--epoch", s).map(|n| n as usize),
    }
}

/// Parses the clustered-backend axes shared by `run`, `stats` and
/// `events`: `--machine clustered` (or any of `--clusters`, `--bypass`,
/// `--steer`) selects the clustered backend on top of the machine base,
/// with [`ClusterConfig::default`] filling unspecified axes.
fn parse_cluster(rest: &[&str]) -> Result<Option<ClusterConfig>, String> {
    let clustered = matches!(flag_value(rest, "--machine"), Some("clustered"))
        || flag_value(rest, "--clusters").is_some()
        || flag_value(rest, "--bypass").is_some()
        || flag_value(rest, "--steer").is_some();
    if !clustered {
        return Ok(None);
    }
    let mut cluster = ClusterConfig::default();
    if let Some(s) = flag_value(rest, "--clusters") {
        let n = dide::cli::parse_positive("--clusters", s)? as usize;
        if n > 8 {
            return Err(format!("invalid --clusters `{n}` (expected 1..=8)"));
        }
        cluster.clusters = n;
    }
    if let Some(s) = flag_value(rest, "--bypass") {
        cluster.bypass_penalty = s
            .parse::<u32>()
            .map_err(|_| format!("invalid --bypass `{s}` (expected cycles >= 0)"))?;
    }
    if let Some(s) = flag_value(rest, "--steer") {
        cluster.steer = SteerPolicy::parse(s)?;
    }
    Ok(Some(cluster))
}

/// What `disasm`/`trace`/`run` operate on: a named workload from the
/// suites, or an external `.asm` file assembled on the fly.
enum RunTarget {
    Spec(dide::WorkloadSpec),
    File(std::path::PathBuf),
}

impl RunTarget {
    /// Builds the program. `.asm` files are fixed programs and ignore
    /// `opt`/`scale`; named workloads honor both.
    fn build(&self, opt: OptLevel, scale: u32) -> Result<dide::prelude::Program, String> {
        match self {
            RunTarget::Spec(spec) => Ok(spec.build(opt, scale)),
            RunTarget::File(path) => dide::asm::assemble_path(path),
        }
    }
}

fn find_target(name: Option<&&str>) -> Result<RunTarget, String> {
    let name = name.ok_or("missing benchmark name or .asm path (try `dide list`)")?;
    if name.ends_with(".asm") || name.contains(std::path::MAIN_SEPARATOR) {
        return Ok(RunTarget::File(name.into()));
    }
    dide::find_workload(name)
        .map(RunTarget::Spec)
        .ok_or_else(|| format!("unknown benchmark `{name}` (try `dide list`)"))
}

fn fail(message: String) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::FAILURE
}

fn list() -> ExitCode {
    let mut t = dide::Table::new(["name", "description"]);
    for s in dide::suite().into_iter().chain(dide::asm_suite()) {
        t.row([s.name, s.description]);
    }
    print!("{t}");
    ExitCode::SUCCESS
}

fn disasm(rest: &[&str]) -> ExitCode {
    let target = match find_target(rest.first()) {
        Ok(t) => t,
        Err(e) => return fail(e),
    };
    let opt = match parse_opt(rest) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    match target.build(opt, 1) {
        Ok(program) => {
            print!("{}", program.listing());
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

fn trace(rest: &[&str]) -> ExitCode {
    let target = match find_target(rest.first()) {
        Ok(t) => t,
        Err(e) => return fail(e),
    };
    let (opt, scale) = match (parse_opt(rest), parse_scale(rest)) {
        (Ok(o), Ok(s)) => (o, s),
        (Err(e), _) | (_, Err(e)) => return fail(e),
    };
    let program = match target.build(opt, scale) {
        Ok(p) => p,
        Err(e) => return fail(e),
    };
    if has_flag(rest, "--stream") {
        if flag_value(rest, "--hot").is_some() {
            return fail("--hot needs the materialized trace (drop --stream)".to_string());
        }
        let epoch = match parse_epoch(rest) {
            Ok(n) => n,
            Err(e) => return fail(e),
        };
        let deadness = match DeadnessAnalysis::analyze_streamed(&program, epoch) {
            Ok(d) => d,
            Err(e) => return fail(format!("emulation trapped: {e}")),
        };
        println!(
            "== streamed trace ==\n{} dynamic instructions in {} epoch(s) of {epoch} records",
            deadness.len(),
            deadness.epochs()
        );
        println!(
            "peak window memory: {} bytes (materialized trace: {} bytes)",
            deadness.mem_peak_bytes(),
            deadness.len() as u64 * std::mem::size_of::<DynInst>() as u64
        );
        println!("\n== windowed deadness ==\n{}", deadness.stats());
        println!("escaped at epoch boundaries (conservatively useful): {}", deadness.escaped());
        return ExitCode::SUCCESS;
    }
    let trace = match Emulator::new(&program).run() {
        Ok(t) => t,
        Err(e) => return fail(format!("emulation trapped: {e}")),
    };
    println!("== trace summary ==\n{}", trace.summary());
    let analysis = DeadnessAnalysis::analyze(&trace);
    println!("\n== oracle deadness ==\n{}", analysis.stats());
    println!("\n== static profile ==\n{}", analysis.static_profile(&trace));
    println!("\n== locality ==\n{}", analysis.locality(&trace));

    if let Some(n) = flag_value(rest, "--hot") {
        let Ok(n) = n.parse::<usize>() else {
            return fail(format!("invalid --hot count `{n}`"));
        };
        let profile = analysis.static_profile(&trace);
        let mut hot: Vec<(usize, u64, u64)> = profile
            .records()
            .iter()
            .enumerate()
            .filter(|(_, r)| r.dead > 0)
            .map(|(idx, r)| (idx, r.dead, r.eligible))
            .collect();
        hot.sort_by_key(|&(_, dead, _)| std::cmp::Reverse(dead));
        println!("\n== hottest dead statics ==");
        let mut t = dide::Table::new(["index", "instruction", "dead", "of eligible"]);
        for &(idx, dead, eligible) in hot.iter().take(n) {
            t.row([
                idx.to_string(),
                program.insts()[idx].to_string(),
                dead.to_string(),
                eligible.to_string(),
            ]);
        }
        print!("{t}");
    }
    ExitCode::SUCCESS
}

fn run(rest: &[&str]) -> ExitCode {
    let target = match find_target(rest.first()) {
        Ok(t) => t,
        Err(e) => return fail(e),
    };
    let (opt, scale) = match (parse_opt(rest), parse_scale(rest)) {
        (Ok(o), Ok(s)) => (o, s),
        (Err(e), _) | (_, Err(e)) => return fail(e),
    };
    let machine = match flag_value(rest, "--machine") {
        None | Some("contended" | "clustered") => PipelineConfig::contended(),
        Some("baseline") => PipelineConfig::baseline(),
        Some(other) => return fail(format!("unknown machine `{other}`")),
    };
    let machine = match parse_cluster(rest) {
        Ok(Some(cluster)) => machine.with_cluster(cluster),
        Ok(None) => machine,
        Err(e) => return fail(e),
    };
    let config = if has_flag(rest, "--eliminate") || has_flag(rest, "--oracle") {
        machine.with_elimination(DeadElimConfig {
            oracle: has_flag(rest, "--oracle"),
            jump_aware: has_flag(rest, "--jump-aware"),
            ..DeadElimConfig::default()
        })
    } else {
        machine
    };

    let program = match target.build(opt, scale) {
        Ok(p) => p,
        Err(e) => return fail(e),
    };
    if has_flag(rest, "--stream") {
        let epoch = match parse_epoch(rest) {
            Ok(n) => n,
            Err(e) => return fail(e),
        };
        let deadness = match DeadnessAnalysis::analyze_streamed(&program, epoch) {
            Ok(d) => d,
            Err(e) => return fail(format!("emulation trapped: {e}")),
        };
        let mut stream = TraceStream::new(&program, epoch);
        let stats = Core::new(config).run_streamed(&mut stream, &deadness);
        println!("{stats}");
        eprintln!(
            "stream: {} insts in {} epoch(s) of {epoch}; peak window {} KiB ({} escaped)",
            deadness.len(),
            deadness.epochs(),
            stream.peak_resident_bytes().max(deadness.mem_peak_bytes()) / 1024,
            deadness.escaped(),
        );
        return ExitCode::SUCCESS;
    }
    let trace = match Emulator::new(&program).run() {
        Ok(t) => t,
        Err(e) => return fail(format!("emulation trapped: {e}")),
    };
    let analysis = DeadnessAnalysis::analyze(&trace);
    let stats = Core::new(config).run(&trace, &analysis);
    println!("{stats}");
    ExitCode::SUCCESS
}

fn parse_jobs(rest: &[&str]) -> Result<usize, String> {
    match flag_value(rest, "--jobs") {
        None => Ok(0),
        Some(s) => match s.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("invalid --jobs `{s}` (expected an integer >= 1)")),
        },
    }
}

fn parse_only(rest: &[&str]) -> Option<Vec<String>> {
    flag_value(rest, "--only").map(|s| s.split(',').map(|x| x.trim().to_lowercase()).collect())
}

fn verify(rest: &[&str]) -> ExitCode {
    let jobs = match parse_jobs(rest) {
        Ok(j) => j,
        Err(e) => return fail(e),
    };
    if has_flag(rest, "--golden") {
        let options = dide::GoldenOptions {
            dir: flag_value(rest, "--dir").unwrap_or("tests/golden").into(),
            only: parse_only(rest),
            jobs,
            bless: has_flag(rest, "--bless"),
        };
        return match dide::run_golden(&options) {
            Ok(run) => {
                print!("{}", run.report);
                if run.mismatches == 0 {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => fail(format!("golden comparison failed: {e}")),
        };
    }
    let seeds = match flag_value(rest, "--seeds") {
        None => 64,
        Some(s) => match s.parse::<u64>() {
            Ok(n) => n,
            Err(_) => return fail(format!("invalid --seeds `{s}`")),
        },
    };
    let options =
        dide::VerifyOptions { seeds, jobs, corpus: flag_value(rest, "--corpus").map(Into::into) };
    match dide::run_verify(&options) {
        Ok(run) => {
            print!("{}", run.report);
            if run.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => fail(format!("verification failed: {e}")),
    }
}

fn bench(rest: &[&str]) -> ExitCode {
    let scales = match flag_value(rest, "--scales") {
        None => vec![1, 4],
        Some(s) => match dide::cli::parse_positive_list("--scales", s) {
            Ok(v) => v,
            Err(e) => return fail(e),
        },
    };
    let epoch = match parse_epoch(rest) {
        Ok(n) => n,
        Err(e) => return fail(e),
    };
    let options = dide::BenchOptions {
        scales,
        quick: has_flag(rest, "--quick"),
        out: flag_value(rest, "--out").unwrap_or("BENCH.json").into(),
        check_against: flag_value(rest, "--check-against").map(Into::into),
        stream_only: has_flag(rest, "--stream"),
        epoch,
    };
    match dide::run_bench(&options) {
        Ok(run) => {
            eprintln!("{}", run.report);
            match &run.regression {
                Some(check) if !check.ok => fail("bench regression check failed".to_string()),
                _ => ExitCode::SUCCESS,
            }
        }
        Err(e) => fail(format!("bench failed: {e}")),
    }
}

/// Parses the shared `dide stats` / `dide events` run-selection flags.
fn parse_selection(rest: &[&str]) -> Result<dide::RunSelection, String> {
    let mut select = dide::RunSelection::default();
    if let Some(name) = flag_value(rest, "--benchmark") {
        // Validate early so the error names the flag, not a build failure.
        if dide::find_workload(name).is_none() {
            return Err(format!("unknown benchmark `{name}` (try `dide list`)"));
        }
        select.benchmark = name.to_string();
    }
    select.opt = parse_opt(rest)?;
    select.scale = parse_scale(rest)?;
    select.contended = match flag_value(rest, "--machine") {
        None | Some("contended" | "clustered") => true,
        Some("baseline") => false,
        Some(other) => return Err(format!("unknown machine `{other}`")),
    };
    select.cluster = parse_cluster(rest)?;
    select.eliminate = has_flag(rest, "--eliminate");
    select.oracle = has_flag(rest, "--oracle");
    select.jump_aware = has_flag(rest, "--jump-aware");
    select.stream = has_flag(rest, "--stream");
    select.epoch = parse_epoch(rest)?;
    Ok(select)
}

fn stats(rest: &[&str]) -> ExitCode {
    let select = match parse_selection(rest) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let format = match (has_flag(rest, "--json"), has_flag(rest, "--csv")) {
        (_, false) => dide::StatsFormat::Json,
        (false, true) => dide::StatsFormat::Csv,
        (true, true) => return fail("pass at most one of --json / --csv".to_string()),
    };
    match dide::run_stats(&dide::StatsOptions { select, format: Some(format) }) {
        Ok(run) => {
            print!("{}", run.output);
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

fn events(rest: &[&str]) -> ExitCode {
    let select = match parse_selection(rest) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let mut options = dide::EventsOptions { select, ..dide::EventsOptions::default() };
    if let Some(n) = flag_value(rest, "--last") {
        match dide::cli::parse_positive("--last", n) {
            Ok(n) => options.last = n as usize,
            Err(e) => return fail(e),
        }
    }
    if let Some(n) = flag_value(rest, "--sample-every") {
        match dide::cli::parse_positive("--sample-every", n) {
            Ok(n) => options.sample_every = u64::from(n),
            Err(e) => return fail(e),
        }
    }
    match dide::run_events(&options) {
        Ok(run) => {
            print!("{}", run.report);
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

fn experiments(rest: &[&str]) -> ExitCode {
    let scale = match parse_scale(rest) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let only = parse_only(rest);
    let jobs = match parse_jobs(rest) {
        Ok(j) => j,
        Err(e) => return fail(e),
    };
    let epoch = match parse_epoch(rest) {
        Ok(n) => n,
        Err(e) => return fail(e),
    };
    let options = ExperimentOptions {
        scale,
        only,
        jobs,
        timings: has_flag(rest, "--timings"),
        stream: has_flag(rest, "--stream"),
        epoch,
    };

    let run = dide::run_experiments(&options);
    print!("{}", run.tables);
    eprintln!("{}", run.timing_summary);
    if options.timings {
        eprintln!("{}", run.timing_detail);
    }
    ExitCode::SUCCESS
}

/// Collects every value of a repeatable flag (e.g. `--where k=v --where k=v`).
fn flag_values<'a>(rest: &[&'a str], name: &str) -> Vec<&'a str> {
    rest.iter()
        .enumerate()
        .filter(|&(_, a)| *a == name)
        .filter_map(|(i, _)| rest.get(i + 1).copied())
        .collect()
}

fn campaign(rest: &[&str]) -> ExitCode {
    match rest.first().copied() {
        Some("run") => campaign_run(&rest[1..]),
        Some("report") => campaign_report(&rest[1..]),
        Some(other) => fail(format!("unknown campaign subcommand `{other}` (use run or report)")),
        None => fail("missing campaign subcommand (use run or report)".to_string()),
    }
}

/// Builds a [`dide::CampaignGrid`] from the `campaign run` axis flags;
/// axes without a flag keep their defaults.
fn parse_grid(rest: &[&str]) -> Result<dide::CampaignGrid, String> {
    let mut grid = dide::CampaignGrid::default();
    if let Some(s) = flag_value(rest, "--benchmarks") {
        grid.benchmarks = dide::cli::parse_name_list("--benchmarks", s)?;
    }
    if let Some(s) = flag_value(rest, "--seeds") {
        grid.seeds = dide::cli::parse_seed_list("--seeds", s)?;
    }
    if let Some(s) = flag_value(rest, "--opts") {
        grid.opts = dide::cli::parse_name_list("--opts", s)?
            .iter()
            .map(|o| match o.as_str() {
                "O0" | "o0" => Ok(OptLevel::O0),
                "O2" | "o2" => Ok(OptLevel::O2),
                other => Err(format!("invalid --opts `{other}` (expected O0 or O2)")),
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(s) = flag_value(rest, "--scales") {
        grid.scales = dide::cli::parse_positive_list("--scales", s)?;
    }
    if let Some(s) = flag_value(rest, "--machines") {
        grid.machines = dide::cli::parse_name_list("--machines", s)?
            .iter()
            .map(|m| dide::Machine::parse(m))
            .collect::<Result<_, _>>()?;
    }
    if let Some(s) = flag_value(rest, "--elims") {
        grid.elims = dide::cli::parse_name_list("--elims", s)?
            .iter()
            .map(|e| dide::Elim::parse(e))
            .collect::<Result<_, _>>()?;
    }
    if let Some(s) = flag_value(rest, "--thresholds") {
        grid.thresholds = dide::cli::parse_positive_list("--thresholds", s)?;
    }
    if let Some(s) = flag_value(rest, "--penalties") {
        grid.penalties = dide::cli::parse_positive_list("--penalties", s)?;
    }
    Ok(grid)
}

fn campaign_run(rest: &[&str]) -> ExitCode {
    let grid = match parse_grid(rest) {
        Ok(g) => g,
        Err(e) => return fail(e),
    };
    let jobs = match parse_jobs(rest) {
        Ok(j) => j,
        Err(e) => return fail(e),
    };
    let mut options = dide::CampaignOptions {
        grid,
        out: flag_value(rest, "--out").unwrap_or("campaign.jsonl").into(),
        jobs: if jobs == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            jobs
        },
        resume: has_flag(rest, "--resume"),
        ..dide::CampaignOptions::default()
    };
    if let Some(s) = flag_value(rest, "--flush-every") {
        match dide::cli::parse_positive("--flush-every", s) {
            Ok(n) => options.flush_every = u64::from(n),
            Err(e) => return fail(e),
        }
    }
    if let Some(s) = flag_value(rest, "--fixture-cap") {
        match dide::cli::parse_positive("--fixture-cap", s) {
            Ok(n) => options.fixture_cap = n as usize,
            Err(e) => return fail(e),
        }
    }
    match dide::run_campaign(&options) {
        Ok(run) => {
            print!("{}", run.summary);
            if run.violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                for v in &run.violations {
                    eprintln!("rule violated: {v}");
                }
                ExitCode::FAILURE
            }
        }
        Err(e) => fail(format!("campaign failed: {e}")),
    }
}

fn campaign_report(rest: &[&str]) -> ExitCode {
    let mut wheres = Vec::new();
    for clause in flag_values(rest, "--where") {
        let Some((name, value)) = clause.split_once('=') else {
            return fail(format!("invalid --where `{clause}` (expected field=value)"));
        };
        wheres.push((name.trim().to_string(), value.trim().to_string()));
    }
    let parse_list = |flag: &str| -> Result<Vec<String>, String> {
        match flag_value(rest, flag) {
            None => Ok(Vec::new()),
            Some(s) => dide::cli::parse_name_list(flag, s),
        }
    };
    let (group_by, metrics) = match (parse_list("--group-by"), parse_list("--metrics")) {
        (Ok(g), Ok(m)) => (g, m),
        (Err(e), _) | (_, Err(e)) => return fail(e),
    };
    let options = dide::ReportOptions {
        store: flag_value(rest, "--store").unwrap_or("campaign.jsonl").into(),
        wheres,
        group_by,
        metrics,
    };
    match dide::run_campaign_report(&options) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}
