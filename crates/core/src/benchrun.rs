//! The `dide bench` runner: a tracked performance harness over the
//! benchmark suite.
//!
//! Runs the four pipeline phases (build → trace → analyze → simulate) for
//! every benchmark at the requested scales, bypassing the fixture cache so
//! each phase is actually re-executed and timed, and renders the result as
//! a machine-readable `BENCH.json`. CI runs `dide bench --quick` as a smoke
//! stage and archives the file; comparing two `BENCH.json` files from
//! different commits is how analyze/trace-phase regressions are caught
//! (see `TESTING.md`).
//!
//! The JSON is hand-rolled: the build environment has no serde, and the
//! schema is small and flat. Key order is fixed so diffs are stable.

use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use dide_pipeline::{Core, PipelineConfig};
use dide_workloads::{suite, OptLevel, WorkloadSpec};

use crate::harness::{self, Phase};
use crate::{BenchCase, Table};

/// Schema identifier written into `BENCH.json`; bump on layout changes.
pub const BENCH_SCHEMA: &str = "dide-bench/v1";

/// Benchmarks used by `--quick` (CI smoke): small but covering the three
/// workload families (expression-heavy, store-heavy, pointer-chasing).
const QUICK_SUITE: [&str; 3] = ["expr", "objstore", "route"];

/// Options accepted by [`run_bench`] (the `dide bench` CLI).
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Workload scales to measure. The full run uses `[1, 4]`.
    pub scales: Vec<u32>,
    /// Smoke mode: only the [`QUICK_SUITE`] benchmarks at scale 1.
    pub quick: bool,
    /// Where to write the JSON report.
    pub out: PathBuf,
}

impl Default for BenchOptions {
    fn default() -> BenchOptions {
        BenchOptions { scales: vec![1, 4], quick: false, out: PathBuf::from("BENCH.json") }
    }
}

/// Wall-clock of the four phases for one benchmark at one scale.
#[derive(Debug, Clone)]
pub struct BenchMeasurement {
    /// Benchmark name.
    pub name: String,
    /// Optimization level measured (the suite default, O2).
    pub opt: OptLevel,
    /// Workload scale.
    pub scale: u32,
    /// Dynamic trace length, for ns-per-instruction normalization.
    pub trace_len: u64,
    /// Wall-clock per phase, in [`Phase::ALL`] order.
    pub phases: [Duration; 4],
}

impl BenchMeasurement {
    /// Sum of the four phases.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.phases.iter().sum()
    }
}

/// The result of one [`run_bench`] call.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// Every measurement, in (scale, suite) order.
    pub measurements: Vec<BenchMeasurement>,
    /// The `BENCH.json` document.
    pub json: String,
    /// Human-readable summary table (stderr).
    pub report: String,
}

/// Runs the benchmark harness and writes `BENCH.json`.
///
/// # Errors
///
/// Returns an error if the output file cannot be written.
///
/// # Panics
///
/// Panics if a benchmark program traps (a workload-generator bug).
pub fn run_bench(options: &BenchOptions) -> std::io::Result<BenchRun> {
    let specs: Vec<WorkloadSpec> = if options.quick {
        let all = suite();
        QUICK_SUITE
            .iter()
            .map(|&n| *all.iter().find(|s| s.name == n).expect("quick benchmark exists"))
            .collect()
    } else {
        suite()
    };
    let scales: &[u32] = if options.quick { &[1] } else { &options.scales };

    let mut measurements = Vec::new();
    for &scale in scales {
        for &spec in &specs {
            eprintln!("bench: {}@{}/s{scale}...", spec.name, OptLevel::O2);
            measurements.push(measure(spec, OptLevel::O2, scale));
        }
    }

    let json = render_json(scales, &measurements);
    std::fs::File::create(&options.out)?.write_all(json.as_bytes())?;
    let report = render_report(&measurements, &options.out);
    Ok(BenchRun { measurements, json, report })
}

/// Measures one benchmark at one scale: a fresh (uncached) build, trace and
/// analyze, then a contended-machine simulation.
fn measure(spec: WorkloadSpec, opt: OptLevel, scale: u32) -> BenchMeasurement {
    let before = harness::timing_records().len();
    // `build` bypasses the fixture cache and records Build/Trace/Analyze
    // spans in the process-wide registry; the simulation span is recorded
    // here under the same label.
    let case = BenchCase::build(spec, opt, scale);
    let label = format!("{}@{opt}/s{scale}", spec.name);
    let _stats = harness::time(&label, Phase::Simulate, || {
        Core::new(PipelineConfig::contended()).run(&case.trace, &case.analysis)
    });

    let mut phases = [Duration::ZERO; 4];
    for r in &harness::timing_records()[before..] {
        if r.label == label {
            let slot = Phase::ALL.iter().position(|&p| p == r.phase).expect("phase in ALL");
            phases[slot] += r.elapsed;
        }
    }
    BenchMeasurement {
        name: spec.name.to_string(),
        opt,
        scale,
        trace_len: case.trace.len() as u64,
        phases,
    }
}

/// Renders the `BENCH.json` document. Deterministic layout: fixed key
/// order, benchmarks in measurement order, 2-space indentation.
#[must_use]
pub fn render_json(scales: &[u32], measurements: &[BenchMeasurement]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": \"{BENCH_SCHEMA}\",\n"));
    out.push_str(&format!(
        "  \"scales\": [{}],\n",
        scales.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
    ));

    out.push_str("  \"benchmarks\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", m.name));
        out.push_str(&format!("      \"opt\": \"{}\",\n", m.opt));
        out.push_str(&format!("      \"scale\": {},\n", m.scale));
        out.push_str(&format!("      \"trace_len\": {},\n", m.trace_len));
        out.push_str("      \"phases_ns\": {");
        for (slot, phase) in Phase::ALL.iter().enumerate() {
            if slot > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", phase.label(), m.phases[slot].as_nanos()));
        }
        out.push_str("},\n");
        out.push_str(&format!("      \"total_ns\": {}\n", m.total().as_nanos()));
        out.push_str(if i + 1 < measurements.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ],\n");

    out.push_str("  \"totals_ns\": {");
    for (slot, phase) in Phase::ALL.iter().enumerate() {
        if slot > 0 {
            out.push_str(", ");
        }
        let total: u128 = measurements.iter().map(|m| m.phases[slot].as_nanos()).sum();
        out.push_str(&format!("\"{}\": {total}", phase.label()));
    }
    out.push_str("},\n");

    out.push_str("  \"per_scale_totals_ns\": {\n");
    for (i, &scale) in scales.iter().enumerate() {
        out.push_str(&format!("    \"{scale}\": {{"));
        for (slot, phase) in Phase::ALL.iter().enumerate() {
            if slot > 0 {
                out.push_str(", ");
            }
            let total: u128 = measurements
                .iter()
                .filter(|m| m.scale == scale)
                .map(|m| m.phases[slot].as_nanos())
                .sum();
            out.push_str(&format!("\"{}\": {total}", phase.label()));
        }
        out.push_str(if i + 1 < scales.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  }\n}\n");
    out
}

/// Renders the human-readable summary.
fn render_report(measurements: &[BenchMeasurement], out: &std::path::Path) -> String {
    let mut text = String::from("== bench (wall-clock per phase) ==\n");
    let mut t =
        Table::new(["benchmark", "scale", "build", "trace", "analyze", "simulate", "total"]);
    for m in measurements {
        t.row([
            m.name.clone(),
            m.scale.to_string(),
            harness::fmt_duration(m.phases[0]),
            harness::fmt_duration(m.phases[1]),
            harness::fmt_duration(m.phases[2]),
            harness::fmt_duration(m.phases[3]),
            harness::fmt_duration(m.total()),
        ]);
    }
    text.push_str(&t.to_string());
    text.push_str(&format!("\nwrote {}\n", out.display()));
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<BenchMeasurement> {
        vec![
            BenchMeasurement {
                name: "expr".into(),
                opt: OptLevel::O2,
                scale: 1,
                trace_len: 1000,
                phases: [
                    Duration::from_nanos(10),
                    Duration::from_nanos(20),
                    Duration::from_nanos(30),
                    Duration::from_nanos(40),
                ],
            },
            BenchMeasurement {
                name: "route".into(),
                opt: OptLevel::O2,
                scale: 4,
                trace_len: 4000,
                phases: [
                    Duration::from_nanos(1),
                    Duration::from_nanos(2),
                    Duration::from_nanos(3),
                    Duration::from_nanos(4),
                ],
            },
        ]
    }

    #[test]
    fn json_has_schema_and_per_phase_totals() {
        let json = render_json(&[1, 4], &sample());
        assert!(json.contains("\"schema\": \"dide-bench/v1\""));
        assert!(json.contains("\"scales\": [1, 4]"));
        assert!(json.contains("\"name\": \"expr\""));
        assert!(json.contains(
            "\"phases_ns\": {\"build\": 10, \"trace\": 20, \"analyze\": 30, \"simulate\": 40}"
        ));
        assert!(json.contains("\"total_ns\": 100"));
        assert!(json.contains(
            "\"totals_ns\": {\"build\": 11, \"trace\": 22, \"analyze\": 33, \"simulate\": 44}"
        ));
        assert!(json.contains("\"1\": {\"build\": 10"));
        assert!(json.contains("\"4\": {\"build\": 1"));
    }

    #[test]
    fn json_is_structurally_balanced() {
        let json = render_json(&[1], &sample()[..1]);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn quick_bench_writes_well_formed_json() {
        let dir = std::env::temp_dir().join("dide-benchrun-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH.json");
        let options = BenchOptions { quick: true, out: out.clone(), ..BenchOptions::default() };
        let run = run_bench(&options).expect("bench writes");
        assert_eq!(run.measurements.len(), QUICK_SUITE.len());
        assert!(run.measurements.iter().all(|m| m.scale == 1));
        assert!(run.measurements.iter().all(|m| m.trace_len > 0));
        let written = std::fs::read_to_string(&out).unwrap();
        assert_eq!(written, run.json);
        assert!(written.contains("\"schema\": \"dide-bench/v1\""));
        assert!(run.report.contains("objstore"));
        std::fs::remove_file(&out).ok();
    }
}
