//! The `dide bench` runner: a tracked performance harness over the
//! benchmark suite.
//!
//! Runs the four pipeline phases (build → trace → analyze → simulate) for
//! every benchmark at the requested scales, bypassing the fixture cache so
//! each phase is actually re-executed and timed, and renders the result as
//! a machine-readable `BENCH.json`. CI runs `dide bench --quick
//! --check-against BENCH.json` as a smoke stage: the simulate phase is
//! compared against the committed baseline ([`check_regression`]) and the
//! report is archived; comparing two `BENCH.json` files from different
//! commits is how analyze/trace-phase regressions are caught (see
//! `TESTING.md`).
//!
//! The JSON is hand-rolled: the build environment has no serde, and the
//! schema is small and flat. Key order is fixed so diffs are stable.

use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use dide_analysis::DeadnessAnalysis;
use dide_emu::{DynInst, TraceStream};
use dide_obs::{EventTrace, EventsConfig};
use dide_pipeline::{ClusterConfig, Core, PipelineConfig, SteerPolicy};
use dide_workloads::{suite, OptLevel, WorkloadSpec};

use crate::campaign::{measure_campaign_throughput, CampaignThroughput};
use crate::harness::{self, Phase};
use crate::statsrun::DEFAULT_EPOCH_LEN;
use crate::{BenchCase, Table};

/// Schema identifier written into `BENCH.json`; bump on layout changes.
/// v2 added the `stream` block (bounded-memory streamed runs with their
/// `mem_peak_bytes` accounting); v3 added the `campaign` block (batch
/// engine throughput, dedup rate and fixture-cache accounting); v4 added
/// the `cluster` block (clustered-backend reference point: host overhead
/// of the clustered scheduling loop plus exact-gated cycle counts,
/// DESIGN.md §11).
pub const BENCH_SCHEMA: &str = "dide-bench/v4";

/// Benchmarks used by `--quick` (CI smoke): small but covering the three
/// workload families (expression-heavy, store-heavy, pointer-chasing) plus
/// one externally assembled `.asm` workload.
const QUICK_SUITE: [&str; 4] = ["expr", "objstore", "route", "prime"];

/// `(benchmark, scale)` streamed-mode enrollments for the full run. The
/// scale-16 entries produce multi-million-record traces the materializing
/// path would hold fully resident (tens of MB); matmul at scale 64 runs a
/// long `.asm` kernel (256 rounds) through the same path.
const STREAM_SUITE: [(&str, u32); 4] = [("expr", 4), ("expr", 16), ("route", 16), ("matmul", 64)];

/// Streamed enrollments for `--quick`: one small entry so CI still compares
/// `mem_peak_bytes` against the committed baseline on every push.
const QUICK_STREAM_SUITE: [(&str, u32); 1] = [("expr", 4)];

/// Options accepted by [`run_bench`] (the `dide bench` CLI).
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Workload scales to measure. The full run uses `[1, 4]`.
    pub scales: Vec<u32>,
    /// Smoke mode: only the [`QUICK_SUITE`] benchmarks at scale 1.
    pub quick: bool,
    /// Where to write the JSON report.
    pub out: PathBuf,
    /// A committed `BENCH.json` to compare the simulate phase against
    /// (`--check-against`); see [`check_regression`].
    pub check_against: Option<PathBuf>,
    /// `--stream`: skip the materializing four-phase sweep and measure only
    /// the streamed enrollments.
    pub stream_only: bool,
    /// Epoch length for the streamed enrollments (`--epoch`).
    pub epoch: usize,
}

impl Default for BenchOptions {
    fn default() -> BenchOptions {
        BenchOptions {
            scales: vec![1, 4],
            quick: false,
            out: PathBuf::from("BENCH.json"),
            check_against: None,
            stream_only: false,
            epoch: DEFAULT_EPOCH_LEN,
        }
    }
}

/// Simulate-phase slowdown (relative to the baseline file) above which
/// [`check_regression`] fails. Deliberately generous: CI shares one CPU
/// with other jobs and single-shot phase timings jitter by tens of
/// percent, so the gate only catches order-of-magnitude regressions
/// (e.g. an accidentally quadratic pipeline structure), not tuning drift.
const REGRESSION_FACTOR: f64 = 2.0;

/// Absolute slowdown floor: differences under this many milliseconds are
/// never flagged, whatever the ratio — sub-millisecond baselines would
/// otherwise trip on scheduler noise alone. Kept below a single quick-run
/// simulate phase (~8ms), so a genuine 2x regression there still clears
/// the floor.
const REGRESSION_FLOOR_MS: u128 = 5;

/// Peak-memory growth factor above which a streamed enrollment fails the
/// regression check. Unlike wall-clock, `mem_peak_bytes` is deterministic
/// (resident chunks x epoch bytes), so any growth is structural — the
/// factor only absorbs intentional epoch retuning, not noise.
const MEM_REGRESSION_FACTOR: f64 = 2.0;

/// One streamed-mode measurement: windowed analysis + streaming pipeline,
/// with the peak retained trace memory both paths would need.
#[derive(Debug, Clone)]
pub struct StreamMeasurement {
    /// Benchmark name.
    pub name: String,
    /// Workload scale.
    pub scale: u32,
    /// Epoch length (records per chunk).
    pub epoch_len: usize,
    /// Dynamic trace length.
    pub trace_len: u64,
    /// Windowed-analysis wall-clock (one emulation pass).
    pub analyze: Duration,
    /// Streaming-pipeline wall-clock (emulation + cycle loop).
    pub simulate: Duration,
    /// Peak trace bytes resident in the stream during the pipeline pass.
    pub mem_peak_bytes: u64,
    /// Bytes the materializing path would hold for the same trace
    /// (`trace_len * size_of::<DynInst>()`).
    pub materialized_bytes: u64,
}

impl StreamMeasurement {
    /// Materialized-over-streamed memory ratio (the headline saving).
    #[must_use]
    pub fn mem_ratio(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        if self.mem_peak_bytes == 0 {
            1.0
        } else {
            self.materialized_bytes as f64 / self.mem_peak_bytes as f64
        }
    }
}

/// Wall-clock of the four phases for one benchmark at one scale.
#[derive(Debug, Clone)]
pub struct BenchMeasurement {
    /// Benchmark name.
    pub name: String,
    /// Optimization level measured (the suite default, O2).
    pub opt: OptLevel,
    /// Workload scale.
    pub scale: u32,
    /// Dynamic trace length, for ns-per-instruction normalization.
    pub trace_len: u64,
    /// Wall-clock per phase, in [`Phase::ALL`] order.
    pub phases: [Duration; 4],
}

impl BenchMeasurement {
    /// Sum of the four phases.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.phases.iter().sum()
    }
}

/// The result of one [`run_bench`] call.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// Every measurement, in (scale, suite) order.
    pub measurements: Vec<BenchMeasurement>,
    /// Streamed-mode measurements, in [`STREAM_SUITE`] order.
    pub streams: Vec<StreamMeasurement>,
    /// Batch-engine throughput over [`crate::campaign::bench_grid`].
    pub campaign: CampaignThroughput,
    /// Event-trace overhead on the fixed reference workload.
    pub events_overhead: EventsOverhead,
    /// Clustered-backend overhead on the fixed reference workload.
    pub cluster: ClusterOverhead,
    /// The `BENCH.json` document.
    pub json: String,
    /// Human-readable summary table (stderr).
    pub report: String,
    /// Baseline comparison, when `--check-against` was given.
    pub regression: Option<RegressionCheck>,
}

/// Outcome of comparing a run's simulate phase against a baseline
/// `BENCH.json` (see [`check_regression`]).
#[derive(Debug, Clone)]
pub struct RegressionCheck {
    /// Per-benchmark comparison lines, for the report.
    pub lines: Vec<String>,
    /// Whether every compared benchmark stayed within the tolerance.
    pub ok: bool,
}

/// Wall-clock of one fixed simulation with cycle-event tracing off versus
/// sampled, recorded into `BENCH.json` so a regression in the
/// tracing-disabled hot path shows up in CI history.
#[derive(Debug, Clone)]
pub struct EventsOverhead {
    /// Workload measured (the fixed reference point `expr@O2/s1`).
    pub workload: String,
    /// Simulation wall-clock with no event trace attached.
    pub off: Duration,
    /// Simulation wall-clock with a sampled event trace attached.
    pub sampled: Duration,
    /// Whether both runs produced bit-identical pipeline statistics.
    /// Anything but `true` is a tracing-hook bug.
    pub identical: bool,
}

impl EventsOverhead {
    /// Sampled-over-off wall-clock ratio (1.0 when `off` was too fast to
    /// time).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.off.is_zero() {
            1.0
        } else {
            self.sampled.as_secs_f64() / self.off.as_secs_f64()
        }
    }
}

/// The clustered-backend reference point: the fixed `expr@O2/s1` workload
/// simulated on the unified contended machine versus the clustered backend
/// (DESIGN.md §11) under round-robin and dead-instruction steering.
///
/// The wall-clock fields track the host-side cost of the clustered
/// scheduling loop (visibility bitsets, remote-wakeup events, per-cluster
/// issue merge) so a regression there shows up in CI history. The cycle
/// counts and steered-dead tally are pure functions of the workload and
/// are exact-compared by [`check_cluster_regression`] — any drift is a
/// determinism bug, not noise.
#[derive(Debug, Clone)]
pub struct ClusterOverhead {
    /// Workload measured (the fixed reference point `expr@O2/s1`).
    pub workload: String,
    /// Cluster count of the clustered runs ([`ClusterConfig::default`]).
    pub clusters: usize,
    /// Inter-cluster bypass penalty of the clustered runs.
    pub bypass_penalty: u32,
    /// Unified-backend simulation wall-clock.
    pub unified: Duration,
    /// Clustered round-robin simulation wall-clock.
    pub rr: Duration,
    /// Clustered dead-steer simulation wall-clock.
    pub dead: Duration,
    /// Simulated cycles on the unified backend.
    pub unified_cycles: u64,
    /// Simulated cycles clustered with round-robin steering.
    pub rr_cycles: u64,
    /// Simulated cycles clustered with dead-instruction steering.
    pub dead_cycles: u64,
    /// Instructions the dead-steer run routed to the cheap cluster.
    pub steered_dead: u64,
}

impl ClusterOverhead {
    /// Dead-steer-over-unified host wall-clock ratio (1.0 when `unified`
    /// was too fast to time): what the clustered loop costs the *host*,
    /// not the simulated machine.
    #[must_use]
    pub fn host_overhead(&self) -> f64 {
        if self.unified.is_zero() {
            1.0
        } else {
            self.dead.as_secs_f64() / self.unified.as_secs_f64()
        }
    }
}

/// Runs the benchmark harness and writes `BENCH.json`.
///
/// # Errors
///
/// Returns an error if the output file cannot be written.
///
/// # Panics
///
/// Panics if a benchmark program traps (a workload-generator bug).
pub fn run_bench(options: &BenchOptions) -> std::io::Result<BenchRun> {
    let specs: Vec<WorkloadSpec> = if options.quick {
        QUICK_SUITE
            .iter()
            .map(|&n| dide_workloads::find_workload(n).expect("quick benchmark exists"))
            .collect()
    } else {
        // The full sweep covers the synthetic suite plus the shipped
        // `.asm` workloads (which ignore `scale`, so their repeated
        // measurements double as timing-stability probes).
        suite().into_iter().chain(dide_workloads::asm_suite()).collect()
    };
    let scales: &[u32] = if options.quick { &[1] } else { &options.scales };

    let mut measurements = Vec::new();
    if !options.stream_only {
        for &scale in scales {
            for &spec in &specs {
                eprintln!("bench: {}@{}/s{scale}...", spec.name, OptLevel::O2);
                measurements.push(measure(spec, OptLevel::O2, scale));
            }
        }
    }

    let stream_suite: &[(&str, u32)] =
        if options.quick { &QUICK_STREAM_SUITE } else { &STREAM_SUITE };
    let mut streams = Vec::new();
    for &(name, scale) in stream_suite {
        eprintln!("bench: {name}@{}/s{scale} (streamed)...", OptLevel::O2);
        let spec = dide_workloads::find_workload(name).expect("stream benchmark exists");
        streams.push(measure_stream(spec, scale, options.epoch));
    }

    eprintln!("bench: campaign throughput grid...");
    let campaign = measure_campaign_throughput(4).map_err(std::io::Error::other)?;

    eprintln!("bench: events-overhead reference point...");
    let events_overhead = measure_events_overhead();

    eprintln!("bench: clustered-backend reference point...");
    let cluster = measure_cluster_overhead();

    let json = render_json(
        scales,
        &measurements,
        &streams,
        Some(&campaign),
        Some(&events_overhead),
        Some(&cluster),
    );
    std::fs::File::create(&options.out)?.write_all(json.as_bytes())?;
    let mut report =
        render_report(&measurements, &streams, &campaign, &events_overhead, &cluster, &options.out);
    let regression = match &options.check_against {
        None => None,
        Some(path) => {
            let baseline = std::fs::read_to_string(path)?;
            let mut check = check_regression(&measurements, &parse_baseline(&baseline));
            let mem = check_mem_regression(&streams, &parse_stream_baseline(&baseline));
            check.lines.extend(mem.lines);
            check.ok &= mem.ok;
            let camp =
                check_campaign_regression(&campaign, parse_campaign_baseline(&baseline).as_ref());
            check.lines.extend(camp.lines);
            check.ok &= camp.ok;
            let clu =
                check_cluster_regression(&cluster, parse_cluster_baseline(&baseline).as_ref());
            check.lines.extend(clu.lines);
            check.ok &= clu.ok;
            report.push_str(&format!("\n== regression check against {} ==\n", path.display()));
            for line in &check.lines {
                report.push_str(line);
                report.push('\n');
            }
            report.push_str(if check.ok {
                "regression check passed\n"
            } else {
                "REGRESSION CHECK FAILED\n"
            });
            Some(check)
        }
    };
    Ok(BenchRun {
        measurements,
        streams,
        campaign,
        events_overhead,
        cluster,
        json,
        report,
        regression,
    })
}

/// The deterministic half of a baseline `campaign` block, plus its timing
/// reference. Dedup and fixture numbers are pure functions of the grid, so
/// they are compared exactly; wall-clock gets the usual generous factor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignBaselineEntry {
    /// Grid fingerprint the baseline was measured on.
    pub grid: String,
    /// Expanded grid points.
    pub jobs_total: u64,
    /// Unique canonical jobs.
    pub jobs_unique: u64,
    /// Deduplicated grid points.
    pub jobs_deduped: u64,
    /// Peak resident fixtures.
    pub peak_resident: u64,
    /// `--jobs N` wall-clock, nanoseconds.
    pub jobsn_ns: u128,
}

/// Extracts the `campaign` block from a baseline `BENCH.json` (line
/// oriented, like [`parse_baseline`]). Returns `None` for documents
/// without the block (v2 and older), which the check reports as skipped.
#[must_use]
pub fn parse_campaign_baseline(json: &str) -> Option<CampaignBaselineEntry> {
    let start = json.find("\"campaign\": {")?;
    let mut grid = None;
    let mut nums: std::collections::HashMap<&str, u128> = std::collections::HashMap::new();
    for line in json[start..].lines() {
        let t = line.trim().trim_end_matches(',');
        if let Some(rest) = t.strip_prefix("\"grid\": \"") {
            grid = rest.split('"').next().map(ToString::to_string);
        } else if let Some((key, value)) = t.strip_prefix('"').and_then(|r| r.split_once("\": ")) {
            if let Ok(n) = value.parse::<u128>() {
                for want in [
                    "jobs_total",
                    "jobs_unique",
                    "jobs_deduped",
                    "peak_resident_fixtures",
                    "jobsn_ns",
                ] {
                    if key == want {
                        nums.insert(want, n);
                    }
                }
            }
        }
        if t.ends_with('}') && grid.is_some() {
            break;
        }
    }
    Some(CampaignBaselineEntry {
        grid: grid?,
        jobs_total: u64::try_from(*nums.get("jobs_total")?).ok()?,
        jobs_unique: u64::try_from(*nums.get("jobs_unique")?).ok()?,
        jobs_deduped: u64::try_from(*nums.get("jobs_deduped")?).ok()?,
        peak_resident: u64::try_from(*nums.get("peak_resident_fixtures")?).ok()?,
        jobsn_ns: *nums.get("jobsn_ns")?,
    })
}

/// Compares a campaign throughput measurement against the baseline block.
///
/// Dedup and fixture accounting are deterministic given the same grid
/// fingerprint, so any difference fails; wall-clock uses
/// [`REGRESSION_FACTOR`] with the usual [`REGRESSION_FLOOR_MS`]. A missing
/// baseline block or a different grid fingerprint is reported but never
/// fails (the baseline may predate the grid).
#[must_use]
pub fn check_campaign_regression(
    current: &CampaignThroughput,
    baseline: Option<&CampaignBaselineEntry>,
) -> RegressionCheck {
    let mut lines = Vec::new();
    let mut ok = true;
    let Some(base) = baseline else {
        lines.push("campaign: no baseline campaign block (skipped)".to_string());
        return RegressionCheck { lines, ok };
    };
    if base.grid != current.grid_fingerprint {
        lines.push(format!(
            "campaign: baseline grid {} differs from current {} (skipped)",
            base.grid, current.grid_fingerprint
        ));
        return RegressionCheck { lines, ok };
    }
    for (what, got, want) in [
        ("jobs_total", current.jobs_total, base.jobs_total),
        ("jobs_unique", current.jobs_unique, base.jobs_unique),
        ("jobs_deduped", current.jobs_deduped, base.jobs_deduped),
        ("peak_resident_fixtures", current.peak_resident, base.peak_resident),
    ] {
        if got == want {
            lines.push(format!("campaign {what}: {got} — ok"));
        } else {
            ok = false;
            lines.push(format!(
                "campaign {what}: {got} vs baseline {want} — DETERMINISM REGRESSION"
            ));
        }
    }
    #[allow(clippy::cast_precision_loss)]
    let ratio =
        if base.jobsn_ns == 0 { 1.0 } else { current.jobsn_ns as f64 / base.jobsn_ns as f64 };
    let over_floor =
        current.jobsn_ns.saturating_sub(base.jobsn_ns) > REGRESSION_FLOOR_MS * 1_000_000;
    if ratio > REGRESSION_FACTOR && over_floor {
        ok = false;
        lines.push(format!(
            "campaign jobs={}: {}ns vs baseline {}ns ({ratio:.2}x) — REGRESSION",
            current.jobsn, current.jobsn_ns, base.jobsn_ns
        ));
    } else {
        lines.push(format!(
            "campaign jobs={}: {}ns vs baseline {}ns ({ratio:.2}x) — ok",
            current.jobsn, current.jobsn_ns, base.jobsn_ns
        ));
    }
    RegressionCheck { lines, ok }
}

/// The deterministic half of a baseline `cluster` block, plus its timing
/// reference. Cycle counts are pure functions of the fixed reference
/// workload, so they are compared exactly; wall-clock gets the usual
/// generous factor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterBaselineEntry {
    /// Workload the baseline was measured on.
    pub workload: String,
    /// Unified-backend simulated cycles.
    pub unified_cycles: u64,
    /// Clustered round-robin simulated cycles.
    pub rr_cycles: u64,
    /// Clustered dead-steer simulated cycles.
    pub dead_cycles: u64,
    /// Instructions the dead-steer run routed to the cheap cluster.
    pub steered_dead: u64,
    /// Dead-steer run wall-clock, nanoseconds.
    pub dead_ns: u128,
}

/// Extracts the `cluster` block from a baseline `BENCH.json` (line
/// oriented, like [`parse_baseline`]). Returns `None` for documents
/// without the block (v3 and older), which the check reports as skipped.
#[must_use]
pub fn parse_cluster_baseline(json: &str) -> Option<ClusterBaselineEntry> {
    let start = json.find("\"cluster\": {")?;
    let mut workload = None;
    let mut nums: std::collections::HashMap<&str, u128> = std::collections::HashMap::new();
    for line in json[start..].lines() {
        let t = line.trim().trim_end_matches(',');
        if let Some(rest) = t.strip_prefix("\"workload\": \"") {
            workload = rest.split('"').next().map(ToString::to_string);
        } else if let Some((key, value)) = t.strip_prefix('"').and_then(|r| r.split_once("\": ")) {
            if let Ok(n) = value.parse::<u128>() {
                for want in
                    ["unified_cycles", "rr_cycles", "dead_cycles", "steered_dead", "dead_ns"]
                {
                    if key == want {
                        nums.insert(want, n);
                    }
                }
            }
        }
        if t.ends_with('}') && workload.is_some() {
            break;
        }
    }
    Some(ClusterBaselineEntry {
        workload: workload?,
        unified_cycles: u64::try_from(*nums.get("unified_cycles")?).ok()?,
        rr_cycles: u64::try_from(*nums.get("rr_cycles")?).ok()?,
        dead_cycles: u64::try_from(*nums.get("dead_cycles")?).ok()?,
        steered_dead: u64::try_from(*nums.get("steered_dead")?).ok()?,
        dead_ns: *nums.get("dead_ns")?,
    })
}

/// Compares the clustered-backend reference point against the baseline
/// block.
///
/// Simulated cycle counts and the steered-dead tally are deterministic for
/// the fixed reference workload, so any difference fails; wall-clock uses
/// [`REGRESSION_FACTOR`] with the usual [`REGRESSION_FLOOR_MS`]. A missing
/// baseline block or a different workload is reported but never fails (the
/// baseline may predate the block).
#[must_use]
pub fn check_cluster_regression(
    current: &ClusterOverhead,
    baseline: Option<&ClusterBaselineEntry>,
) -> RegressionCheck {
    let mut lines = Vec::new();
    let mut ok = true;
    let Some(base) = baseline else {
        lines.push("cluster: no baseline cluster block (skipped)".to_string());
        return RegressionCheck { lines, ok };
    };
    if base.workload != current.workload {
        lines.push(format!(
            "cluster: baseline workload {} differs from current {} (skipped)",
            base.workload, current.workload
        ));
        return RegressionCheck { lines, ok };
    }
    for (what, got, want) in [
        ("unified_cycles", current.unified_cycles, base.unified_cycles),
        ("rr_cycles", current.rr_cycles, base.rr_cycles),
        ("dead_cycles", current.dead_cycles, base.dead_cycles),
        ("steered_dead", current.steered_dead, base.steered_dead),
    ] {
        if got == want {
            lines.push(format!("cluster {what}: {got} — ok"));
        } else {
            ok = false;
            lines
                .push(format!("cluster {what}: {got} vs baseline {want} — DETERMINISM REGRESSION"));
        }
    }
    let current_ns = current.dead.as_nanos();
    #[allow(clippy::cast_precision_loss)]
    let ratio = if base.dead_ns == 0 { 1.0 } else { current_ns as f64 / base.dead_ns as f64 };
    let over_floor = current_ns.saturating_sub(base.dead_ns) > REGRESSION_FLOOR_MS * 1_000_000;
    if ratio > REGRESSION_FACTOR && over_floor {
        ok = false;
        lines.push(format!(
            "cluster dead-steer: {current_ns}ns vs baseline {}ns ({ratio:.2}x) — REGRESSION",
            base.dead_ns
        ));
    } else {
        lines.push(format!(
            "cluster dead-steer: {current_ns}ns vs baseline {}ns ({ratio:.2}x) — ok",
            base.dead_ns
        ));
    }
    RegressionCheck { lines, ok }
}

/// A `(benchmark, scale)` simulate-phase time parsed from a baseline
/// `BENCH.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Benchmark name.
    pub name: String,
    /// Workload scale.
    pub scale: u32,
    /// Simulate-phase wall-clock, in nanoseconds.
    pub simulate_ns: u128,
}

/// A `(benchmark, scale)` streamed peak-memory entry parsed from a
/// baseline `BENCH.json` `stream` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamBaselineEntry {
    /// Benchmark name.
    pub name: String,
    /// Workload scale.
    pub scale: u32,
    /// Peak resident trace bytes of the streamed run.
    pub mem_peak_bytes: u64,
}

/// Extracts per-benchmark simulate times from a `BENCH.json` document.
///
/// The build environment has no serde, so this is a line-oriented reader
/// of the fixed layout [`render_json`] produces (one key per line inside
/// each benchmark object, `phases_ns` on a single line). Unparseable
/// lines are skipped; a malformed file yields an empty baseline, which
/// [`check_regression`] reports as "no baseline entry" rather than
/// failing the gate.
#[must_use]
pub fn parse_baseline(json: &str) -> Vec<BaselineEntry> {
    fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let rest = line.trim().strip_prefix(&format!("\"{key}\": \""))?;
        rest.split('"').next()
    }
    fn num_field(line: &str, key: &str) -> Option<u128> {
        let rest = line.trim().strip_prefix(&format!("\"{key}\": "))?;
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        digits.parse().ok()
    }

    let mut entries = Vec::new();
    let mut name: Option<String> = None;
    let mut scale: Option<u32> = None;
    for line in json.lines() {
        // `totals_ns` also contains a `"simulate":` key; benchmark
        // entries are recognized by having seen a `name` first, which the
        // totals sections never carry.
        if let Some(n) = str_field(line, "name") {
            name = Some(n.to_string());
            scale = None;
        } else if let Some(s) = num_field(line, "scale") {
            scale = u32::try_from(s).ok();
        } else if let Some(i) = line.find("\"simulate\": ") {
            if let (Some(n), Some(sc)) = (name.take(), scale.take()) {
                let digits: String = line[i + "\"simulate\": ".len()..]
                    .chars()
                    .take_while(char::is_ascii_digit)
                    .collect();
                if let Ok(ns) = digits.parse() {
                    entries.push(BaselineEntry { name: n, scale: sc, simulate_ns: ns });
                }
            }
        }
    }
    entries
}

/// Extracts streamed peak-memory entries from the `stream` block of a
/// `BENCH.json` document (same line-oriented reading as
/// [`parse_baseline`]). A document without a `stream` block — e.g. a v1
/// baseline — yields an empty list, which [`check_mem_regression`]
/// reports as "no baseline mem entry" rather than failing the gate.
#[must_use]
pub fn parse_stream_baseline(json: &str) -> Vec<StreamBaselineEntry> {
    let Some(start) = json.find("\"stream\": [") else {
        return Vec::new();
    };
    let mut entries = Vec::new();
    let mut name: Option<String> = None;
    let mut scale: Option<u32> = None;
    for line in json[start..].lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("\"name\": \"") {
            name = rest.split('"').next().map(ToString::to_string);
            scale = None;
        } else if let Some(rest) = t.strip_prefix("\"scale\": ") {
            scale = rest.chars().take_while(char::is_ascii_digit).collect::<String>().parse().ok();
        } else if let Some(rest) = t.strip_prefix("\"mem_peak_bytes\": {\"streamed\": ") {
            if let (Some(n), Some(sc)) = (name.take(), scale.take()) {
                let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
                if let Ok(bytes) = digits.parse() {
                    entries.push(StreamBaselineEntry { name: n, scale: sc, mem_peak_bytes: bytes });
                }
            }
        }
    }
    entries
}

/// Compares each streamed enrollment's peak memory against the baseline.
///
/// Peak resident bytes are deterministic (resident chunks x epoch bytes),
/// so any growth beyond [`MEM_REGRESSION_FACTOR`] is a structural change
/// to the streaming window — no noise floor applies. Enrollments without a
/// baseline entry are reported but never fail.
#[must_use]
pub fn check_mem_regression(
    streams: &[StreamMeasurement],
    baseline: &[StreamBaselineEntry],
) -> RegressionCheck {
    let mut lines = Vec::new();
    let mut ok = true;
    for s in streams {
        let label = format!("{}@s{} (streamed)", s.name, s.scale);
        let Some(base) = baseline.iter().find(|b| b.name == s.name && b.scale == s.scale) else {
            lines.push(format!("{label}: no baseline mem entry (skipped)"));
            continue;
        };
        #[allow(clippy::cast_precision_loss)]
        let ratio = if base.mem_peak_bytes == 0 {
            1.0
        } else {
            s.mem_peak_bytes as f64 / base.mem_peak_bytes as f64
        };
        if ratio > MEM_REGRESSION_FACTOR {
            ok = false;
            lines.push(format!(
                "{label}: mem_peak {} bytes vs baseline {} ({ratio:.2}x) — REGRESSION",
                s.mem_peak_bytes, base.mem_peak_bytes
            ));
        } else {
            lines.push(format!(
                "{label}: mem_peak {} bytes vs baseline {} ({ratio:.2}x) — ok",
                s.mem_peak_bytes, base.mem_peak_bytes
            ));
        }
    }
    RegressionCheck { lines, ok }
}

/// Compares each measurement's simulate phase against the baseline.
///
/// A benchmark fails when its simulate time exceeds the baseline by more
/// than [`REGRESSION_FACTOR`] *and* by more than [`REGRESSION_FLOOR_MS`]
/// of absolute wall-clock; benchmarks without a matching baseline entry
/// are reported but never fail (the baseline may predate a new workload).
#[must_use]
pub fn check_regression(
    measurements: &[BenchMeasurement],
    baseline: &[BaselineEntry],
) -> RegressionCheck {
    let simulate_slot =
        Phase::ALL.iter().position(|p| p.label() == "simulate").expect("simulate phase exists");
    let mut lines = Vec::new();
    let mut ok = true;
    for m in measurements {
        let label = format!("{}@{}/s{}", m.name, m.opt, m.scale);
        let Some(base) = baseline.iter().find(|b| b.name == m.name && b.scale == m.scale) else {
            lines.push(format!("{label}: no baseline entry (skipped)"));
            continue;
        };
        let current = m.phases[simulate_slot].as_nanos();
        #[allow(clippy::cast_precision_loss)]
        let ratio =
            if base.simulate_ns == 0 { 1.0 } else { current as f64 / base.simulate_ns as f64 };
        let over_factor = ratio > REGRESSION_FACTOR;
        let over_floor = current.saturating_sub(base.simulate_ns) > REGRESSION_FLOOR_MS * 1_000_000;
        if over_factor && over_floor {
            ok = false;
            lines.push(format!(
                "{label}: simulate {current}ns vs baseline {}ns ({ratio:.2}x) — REGRESSION",
                base.simulate_ns
            ));
        } else {
            lines.push(format!(
                "{label}: simulate {current}ns vs baseline {}ns ({ratio:.2}x) — ok",
                base.simulate_ns
            ));
        }
    }
    RegressionCheck { lines, ok }
}

/// Times the same contended-machine simulation with event tracing off and
/// with the default sampling config, on the fixed `expr@O2/s1` reference
/// workload. The architectural results must be bit-identical — tracing is
/// pure observation — and the wall-clock ratio goes into `BENCH.json`.
#[must_use]
pub fn measure_events_overhead() -> EventsOverhead {
    let spec = *suite().iter().find(|s| s.name == "expr").expect("expr is in the suite");
    let case = crate::BenchCase::cached(spec, OptLevel::O2, 1);
    let config = PipelineConfig::contended();

    let start = Instant::now();
    let off_stats = Core::new(config).run_observed(&case.trace, &case.analysis, None);
    let off = start.elapsed();

    let mut events = EventTrace::new(EventsConfig::default());
    let start = Instant::now();
    let sampled_stats =
        Core::new(config).run_observed(&case.trace, &case.analysis, Some(&mut events));
    let sampled = start.elapsed();

    EventsOverhead {
        workload: format!("{}@{}/s1", spec.name, OptLevel::O2),
        off,
        sampled,
        identical: off_stats == sampled_stats,
    }
}

/// Times the fixed `expr@O2/s1` reference workload on the unified
/// contended machine and on the default clustered backend (2 clusters,
/// bypass 2) under round-robin and dead-instruction steering, recording
/// both the host wall-clock and the deterministic simulated cycle counts.
#[must_use]
pub fn measure_cluster_overhead() -> ClusterOverhead {
    let spec = *suite().iter().find(|s| s.name == "expr").expect("expr is in the suite");
    let case = crate::BenchCase::cached(spec, OptLevel::O2, 1);
    let machine = PipelineConfig::contended();
    let cluster = ClusterConfig::default();

    let start = Instant::now();
    let unified = Core::new(machine).run(&case.trace, &case.analysis);
    let unified_wall = start.elapsed();

    let start = Instant::now();
    let rr = Core::new(machine.with_cluster(cluster)).run(&case.trace, &case.analysis);
    let rr_wall = start.elapsed();

    let dead_config = ClusterConfig { steer: SteerPolicy::DeadSteer, ..cluster };
    let start = Instant::now();
    let dead = Core::new(machine.with_cluster(dead_config)).run(&case.trace, &case.analysis);
    let dead_wall = start.elapsed();

    ClusterOverhead {
        workload: format!("{}@{}/s1", spec.name, OptLevel::O2),
        clusters: cluster.clusters,
        bypass_penalty: cluster.bypass_penalty,
        unified: unified_wall,
        rr: rr_wall,
        dead: dead_wall,
        unified_cycles: unified.cycles,
        rr_cycles: rr.cycles,
        dead_cycles: dead.cycles,
        steered_dead: dead.steer.dead,
    }
}

/// Measures one streamed enrollment: a windowed analysis pass over the
/// program, then the streaming pipeline over a fresh epoch stream (on the
/// contended machine, matching [`measure`]'s simulate phase). The recorded
/// peak is the larger of the two phases' retained trace memory.
fn measure_stream(spec: WorkloadSpec, scale: u32, epoch_len: usize) -> StreamMeasurement {
    let program = spec.build(OptLevel::O2, scale);
    let start = Instant::now();
    let deadness = DeadnessAnalysis::analyze_streamed(&program, epoch_len)
        .unwrap_or_else(|e| panic!("benchmark {} must run to halt: {e}", spec.name));
    let analyze = start.elapsed();
    let mut stream = TraceStream::new(&program, epoch_len);
    let start = Instant::now();
    let _stats = Core::new(PipelineConfig::contended()).run_streamed(&mut stream, &deadness);
    let simulate = start.elapsed();
    let trace_len = deadness.len() as u64;
    StreamMeasurement {
        name: spec.name.to_string(),
        scale,
        epoch_len,
        trace_len,
        analyze,
        simulate,
        mem_peak_bytes: stream.peak_resident_bytes().max(deadness.mem_peak_bytes()),
        materialized_bytes: trace_len * std::mem::size_of::<DynInst>() as u64,
    }
}

/// Measures one benchmark at one scale: a fresh (uncached) build, trace and
/// analyze, then a contended-machine simulation.
fn measure(spec: WorkloadSpec, opt: OptLevel, scale: u32) -> BenchMeasurement {
    let before = harness::timing_records().len();
    // `build` bypasses the fixture cache and records Build/Trace/Analyze
    // spans in the process-wide registry; the simulation span is recorded
    // here under the same label.
    let case = BenchCase::build(spec, opt, scale);
    let label = format!("{}@{opt}/s{scale}", spec.name);
    let _stats = harness::time(&label, Phase::Simulate, || {
        Core::new(PipelineConfig::contended()).run(&case.trace, &case.analysis)
    });

    let mut phases = [Duration::ZERO; 4];
    for r in &harness::timing_records()[before..] {
        if r.label == label {
            let slot = Phase::ALL.iter().position(|&p| p == r.phase).expect("phase in ALL");
            phases[slot] += r.elapsed;
        }
    }
    BenchMeasurement {
        name: spec.name.to_string(),
        opt,
        scale,
        trace_len: case.trace.len() as u64,
        phases,
    }
}

/// Renders the `BENCH.json` document. Deterministic layout: fixed key
/// order, benchmarks in measurement order, 2-space indentation.
#[must_use]
pub fn render_json(
    scales: &[u32],
    measurements: &[BenchMeasurement],
    streams: &[StreamMeasurement],
    campaign: Option<&CampaignThroughput>,
    events: Option<&EventsOverhead>,
    cluster: Option<&ClusterOverhead>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": \"{BENCH_SCHEMA}\",\n"));
    out.push_str(&format!(
        "  \"scales\": [{}],\n",
        scales.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
    ));

    out.push_str("  \"benchmarks\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", m.name));
        out.push_str(&format!("      \"opt\": \"{}\",\n", m.opt));
        out.push_str(&format!("      \"scale\": {},\n", m.scale));
        out.push_str(&format!("      \"trace_len\": {},\n", m.trace_len));
        out.push_str("      \"phases_ns\": {");
        for (slot, phase) in Phase::ALL.iter().enumerate() {
            if slot > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", phase.label(), m.phases[slot].as_nanos()));
        }
        out.push_str("},\n");
        out.push_str(&format!("      \"total_ns\": {}\n", m.total().as_nanos()));
        out.push_str(if i + 1 < measurements.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ],\n");

    out.push_str("  \"totals_ns\": {");
    for (slot, phase) in Phase::ALL.iter().enumerate() {
        if slot > 0 {
            out.push_str(", ");
        }
        let total: u128 = measurements.iter().map(|m| m.phases[slot].as_nanos()).sum();
        out.push_str(&format!("\"{}\": {total}", phase.label()));
    }
    out.push_str("},\n");

    out.push_str("  \"per_scale_totals_ns\": {\n");
    for (i, &scale) in scales.iter().enumerate() {
        out.push_str(&format!("    \"{scale}\": {{"));
        for (slot, phase) in Phase::ALL.iter().enumerate() {
            if slot > 0 {
                out.push_str(", ");
            }
            let total: u128 = measurements
                .iter()
                .filter(|m| m.scale == scale)
                .map(|m| m.phases[slot].as_nanos())
                .sum();
            out.push_str(&format!("\"{}\": {total}", phase.label()));
        }
        out.push_str(if i + 1 < scales.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  },\n");

    // Batch-engine throughput: dedup and fixture fields are deterministic
    // for a fixed grid and are exact-compared by the CI gate; the ns
    // fields get the usual generous wall-clock factor.
    if let Some(c) = campaign {
        out.push_str("  \"campaign\": {\n");
        out.push_str(&format!("    \"grid\": \"{}\",\n", c.grid_fingerprint));
        out.push_str(&format!("    \"jobs_total\": {},\n", c.jobs_total));
        out.push_str(&format!("    \"jobs_unique\": {},\n", c.jobs_unique));
        out.push_str(&format!("    \"jobs_deduped\": {},\n", c.jobs_deduped));
        out.push_str(&format!("    \"dedup_rate\": {:.3},\n", c.dedup_rate()));
        out.push_str(&format!("    \"peak_resident_fixtures\": {},\n", c.peak_resident));
        out.push_str(&format!("    \"fixture_cap\": {},\n", c.fixture_cap));
        out.push_str(&format!("    \"direct_ns\": {},\n", c.direct_ns));
        out.push_str(&format!("    \"jobs1_ns\": {},\n", c.jobs1_ns));
        out.push_str(&format!("    \"scheduler_overhead\": {:.3},\n", c.scheduler_overhead()));
        out.push_str(&format!("    \"jobs\": {},\n", c.jobsn));
        out.push_str(&format!("    \"jobsn_ns\": {},\n", c.jobsn_ns));
        out.push_str(&format!("    \"jobs_per_sec\": {:.1}\n", c.jobs_per_sec()));
        out.push_str("  },\n");
    }

    // Streamed enrollments: the `mem_peak_bytes` block is what the CI
    // regression gate and the acceptance criteria read.
    if streams.is_empty() {
        out.push_str("  \"stream\": []");
    } else {
        out.push_str("  \"stream\": [\n");
        for (i, s) in streams.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", s.name));
            out.push_str(&format!("      \"scale\": {},\n", s.scale));
            out.push_str(&format!("      \"epoch_len\": {},\n", s.epoch_len));
            out.push_str(&format!("      \"trace_len\": {},\n", s.trace_len));
            out.push_str(&format!("      \"analyze_ns\": {},\n", s.analyze.as_nanos()));
            out.push_str(&format!("      \"simulate_ns\": {},\n", s.simulate.as_nanos()));
            out.push_str(&format!(
                "      \"mem_peak_bytes\": {{\"streamed\": {}, \"materialized\": {}, \
                 \"ratio\": {:.1}}}\n",
                s.mem_peak_bytes,
                s.materialized_bytes,
                s.mem_ratio()
            ));
            out.push_str(if i + 1 < streams.len() { "    },\n" } else { "    }\n" });
        }
        out.push_str("  ]");
    }

    if let Some(ev) = events {
        out.push_str(",\n  \"events_overhead\": {\n");
        out.push_str(&format!("    \"workload\": \"{}\",\n", ev.workload));
        out.push_str(&format!("    \"off_ns\": {},\n", ev.off.as_nanos()));
        out.push_str(&format!("    \"sampled_ns\": {},\n", ev.sampled.as_nanos()));
        out.push_str(&format!("    \"ratio\": {:.3},\n", ev.ratio()));
        out.push_str(&format!("    \"identical\": {}\n", ev.identical));
        out.push_str("  }");
    }

    // Clustered-backend reference point: the cycle counts and steered-dead
    // tally are deterministic and exact-compared by the CI gate; the ns
    // fields get the usual generous wall-clock factor.
    if let Some(c) = cluster {
        out.push_str(",\n  \"cluster\": {\n");
        out.push_str(&format!("    \"workload\": \"{}\",\n", c.workload));
        out.push_str(&format!("    \"clusters\": {},\n", c.clusters));
        out.push_str(&format!("    \"bypass_penalty\": {},\n", c.bypass_penalty));
        out.push_str(&format!("    \"unified_ns\": {},\n", c.unified.as_nanos()));
        out.push_str(&format!("    \"rr_ns\": {},\n", c.rr.as_nanos()));
        out.push_str(&format!("    \"dead_ns\": {},\n", c.dead.as_nanos()));
        out.push_str(&format!("    \"host_overhead\": {:.3},\n", c.host_overhead()));
        out.push_str(&format!("    \"unified_cycles\": {},\n", c.unified_cycles));
        out.push_str(&format!("    \"rr_cycles\": {},\n", c.rr_cycles));
        out.push_str(&format!("    \"dead_cycles\": {},\n", c.dead_cycles));
        out.push_str(&format!("    \"steered_dead\": {}\n", c.steered_dead));
        out.push_str("  }");
    }
    out.push_str("\n}\n");
    out
}

/// Renders the human-readable summary.
fn render_report(
    measurements: &[BenchMeasurement],
    streams: &[StreamMeasurement],
    campaign: &CampaignThroughput,
    events: &EventsOverhead,
    cluster: &ClusterOverhead,
    out: &std::path::Path,
) -> String {
    let mut text = String::new();
    if !measurements.is_empty() {
        text.push_str("== bench (wall-clock per phase) ==\n");
        let mut t =
            Table::new(["benchmark", "scale", "build", "trace", "analyze", "simulate", "total"]);
        for m in measurements {
            t.row([
                m.name.clone(),
                m.scale.to_string(),
                harness::fmt_duration(m.phases[0]),
                harness::fmt_duration(m.phases[1]),
                harness::fmt_duration(m.phases[2]),
                harness::fmt_duration(m.phases[3]),
                harness::fmt_duration(m.total()),
            ]);
        }
        text.push_str(&t.to_string());
    }
    if !streams.is_empty() {
        text.push_str("\n== bench (streamed, bounded-memory) ==\n");
        let mut t = Table::new([
            "benchmark",
            "scale",
            "insts",
            "analyze",
            "simulate",
            "mem peak",
            "vs materialized",
        ]);
        for s in streams {
            t.row([
                s.name.clone(),
                s.scale.to_string(),
                s.trace_len.to_string(),
                harness::fmt_duration(s.analyze),
                harness::fmt_duration(s.simulate),
                format!("{} KiB", s.mem_peak_bytes / 1024),
                format!("{:.1}x smaller", s.mem_ratio()),
            ]);
        }
        text.push_str(&t.to_string());
    }
    text.push_str(&format!(
        "\n== campaign throughput (grid {}) ==\n\
         {} grid points -> {} unique ({} deduped, rate {:.3})\n\
         direct {}, jobs=1 {} (overhead {:.3}x), jobs={} {} ({:.1} jobs/sec)\n\
         fixtures: peak {} resident (cap {})\n",
        campaign.grid_fingerprint,
        campaign.jobs_total,
        campaign.jobs_unique,
        campaign.jobs_deduped,
        campaign.dedup_rate(),
        harness::fmt_duration(Duration::from_nanos(
            campaign.direct_ns.min(u128::from(u64::MAX)) as u64
        )),
        harness::fmt_duration(Duration::from_nanos(
            campaign.jobs1_ns.min(u128::from(u64::MAX)) as u64
        )),
        campaign.scheduler_overhead(),
        campaign.jobsn,
        harness::fmt_duration(Duration::from_nanos(
            campaign.jobsn_ns.min(u128::from(u64::MAX)) as u64
        )),
        campaign.jobs_per_sec(),
        campaign.peak_resident,
        campaign.fixture_cap,
    ));
    text.push_str(&format!(
        "\nevents overhead on {}: off {}, sampled {} (ratio {:.3}, {})\n",
        events.workload,
        harness::fmt_duration(events.off),
        harness::fmt_duration(events.sampled),
        events.ratio(),
        if events.identical { "results identical" } else { "RESULTS DIVERGED" },
    ));
    text.push_str(&format!(
        "clustered backend on {} ({} clusters, bypass {}): unified {}, rr {}, dead-steer {} \
         (host overhead {:.3}x); cycles {} -> {} rr -> {} dead-steer, {} steered dead\n",
        cluster.workload,
        cluster.clusters,
        cluster.bypass_penalty,
        harness::fmt_duration(cluster.unified),
        harness::fmt_duration(cluster.rr),
        harness::fmt_duration(cluster.dead),
        cluster.host_overhead(),
        cluster.unified_cycles,
        cluster.rr_cycles,
        cluster.dead_cycles,
        cluster.steered_dead,
    ));
    text.push_str(&format!("wrote {}\n", out.display()));
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<BenchMeasurement> {
        vec![
            BenchMeasurement {
                name: "expr".into(),
                opt: OptLevel::O2,
                scale: 1,
                trace_len: 1000,
                phases: [
                    Duration::from_nanos(10),
                    Duration::from_nanos(20),
                    Duration::from_nanos(30),
                    Duration::from_nanos(40),
                ],
            },
            BenchMeasurement {
                name: "route".into(),
                opt: OptLevel::O2,
                scale: 4,
                trace_len: 4000,
                phases: [
                    Duration::from_nanos(1),
                    Duration::from_nanos(2),
                    Duration::from_nanos(3),
                    Duration::from_nanos(4),
                ],
            },
        ]
    }

    fn overhead() -> EventsOverhead {
        EventsOverhead {
            workload: "expr@O2/s1".into(),
            off: Duration::from_nanos(1000),
            sampled: Duration::from_nanos(1100),
            identical: true,
        }
    }

    fn stream_sample() -> Vec<StreamMeasurement> {
        vec![StreamMeasurement {
            name: "expr".into(),
            scale: 16,
            epoch_len: 65_536,
            trace_len: 1_000_000,
            analyze: Duration::from_nanos(50),
            simulate: Duration::from_nanos(60),
            mem_peak_bytes: 5_242_880,
            materialized_bytes: 40_000_000,
        }]
    }

    fn campaign_sample() -> CampaignThroughput {
        CampaignThroughput {
            grid_fingerprint: "00000000deadbeef".into(),
            jobs_total: 12,
            jobs_unique: 9,
            jobs_deduped: 3,
            peak_resident: 3,
            fixture_cap: 256,
            direct_ns: 1_000_000,
            jobs1_ns: 1_020_000,
            jobsn: 4,
            jobsn_ns: 900_000,
        }
    }

    fn cluster_sample() -> ClusterOverhead {
        ClusterOverhead {
            workload: "expr@O2/s1".into(),
            clusters: 2,
            bypass_penalty: 2,
            unified: Duration::from_nanos(1000),
            rr: Duration::from_nanos(1300),
            dead: Duration::from_nanos(1200),
            unified_cycles: 500,
            rr_cycles: 700,
            dead_cycles: 620,
            steered_dead: 40,
        }
    }

    #[test]
    fn json_has_schema_and_per_phase_totals() {
        let json = render_json(&[1, 4], &sample(), &[], None, None, None);
        assert!(json.contains("\"schema\": \"dide-bench/v4\""));
        assert!(json.contains("\"scales\": [1, 4]"));
        assert!(json.contains("\"name\": \"expr\""));
        assert!(json.contains(
            "\"phases_ns\": {\"build\": 10, \"trace\": 20, \"analyze\": 30, \"simulate\": 40}"
        ));
        assert!(json.contains("\"total_ns\": 100"));
        assert!(json.contains(
            "\"totals_ns\": {\"build\": 11, \"trace\": 22, \"analyze\": 33, \"simulate\": 44}"
        ));
        assert!(json.contains("\"1\": {\"build\": 10"));
        assert!(json.contains("\"4\": {\"build\": 1"));
        assert!(json.contains("\"stream\": []"), "no streams renders an empty block");
    }

    #[test]
    fn json_records_campaign_block_and_roundtrips() {
        let c = campaign_sample();
        let json = render_json(&[1], &sample()[..1], &[], Some(&c), None, None);
        assert!(json.contains("\"campaign\": {"));
        assert!(json.contains("\"grid\": \"00000000deadbeef\""));
        assert!(json.contains("\"dedup_rate\": 0.250"));
        assert!(json.contains("\"scheduler_overhead\": 1.020"));
        assert!(json.contains("\"jobs_per_sec\": 10000.0"));
        let parsed = parse_campaign_baseline(&json).expect("campaign block parses");
        assert_eq!(
            parsed,
            CampaignBaselineEntry {
                grid: "00000000deadbeef".into(),
                jobs_total: 12,
                jobs_unique: 9,
                jobs_deduped: 3,
                peak_resident: 3,
                jobsn_ns: 900_000,
            }
        );
        assert!(parse_campaign_baseline("{\"schema\": \"dide-bench/v2\"}").is_none());
    }

    #[test]
    fn campaign_regression_check_gates_determinism_and_timing() {
        let c = campaign_sample();
        let base =
            parse_campaign_baseline(&render_json(&[1], &[], &[], Some(&c), None, None)).unwrap();
        assert!(check_campaign_regression(&c, Some(&base)).ok);
        assert!(check_campaign_regression(&c, None).ok, "missing block is skipped");

        // A different grid fingerprint skips rather than fails.
        let other = CampaignBaselineEntry { grid: "ffff".into(), ..base.clone() };
        let check = check_campaign_regression(&c, Some(&other));
        assert!(check.ok);
        assert!(check.lines[0].contains("skipped"), "{:?}", check.lines);

        // Same grid, different dedup count: a determinism regression.
        let drifted = CampaignBaselineEntry { jobs_deduped: 2, ..base.clone() };
        assert!(!check_campaign_regression(&c, Some(&drifted)).ok);

        // A big slowdown over the floor fails; a tiny one passes.
        let fast = CampaignBaselineEntry { jobsn_ns: 1000, ..base.clone() };
        let mut slow_run = campaign_sample();
        slow_run.jobsn_ns = 400_000_000;
        assert!(!check_campaign_regression(&slow_run, Some(&fast)).ok);
        assert!(check_campaign_regression(&c, Some(&fast)).ok, "under the 5ms floor");
    }

    #[test]
    fn json_records_cluster_block_and_roundtrips() {
        let c = cluster_sample();
        let json = render_json(&[1], &sample()[..1], &[], None, None, Some(&c));
        assert!(json.contains("\"cluster\": {"));
        assert!(json.contains("\"clusters\": 2"));
        assert!(json.contains("\"bypass_penalty\": 2"));
        assert!(json.contains("\"host_overhead\": 1.200"));
        assert!(json.contains("\"steered_dead\": 40"));
        let parsed = parse_cluster_baseline(&json).expect("cluster block parses");
        assert_eq!(
            parsed,
            ClusterBaselineEntry {
                workload: "expr@O2/s1".into(),
                unified_cycles: 500,
                rr_cycles: 700,
                dead_cycles: 620,
                steered_dead: 40,
                dead_ns: 1200,
            }
        );
        assert!(parse_cluster_baseline("{\"schema\": \"dide-bench/v3\"}").is_none());
    }

    #[test]
    fn cluster_regression_check_gates_determinism_and_timing() {
        let c = cluster_sample();
        let base =
            parse_cluster_baseline(&render_json(&[1], &[], &[], None, None, Some(&c))).unwrap();
        assert!(check_cluster_regression(&c, Some(&base)).ok);
        assert!(check_cluster_regression(&c, None).ok, "missing block is skipped");

        // A different reference workload skips rather than fails.
        let other = ClusterBaselineEntry { workload: "route@O2/s1".into(), ..base.clone() };
        let check = check_cluster_regression(&c, Some(&other));
        assert!(check.ok);
        assert!(check.lines[0].contains("skipped"), "{:?}", check.lines);

        // Same workload, different cycle count: a determinism regression.
        let drifted = ClusterBaselineEntry { dead_cycles: 621, ..base.clone() };
        assert!(!check_cluster_regression(&c, Some(&drifted)).ok);
        let steered = ClusterBaselineEntry { steered_dead: 39, ..base.clone() };
        assert!(!check_cluster_regression(&c, Some(&steered)).ok);

        // A big slowdown over the floor fails; a tiny one passes.
        let fast = ClusterBaselineEntry { dead_ns: 1000, ..base.clone() };
        let mut slow_run = cluster_sample();
        slow_run.dead = Duration::from_nanos(400_000_000);
        assert!(!check_cluster_regression(&slow_run, Some(&fast)).ok);
        assert!(check_cluster_regression(&c, Some(&fast)).ok, "under the 5ms floor");
    }

    #[test]
    fn clustered_reference_point_is_deterministic_and_steers() {
        // The regression test behind the exact-compared cycle fields: two
        // measurements of the fixed reference point must agree on every
        // simulated count (wall-clock is environment noise and is not
        // compared).
        let a = measure_cluster_overhead();
        let b = measure_cluster_overhead();
        assert_eq!(a.unified_cycles, b.unified_cycles);
        assert_eq!(a.rr_cycles, b.rr_cycles);
        assert_eq!(a.dead_cycles, b.dead_cycles);
        assert_eq!(a.steered_dead, b.steered_dead);
        assert!(a.rr_cycles >= a.unified_cycles, "clustering is not free on expr");
        assert!(a.steered_dead > 0, "dead work must be steered on expr");
        assert!(!a.unified.is_zero() && !a.dead.is_zero());
    }

    #[test]
    fn json_records_stream_block() {
        let json = render_json(&[1], &sample()[..1], &stream_sample(), None, None, None);
        assert!(json.contains("\"stream\": [\n"));
        assert!(json.contains("\"epoch_len\": 65536"));
        assert!(json.contains("\"analyze_ns\": 50"));
        assert!(json.contains("\"simulate_ns\": 60"));
        assert!(json.contains(
            "\"mem_peak_bytes\": {\"streamed\": 5242880, \"materialized\": 40000000, \
             \"ratio\": 7.6}"
        ));
    }

    #[test]
    fn json_is_structurally_balanced() {
        let streams = stream_sample();
        let campaign = campaign_sample();
        let cluster = cluster_sample();
        for cl in [None, Some(&cluster)] {
            for events in [None, Some(&overhead())] {
                for c in [None, Some(&campaign)] {
                    for s in [&[] as &[StreamMeasurement], &streams] {
                        let json = render_json(&[1], &sample()[..1], s, c, events, cl);
                        assert_eq!(json.matches('{').count(), json.matches('}').count());
                        assert_eq!(json.matches('[').count(), json.matches(']').count());
                        assert!(json.ends_with("}\n"));
                    }
                }
            }
        }
    }

    #[test]
    fn json_records_events_overhead() {
        let json = render_json(&[1], &sample()[..1], &[], None, Some(&overhead()), None);
        assert!(json.contains("\"events_overhead\": {"));
        assert!(json.contains("\"workload\": \"expr@O2/s1\""));
        assert!(json.contains("\"off_ns\": 1000"));
        assert!(json.contains("\"sampled_ns\": 1100"));
        assert!(json.contains("\"ratio\": 1.100"));
        assert!(json.contains("\"identical\": true"));
    }

    #[test]
    fn event_tracing_never_changes_architectural_results() {
        // The regression test behind the `identical` flag: the sampled run
        // must be a pure observer. (The timing itself is environment noise,
        // so only the architectural equality is asserted.)
        let ev = measure_events_overhead();
        assert!(ev.identical, "event tracing perturbed the pipeline on {}", ev.workload);
        assert!(!ev.off.is_zero() && !ev.sampled.is_zero());
    }

    #[test]
    fn baseline_roundtrips_through_the_renderer() {
        // The parser must read exactly what render_json writes — including
        // not confusing the `totals_ns` simulate key with a benchmark's,
        // and not treating `stream` entries as phase measurements.
        let json = render_json(
            &[1, 4],
            &sample(),
            &stream_sample(),
            Some(&campaign_sample()),
            Some(&overhead()),
            Some(&cluster_sample()),
        );
        let parsed = parse_baseline(&json);
        assert_eq!(
            parsed,
            vec![
                BaselineEntry { name: "expr".into(), scale: 1, simulate_ns: 40 },
                BaselineEntry { name: "route".into(), scale: 4, simulate_ns: 4 },
            ]
        );
        assert_eq!(
            parse_stream_baseline(&json),
            vec![StreamBaselineEntry { name: "expr".into(), scale: 16, mem_peak_bytes: 5_242_880 }]
        );
    }

    #[test]
    fn baseline_parser_tolerates_garbage() {
        assert!(parse_baseline("").is_empty());
        assert!(parse_baseline("not json at all").is_empty());
        assert!(parse_baseline("{\"simulate\": 12}").is_empty(), "simulate without a name");
        assert!(parse_stream_baseline("").is_empty());
        assert!(parse_stream_baseline("{\"schema\": \"dide-bench/v1\"}").is_empty(), "v1 baseline");
    }

    #[test]
    fn mem_regression_check_flags_structural_growth() {
        let streams = stream_sample();
        // No baseline block (e.g. a v1 file): reported, never failing.
        let check = check_mem_regression(&streams, &[]);
        assert!(check.ok);
        assert!(check.lines[0].contains("no baseline mem entry"));
        // Within 2x: ok.
        let base =
            vec![StreamBaselineEntry { name: "expr".into(), scale: 16, mem_peak_bytes: 5_242_880 }];
        assert!(check_mem_regression(&streams, &base).ok);
        // More than 2x growth: a structural regression, no noise floor.
        let shrunk =
            vec![StreamBaselineEntry { name: "expr".into(), scale: 16, mem_peak_bytes: 1_000_000 }];
        let check = check_mem_regression(&streams, &shrunk);
        assert!(!check.ok);
        assert!(check.lines[0].contains("REGRESSION"), "{:?}", check.lines);
    }

    #[test]
    fn regression_check_flags_only_large_real_slowdowns() {
        let mut m = sample();
        // expr baseline 100ms; current 40ns → fine (a speedup).
        let baseline = vec![
            BaselineEntry { name: "expr".into(), scale: 1, simulate_ns: 100_000_000 },
            BaselineEntry { name: "route".into(), scale: 4, simulate_ns: 4 },
        ];
        let check = check_regression(&m, &baseline);
        assert!(check.ok, "{:?}", check.lines);
        // route: ratio 1.0 — fine.
        assert!(check.lines[1].contains("ok"));

        // A 3x slowdown that is still under the 5ms floor must pass
        // (sub-millisecond noise), then one over both thresholds must fail.
        m[0].phases[3] = Duration::from_nanos(300_000_000);
        let noisy = vec![BaselineEntry { name: "expr".into(), scale: 1, simulate_ns: 1 }];
        let check = check_regression(&m[..1], &noisy);
        assert!(!check.ok, "300ms over a 1ns baseline is a regression");
        let small = vec![BaselineEntry { name: "expr".into(), scale: 1, simulate_ns: 299_000_000 }];
        assert!(check_regression(&m[..1], &small).ok, "1ms over baseline is noise");
    }

    #[test]
    fn regression_check_skips_unmatched_benchmarks() {
        let check = check_regression(&sample(), &[]);
        assert!(check.ok);
        assert!(check.lines.iter().all(|l| l.contains("no baseline entry")));
    }

    #[test]
    fn quick_bench_writes_well_formed_json() {
        let dir = std::env::temp_dir().join("dide-benchrun-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH.json");
        let options = BenchOptions { quick: true, out: out.clone(), ..BenchOptions::default() };
        let run = run_bench(&options).expect("bench writes");
        assert_eq!(run.measurements.len(), QUICK_SUITE.len());
        assert!(run.measurements.iter().all(|m| m.scale == 1));
        assert!(run.measurements.iter().all(|m| m.trace_len > 0));
        assert_eq!(run.streams.len(), QUICK_STREAM_SUITE.len());
        let written = std::fs::read_to_string(&out).unwrap();
        assert_eq!(written, run.json);
        assert!(written.contains("\"schema\": \"dide-bench/v4\""));
        assert!(written.contains("\"events_overhead\""));
        assert!(written.contains("\"mem_peak_bytes\": {\"streamed\": "));
        assert!(written.contains("\"campaign\": {"));
        assert!(written.contains("\"cluster\": {"));
        assert!(run.campaign.jobs_deduped > 0, "the bench grid must exercise dedup");
        assert_eq!(run.campaign.jobs_total, run.campaign.jobs_unique + run.campaign.jobs_deduped);
        assert!(run.events_overhead.identical);
        assert!(run.cluster.steered_dead > 0, "dead steering must route work on expr");
        assert!(run.report.contains("objstore"));
        assert!(run.report.contains("events overhead"));
        assert!(run.report.contains("streamed"));
        assert!(run.report.contains("campaign throughput"));
        assert!(run.report.contains("clustered backend"));
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn streamed_measurement_is_bounded_and_honest() {
        let spec = dide_workloads::find_workload("expr").expect("expr exists");
        let s = measure_stream(spec, 4, DEFAULT_EPOCH_LEN);
        let epoch_bytes = DEFAULT_EPOCH_LEN as u64 * std::mem::size_of::<DynInst>() as u64;
        assert_eq!(s.materialized_bytes, s.trace_len * std::mem::size_of::<DynInst>() as u64);
        assert!(s.trace_len as usize > 2 * DEFAULT_EPOCH_LEN, "expr@4 spans several epochs");
        assert!(
            s.mem_peak_bytes <= 2 * epoch_bytes,
            "peak retained trace memory must stay within two epochs (got {} bytes)",
            s.mem_peak_bytes
        );
        assert!(s.mem_ratio() > 1.0, "streaming must beat materializing at this scale");
    }
}
