//! The `dide stats` and `dide events` drivers: one full-stack run exported
//! through the unified counter registry.
//!
//! `dide stats` builds (or reuses, via the process-wide fixture cache) one
//! benchmark case, simulates it on the selected machine, assembles every
//! layer's counters into one [`CounterSet`] — trace demographics under
//! `emu.`, oracle deadness under `analysis.`, the pipeline run under
//! `pipeline.` — and renders the registry as a `dide-stats/v1` document
//! (JSON or CSV). The document embeds the conservation-law check: a clean
//! run has an empty `violations` array, and CI greps the schema string as a
//! smoke check.
//!
//! `dide events` runs the same simulation with a cycle-event trace attached
//! and renders the tail of the ring buffer as a table.
//!
//! Both outputs are deterministic: fixtures are pure functions of
//! `(benchmark, opt, scale)`, the simulator is deterministic, and counters
//! render in registration order. The JSON is hand-rolled like `BENCH.json`
//! (no serde in the build environment).

use std::fmt::Write as _;
use std::sync::Arc;

use dide_analysis::{DeadnessAnalysis, StreamedDeadness};
use dide_emu::TraceStream;
use dide_obs::{
    check_rules, counters_csv, counters_json, json_escape, CounterSet, CycleEvent, EventKind,
    EventTrace, EventsConfig, Observe,
};
use dide_pipeline::{ClusterConfig, Core, DeadElimConfig, PipelineConfig, PipelineStats};
use dide_workloads::OptLevel;

use crate::{BenchCase, Table};

/// Schema identifier embedded in every `dide stats` document; bump on
/// layout changes.
pub const STATS_SCHEMA: &str = "dide-stats/v1";

/// Default epoch length (records per chunk) for `--stream` runs, shared by
/// `dide run/trace/stats/events/bench`. Large enough that windowed-analysis
/// escapes are rare, small enough that two resident epochs stay a few MiB.
pub const DEFAULT_EPOCH_LEN: usize = 65_536;

/// Output format for [`run_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsFormat {
    /// The `dide-stats/v1` JSON document (default).
    Json,
    /// `# dide-stats/v1` comment line, then `counter,value` rows.
    Csv,
}

/// Which run `dide stats` / `dide events` measure: a benchmark case plus
/// the machine and elimination mode, mirroring the `dide run` flags.
#[derive(Debug, Clone)]
pub struct RunSelection {
    /// Benchmark name (see `dide list`).
    pub benchmark: String,
    /// Optimization level to build at.
    pub opt: OptLevel,
    /// Workload scale factor (>= 1).
    pub scale: u32,
    /// `true` = contended machine (the `dide run` default), `false` =
    /// baseline machine.
    pub contended: bool,
    /// Enable CFI dead-instruction elimination.
    pub eliminate: bool,
    /// Use the oracle dead predictor (implies elimination).
    pub oracle: bool,
    /// Jump-aware CFI signatures.
    pub jump_aware: bool,
    /// Stream the trace in bounded epochs (windowed analysis + streaming
    /// pipeline) instead of materializing it.
    pub stream: bool,
    /// Epoch length (records per chunk) for `stream` runs.
    pub epoch: usize,
    /// Clustered backend on top of the selected machine base
    /// (DESIGN.md §11). `None` = unified backend.
    pub cluster: Option<ClusterConfig>,
}

impl Default for RunSelection {
    fn default() -> RunSelection {
        RunSelection {
            benchmark: "expr".to_string(),
            opt: OptLevel::O2,
            scale: 1,
            contended: true,
            eliminate: false,
            oracle: false,
            jump_aware: false,
            stream: false,
            epoch: DEFAULT_EPOCH_LEN,
            cluster: None,
        }
    }
}

impl RunSelection {
    /// The machine name rendered into the document.
    #[must_use]
    pub fn machine(&self) -> &'static str {
        if self.cluster.is_some() {
            "clustered"
        } else if self.contended {
            "contended"
        } else {
            "baseline"
        }
    }

    /// The elimination mode rendered into the document.
    #[must_use]
    pub fn elimination(&self) -> &'static str {
        if self.oracle {
            "oracle"
        } else if self.eliminate {
            "cfi"
        } else {
            "off"
        }
    }

    fn config(&self) -> PipelineConfig {
        let mut machine =
            if self.contended { PipelineConfig::contended() } else { PipelineConfig::baseline() };
        if let Some(cluster) = self.cluster {
            machine = machine.with_cluster(cluster);
        }
        if self.eliminate || self.oracle {
            machine.with_elimination(DeadElimConfig {
                oracle: self.oracle,
                jump_aware: self.jump_aware,
                ..DeadElimConfig::default()
            })
        } else {
            machine
        }
    }

    fn case(&self) -> Result<Arc<BenchCase>, String> {
        let spec = dide_workloads::find_workload(&self.benchmark)
            .ok_or_else(|| format!("unknown benchmark `{}` (try `dide list`)", self.benchmark))?;
        Ok(BenchCase::cached(spec, self.opt, self.scale))
    }

    /// Runs this selection through the streaming path: windowed analysis
    /// over the program, then the streaming pipeline pass (with an optional
    /// cycle-event trace attached). Returns the windowed deadness, the
    /// pipeline statistics, and the stream's peak resident trace bytes.
    fn run_streamed(
        &self,
        events: Option<&mut EventTrace>,
    ) -> Result<(StreamedDeadness, PipelineStats, u64), String> {
        let spec = dide_workloads::find_workload(&self.benchmark)
            .ok_or_else(|| format!("unknown benchmark `{}` (try `dide list`)", self.benchmark))?;
        let program = spec.build(self.opt, self.scale);
        let deadness = DeadnessAnalysis::analyze_streamed(&program, self.epoch)
            .map_err(|e| format!("emulation trapped: {e}"))?;
        let mut stream = TraceStream::new(&program, self.epoch);
        let stats = Core::new(self.config()).run_streamed_observed(&mut stream, &deadness, events);
        Ok((deadness, stats, stream.peak_resident_bytes()))
    }
}

/// Options for [`run_stats`] (the `dide stats` CLI).
#[derive(Debug, Clone, Default)]
pub struct StatsOptions {
    /// The run to measure.
    pub select: RunSelection,
    /// Output format.
    pub format: Option<StatsFormat>,
}

/// The result of one [`run_stats`] call.
#[derive(Debug, Clone)]
pub struct StatsRun {
    /// The assembled full-stack registry (`emu.`, `analysis.`,
    /// `pipeline.` namespaces).
    pub counters: CounterSet,
    /// Conservation-law violations (empty = healthy run).
    pub violations: Vec<String>,
    /// The rendered document (stdout).
    pub output: String,
}

/// Builds one benchmark case, simulates it, and renders the full-stack
/// counter registry as a `dide-stats/v1` document.
///
/// # Errors
///
/// Returns a one-line message for an unknown benchmark name.
///
/// # Panics
///
/// Panics if the benchmark program traps (a workload-generator bug).
pub fn run_stats(options: &StatsOptions) -> Result<StatsRun, String> {
    let counters = if options.select.stream {
        let (deadness, stats, peak_bytes) = options.select.run_streamed(None)?;
        stream_counters(&options.select, &deadness, &stats, peak_bytes)
    } else {
        let case = options.select.case()?;
        let stats = Core::new(options.select.config()).run(&case.trace, &case.analysis);
        full_counters(&case, &stats)
    };
    let clusters = options.select.cluster.map_or(0, |c| c.clusters);
    let violations = check_rules(&PipelineStats::conservation_rules_for(clusters), &counters);
    let output = match options.format.unwrap_or(StatsFormat::Json) {
        StatsFormat::Json => render_stats_json(&options.select, &counters, &violations),
        StatsFormat::Csv => format!("# {STATS_SCHEMA}\n{}", counters_csv(&counters)),
    };
    Ok(StatsRun { counters, violations, output })
}

/// Assembles the full-stack registry for one simulated case: trace
/// demographics under `emu.`, oracle deadness under `analysis.`, and the
/// pipeline run (savings, cache hierarchy) under `pipeline.`.
#[must_use]
pub fn full_counters(case: &BenchCase, stats: &PipelineStats) -> CounterSet {
    let mut set = CounterSet::new();
    case.trace.summary().observe(&mut set.scope("emu"));
    case.analysis.stats().observe(&mut set.scope("analysis"));
    stats.observe(&mut set.scope("pipeline"));
    set
}

/// The registry for a `--stream` run: the windowed deadness under
/// `analysis.`, the pipeline under `pipeline.`, and the epoch bookkeeping
/// under `stream.`. There is no `emu.` scope — trace demographics would
/// require materializing the trace the mode exists to avoid.
fn stream_counters(
    select: &RunSelection,
    deadness: &StreamedDeadness,
    stats: &PipelineStats,
    peak_bytes: u64,
) -> CounterSet {
    let mut set = CounterSet::new();
    deadness.stats().observe(&mut set.scope("analysis"));
    stats.observe(&mut set.scope("pipeline"));
    let mut scope = set.scope("stream");
    scope.counter("epoch_len", select.epoch as u64);
    scope.counter("epochs", deadness.epochs());
    scope.counter("escaped", deadness.escaped());
    scope.counter("mem_peak_bytes", peak_bytes);
    drop(scope);
    set
}

fn render_stats_json(
    select: &RunSelection,
    counters: &CounterSet,
    violations: &[String],
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"{STATS_SCHEMA}\",");
    let _ = writeln!(out, "  \"benchmark\": \"{}\",", json_escape(&select.benchmark));
    let _ = writeln!(out, "  \"opt\": \"{}\",", select.opt);
    let _ = writeln!(out, "  \"scale\": {},", select.scale);
    let _ = writeln!(out, "  \"machine\": \"{}\",", select.machine());
    if select.stream {
        // Only streamed documents carry the key, so the golden-pinned
        // materializing documents stay byte-identical.
        let _ = writeln!(out, "  \"mode\": \"streamed\",");
    }
    let _ = writeln!(out, "  \"elimination\": \"{}\",", select.elimination());
    let _ = writeln!(out, "  \"counters\": {},", counters_json(counters, 2));
    if violations.is_empty() {
        out.push_str("  \"violations\": []\n");
    } else {
        out.push_str("  \"violations\": [\n");
        for (i, v) in violations.iter().enumerate() {
            let _ = write!(out, "    \"{}\"", json_escape(v));
            out.push_str(if i + 1 < violations.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n");
    }
    out.push_str("}\n");
    out
}

/// Options for [`run_events`] (the `dide events` CLI).
#[derive(Debug, Clone)]
pub struct EventsOptions {
    /// The run to trace.
    pub select: RunSelection,
    /// How many of the most recent events to show.
    pub last: usize,
    /// Occupancy sampling period in cycles.
    pub sample_every: u64,
}

impl Default for EventsOptions {
    fn default() -> EventsOptions {
        EventsOptions {
            select: RunSelection::default(),
            last: 32,
            sample_every: EventsConfig::default().sample_every,
        }
    }
}

/// The result of one [`run_events`] call.
#[derive(Debug, Clone)]
pub struct EventsRun {
    /// The events shown (the tail of the ring, oldest first).
    pub events: Vec<CycleEvent>,
    /// Events recorded over the whole run (including overwritten ones).
    pub recorded: u64,
    /// Events lost to ring overwrites.
    pub dropped: u64,
    /// Human-readable table (stdout).
    pub report: String,
}

/// Runs one benchmark with a cycle-event trace attached and renders the
/// most recent events as a table.
///
/// # Errors
///
/// Returns a one-line message for an unknown benchmark name.
///
/// # Panics
///
/// Panics if the benchmark program traps (a workload-generator bug), or if
/// `sample_every` is zero (the CLI rejects that before calling in).
pub fn run_events(options: &EventsOptions) -> Result<EventsRun, String> {
    let mut trace = EventTrace::new(EventsConfig {
        sample_every: options.sample_every,
        ..EventsConfig::default()
    });
    if options.select.stream {
        let _ = options.select.run_streamed(Some(&mut trace))?;
    } else {
        let case = options.select.case()?;
        let _ = Core::new(options.select.config()).run_observed(
            &case.trace,
            &case.analysis,
            Some(&mut trace),
        );
    }
    let events = trace.last(options.last);

    let mut report = format!(
        "== events: {}@{}/s{} on {} (elimination {}, sampled every {} cycles) ==\n",
        options.select.benchmark,
        options.select.opt,
        options.select.scale,
        options.select.machine(),
        options.select.elimination(),
        options.sample_every
    );
    let mut t = Table::new(["cycle", "event", "detail"]);
    for e in &events {
        t.row([e.cycle.to_string(), e.kind.label().to_string(), event_detail(e.kind)]);
    }
    report.push_str(&t.to_string());
    let _ = writeln!(
        report,
        "showing {} of {} recorded event(s) ({} overwritten)",
        events.len(),
        trace.recorded(),
        trace.dropped()
    );
    Ok(EventsRun { events, recorded: trace.recorded(), dropped: trace.dropped(), report })
}

fn event_detail(kind: EventKind) -> String {
    match kind {
        EventKind::Sample { rob, iq, lq, sq, free_regs } => {
            format!("rob={rob} iq={iq} lq={lq} sq={sq} free_regs={free_regs}")
        }
        EventKind::Verdict { seq, predicted_dead } => {
            format!("seq={seq} predicted_dead={predicted_dead}")
        }
        EventKind::Eliminated { seq } | EventKind::Violation { seq } => format!("seq={seq}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr_elim() -> RunSelection {
        RunSelection { eliminate: true, ..RunSelection::default() }
    }

    #[test]
    fn stats_json_is_deterministic_and_schema_tagged() {
        let options = StatsOptions { select: expr_elim(), format: None };
        let a = run_stats(&options).expect("expr exists");
        let b = run_stats(&options).expect("expr exists");
        assert_eq!(a.output, b.output, "stats output must be byte-deterministic");
        assert!(a.output.contains("\"schema\": \"dide-stats/v1\""));
        assert!(a.output.contains("\"elimination\": \"cfi\""));
        assert!(a.output.contains("\"emu.total\""));
        assert!(a.output.contains("\"analysis.dead_total\""));
        assert!(a.output.contains("\"pipeline.mem.l1d.hits\""));
        assert!(a.output.contains("\"violations\": []"), "clean run: {:?}", a.violations);
        assert_eq!(a.output.matches('{').count(), a.output.matches('}').count());
        assert_eq!(a.output.matches('[').count(), a.output.matches(']').count());
    }

    #[test]
    fn stats_csv_has_schema_comment_and_rows() {
        let options = StatsOptions { select: expr_elim(), format: Some(StatsFormat::Csv) };
        let run = run_stats(&options).expect("expr exists");
        assert!(run.output.starts_with("# dide-stats/v1\ncounter,value\n"));
        assert!(run.output.contains("pipeline.committed,"));
    }

    #[test]
    fn stats_registry_agrees_with_pipeline_counters() {
        let run = run_stats(&StatsOptions::default()).expect("expr exists");
        // The full-stack registry embeds the emulator's totals: the
        // pipeline commits exactly the committed-path trace.
        assert_eq!(
            run.counters.expect("pipeline.committed"),
            run.counters.expect("emu.total"),
            "trace-driven core commits the whole trace"
        );
    }

    #[test]
    fn streamed_stats_match_the_materialized_pipeline() {
        let select = RunSelection { stream: true, ..RunSelection::default() };
        let run = run_stats(&StatsOptions { select, format: None }).expect("expr exists");
        assert!(run.output.contains("\"mode\": \"streamed\""));
        assert!(run.output.contains("\"stream.epoch_len\""));
        assert!(run.output.contains("\"stream.mem_peak_bytes\""));
        assert!(!run.output.contains("\"emu."), "streamed docs carry no emu scope");
        assert!(run.violations.is_empty(), "{:?}", run.violations);
        // Elimination off: the verdicts are never consulted, so the
        // streamed cycle loop is bit-identical to the materializing one.
        let base = run_stats(&StatsOptions::default()).expect("expr exists");
        for name in ["pipeline.committed", "pipeline.cycles", "pipeline.mem.l1d.hits"] {
            assert_eq!(run.counters.expect(name), base.counters.expect(name), "{name}");
        }
        assert_eq!(run.counters.expect("pipeline.committed"), base.counters.expect("emu.total"));
    }

    #[test]
    fn streamed_events_are_recorded() {
        let select = RunSelection { stream: true, ..expr_elim() };
        let run =
            run_events(&EventsOptions { select, last: 5, sample_every: 16 }).expect("expr exists");
        assert!(run.recorded > 0);
        assert!(run.events.len() <= 5);
    }

    #[test]
    fn unknown_benchmark_is_a_one_line_error() {
        let select = RunSelection { benchmark: "nope".into(), ..RunSelection::default() };
        let err = run_stats(&StatsOptions { select, format: None }).unwrap_err();
        assert!(err.contains("unknown benchmark"), "{err}");
        assert!(!err.contains('\n'));
    }

    #[test]
    fn events_tail_is_bounded_and_described() {
        let options = EventsOptions { select: expr_elim(), last: 5, sample_every: 16 };
        let run = run_events(&options).expect("expr exists");
        assert!(run.events.len() <= 5);
        assert!(run.recorded > 0);
        assert!(run.report.contains("cycle"));
        assert!(run.report.contains("sampled every 16 cycles"));
        let labels: Vec<&str> = run.report.lines().collect();
        assert!(labels.iter().any(|l| l.contains("recorded event(s)")));
    }
}
