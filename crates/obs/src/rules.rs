//! Conservation rules over counter names.
//!
//! A [`Rule`] relates two [`Expr`]s — each a sum of counters plus a
//! constant — by equality or ordering. Checking a rule set against a
//! [`CounterSet`] yields one human-readable message per violated law,
//! which is the shape `PipelineStats::invariant_violations` and the
//! `dide-verify` metamorphic checks both report in.

use crate::counters::CounterSet;

/// A linear expression: the sum of named counters plus a constant.
#[derive(Debug, Clone, Default)]
pub struct Expr {
    terms: Vec<String>,
    constant: u64,
}

impl Expr {
    /// A single counter.
    #[must_use]
    pub fn counter(name: impl Into<String>) -> Expr {
        Expr { terms: vec![name.into()], constant: 0 }
    }

    /// A sum of counters.
    #[must_use]
    pub fn sum<S: Into<String>, I: IntoIterator<Item = S>>(names: I) -> Expr {
        Expr { terms: names.into_iter().map(Into::into).collect(), constant: 0 }
    }

    /// Adds a constant term.
    #[must_use]
    pub fn plus(mut self, constant: u64) -> Expr {
        self.constant += constant;
        self
    }

    /// Evaluates against `set`, or reports the first missing counter.
    fn eval(&self, set: &CounterSet) -> Result<u64, String> {
        let mut total = self.constant;
        for name in &self.terms {
            let value =
                set.get(name).ok_or_else(|| format!("counter `{name}` is not registered"))?;
            total += value;
        }
        Ok(total)
    }

    /// Renders `a + b + k` for violation messages.
    fn render(&self) -> String {
        let mut parts: Vec<String> = self.terms.clone();
        if self.constant != 0 || parts.is_empty() {
            parts.push(self.constant.to_string());
        }
        parts.join(" + ")
    }

    fn prefixed(&self, prefix: &str) -> Expr {
        Expr {
            terms: self.terms.iter().map(|t| format!("{prefix}.{t}")).collect(),
            constant: self.constant,
        }
    }
}

/// How a rule relates its two sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Relation {
    Eq,
    Le,
}

/// One conservation law.
#[derive(Debug, Clone)]
pub struct Rule {
    lhs: Expr,
    rhs: Expr,
    relation: Relation,
    note: Option<String>,
}

impl Rule {
    /// `lhs == rhs`.
    #[must_use]
    pub fn eq(lhs: Expr, rhs: Expr) -> Rule {
        Rule { lhs, rhs, relation: Relation::Eq, note: None }
    }

    /// `lhs <= rhs`.
    #[must_use]
    pub fn le(lhs: Expr, rhs: Expr) -> Rule {
        Rule { lhs, rhs, relation: Relation::Le, note: None }
    }

    /// Attaches an explanation appended to the violation message.
    #[must_use]
    pub fn note(mut self, note: impl Into<String>) -> Rule {
        self.note = Some(note.into());
        self
    }

    /// The same law with every counter name under `prefix.` — how per-run
    /// rule sets are reused across the `base.`/`elim.` sides of a cross-run
    /// comparison.
    #[must_use]
    pub fn prefixed(&self, prefix: &str) -> Rule {
        Rule {
            lhs: self.lhs.prefixed(prefix),
            rhs: self.rhs.prefixed(prefix),
            relation: self.relation,
            note: self.note.clone(),
        }
    }

    /// Checks the rule, returning a violation message if it fails.
    #[must_use]
    pub fn check(&self, set: &CounterSet) -> Option<String> {
        let (lhs, rhs) = match (self.lhs.eval(set), self.rhs.eval(set)) {
            (Ok(l), Ok(r)) => (l, r),
            (Err(m), _) | (_, Err(m)) => return Some(m),
        };
        let holds = match self.relation {
            Relation::Eq => lhs == rhs,
            Relation::Le => lhs <= rhs,
        };
        if holds {
            return None;
        }
        let op = match self.relation {
            Relation::Eq => "!=",
            Relation::Le => ">",
        };
        let mut message =
            format!("{} ({lhs}) {op} {} ({rhs})", self.lhs.render(), self.rhs.render());
        if let Some(note) = &self.note {
            message.push_str(": ");
            message.push_str(note);
        }
        Some(message)
    }
}

/// Checks every rule against `set`, returning one message per violation
/// (empty = all laws hold).
#[must_use]
pub fn check_rules(rules: &[Rule], set: &CounterSet) -> Vec<String> {
    rules.iter().filter_map(|rule| rule.check(set)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(pairs: &[(&str, u64)]) -> CounterSet {
        let mut s = CounterSet::new();
        for &(name, value) in pairs {
            s.record(name, value);
        }
        s
    }

    #[test]
    fn sum_equality_holds_and_fails() {
        let s = set(&[("a", 3), ("b", 4), ("c", 7)]);
        let good = Rule::eq(Expr::sum(["a", "b"]), Expr::counter("c"));
        assert!(good.check(&s).is_none());
        let bad = Rule::eq(Expr::sum(["a", "c"]), Expr::counter("b"));
        let msg = bad.check(&s).unwrap();
        assert!(msg.contains("a + c (10) != b (4)"), "{msg}");
    }

    #[test]
    fn le_with_constant_slack() {
        let s = set(&[("frees", 40), ("allocs", 10)]);
        let ok = Rule::le(Expr::counter("frees"), Expr::counter("allocs").plus(32));
        assert!(ok.check(&s).is_none());
        let tight = Rule::le(Expr::counter("frees"), Expr::counter("allocs").plus(16));
        let msg = tight.check(&s).unwrap();
        assert!(msg.contains("frees (40) > allocs + 16 (26)"), "{msg}");
    }

    #[test]
    fn note_is_appended() {
        let s = set(&[("x", 1), ("y", 0)]);
        let msg = Rule::eq(Expr::counter("x"), Expr::counter("y"))
            .note("every elimination skips exactly one slot")
            .check(&s)
            .unwrap();
        assert!(msg.ends_with("every elimination skips exactly one slot"), "{msg}");
    }

    #[test]
    fn missing_counter_is_a_violation_not_a_panic() {
        let s = set(&[("x", 1)]);
        let msg = Rule::eq(Expr::counter("x"), Expr::counter("ghost")).check(&s).unwrap();
        assert!(msg.contains("`ghost` is not registered"), "{msg}");
    }

    #[test]
    fn prefixed_rules_retarget_every_term() {
        let s = set(&[("elim.a", 2), ("elim.b", 2)]);
        let rule = Rule::eq(Expr::counter("a"), Expr::counter("b")).prefixed("elim");
        assert!(rule.check(&s).is_none());
        let other = set(&[("a", 1), ("b", 2)]);
        assert!(rule.check(&other).unwrap().contains("not registered"));
    }

    #[test]
    fn check_rules_collects_every_violation() {
        let s = set(&[("a", 1), ("b", 2)]);
        let rules = [
            Rule::eq(Expr::counter("a"), Expr::counter("b")),
            Rule::le(Expr::counter("b"), Expr::counter("a")),
            Rule::eq(Expr::counter("a"), Expr::counter("a")),
        ];
        assert_eq!(check_rules(&rules, &s).len(), 2);
    }
}
