//! Deterministic export helpers for counter registries.
//!
//! Hand-rolled like `BENCH.json`: the build host has no crates.io access,
//! so there is no serde — and the formats are small and flat enough that a
//! fixed layout (registration order, 2-space indentation) doubles as the
//! schema's determinism guarantee.

use crate::counters::CounterSet;

/// Escapes a string for embedding in a JSON document.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the registry as a JSON object (one counter per line, in
/// registration order), indented by `indent` spaces.
#[must_use]
pub fn counters_json(set: &CounterSet, indent: usize) -> String {
    let pad = " ".repeat(indent);
    let inner = " ".repeat(indent + 2);
    let mut out = String::from("{\n");
    let last = set.len().saturating_sub(1);
    for (i, (name, value)) in set.iter().enumerate() {
        out.push_str(&inner);
        out.push_str(&format!("\"{}\": {value}", json_escape(name)));
        out.push_str(if i < last { ",\n" } else { "\n" });
    }
    out.push_str(&pad);
    out.push('}');
    out
}

/// Renders the registry as a single-line JSON object in registration
/// order — the record shape of the campaign engine's append-only JSONL
/// store, where one document per line is the format's contract.
#[must_use]
pub fn counters_json_compact(set: &CounterSet) -> String {
    let mut out = String::from("{");
    for (i, (name, value)) in set.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{value}", json_escape(name)));
    }
    out.push('}');
    out
}

/// Renders the registry as CSV: a `counter,value` header then one row per
/// counter in registration order.
#[must_use]
pub fn counters_csv(set: &CounterSet) -> String {
    let mut out = String::from("counter,value\n");
    for (name, value) in set.iter() {
        out.push_str(&format!("{name},{value}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CounterSet {
        let mut set = CounterSet::new();
        let mut p = set.scope("pipeline");
        p.counter("cycles", 12);
        p.counter("committed", 34);
        set
    }

    #[test]
    fn json_object_is_ordered_and_balanced() {
        let json = counters_json(&sample(), 2);
        assert_eq!(json, "{\n    \"pipeline.cycles\": 12,\n    \"pipeline.committed\": 34\n  }");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn empty_registry_renders_an_empty_object() {
        let json = counters_json(&CounterSet::new(), 0);
        assert_eq!(json, "{\n}");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = counters_csv(&sample());
        assert_eq!(csv, "counter,value\npipeline.cycles,12\npipeline.committed,34\n");
    }

    #[test]
    fn escaping_covers_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
