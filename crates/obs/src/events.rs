//! Cycle-event tracing: a bounded ring buffer of cycle-stamped events.
//!
//! Tracing is runtime-toggled: the pipeline takes an `Option<&mut
//! EventTrace>` and a disabled run (the default) pays one branch per cycle
//! and allocates nothing. Occupancy is *sampled* every
//! [`EventsConfig::sample_every`] cycles; discrete events (predictor
//! verdicts, eliminations, dead-tag violations) are recorded as they
//! happen. The ring keeps the most recent [`EventsConfig::capacity`]
//! events — `dide events --last N` is a view of where a run ended up, not
//! an unbounded log.

use std::fmt;

/// Configuration of one event trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventsConfig {
    /// Record an occupancy sample every this many cycles.
    pub sample_every: u64,
    /// Ring-buffer capacity in events; older events are overwritten.
    pub capacity: usize,
}

impl Default for EventsConfig {
    fn default() -> EventsConfig {
        EventsConfig { sample_every: 64, capacity: 4096 }
    }
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Per-stage occupancy snapshot (end of a sampled cycle).
    Sample {
        /// Reorder-buffer entries in use.
        rob: u32,
        /// Issue-queue entries in use.
        iq: u32,
        /// Load-queue entries in use.
        lq: u32,
        /// Store-queue entries in use.
        sq: u32,
        /// Physical registers on the free list.
        free_regs: u32,
    },
    /// A dead-predictor verdict on an eligible instruction at rename.
    Verdict {
        /// Dynamic sequence number.
        seq: u64,
        /// Whether the predictor called it dead.
        predicted_dead: bool,
    },
    /// An instruction was eliminated (dispatched without resources).
    Eliminated {
        /// Dynamic sequence number.
        seq: u64,
    },
    /// A dead-tag read forced a recovery.
    Violation {
        /// Dynamic sequence number of the reader.
        seq: u64,
    },
}

impl EventKind {
    /// Short label for tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Sample { .. } => "sample",
            EventKind::Verdict { .. } => "verdict",
            EventKind::Eliminated { .. } => "eliminated",
            EventKind::Violation { .. } => "violation",
        }
    }
}

/// One cycle-stamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleEvent {
    /// Cycle the event was recorded in.
    pub cycle: u64,
    /// The event.
    pub kind: EventKind,
}

impl fmt::Display for CycleEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {:>8} {:<10} ", self.cycle, self.kind.label())?;
        match self.kind {
            EventKind::Sample { rob, iq, lq, sq, free_regs } => {
                write!(f, "rob={rob} iq={iq} lq={lq} sq={sq} free_regs={free_regs}")
            }
            EventKind::Verdict { seq, predicted_dead } => {
                write!(f, "seq={seq} predicted_dead={predicted_dead}")
            }
            EventKind::Eliminated { seq } | EventKind::Violation { seq } => write!(f, "seq={seq}"),
        }
    }
}

/// A bounded ring buffer of [`CycleEvent`]s.
#[derive(Debug, Clone)]
pub struct EventTrace {
    config: EventsConfig,
    ring: Vec<CycleEvent>,
    /// Next write position once the ring is full.
    head: usize,
    /// Events ever recorded (recorded - len = overwritten).
    recorded: u64,
}

impl EventTrace {
    /// Creates an empty trace.
    ///
    /// # Panics
    ///
    /// Panics if the capacity or sampling period is zero.
    #[must_use]
    pub fn new(config: EventsConfig) -> EventTrace {
        assert!(config.capacity > 0, "event ring needs capacity");
        assert!(config.sample_every > 0, "sampling period must be positive");
        EventTrace {
            config,
            ring: Vec::with_capacity(config.capacity.min(1024)),
            head: 0,
            recorded: 0,
        }
    }

    /// The trace's configuration.
    #[must_use]
    pub fn config(&self) -> EventsConfig {
        self.config
    }

    /// Whether `cycle` is an occupancy-sampling cycle.
    #[must_use]
    pub fn should_sample(&self, cycle: u64) -> bool {
        cycle.is_multiple_of(self.config.sample_every)
    }

    /// Records one event, overwriting the oldest once full.
    pub fn record(&mut self, cycle: u64, kind: EventKind) {
        let event = CycleEvent { cycle, kind };
        if self.ring.len() < self.config.capacity {
            self.ring.push(event);
        } else {
            self.ring[self.head] = event;
            self.head = (self.head + 1) % self.config.capacity;
        }
        self.recorded += 1;
    }

    /// Events currently held, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<CycleEvent> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.head..]);
        out.extend_from_slice(&self.ring[..self.head]);
        out
    }

    /// The `n` most recent events, oldest first.
    #[must_use]
    pub fn last(&self, n: usize) -> Vec<CycleEvent> {
        let all = self.events();
        let skip = all.len().saturating_sub(n);
        all[skip..].to_vec()
    }

    /// Events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no events were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events ever recorded, including overwritten ones.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to ring overwrites.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.recorded - self.ring.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(capacity: usize) -> EventTrace {
        EventTrace::new(EventsConfig { sample_every: 4, capacity })
    }

    #[test]
    fn sampling_period_is_modular() {
        let t = trace(8);
        assert!(t.should_sample(0));
        assert!(!t.should_sample(3));
        assert!(t.should_sample(8));
    }

    #[test]
    fn ring_keeps_the_most_recent_events_in_order() {
        let mut t = trace(3);
        for seq in 0..5u64 {
            t.record(seq * 10, EventKind::Eliminated { seq });
        }
        let events: Vec<u64> = t.events().iter().map(|e| e.cycle).collect();
        assert_eq!(events, [20, 30, 40]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn last_slices_the_tail() {
        let mut t = trace(8);
        for seq in 0..6u64 {
            t.record(seq, EventKind::Violation { seq });
        }
        let tail: Vec<u64> = t.last(2).iter().map(|e| e.cycle).collect();
        assert_eq!(tail, [4, 5]);
        assert_eq!(t.last(100).len(), 6);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn display_renders_each_kind() {
        let sample = CycleEvent {
            cycle: 64,
            kind: EventKind::Sample { rob: 1, iq: 2, lq: 3, sq: 4, free_regs: 5 },
        };
        let text = sample.to_string();
        assert!(text.contains("sample"));
        assert!(text.contains("free_regs=5"));
        let verdict =
            CycleEvent { cycle: 1, kind: EventKind::Verdict { seq: 9, predicted_dead: true } };
        assert!(verdict.to_string().contains("predicted_dead=true"));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = EventTrace::new(EventsConfig { sample_every: 1, capacity: 0 });
    }

    #[test]
    #[should_panic(expected = "sampling period")]
    fn zero_period_panics() {
        let _ = EventTrace::new(EventsConfig { sample_every: 0, capacity: 1 });
    }
}
