//! The counter registry: an ordered set of named `u64` counters.

use std::collections::HashMap;
use std::fmt;

/// A source of counters. Stats structs across the stack implement this so
/// one registry snapshot can be assembled from any combination of them.
pub trait Observe {
    /// Writes this source's counters into `scope`.
    fn observe(&self, scope: &mut Scope<'_>);
}

/// An ordered registry of named counters.
///
/// Names are dot-separated (`pipeline.rf_writes`, `mem.l1d.hits`) and
/// unique; registration order is preserved, which is what makes the JSON
/// and CSV exports byte-deterministic.
#[derive(Debug, Clone, Default)]
pub struct CounterSet {
    names: Vec<String>,
    values: Vec<u64>,
    index: HashMap<String, usize>,
}

impl CounterSet {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> CounterSet {
        CounterSet::default()
    }

    /// Opens a namespace; counters written through the returned [`Scope`]
    /// are prefixed with `prefix` plus a dot (empty prefix = root).
    pub fn scope(&mut self, prefix: &str) -> Scope<'_> {
        Scope { set: self, prefix: prefix.to_string() }
    }

    /// Registers one fully-qualified counter.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered — two sources claiming one
    /// name is a wiring bug, not a runtime condition.
    pub fn record(&mut self, name: &str, value: u64) {
        assert!(
            !self.index.contains_key(name),
            "counter `{name}` registered twice (namespace collision)"
        );
        self.index.insert(name.to_string(), self.names.len());
        self.names.push(name.to_string());
        self.values.push(value);
    }

    /// The value of `name`, if registered.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<u64> {
        self.index.get(name).map(|&i| self.values[i])
    }

    /// The value of `name`.
    ///
    /// # Panics
    ///
    /// Panics with the missing name if it was never registered — reading an
    /// unregistered counter is a wiring bug.
    #[must_use]
    pub fn expect(&self, name: &str) -> u64 {
        self.get(name).unwrap_or_else(|| panic!("counter `{name}` is not registered"))
    }

    /// Iterates `(name, value)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.names.iter().map(String::as_str).zip(self.values.iter().copied())
    }

    /// Adds every counter of `other` into this registry: existing names
    /// accumulate (saturating), new names register at the end in `other`'s
    /// order. This is how the campaign report aggregates per-job registries
    /// into per-group sums — registration order stays deterministic because
    /// every job emits its counters in the same order.
    pub fn accumulate(&mut self, other: &CounterSet) {
        for (name, value) in other.iter() {
            match self.index.get(name) {
                Some(&i) => self.values[i] = self.values[i].saturating_add(value),
                None => self.record(name, value),
            }
        }
    }

    /// Number of registered counters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl fmt::Display for CounterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.names.iter().map(String::len).max().unwrap_or(0);
        for (name, value) in self.iter() {
            writeln!(f, "{name:<width$} {value}")?;
        }
        Ok(())
    }
}

/// A namespaced view into a [`CounterSet`].
#[derive(Debug)]
pub struct Scope<'a> {
    set: &'a mut CounterSet,
    prefix: String,
}

impl Scope<'_> {
    fn qualify(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}.{name}", self.prefix)
        }
    }

    /// Registers `name` under this scope's prefix.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate fully-qualified name (see
    /// [`CounterSet::record`]).
    pub fn counter(&mut self, name: &str, value: u64) {
        let full = self.qualify(name);
        self.set.record(&full, value);
    }

    /// Opens a nested namespace under this one.
    pub fn scope(&mut self, sub: &str) -> Scope<'_> {
        let prefix = self.qualify(sub);
        Scope { set: self.set, prefix }
    }

    /// Lets `source` register its counters under the nested namespace
    /// `sub`.
    pub fn observe(&mut self, sub: &str, source: &dyn Observe) {
        source.observe(&mut self.scope(sub));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_names_are_dotted_and_ordered() {
        let mut set = CounterSet::new();
        let mut p = set.scope("pipeline");
        p.counter("cycles", 10);
        let mut m = p.scope("mem");
        m.counter("hits", 3);
        set.scope("").counter("root", 1);
        let names: Vec<&str> = set.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["pipeline.cycles", "pipeline.mem.hits", "root"]);
        assert_eq!(set.get("pipeline.mem.hits"), Some(3));
        assert_eq!(set.get("missing"), None);
        assert_eq!(set.len(), 3);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut set = CounterSet::new();
        set.record("x", 1);
        set.record("x", 2);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn expect_on_missing_counter_panics() {
        let _ = CounterSet::new().expect("pipeline.cycles");
    }

    #[test]
    fn observe_delegates_into_a_sub_scope() {
        struct Two;
        impl Observe for Two {
            fn observe(&self, scope: &mut Scope<'_>) {
                scope.counter("a", 1);
                scope.counter("b", 2);
            }
        }
        let mut set = CounterSet::new();
        set.scope("outer").observe("inner", &Two);
        assert_eq!(set.expect("outer.inner.a"), 1);
        assert_eq!(set.expect("outer.inner.b"), 2);
    }

    #[test]
    fn display_lists_every_counter() {
        let mut set = CounterSet::new();
        set.record("a.long.name", 7);
        set.record("b", 8);
        let text = set.to_string();
        assert!(text.contains("a.long.name 7"));
        assert!(text.contains('8'));
    }
}
