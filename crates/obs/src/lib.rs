//! **dide-obs** — the unified observability layer.
//!
//! The paper's headline claims are all *counter deltas*: physical-register
//! management, register-file traffic and D-cache accesses with and without
//! elimination. This crate gives every substrate crate one way to expose
//! those counters and one place to state the laws they must obey:
//!
//! * [`CounterSet`] — an ordered, named registry of `u64` counters.
//!   Producer crates implement [`Observe`] and write their counters into a
//!   [`Scope`] (a dot-separated namespace such as `pipeline.` or
//!   `mem.l1d.`). Hot paths keep incrementing plain struct fields; a
//!   registry snapshot is taken *after* a run, so observation costs nothing
//!   per cycle and allocates nothing on the hot path.
//! * [`Rule`] / [`check_rules`] — conservation laws over counter names
//!   (`a + b == c`, `x <= y + k`). The pipeline's per-run invariants and
//!   `dide-verify`'s cross-run laws are both expressed this way, against
//!   one registry, instead of as hand-rolled field comparisons.
//! * [`EventTrace`] — an optional, runtime-toggled ring buffer of
//!   cycle-stamped events (per-stage occupancy samples, predictor verdicts,
//!   eliminations, violations). Disabled runs pass `None` and pay one
//!   branch per cycle; `dide bench` tracks that overhead.
//! * [`export`] — deterministic hand-rolled JSON/CSV rendering for the
//!   `dide-stats/v1` schema (the build host has no serde).
//!
//! # Example
//!
//! ```
//! use dide_obs::{check_rules, CounterSet, Expr, Rule};
//!
//! let mut set = CounterSet::new();
//! let mut scope = set.scope("pipeline");
//! scope.counter("committed", 90);
//! scope.counter("squashed", 10);
//! scope.counter("dispatched", 100);
//!
//! let rules = [Rule::eq(
//!     Expr::sum(["pipeline.committed", "pipeline.squashed"]),
//!     Expr::counter("pipeline.dispatched"),
//! )];
//! assert!(check_rules(&rules, &set).is_empty());
//! assert_eq!(set.expect("pipeline.committed"), 90);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod events;
pub mod export;
mod rules;

pub use counters::{CounterSet, Observe, Scope};
pub use events::{CycleEvent, EventKind, EventTrace, EventsConfig};
pub use export::{counters_csv, counters_json, counters_json_compact, json_escape};
pub use rules::{check_rules, Expr, Rule};
