//! SIR text-assembly frontend.
//!
//! This crate turns `.asm` source text into validated
//! [`Program`](dide_isa::Program)s so external workloads can flow through
//! the full emulator → deadness-analysis → pipeline stack. The accepted
//! syntax is a superset of the disassembly [`Program::listing`]
//! (dide_isa::Program::listing) emits — any listing re-assembles to an
//! equal program — extended with labels, pseudo-instructions (`mv`, `j`,
//! `call`, `ret`, `la`) and data directives (`.data`, `.text`, `.entry`,
//! `.byte`, `.half`, `.word`, `.quad`, `.ascii`, `.asciz`, `.zero`,
//! `.align`).
//!
//! Entry points:
//!
//! - [`assemble`] — source text to [`Program`](dide_isa::Program), with
//!   one-line `line:col:`-prefixed diagnostics on error;
//! - [`assemble_path`] — same, reading from a file and naming the program
//!   after the file stem;
//! - [`builtin`] — the `.asm` benchmarks shipped in the repository's
//!   `asm/` directory, embedded at compile time so they are usable as
//!   first-class workloads without filesystem access;
//! - [`diagnostic_snapshot`] — a deterministic rendering of the parser's
//!   error messages over a fixed corpus of bad inputs, golden-pinned in CI
//!   to catch diagnostic drift.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::Path;

use dide_isa::Program;

mod lexer;
mod parser;

pub mod builtin;

pub use parser::assemble;

/// A one-line assembly diagnostic with a 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: u32,
    /// 1-based character column within the line.
    pub col: u32,
    /// Human-readable, single-line description of the problem.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Reads and assembles the `.asm` file at `path`, naming the program after
/// the file stem (`asm/prime.asm` → `prime`).
///
/// # Errors
///
/// Returns a single-line `path:line:col: message` string for both I/O and
/// assembly failures, ready to print to stderr.
pub fn assemble_path(path: &Path) -> Result<Program, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("asm");
    assemble(name, &source).map_err(|e| format!("{}:{e}", path.display()))
}

/// The fixed corpus of bad inputs behind [`diagnostic_snapshot`]. Each
/// entry is a short label plus a source fragment exercising one error
/// path.
const DIAGNOSTIC_CORPUS: &[(&str, &str)] = &[
    ("unknown-mnemonic", "  adx t0, t1, t2\n  halt\n"),
    ("unknown-register", "  add t0, t1, t9\n  halt\n"),
    ("operand-not-a-register", "  add t0, t1, 5\n  halt\n"),
    ("missing-operand", "  add t0, t1\n  halt\n"),
    ("trailing-tokens", "  nop nop\n  halt\n"),
    ("undefined-label", "  j missing\n  halt\n"),
    ("duplicate-label", "loop:\n  nop\nloop:\n  halt\n"),
    ("immediate-out-of-range", "  li t0, 123456789012345678901234567890\n  halt\n"),
    ("branch-target-out-of-range", "  beq t0, t1, @99\n  halt\n"),
    ("index-marker-mismatch", "  nop\n 3: halt\n"),
    ("dangling-data-directive", "  .word 1, 2, 3\n  halt\n"),
    ("byte-value-out-of-range", ".data\n.byte 256\n.text\n  halt\n"),
    ("instruction-in-data-section", ".data\n  nop\n.text\n  halt\n"),
    ("unterminated-string", ".data\n.ascii \"open\n.text\n  halt\n"),
    ("bad-alignment", ".data\n.align 3\n.text\n  halt\n"),
    ("malformed-memory-operand", "  ld t0, 8 sp\n  halt\n"),
    ("duplicate-entry", ".entry a\na:\n  nop\n.entry 0\n  halt\n"),
    ("entry-out-of-range", ".entry 9\n  halt\n"),
    ("falls-off-end", "  nop\n"),
    ("empty-program", "; nothing but a comment\n"),
    ("stray-character", "  add t0, t1, %t2\n  halt\n"),
];

/// Renders every diagnostic in the fixed bad-input corpus as a
/// deterministic document (label, source, error), used as a CI golden so
/// error-message drift shows up as a diff rather than silently breaking
/// downstream tooling that greps stderr.
#[must_use]
pub fn diagnostic_snapshot() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (label, source) in DIAGNOSTIC_CORPUS {
        let err = match assemble(label, source) {
            Err(e) => e.to_string(),
            Ok(_) => "(assembled without error!)".to_string(),
        };
        let _ = writeln!(out, "== {label} ==");
        for line in source.lines() {
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(out, "-- error: {err}");
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_position_prefixed() {
        let e = AsmError { line: 3, col: 7, message: "boom".to_string() };
        assert_eq!(e.to_string(), "3:7: boom");
    }

    #[test]
    fn every_diagnostic_corpus_entry_fails() {
        let snap = diagnostic_snapshot();
        assert!(
            !snap.contains("(assembled without error!)"),
            "a diagnostic-corpus entry unexpectedly assembled:\n{snap}"
        );
        for (label, _) in DIAGNOSTIC_CORPUS {
            assert!(snap.contains(&format!("== {label} ==")), "missing section {label}");
        }
    }

    #[test]
    fn assemble_path_reports_missing_file() {
        let err = assemble_path(Path::new("/nonexistent/x.asm")).unwrap_err();
        assert!(err.starts_with("/nonexistent/x.asm: "), "{err}");
    }
}
