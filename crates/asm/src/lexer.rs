//! Line lexer for SIR assembly.
//!
//! The grammar is line-oriented: a physical source line lexes to a small
//! token vector (identifiers, integers, string literals and punctuation),
//! with `;` and `#` starting a comment that runs to the end of the line.
//! Every token carries its 1-based column so parser diagnostics can point
//! at the offending character.

use crate::AsmError;

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    /// A mnemonic, register name, label, or (with a leading `.`) directive.
    Ident(String),
    /// An integer literal (decimal or `0x` hexadecimal, optionally signed).
    /// Values up to `u64::MAX` are accepted and wrap into the `i64`
    /// immediate encoding, matching `Inst::imm`.
    Int(i64),
    /// A double-quoted string literal with escapes already processed.
    Str(Vec<u8>),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `:`
    Colon,
    /// `@`
    At,
}

impl Tok {
    /// Short rendering for diagnostics ("found X").
    pub(crate) fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Int(n) => format!("`{n}`"),
            Tok::Str(_) => "a string literal".to_string(),
            Tok::Comma => "`,`".to_string(),
            Tok::LParen => "`(`".to_string(),
            Tok::RParen => "`)`".to_string(),
            Tok::Colon => "`:`".to_string(),
            Tok::At => "`@`".to_string(),
        }
    }
}

/// A token plus its 1-based source column.
#[derive(Debug, Clone)]
pub(crate) struct Spanned {
    pub(crate) tok: Tok,
    pub(crate) col: u32,
}

fn err(line: u32, col: u32, message: impl Into<String>) -> AsmError {
    AsmError { line, col, message: message.into() }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == '.'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.'
}

/// Lexes one source line into tokens. Columns are 1-based character
/// positions within the line.
pub(crate) fn lex_line(line: &str, lineno: u32) -> Result<Vec<Spanned>, AsmError> {
    let chars: Vec<char> = line.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let col = (i + 1) as u32;
        match c {
            ' ' | '\t' | '\r' => i += 1,
            ';' | '#' => break,
            ',' => {
                toks.push(Spanned { tok: Tok::Comma, col });
                i += 1;
            }
            '(' => {
                toks.push(Spanned { tok: Tok::LParen, col });
                i += 1;
            }
            ')' => {
                toks.push(Spanned { tok: Tok::RParen, col });
                i += 1;
            }
            ':' => {
                toks.push(Spanned { tok: Tok::Colon, col });
                i += 1;
            }
            '@' => {
                toks.push(Spanned { tok: Tok::At, col });
                i += 1;
            }
            '"' => {
                let (bytes, consumed) = lex_string(&chars, i, lineno)?;
                toks.push(Spanned { tok: Tok::Str(bytes), col });
                i += consumed;
            }
            '-' | '0'..='9' => {
                let (value, consumed) = lex_int(&chars, i, lineno)?;
                toks.push(Spanned { tok: Tok::Int(value), col });
                i += consumed;
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                let name: String = chars[start..i].iter().collect();
                toks.push(Spanned { tok: Tok::Ident(name), col });
            }
            other => return Err(err(lineno, col, format!("unexpected character `{other}`"))),
        }
    }
    Ok(toks)
}

/// Lexes an integer literal starting at `chars[start]`. Returns the value
/// and the number of characters consumed.
fn lex_int(chars: &[char], start: usize, lineno: u32) -> Result<(i64, usize), AsmError> {
    let col = (start + 1) as u32;
    let mut i = start;
    let negative = chars[i] == '-';
    if negative {
        i += 1;
    }
    let digits_start = i;
    let hex = chars.get(i) == Some(&'0') && matches!(chars.get(i + 1), Some('x' | 'X'));
    if hex {
        i += 2;
    }
    let mut magnitude: u128 = 0;
    let radix = if hex { 16 } else { 10 };
    while i < chars.len() {
        let Some(d) = chars[i].to_digit(radix) else { break };
        magnitude = magnitude * u128::from(radix) + u128::from(d);
        if magnitude > u128::from(u64::MAX) {
            // Drain the rest of the literal so the error can quote it.
            while i < chars.len() && chars[i].is_digit(radix) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            return Err(err(lineno, col, format!("integer literal `{text}` out of range")));
        }
        i += 1;
    }
    if i == digits_start || (hex && i == digits_start + 2) {
        return Err(err(lineno, col, "malformed integer literal".to_string()));
    }
    let text = || -> String { chars[start..i].iter().collect() };
    let value = if negative {
        // i64::MIN's magnitude is i64::MAX + 1.
        if magnitude > (1u128 << 63) {
            return Err(err(lineno, col, format!("integer literal `{}` out of range", text())));
        }
        (magnitude as i128).wrapping_neg() as i64
    } else {
        // Positive literals up to u64::MAX wrap into the i64 bit pattern,
        // so 64-bit addresses and masks can be written directly.
        magnitude as u64 as i64
    };
    Ok((value, i - start))
}

/// Lexes a double-quoted string literal starting at `chars[start]` (the
/// opening quote). Returns the decoded bytes and characters consumed.
fn lex_string(chars: &[char], start: usize, lineno: u32) -> Result<(Vec<u8>, usize), AsmError> {
    let mut bytes = Vec::new();
    let mut i = start + 1;
    while i < chars.len() {
        let col = (i + 1) as u32;
        match chars[i] {
            '"' => return Ok((bytes, i + 1 - start)),
            '\\' => {
                let esc = *chars
                    .get(i + 1)
                    .ok_or_else(|| err(lineno, col, "unterminated escape sequence"))?;
                match esc {
                    'n' => bytes.push(b'\n'),
                    't' => bytes.push(b'\t'),
                    'r' => bytes.push(b'\r'),
                    '0' => bytes.push(0),
                    '\\' => bytes.push(b'\\'),
                    '"' => bytes.push(b'"'),
                    'x' => {
                        let hi = chars.get(i + 2).and_then(|c| c.to_digit(16));
                        let lo = chars.get(i + 3).and_then(|c| c.to_digit(16));
                        let (Some(hi), Some(lo)) = (hi, lo) else {
                            return Err(err(
                                lineno,
                                col,
                                "malformed \\x escape (need two hex digits)",
                            ));
                        };
                        bytes.push((hi * 16 + lo) as u8);
                        i += 2;
                    }
                    other => {
                        return Err(err(lineno, col, format!("unknown escape `\\{other}`")));
                    }
                }
                i += 2;
            }
            c => {
                let mut buf = [0u8; 4];
                bytes.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                i += 1;
            }
        }
    }
    Err(err(lineno, (start + 1) as u32, "unterminated string literal"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(line: &str) -> Vec<Tok> {
        lex_line(line, 1).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_instruction_shapes() {
        assert_eq!(
            toks("add t2, t0, t1"),
            vec![
                Tok::Ident("add".into()),
                Tok::Ident("t2".into()),
                Tok::Comma,
                Tok::Ident("t0".into()),
                Tok::Comma,
                Tok::Ident("t1".into()),
            ]
        );
        assert_eq!(
            toks("ld t0, -8(sp)"),
            vec![
                Tok::Ident("ld".into()),
                Tok::Ident("t0".into()),
                Tok::Comma,
                Tok::Int(-8),
                Tok::LParen,
                Tok::Ident("sp".into()),
                Tok::RParen,
            ]
        );
        assert_eq!(
            toks("beq t0, t1, @42"),
            vec![
                Tok::Ident("beq".into()),
                Tok::Ident("t0".into()),
                Tok::Comma,
                Tok::Ident("t1".into()),
                Tok::Comma,
                Tok::At,
                Tok::Int(42),
            ]
        );
    }

    #[test]
    fn comments_and_labels() {
        assert_eq!(toks("loop: ; to the top"), vec![Tok::Ident("loop".into()), Tok::Colon]);
        assert_eq!(toks("# full-line comment"), vec![]);
        assert_eq!(toks("   "), vec![]);
    }

    #[test]
    fn integers_decimal_hex_and_bounds() {
        assert_eq!(toks("0x10"), vec![Tok::Int(16)]);
        assert_eq!(toks("-12345"), vec![Tok::Int(-12345)]);
        assert_eq!(toks("0xffffffffffffffff"), vec![Tok::Int(-1)]);
        assert_eq!(toks("18446744073709551615"), vec![Tok::Int(-1)]);
        let e = lex_line("18446744073709551616", 3).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("out of range"), "{}", e.message);
        let e = lex_line("li t0, 0x", 1).unwrap_err();
        assert!(e.message.contains("malformed integer"), "{}", e.message);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(toks(r#".ascii "ab\n\0\x41""#)[1], Tok::Str(b"ab\n\0A".to_vec()));
        let e = lex_line(".ascii \"open", 2).unwrap_err();
        assert!(e.message.contains("unterminated string"), "{}", e.message);
        let e = lex_line(r#".ascii "\q""#, 1).unwrap_err();
        assert!(e.message.contains("unknown escape"), "{}", e.message);
    }

    #[test]
    fn columns_are_one_based() {
        let spanned = lex_line("  add t0, t1, t2", 1).unwrap();
        assert_eq!(spanned[0].col, 3);
        assert_eq!(spanned[1].col, 7);
    }

    #[test]
    fn stray_characters_are_rejected() {
        let e = lex_line("add t0, t1, %t2", 4).unwrap_err();
        assert_eq!((e.line, e.col), (4, 13));
        assert!(e.message.contains("unexpected character"), "{}", e.message);
    }
}
