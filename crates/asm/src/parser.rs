//! The assembler proper: token lines in, validated [`Program`] out.
//!
//! Two-pass structure in one sweep: instructions and data bytes are
//! emitted as lines are read, label references are recorded as fixups, and
//! [`Assembler::finish`] resolves every fixup, range-checks every
//! control-flow target and the entry point, and hands the result to
//! [`Program::from_parts`] for the ISA-level validation.
//!
//! The accepted grammar is a superset of [`Program::listing`] output: the
//! disassembly of any valid program re-assembles to an equal program (the
//! round-trip property), and hand-written sources may additionally use
//! labels, pseudo-instructions (`mv`, `j`, `call`, `ret`, `la`) and data
//! directives.

use std::collections::HashMap;

use dide_isa::{Inst, Opcode, OpcodeKind, Program, Reg, DATA_BASE};

use crate::lexer::{lex_line, Spanned, Tok};
use crate::AsmError;

/// Assembles `source` into a validated [`Program`] named `name`.
///
/// # Errors
///
/// Returns a one-line [`AsmError`] with the line and column of the first
/// problem: lexical errors, unknown mnemonics/registers/directives,
/// undefined or duplicate labels, out-of-range immediates or control-flow
/// targets, data directives outside a `.data` section, and programs that
/// are empty or can fall off the end of the text segment.
pub fn assemble(name: &str, source: &str) -> Result<Program, AsmError> {
    let mut asm = Assembler::default();
    let mut lines = 0u32;
    for (idx, line) in source.lines().enumerate() {
        lines = idx as u32 + 1;
        asm.line(line, lines)?;
    }
    asm.finish(name, lines.max(1))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// A bound symbol: a text label holds an instruction index, a data label
/// holds an absolute address in the data segment.
struct Symbol {
    value: i64,
    line: u32,
}

/// An instruction operand awaiting a symbol value.
struct Fixup {
    inst: usize,
    label: String,
    line: u32,
    col: u32,
    /// Whether the resolved value is a control-flow target (range-checked
    /// against the text segment) rather than a plain immediate.
    target: bool,
}

/// A control-flow target to range-check once the program length is known.
struct TargetUse {
    inst: usize,
    line: u32,
    col: u32,
}

enum EntryRef {
    Index(i64),
    Label(String),
}

#[derive(Default)]
struct Assembler {
    section: Option<Section>,
    insts: Vec<Inst>,
    inst_lines: Vec<u32>,
    data: Vec<u8>,
    symbols: HashMap<String, Symbol>,
    fixups: Vec<Fixup>,
    targets: Vec<TargetUse>,
    entry: Option<(EntryRef, u32, u32)>,
}

impl Assembler {
    fn section(&self) -> Section {
        self.section.unwrap_or(Section::Text)
    }

    fn line(&mut self, line: &str, lineno: u32) -> Result<(), AsmError> {
        let toks = lex_line(line, lineno)?;
        let mut cur = Cursor::new(&toks, lineno, line.chars().count() as u32 + 1);
        // Leading labels (`name:`) and index markers (`N:`), any number.
        loop {
            match (cur.peek_tok(0), cur.peek_tok(1)) {
                (Some(Tok::Ident(s)), Some(Tok::Colon)) if !s.starts_with('.') => {
                    let name = s.clone();
                    let col = cur.col();
                    cur.advance(2);
                    self.bind_label(name, lineno, col)?;
                }
                (Some(&Tok::Int(n)), Some(Tok::Colon)) => {
                    let col = cur.col();
                    cur.advance(2);
                    if n != self.insts.len() as i64 {
                        return Err(AsmError {
                            line: lineno,
                            col,
                            message: format!(
                                "index marker {n} does not match instruction index {}",
                                self.insts.len()
                            ),
                        });
                    }
                }
                _ => break,
            }
        }
        match cur.peek_tok(0) {
            None => Ok(()),
            Some(Tok::Ident(s)) if s.starts_with('.') => {
                let d = s.clone();
                let col = cur.col();
                cur.advance(1);
                self.directive(&d, col, &mut cur)
            }
            Some(Tok::Ident(s)) => {
                let m = s.clone();
                let col = cur.col();
                cur.advance(1);
                self.instruction(&m, col, &mut cur)
            }
            Some(other) => Err(cur.err_at(
                cur.col(),
                format!("expected an instruction, directive, or label, found {}", other.describe()),
            )),
        }
    }

    fn bind_label(&mut self, name: String, line: u32, col: u32) -> Result<(), AsmError> {
        let value = match self.section() {
            Section::Text => self.insts.len() as i64,
            Section::Data => DATA_BASE as i64 + self.data.len() as i64,
        };
        if let Some(prev) = self.symbols.get(&name) {
            return Err(AsmError {
                line,
                col,
                message: format!("duplicate label `{name}` (first defined on line {})", prev.line),
            });
        }
        self.symbols.insert(name, Symbol { value, line });
        Ok(())
    }

    fn emit(&mut self, inst: Inst, line: u32) -> usize {
        self.insts.push(inst);
        self.inst_lines.push(line);
        self.insts.len() - 1
    }

    // === directives ==========================================================

    fn directive(&mut self, d: &str, col: u32, cur: &mut Cursor<'_>) -> Result<(), AsmError> {
        match d {
            ".data" => {
                self.section = Some(Section::Data);
                cur.expect_end()
            }
            ".text" => {
                self.section = Some(Section::Text);
                cur.expect_end()
            }
            ".entry" => {
                if self.entry.is_some() {
                    return Err(cur.err_at(col, "duplicate .entry directive".to_string()));
                }
                let at = cur.col();
                let entry = match cur.bump() {
                    Some(Tok::Int(n)) => EntryRef::Index(*n),
                    Some(Tok::Ident(s)) => EntryRef::Label(s.clone()),
                    other => return Err(cur.expected("an entry index or label", at, other)),
                };
                self.entry = Some((entry, cur.line, at));
                cur.expect_end()
            }
            ".byte" | ".half" | ".word" | ".quad" => {
                self.require_data(d, col, cur)?;
                self.data_values(d, cur)
            }
            ".ascii" | ".asciz" => {
                self.require_data(d, col, cur)?;
                loop {
                    let at = cur.col();
                    match cur.bump() {
                        Some(Tok::Str(bytes)) => {
                            self.data.extend_from_slice(bytes);
                            if d == ".asciz" {
                                self.data.push(0);
                            }
                        }
                        other => return Err(cur.expected("a string literal", at, other)),
                    }
                    if cur.peek_tok(0).is_none() {
                        return Ok(());
                    }
                    cur.expect_comma()?;
                }
            }
            ".zero" => {
                self.require_data(d, col, cur)?;
                let at = cur.col();
                let n = cur.expect_int()?;
                if !(0..=1 << 20).contains(&n) {
                    return Err(cur.err_at(at, format!("invalid .zero length {n}")));
                }
                self.data.extend(std::iter::repeat_n(0u8, n as usize));
                cur.expect_end()
            }
            ".align" => {
                self.require_data(d, col, cur)?;
                let at = cur.col();
                let n = cur.expect_int()?;
                if !(1..=4096).contains(&n) || (n & (n - 1)) != 0 {
                    return Err(
                        cur.err_at(at, format!("invalid alignment {n} (need a power of two)"))
                    );
                }
                while !self.data.len().is_multiple_of(n as usize) {
                    self.data.push(0);
                }
                cur.expect_end()
            }
            other => Err(cur.err_at(col, format!("unknown directive `{other}`"))),
        }
    }

    fn require_data(&self, d: &str, col: u32, cur: &Cursor<'_>) -> Result<(), AsmError> {
        if self.section() == Section::Data {
            Ok(())
        } else {
            Err(cur.err_at(col, format!("data directive `{d}` outside a .data section")))
        }
    }

    fn data_values(&mut self, d: &str, cur: &mut Cursor<'_>) -> Result<(), AsmError> {
        loop {
            let at = cur.col();
            let v = cur.expect_int()?;
            match d {
                ".byte" => {
                    if !(-128..=255).contains(&v) {
                        return Err(cur.err_at(at, format!(".byte value {v} out of range")));
                    }
                    self.data.push(v as u8);
                }
                ".half" => {
                    if !(-32768..=65535).contains(&v) {
                        return Err(cur.err_at(at, format!(".half value {v} out of range")));
                    }
                    self.data.extend_from_slice(&(v as u16).to_le_bytes());
                }
                ".word" => {
                    if !(i64::from(i32::MIN)..=i64::from(u32::MAX)).contains(&v) {
                        return Err(cur.err_at(at, format!(".word value {v} out of range")));
                    }
                    self.data.extend_from_slice(&(v as u32).to_le_bytes());
                }
                _ => self.data.extend_from_slice(&v.to_le_bytes()),
            }
            if cur.peek_tok(0).is_none() {
                return Ok(());
            }
            cur.expect_comma()?;
        }
    }

    // === instructions ========================================================

    fn instruction(&mut self, m: &str, col: u32, cur: &mut Cursor<'_>) -> Result<(), AsmError> {
        if self.section() == Section::Data {
            return Err(cur.err_at(
                col,
                format!("instruction `{m}` in a .data section (switch back with .text)"),
            ));
        }
        let line = cur.line;
        match m {
            // Pseudo-instructions, lowered to the same canonical encodings
            // `ProgramBuilder` emits.
            "mv" => {
                let rd = cur.expect_reg()?;
                cur.expect_comma()?;
                let rs1 = cur.expect_reg()?;
                self.emit(Inst::new(Opcode::Add, rd, rs1, Reg::ZERO, 0), line);
            }
            "j" => {
                let target = cur.target()?;
                let at =
                    self.emit(Inst::new(Opcode::Jal, Reg::ZERO, Reg::ZERO, Reg::ZERO, 0), line);
                self.apply_target(at, target, line);
            }
            "call" => {
                let target = cur.target()?;
                let at = self.emit(Inst::new(Opcode::Jal, Reg::RA, Reg::ZERO, Reg::ZERO, 0), line);
                self.apply_target(at, target, line);
            }
            "ret" => {
                self.emit(Inst::new(Opcode::Jalr, Reg::ZERO, Reg::RA, Reg::ZERO, 0), line);
            }
            "la" => {
                // Load a symbol's value (a data address or text index); an
                // alias of `li` that reads better with a label operand.
                let rd = cur.expect_reg()?;
                cur.expect_comma()?;
                let operand = cur.imm_or_label()?;
                let at = self.emit(Inst::new(Opcode::Li, rd, Reg::ZERO, Reg::ZERO, 0), line);
                self.apply_imm(at, operand, line);
            }
            _ => {
                let Some(&op) = Opcode::ALL.iter().find(|o| o.mnemonic() == m) else {
                    return Err(cur.err_at(col, format!("unknown mnemonic `{m}`")));
                };
                self.opcode(op, cur)?;
            }
        }
        cur.expect_end()
    }

    fn opcode(&mut self, op: Opcode, cur: &mut Cursor<'_>) -> Result<(), AsmError> {
        let line = cur.line;
        match op.kind() {
            OpcodeKind::AluRR => {
                let rd = cur.expect_reg()?;
                cur.expect_comma()?;
                let rs1 = cur.expect_reg()?;
                cur.expect_comma()?;
                let rs2 = cur.expect_reg()?;
                self.emit(Inst::new(op, rd, rs1, rs2, 0), line);
            }
            OpcodeKind::AluRI => {
                let rd = cur.expect_reg()?;
                cur.expect_comma()?;
                let rs1 = cur.expect_reg()?;
                cur.expect_comma()?;
                let imm = cur.expect_int()?;
                self.emit(Inst::new(op, rd, rs1, Reg::ZERO, imm), line);
            }
            OpcodeKind::LoadImm => {
                let rd = cur.expect_reg()?;
                cur.expect_comma()?;
                let operand = cur.imm_or_label()?;
                let at = self.emit(Inst::new(op, rd, Reg::ZERO, Reg::ZERO, 0), line);
                self.apply_imm(at, operand, line);
            }
            OpcodeKind::Load { .. } => {
                let rd = cur.expect_reg()?;
                cur.expect_comma()?;
                let (imm, base) = cur.mem_operand()?;
                self.emit(Inst::new(op, rd, base, Reg::ZERO, imm), line);
            }
            OpcodeKind::Store { .. } => {
                let src = cur.expect_reg()?;
                cur.expect_comma()?;
                let (imm, base) = cur.mem_operand()?;
                self.emit(Inst::new(op, Reg::ZERO, base, src, imm), line);
            }
            OpcodeKind::Branch(_) => {
                let rs1 = cur.expect_reg()?;
                cur.expect_comma()?;
                let rs2 = cur.expect_reg()?;
                cur.expect_comma()?;
                let target = cur.target()?;
                let at = self.emit(Inst::new(op, Reg::ZERO, rs1, rs2, 0), line);
                self.apply_target(at, target, line);
            }
            OpcodeKind::Jal => {
                let rd = cur.expect_reg()?;
                cur.expect_comma()?;
                let target = cur.target()?;
                let at = self.emit(Inst::new(op, rd, Reg::ZERO, Reg::ZERO, 0), line);
                self.apply_target(at, target, line);
            }
            OpcodeKind::Jalr => {
                let rd = cur.expect_reg()?;
                cur.expect_comma()?;
                let (imm, base) = cur.mem_operand()?;
                self.emit(Inst::new(op, rd, base, Reg::ZERO, imm), line);
            }
            OpcodeKind::Out => {
                let rs1 = cur.expect_reg()?;
                self.emit(Inst::new(op, Reg::ZERO, rs1, Reg::ZERO, 0), line);
            }
            OpcodeKind::Halt | OpcodeKind::Nop => {
                self.emit(Inst::new(op, Reg::ZERO, Reg::ZERO, Reg::ZERO, 0), line);
            }
        }
        Ok(())
    }

    fn apply_target(&mut self, at: usize, operand: Operand, line: u32) {
        match operand {
            Operand::Int(v, col) => {
                self.insts[at].imm = v;
                self.targets.push(TargetUse { inst: at, line, col });
            }
            Operand::Label(label, col) => {
                self.fixups.push(Fixup { inst: at, label, line, col, target: true });
            }
        }
    }

    fn apply_imm(&mut self, at: usize, operand: Operand, line: u32) {
        match operand {
            Operand::Int(v, _) => self.insts[at].imm = v,
            Operand::Label(label, col) => {
                self.fixups.push(Fixup { inst: at, label, line, col, target: false });
            }
        }
    }

    // === finalization ========================================================

    fn finish(mut self, name: &str, last_line: u32) -> Result<Program, AsmError> {
        for f in &self.fixups {
            let Some(sym) = self.symbols.get(&f.label) else {
                return Err(AsmError {
                    line: f.line,
                    col: f.col,
                    message: format!("undefined label `{}`", f.label),
                });
            };
            self.insts[f.inst].imm = sym.value;
            if f.target {
                self.targets.push(TargetUse { inst: f.inst, line: f.line, col: f.col });
            }
        }
        if self.insts.is_empty() {
            return Err(AsmError {
                line: last_line,
                col: 1,
                message: "program has no instructions".to_string(),
            });
        }
        let len = self.insts.len() as i64;
        for t in &self.targets {
            let v = self.insts[t.inst].imm;
            if !(0..len).contains(&v) {
                return Err(AsmError {
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "branch target @{v} out of range (program has {len} instructions)"
                    ),
                });
            }
        }
        let entry = match self.entry {
            None => 0,
            Some((entry, line, col)) => {
                let v = match entry {
                    EntryRef::Index(v) => v,
                    EntryRef::Label(label) => match self.symbols.get(&label) {
                        Some(sym) => sym.value,
                        None => {
                            return Err(AsmError {
                                line,
                                col,
                                message: format!("undefined label `{label}`"),
                            })
                        }
                    },
                };
                if !(0..len).contains(&v) {
                    return Err(AsmError {
                        line,
                        col,
                        message: format!(
                            "entry index {v} out of range (program has {len} instructions)"
                        ),
                    });
                }
                v as u32
            }
        };
        let last = self.insts.last().expect("non-empty");
        if !matches!(last.op.kind(), OpcodeKind::Halt | OpcodeKind::Jal | OpcodeKind::Jalr) {
            return Err(AsmError {
                line: *self.inst_lines.last().expect("non-empty"),
                col: 1,
                message: "control can fall off the end (the last instruction must be halt, jal, \
                          or jalr)"
                    .to_string(),
            });
        }
        Program::from_parts(name, self.insts, self.data, entry).map_err(|e| AsmError {
            line: last_line,
            col: 1,
            message: e.to_string(),
        })
    }
}

/// A branch-target or immediate operand, possibly symbolic.
enum Operand {
    Int(i64, u32),
    Label(String, u32),
}

/// Token cursor over one lexed line.
struct Cursor<'a> {
    toks: &'a [Spanned],
    pos: usize,
    line: u32,
    end_col: u32,
}

impl<'a> Cursor<'a> {
    fn new(toks: &'a [Spanned], line: u32, end_col: u32) -> Cursor<'a> {
        Cursor { toks, pos: 0, line, end_col }
    }

    fn peek_tok(&self, ahead: usize) -> Option<&'a Tok> {
        self.toks.get(self.pos + ahead).map(|s| &s.tok)
    }

    /// Column of the next token, or of the end of the line.
    fn col(&self) -> u32 {
        self.toks.get(self.pos).map_or(self.end_col, |s| s.col)
    }

    fn advance(&mut self, n: usize) {
        self.pos += n;
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.peek_tok(0);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_at(&self, col: u32, message: String) -> AsmError {
        AsmError { line: self.line, col, message }
    }

    fn expected(&self, what: &str, col: u32, found: Option<&Tok>) -> AsmError {
        let found = found.map_or_else(|| "end of line".to_string(), Tok::describe);
        self.err_at(col, format!("expected {what}, found {found}"))
    }

    fn expect_comma(&mut self) -> Result<(), AsmError> {
        let at = self.col();
        match self.bump() {
            Some(Tok::Comma) => Ok(()),
            other => Err(self.expected("`,`", at, other)),
        }
    }

    fn expect_end(&mut self) -> Result<(), AsmError> {
        match self.peek_tok(0) {
            None => Ok(()),
            Some(t) => {
                Err(self.err_at(self.col(), format!("trailing {} after operands", t.describe())))
            }
        }
    }

    fn expect_reg(&mut self) -> Result<Reg, AsmError> {
        let at = self.col();
        match self.bump() {
            Some(Tok::Ident(s)) => {
                reg_by_name(s).ok_or_else(|| self.err_at(at, format!("unknown register `{s}`")))
            }
            other => Err(self.expected("a register", at, other)),
        }
    }

    fn expect_int(&mut self) -> Result<i64, AsmError> {
        let at = self.col();
        match self.bump() {
            Some(&Tok::Int(v)) => Ok(v),
            other => Err(self.expected("an integer", at, other)),
        }
    }

    /// `imm(reg)` with an optional immediate (defaults to 0).
    fn mem_operand(&mut self) -> Result<(i64, Reg), AsmError> {
        let imm = match self.peek_tok(0) {
            Some(&Tok::Int(v)) => {
                self.advance(1);
                v
            }
            _ => 0,
        };
        let at = self.col();
        match self.bump() {
            Some(Tok::LParen) => {}
            other => return Err(self.expected("`(`", at, other)),
        }
        let base = self.expect_reg()?;
        let at = self.col();
        match self.bump() {
            Some(Tok::RParen) => Ok((imm, base)),
            other => Err(self.expected("`)`", at, other)),
        }
    }

    /// A control-flow target: `@N`, a bare index, or a label.
    fn target(&mut self) -> Result<Operand, AsmError> {
        let at = self.col();
        match self.bump() {
            Some(Tok::At) => Ok(Operand::Int(self.expect_int()?, at)),
            Some(&Tok::Int(v)) => Ok(Operand::Int(v, at)),
            Some(Tok::Ident(s)) => Ok(Operand::Label(s.clone(), at)),
            other => Err(self.expected("a branch target (`@N` or a label)", at, other)),
        }
    }

    /// An integer immediate or a symbol reference (for `li`/`la`).
    fn imm_or_label(&mut self) -> Result<Operand, AsmError> {
        let at = self.col();
        match self.bump() {
            Some(&Tok::Int(v)) => Ok(Operand::Int(v, at)),
            Some(Tok::Ident(s)) => Ok(Operand::Label(s.clone(), at)),
            other => Err(self.expected("an immediate or label", at, other)),
        }
    }
}

/// Resolves a register name: the ABI names `Reg` displays (`zero`, `ra`,
/// `sp`, `fp`, `a0`–`a5`, `t0`–`t7`, `s0`–`s7`, `g0`–`g5`) plus raw
/// `r0`–`r31`.
fn reg_by_name(s: &str) -> Option<Reg> {
    match s {
        "zero" => return Some(Reg::ZERO),
        "ra" => return Some(Reg::RA),
        "sp" => return Some(Reg::SP),
        "fp" => return Some(Reg::FP),
        _ => {}
    }
    let mut chars = s.chars();
    let head = chars.next()?;
    let rest = chars.as_str();
    if rest.is_empty() || !rest.chars().all(|c| c.is_ascii_digit()) {
        return None;
    }
    let n: u8 = rest.parse().ok()?;
    match head {
        'a' if n < 6 => Some(Reg::new(4 + n)),
        't' if n < 8 => Some(Reg::new(10 + n)),
        's' if n < 8 => Some(Reg::new(18 + n)),
        'g' if n < 6 => Some(Reg::new(26 + n)),
        'r' if n < 32 => Some(Reg::new(n)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asm(source: &str) -> Program {
        assemble("t", source).expect("assembles")
    }

    fn asm_err(source: &str) -> AsmError {
        assemble("t", source).expect_err("must not assemble")
    }

    #[test]
    fn assembles_every_display_form() {
        let p = asm("add t2, t0, t1\naddi t0, t0, 1\nli a0, -7\nld t0, 16(sp)\n\
                     sd t0, 16(sp)\nbeq t0, t1, @0\njalr zero, 0(ra)\nout a0\nnop\nhalt\n");
        let rendered: Vec<String> = p.insts().iter().map(ToString::to_string).collect();
        assert_eq!(
            rendered,
            vec![
                "add t2, t0, t1",
                "addi t0, t0, 1",
                "li a0, -7",
                "ld t0, 16(sp)",
                "sd t0, 16(sp)",
                "beq t0, t1, @0",
                "jalr zero, 0(ra)",
                "out a0",
                "nop",
                "halt",
            ]
        );
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let p = asm("top:\n  addi t0, t0, 1\n  beq t0, t1, done\n  j top\ndone:\n  halt\n");
        assert_eq!(p.insts()[1].imm, 3, "forward reference to `done`");
        assert_eq!(p.insts()[2].imm, 0, "backward reference to `top`");
        assert_eq!(p.insts()[2].op, Opcode::Jal);
    }

    #[test]
    fn data_labels_are_absolute_addresses() {
        let p = asm(".data\nbuf: .word 1, 2\nmsg: .asciz \"hi\"\n.text\n  la g0, msg\n  halt\n");
        assert_eq!(p.data(), &[1, 0, 0, 0, 2, 0, 0, 0, b'h', b'i', 0]);
        assert_eq!(p.insts()[0].imm, DATA_BASE as i64 + 8);
    }

    #[test]
    fn entry_directive_and_markers() {
        let p = asm(".entry main\n  nop\nmain:\n 1: halt\n");
        assert_eq!(p.entry(), 1);
        let p = asm(".entry 0\n  halt\n");
        assert_eq!(p.entry(), 0);
    }

    #[test]
    fn pseudo_ops_lower_to_canonical_encodings() {
        let p = asm("mv t0, t1\ncall fin\nret\nfin:\n  j fin\n");
        assert_eq!(p.insts()[0], Inst::new(Opcode::Add, Reg::T0, Reg::T1, Reg::ZERO, 0));
        assert_eq!(p.insts()[1], Inst::new(Opcode::Jal, Reg::RA, Reg::ZERO, Reg::ZERO, 3));
        assert_eq!(p.insts()[2], Inst::new(Opcode::Jalr, Reg::ZERO, Reg::RA, Reg::ZERO, 0));
        assert_eq!(p.insts()[3], Inst::new(Opcode::Jal, Reg::ZERO, Reg::ZERO, Reg::ZERO, 3));
    }

    #[test]
    fn raw_register_numbers_are_accepted() {
        let p = asm("add r12, r10, r31\nhalt\n");
        assert_eq!(p.insts()[0], Inst::new(Opcode::Add, Reg::T2, Reg::T0, Reg::G5, 0));
    }

    // --- the satellite error-path matrix: exact one-line diagnostics ---

    #[test]
    fn unknown_mnemonic_is_pinpointed() {
        let e = asm_err("  nop\n  adx t0, t1, t2\n  halt\n");
        assert_eq!(e.to_string(), "2:3: unknown mnemonic `adx`");
    }

    #[test]
    fn undefined_label_is_pinpointed() {
        let e = asm_err("  j missing\n  halt\n");
        assert_eq!(e.to_string(), "1:5: undefined label `missing`");
    }

    #[test]
    fn duplicate_label_is_pinpointed() {
        let e = asm_err("loop:\n  nop\nloop:\n  halt\n");
        assert_eq!(e.to_string(), "3:1: duplicate label `loop` (first defined on line 1)");
    }

    #[test]
    fn out_of_range_immediate_is_pinpointed() {
        let e = asm_err("  li t0, 123456789012345678901234567890\n  halt\n");
        assert_eq!(
            e.to_string(),
            "1:10: integer literal `123456789012345678901234567890` out of range"
        );
    }

    #[test]
    fn malformed_register_is_pinpointed() {
        let e = asm_err("  add t0, t1, t9\n  halt\n");
        assert_eq!(e.to_string(), "1:15: unknown register `t9`");
        let e = asm_err("  add t0, t1, 5\n  halt\n");
        assert_eq!(e.to_string(), "1:15: expected a register, found `5`");
    }

    #[test]
    fn dangling_data_directive_is_pinpointed() {
        let e = asm_err("  .word 1, 2, 3\n  halt\n");
        assert_eq!(e.to_string(), "1:3: data directive `.word` outside a .data section");
    }

    #[test]
    fn more_diagnostics_stay_one_line_with_position() {
        let cases = [
            "  beq t0, t1, @99\n  halt\n",
            ".data\n.byte 256\n.text\n  halt\n",
            " 3: nop\n  halt\n",
            ".data\n  nop\n.text\n  halt\n",
            "  nop\n",
            "; empty\n",
            "  nop nop\n  halt\n",
            ".entry 9\n  halt\n",
            ".entry a\n.entry b\n  halt\n",
            "  add t0, t1\n  halt\n",
            ".data\n.align 3\n.text\n  halt\n",
            ".data\n.zero -1\n.text\n  halt\n",
            "  ld t0, 8 sp\n  halt\n",
            "  li t0\n  halt\n",
        ];
        for source in cases {
            let e = assemble("t", source).expect_err(source);
            let rendered = e.to_string();
            assert!(!rendered.contains('\n'), "multi-line diagnostic for {source:?}");
            assert!(
                rendered.starts_with(&format!("{}:{}:", e.line, e.col)),
                "no position in {rendered:?}"
            );
            assert!(e.line >= 1 && e.col >= 1, "positions are 1-based: {rendered:?}");
        }
    }

    #[test]
    fn program_validation_errors_surface_as_diagnostics() {
        let e = asm_err("  beq t0, t1, @5\n  halt\n");
        assert!(e.message.contains("out of range"), "{e}");
        let e = asm_err("  nop\n");
        assert!(e.message.contains("fall off the end"), "{e}");
        let e = asm_err("");
        assert_eq!(e.to_string(), "1:1: program has no instructions");
    }

    #[test]
    fn register_name_table_matches_display() {
        for r in Reg::all() {
            assert_eq!(reg_by_name(&r.to_string()), Some(r), "display name of {r}");
            assert_eq!(reg_by_name(&format!("r{}", r.number())), Some(r), "raw name of {r}");
        }
        for bad in ["t8", "a6", "s8", "g6", "r32", "x0", "t", "t-1", "t01x"] {
            assert_eq!(reg_by_name(bad), None, "{bad} must not resolve");
        }
    }
}
