//! The `.asm` benchmarks shipped in the repository's `asm/` directory,
//! embedded at compile time so they are available as first-class workloads
//! (for `dide run`, `dide verify`, `dide stats`, and `dide bench`) without
//! touching the filesystem.

use dide_isa::Program;

/// `(name, source)` pairs for every shipped benchmark. The name doubles as
/// the workload name and matches the file stem under `asm/`.
pub const SOURCES: &[(&str, &str)] = &[
    ("prime", include_str!("../../../asm/prime.asm")),
    ("matmul", include_str!("../../../asm/matmul.asm")),
    ("strsearch", include_str!("../../../asm/strsearch.asm")),
];

/// The embedded source text of a shipped benchmark, or `None` for an
/// unknown name.
#[must_use]
pub fn source(name: &str) -> Option<&'static str> {
    SOURCES.iter().find(|(n, _)| *n == name).map(|(_, s)| *s)
}

/// Assembles a shipped benchmark by name, or returns `None` for an
/// unknown name.
///
/// # Panics
///
/// Panics if the embedded source fails to assemble — the shipped sources
/// are covered by unit tests and CI, so this indicates a build-breaking
/// edit to a file under `asm/`.
#[must_use]
pub fn program(name: &str) -> Option<Program> {
    let src = source(name)?;
    match crate::assemble(name, src) {
        Ok(p) => Some(p),
        Err(e) => panic!("shipped benchmark asm/{name}.asm does not assemble: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_shipped_benchmark_assembles() {
        for (name, _) in SOURCES {
            let p = program(name).expect("known name");
            assert_eq!(p.name(), *name);
            assert!(!p.is_empty());
        }
    }

    #[test]
    fn unknown_names_are_none() {
        assert!(source("nope").is_none());
        assert!(program("nope").is_none());
    }

    #[test]
    fn shipped_benchmarks_round_trip_through_their_listing() {
        for (name, _) in SOURCES {
            let p = program(name).expect("known name");
            let re = crate::assemble(p.name(), &p.listing()).expect("listing re-assembles");
            assert_eq!(p, re, "round-trip mismatch for {name}");
        }
    }
}
