//! The `.asm` benchmarks shipped in the repository's `asm/` directory,
//! embedded at compile time so they are available as first-class workloads
//! (for `dide run`, `dide verify`, `dide stats`, and `dide bench`) without
//! touching the filesystem.

use dide_isa::Program;

/// `(name, source)` pairs for every shipped benchmark. The name doubles as
/// the workload name and matches the file stem under `asm/`.
pub const SOURCES: &[(&str, &str)] = &[
    ("prime", include_str!("../../../asm/prime.asm")),
    ("matmul", include_str!("../../../asm/matmul.asm")),
    ("strsearch", include_str!("../../../asm/strsearch.asm")),
];

/// The embedded source text of a shipped benchmark, or `None` for an
/// unknown name.
#[must_use]
pub fn source(name: &str) -> Option<&'static str> {
    SOURCES.iter().find(|(n, _)| *n == name).map(|(_, s)| *s)
}

/// Assembles a shipped benchmark by name, or returns `None` for an
/// unknown name.
///
/// # Panics
///
/// Panics if the embedded source fails to assemble — the shipped sources
/// are covered by unit tests and CI, so this indicates a build-breaking
/// edit to a file under `asm/`.
#[must_use]
pub fn program(name: &str) -> Option<Program> {
    let src = source(name)?;
    match crate::assemble(name, src) {
        Ok(p) => Some(p),
        Err(e) => panic!("shipped benchmark asm/{name}.asm does not assemble: {e}"),
    }
}

/// The rounds-count line of `asm/matmul.asm` — the one workload-scale knob
/// the shipped benchmarks expose. Anchored on the following branch so the
/// inner-loop bounds (`li   t4, 8`) can never match.
const MATMUL_ROUNDS_KNOB: &str = "li   t4, 4\n  blt  s3, t4, rounds";

/// Assembles a shipped benchmark with its workload-scale knob applied, or
/// returns `None` for an unknown name.
///
/// `matmul` repeats its outer rounds loop `4 * scale` times: the loop
/// recomputes the same product every round, so scaling it grows the
/// dynamic trace linearly without changing the program's character. The
/// other shipped benchmarks have no knob and assemble unchanged.
///
/// # Panics
///
/// Panics if `scale` is zero, if the knob line has been edited out of
/// `asm/matmul.asm`, or if the scaled source fails to assemble (see
/// [`program`]).
#[must_use]
pub fn program_scaled(name: &str, scale: u32) -> Option<Program> {
    assert!(scale > 0, "scale must be at least 1");
    if name != "matmul" || scale == 1 {
        return program(name);
    }
    let src = source(name)?;
    let rounds = 4 * u64::from(scale);
    let scaled =
        src.replacen(MATMUL_ROUNDS_KNOB, &format!("li   t4, {rounds}\n  blt  s3, t4, rounds"), 1);
    assert_ne!(scaled, src, "asm/matmul.asm lost its rounds-knob line");
    match crate::assemble(name, &scaled) {
        Ok(p) => Some(p),
        Err(e) => panic!("scaled benchmark asm/{name}.asm (scale {scale}) does not assemble: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_shipped_benchmark_assembles() {
        for (name, _) in SOURCES {
            let p = program(name).expect("known name");
            assert_eq!(p.name(), *name);
            assert!(!p.is_empty());
        }
    }

    #[test]
    fn unknown_names_are_none() {
        assert!(source("nope").is_none());
        assert!(program("nope").is_none());
    }

    #[test]
    fn scale_one_is_the_unscaled_program() {
        for (name, _) in SOURCES {
            assert_eq!(program_scaled(name, 1), program(name), "{name}");
        }
    }

    #[test]
    fn scaling_matmul_rewrites_only_the_rounds_bound() {
        let base = program("matmul").unwrap();
        let scaled = program_scaled("matmul", 16).unwrap();
        // Same static program shape — only the rounds-loop immediate moves.
        assert_eq!(base.len(), scaled.len());
        let differing: Vec<usize> =
            (0..base.len()).filter(|&i| base.insts()[i] != scaled.insts()[i]).collect();
        assert_eq!(differing.len(), 1, "exactly one instruction changes");
        let listing = scaled.listing();
        assert!(listing.contains("64"), "rounds bound is 4 * scale: {listing}");
    }

    #[test]
    fn scaling_a_knobless_benchmark_is_a_no_op() {
        assert_eq!(program_scaled("prime", 8), program("prime"));
        assert!(program_scaled("nope", 8).is_none());
    }

    #[test]
    fn shipped_benchmarks_round_trip_through_their_listing() {
        for (name, _) in SOURCES {
            let p = program(name).expect("known name");
            let re = crate::assemble(p.name(), &p.listing()).expect("listing re-assembles");
            assert_eq!(p, re, "round-trip mismatch for {name}");
        }
    }
}
