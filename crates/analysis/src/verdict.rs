//! Per-instruction deadness verdicts.

use std::fmt;

/// Why a dynamic instruction's value went unused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeadKind {
    /// Register result overwritten before any read.
    RegOverwritten,
    /// Register result never read again before the program ended.
    RegUnread,
    /// Every stored byte overwritten before any load.
    StoreOverwritten,
    /// Stored bytes never loaded before the program ended.
    StoreUnread,
    /// The value *was* read, but only by instructions that are themselves
    /// dead (transitively dead).
    Transitive,
}

impl DeadKind {
    /// All kinds, in reporting order.
    pub const ALL: [DeadKind; 5] = [
        DeadKind::RegOverwritten,
        DeadKind::RegUnread,
        DeadKind::StoreOverwritten,
        DeadKind::StoreUnread,
        DeadKind::Transitive,
    ];

    /// Short label used in report tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DeadKind::RegOverwritten => "reg-overwritten",
            DeadKind::RegUnread => "reg-unread",
            DeadKind::StoreOverwritten => "store-overwritten",
            DeadKind::StoreUnread => "store-unread",
            DeadKind::Transitive => "transitive",
        }
    }

    /// Whether this kind counts as first-level (directly) dead, as opposed
    /// to transitively dead.
    #[must_use]
    pub fn is_first_level(self) -> bool {
        !matches!(self, DeadKind::Transitive)
    }
}

impl fmt::Display for DeadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The analysis outcome for one dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The instruction produces no eliminable value (branch, jump, `out`,
    /// `halt`, `nop`, or a zero-register write).
    NotEligible,
    /// The instruction's value is (transitively) used by a useful
    /// instruction.
    Useful,
    /// The instruction is dynamically dead.
    Dead(DeadKind),
}

impl Verdict {
    /// Whether the verdict is [`Verdict::Dead`].
    #[must_use]
    pub fn is_dead(self) -> bool {
        matches!(self, Verdict::Dead(_))
    }

    /// Whether the instruction was eligible for deadness at all.
    #[must_use]
    pub fn is_eligible(self) -> bool {
        !matches!(self, Verdict::NotEligible)
    }

    /// The dead kind, when dead.
    #[must_use]
    pub fn dead_kind(self) -> Option<DeadKind> {
        match self {
            Verdict::Dead(k) => Some(k),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::NotEligible => f.write_str("not-eligible"),
            Verdict::Useful => f.write_str("useful"),
            Verdict::Dead(k) => write!(f, "dead({k})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_predicates() {
        assert!(Verdict::Dead(DeadKind::RegUnread).is_dead());
        assert!(!Verdict::Useful.is_dead());
        assert!(!Verdict::NotEligible.is_eligible());
        assert!(Verdict::Useful.is_eligible());
        assert_eq!(Verdict::Dead(DeadKind::Transitive).dead_kind(), Some(DeadKind::Transitive));
        assert_eq!(Verdict::Useful.dead_kind(), None);
    }

    #[test]
    fn first_level_split() {
        assert!(DeadKind::RegOverwritten.is_first_level());
        assert!(DeadKind::StoreUnread.is_first_level());
        assert!(!DeadKind::Transitive.is_first_level());
    }

    #[test]
    fn labels_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in DeadKind::ALL {
            assert!(seen.insert(k.label()));
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Verdict::Dead(DeadKind::RegUnread).to_string(), "dead(reg-unread)");
        assert_eq!(Verdict::Useful.to_string(), "useful");
        assert_eq!(Verdict::NotEligible.to_string(), "not-eligible");
    }
}
