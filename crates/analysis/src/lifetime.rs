//! Dead-value lifetimes: how long dead register values occupy their
//! registers.
//!
//! A dead register write holds a physical register from allocation until
//! the *next* write to the same architectural register commits. The longer
//! that distance, the more register-file pressure each dead instruction
//! causes — the quantity behind the paper's "physical register management"
//! savings. This module measures, for every dead register-writing
//! instruction, the dynamic-instruction distance to its overwriter (or to
//! the end of the trace).

use dide_emu::Trace;
use dide_isa::Reg;

use crate::liveness::DeadnessAnalysis;

/// Distribution summary of dead-value lifetimes, in dynamic instructions.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadLifetimes {
    lifetimes: Vec<u64>,
}

impl DeadLifetimes {
    /// Measures the lifetime of every dead register-writing instruction.
    ///
    /// Stores are excluded: their "lifetime" is a property of the memory
    /// system, not the register file.
    #[must_use]
    pub fn compute(trace: &Trace, analysis: &DeadnessAnalysis) -> DeadLifetimes {
        let mut last_writer: [Option<u64>; Reg::COUNT] = [None; Reg::COUNT];
        let mut lifetimes = Vec::new();
        let end = trace.len() as u64;
        for r in trace {
            if let Some(rd) = r.dest() {
                if let Some(prev) = last_writer[rd.index()] {
                    if analysis.is_dead(prev) {
                        lifetimes.push(r.seq - prev);
                    }
                }
                last_writer[rd.index()] = Some(r.seq);
            }
        }
        // Values never overwritten live to the end of the program.
        for prev in last_writer.into_iter().flatten() {
            if analysis.is_dead(prev) {
                lifetimes.push(end - prev);
            }
        }
        lifetimes.sort_unstable();
        DeadLifetimes { lifetimes }
    }

    /// Number of dead register values measured.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lifetimes.len()
    }

    /// Whether no dead register values were found.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lifetimes.is_empty()
    }

    /// Mean lifetime in dynamic instructions.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.lifetimes.is_empty() {
            0.0
        } else {
            self.lifetimes.iter().sum::<u64>() as f64 / self.lifetimes.len() as f64
        }
    }

    /// The `q`-quantile lifetime (`q` in `[0, 1]`), or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.lifetimes.is_empty() {
            return None;
        }
        let idx = ((self.lifetimes.len() - 1) as f64 * q).round() as usize;
        Some(self.lifetimes[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dide_emu::Emulator;
    use dide_isa::{ProgramBuilder, Reg};

    fn measure(b: ProgramBuilder) -> DeadLifetimes {
        let trace = Emulator::new(&b.build().unwrap()).run().unwrap();
        let analysis = DeadnessAnalysis::analyze(&trace);
        DeadLifetimes::compute(&trace, &analysis)
    }

    #[test]
    fn immediate_overwrite_has_lifetime_one() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1); // dead, overwritten by the very next instruction
        b.li(Reg::T0, 2);
        b.out(Reg::T0);
        b.halt();
        let lt = measure(b);
        assert_eq!(lt.len(), 1);
        assert_eq!(lt.quantile(0.5), Some(1));
        assert!((lt.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distance_measures_intervening_instructions() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1); // seq 0: dead
        b.li(Reg::T1, 2); // seq 1 (useful)
        b.li(Reg::T2, 3); // seq 2 (useful)
        b.li(Reg::T0, 4); // seq 3: overwrites seq 0 -> lifetime 3
        b.out(Reg::T0).out(Reg::T1).out(Reg::T2);
        b.halt();
        let lt = measure(b);
        assert_eq!(lt.len(), 1);
        assert_eq!(lt.quantile(1.0), Some(3));
    }

    #[test]
    fn unread_value_lives_to_program_end() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1); // seq 0: dead, never overwritten
        b.nop(); // 1
        b.halt(); // 2
        let lt = measure(b);
        assert_eq!(lt.len(), 1);
        assert_eq!(lt.quantile(0.0), Some(3)); // trace length 3 - seq 0
    }

    #[test]
    fn useful_values_are_not_counted() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1);
        b.out(Reg::T0);
        b.li(Reg::T0, 2);
        b.out(Reg::T0);
        b.halt();
        let lt = measure(b);
        assert!(lt.is_empty());
        assert_eq!(lt.quantile(0.5), None);
        assert_eq!(lt.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_out_of_range_panics() {
        let mut b = ProgramBuilder::new("t");
        b.halt();
        let lt = measure(b);
        let _ = lt.quantile(1.5);
    }
}
