//! Per-static-instruction deadness profiles.

use std::fmt;

use dide_emu::Trace;

use crate::verdict::Verdict;

/// How a static instruction behaved across all of its dynamic instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StaticBehavior {
    /// The instruction never produced an eliminable value.
    NotValueProducing,
    /// Every eligible instance was useful.
    NeverDead,
    /// Some instances were dead, some useful — the paper's *partially dead*
    /// static instructions, the common case and the reason the predictor
    /// needs future control-flow information.
    PartiallyDead,
    /// Every eligible instance was dead.
    FullyDead,
}

/// Counters for one static instruction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticRecord {
    /// Dynamic executions.
    pub executions: u64,
    /// Eligible (value-producing) executions.
    pub eligible: u64,
    /// Dead executions.
    pub dead: u64,
}

impl StaticRecord {
    /// Behavior classification for this static instruction.
    #[must_use]
    pub fn behavior(&self) -> StaticBehavior {
        if self.eligible == 0 {
            StaticBehavior::NotValueProducing
        } else if self.dead == 0 {
            StaticBehavior::NeverDead
        } else if self.dead == self.eligible {
            StaticBehavior::FullyDead
        } else {
            StaticBehavior::PartiallyDead
        }
    }

    /// Fraction of eligible instances that were dead.
    #[must_use]
    pub fn dead_ratio(&self) -> f64 {
        if self.eligible == 0 {
            0.0
        } else {
            self.dead as f64 / self.eligible as f64
        }
    }
}

/// Deadness profile of every static instruction in a program
/// (the paper's "static instruction behaviour" analysis, E3).
#[derive(Debug, Clone)]
pub struct StaticProfile {
    records: Vec<StaticRecord>,
}

impl StaticProfile {
    /// Builds the profile from a trace and its verdicts.
    #[must_use]
    pub fn build(trace: &Trace, verdicts: &[Verdict]) -> StaticProfile {
        let mut records = vec![StaticRecord::default(); trace.program().len()];
        for (r, v) in trace.iter().zip(verdicts) {
            let rec = &mut records[r.index as usize];
            rec.executions += 1;
            if v.is_eligible() {
                rec.eligible += 1;
            }
            if v.is_dead() {
                rec.dead += 1;
            }
        }
        StaticProfile { records }
    }

    /// Per-static records, indexed by static instruction index.
    #[must_use]
    pub fn records(&self) -> &[StaticRecord] {
        &self.records
    }

    /// Number of static instructions whose behavior matches `behavior`,
    /// counting only statics that executed at least once.
    #[must_use]
    pub fn count_behavior(&self, behavior: StaticBehavior) -> usize {
        self.records.iter().filter(|r| r.executions > 0 && r.behavior() == behavior).count()
    }

    /// Total dead dynamic instances.
    #[must_use]
    pub fn total_dead(&self) -> u64 {
        self.records.iter().map(|r| r.dead).sum()
    }

    /// Dead dynamic instances contributed by statics with the given
    /// behavior.
    #[must_use]
    pub fn dead_from_behavior(&self, behavior: StaticBehavior) -> u64 {
        self.records.iter().filter(|r| r.behavior() == behavior).map(|r| r.dead).sum()
    }

    /// Fraction of dead dynamic instances that come from *partially dead*
    /// static instructions — the paper's claim is that this is the majority.
    #[must_use]
    pub fn partial_dead_fraction(&self) -> f64 {
        let total = self.total_dead();
        if total == 0 {
            0.0
        } else {
            self.dead_from_behavior(StaticBehavior::PartiallyDead) as f64 / total as f64
        }
    }
}

impl fmt::Display for StaticProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "statics executed: {} (never-dead {}, partially-dead {}, fully-dead {})",
            self.records.iter().filter(|r| r.executions > 0).count(),
            self.count_behavior(StaticBehavior::NeverDead),
            self.count_behavior(StaticBehavior::PartiallyDead),
            self.count_behavior(StaticBehavior::FullyDead),
        )?;
        write!(
            f,
            "dead instances from partially-dead statics: {:.1}%",
            100.0 * self.partial_dead_fraction()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeadnessAnalysis;
    use dide_emu::Emulator;
    use dide_isa::{ProgramBuilder, Reg};

    fn profile(b: ProgramBuilder) -> StaticProfile {
        let trace = Emulator::new(&b.build().unwrap()).run().unwrap();
        DeadnessAnalysis::analyze(&trace).static_profile(&trace)
    }

    /// A loop in which one static instruction (the `slt` flag computation)
    /// is dead on all but the final iteration: a partially dead static.
    fn partial_dead_loop() -> ProgramBuilder {
        let mut b = ProgramBuilder::new("loop");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, 8);
        let top = b.label();
        b.bind(top);
        b.slt(Reg::T2, Reg::T0, Reg::T1);
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, top);
        b.out(Reg::T2);
        b.halt();
        b
    }

    #[test]
    fn partially_dead_static_detected() {
        let p = profile(partial_dead_loop());
        assert_eq!(p.count_behavior(StaticBehavior::PartiallyDead), 1);
        // 7 of 8 slt instances are dead, all from the partially dead static.
        assert_eq!(p.dead_from_behavior(StaticBehavior::PartiallyDead), 7);
        assert!(p.partial_dead_fraction() > 0.99);
    }

    #[test]
    fn fully_dead_static_detected() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1); // never read: fully dead static
        b.halt();
        let p = profile(b);
        assert_eq!(p.count_behavior(StaticBehavior::FullyDead), 1);
        assert_eq!(p.count_behavior(StaticBehavior::PartiallyDead), 0);
    }

    #[test]
    fn never_dead_and_not_value_producing() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1); // useful
        b.out(Reg::T0); // not value-producing
        b.halt(); // not value-producing
        let p = profile(b);
        assert_eq!(p.count_behavior(StaticBehavior::NeverDead), 1);
        assert_eq!(p.count_behavior(StaticBehavior::NotValueProducing), 2);
        assert_eq!(p.total_dead(), 0);
        assert_eq!(p.partial_dead_fraction(), 0.0);
    }

    #[test]
    fn record_ratios() {
        let rec = StaticRecord { executions: 10, eligible: 10, dead: 4 };
        assert_eq!(rec.behavior(), StaticBehavior::PartiallyDead);
        assert!((rec.dead_ratio() - 0.4).abs() < 1e-12);
        let none = StaticRecord::default();
        assert_eq!(none.dead_ratio(), 0.0);
    }

    #[test]
    fn display_summary() {
        let text = profile(partial_dead_loop()).to_string();
        assert!(text.contains("partially-dead 1"));
    }
}
