//! Locality of dead instances over static instructions (E4).

use std::fmt;

use crate::static_profile::StaticProfile;

/// One point of the locality CDF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalityPoint {
    /// Number of (dead-heaviest) static instructions included.
    pub statics: usize,
    /// Cumulative fraction of all dead dynamic instances they account for.
    pub cumulative_fraction: f64,
}

/// Cumulative distribution of dead dynamic instances over static
/// instructions, sorted by per-static dead count (descending).
///
/// The paper's locality claim: "most of the dynamically dead instructions
/// arise from a small set of static instructions". [`LocalityCdf::statics_for`]
/// answers "how many statics cover X% of dead instances".
#[derive(Debug, Clone)]
pub struct LocalityCdf {
    points: Vec<LocalityPoint>,
    total_dead: u64,
}

impl LocalityCdf {
    /// Builds the CDF from a static profile.
    #[must_use]
    pub fn build(profile: &StaticProfile) -> LocalityCdf {
        let mut dead_counts: Vec<u64> =
            profile.records().iter().map(|r| r.dead).filter(|&d| d > 0).collect();
        dead_counts.sort_unstable_by(|a, b| b.cmp(a));
        let total_dead: u64 = dead_counts.iter().sum();
        let mut points = Vec::with_capacity(dead_counts.len());
        let mut cum = 0u64;
        for (i, d) in dead_counts.iter().enumerate() {
            cum += d;
            points.push(LocalityPoint {
                statics: i + 1,
                cumulative_fraction: if total_dead == 0 {
                    0.0
                } else {
                    cum as f64 / total_dead as f64
                },
            });
        }
        LocalityCdf { points, total_dead }
    }

    /// The CDF points, one per dead-producing static instruction.
    #[must_use]
    pub fn points(&self) -> &[LocalityPoint] {
        &self.points
    }

    /// Total dead dynamic instances.
    #[must_use]
    pub fn total_dead(&self) -> u64 {
        self.total_dead
    }

    /// Number of static instructions that produce at least one dead instance.
    #[must_use]
    pub fn dead_statics(&self) -> usize {
        self.points.len()
    }

    /// Smallest number of statics covering at least `fraction` of all dead
    /// instances (`None` when there are no dead instances).
    #[must_use]
    pub fn statics_for(&self, fraction: f64) -> Option<usize> {
        if self.total_dead == 0 {
            return None;
        }
        self.points.iter().find(|p| p.cumulative_fraction >= fraction).map(|p| p.statics)
    }
}

impl fmt::Display for LocalityCdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} dead instances over {} statics; 50%/90%/99% covered by {:?}/{:?}/{:?} statics",
            self.total_dead,
            self.dead_statics(),
            self.statics_for(0.5),
            self.statics_for(0.9),
            self.statics_for(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeadnessAnalysis;
    use dide_emu::Emulator;
    use dide_isa::{ProgramBuilder, Reg};

    fn cdf(b: ProgramBuilder) -> LocalityCdf {
        let trace = Emulator::new(&b.build().unwrap()).run().unwrap();
        DeadnessAnalysis::analyze(&trace).locality(&trace)
    }

    /// One hot static producing many dead instances, one cold static
    /// producing a single dead instance.
    fn skewed() -> ProgramBuilder {
        let mut b = ProgramBuilder::new("skew");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, 20);
        let top = b.label();
        b.bind(top);
        b.slt(Reg::T2, Reg::T0, Reg::T1); // dead every iteration but last
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, top);
        b.out(Reg::T2);
        b.li(Reg::T3, 9); // one cold dead instance
        b.halt();
        b
    }

    #[test]
    fn skewed_distribution_covered_by_one_static() {
        let c = cdf(skewed());
        assert_eq!(c.dead_statics(), 2);
        assert_eq!(c.total_dead(), 20); // 19 slt + 1 li
        assert_eq!(c.statics_for(0.5), Some(1));
        assert_eq!(c.statics_for(0.95), Some(1));
        assert_eq!(c.statics_for(0.96), Some(2));
        assert_eq!(c.statics_for(1.0), Some(2));
    }

    #[test]
    fn monotone_and_terminates_at_one() {
        let c = cdf(skewed());
        let pts = c.points();
        for w in pts.windows(2) {
            assert!(w[1].cumulative_fraction >= w[0].cumulative_fraction);
        }
        assert!((pts.last().unwrap().cumulative_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_dead_instances() {
        let mut b = ProgramBuilder::new("live");
        b.li(Reg::T0, 1);
        b.out(Reg::T0);
        b.halt();
        let c = cdf(b);
        assert_eq!(c.total_dead(), 0);
        assert_eq!(c.statics_for(0.5), None);
        assert!(c.points().is_empty());
    }

    #[test]
    fn display_mentions_counts() {
        let text = cdf(skewed()).to_string();
        assert!(text.contains("20 dead instances"));
    }
}
