//! Oracle dead-instruction analysis over dynamic traces.
//!
//! Implements the paper's definitions exactly, over the *actual* dynamic
//! dependence graph recorded by the emulator:
//!
//! * A dynamic instruction is **eligible** for deadness when it produces a
//!   value (an architectural register write or a memory store) and has no
//!   other architectural side effect. Control transfers (`jal`/`jalr`),
//!   branches, `out`, and `halt` are *roots* — always useful.
//! * An eligible instruction is **first-level dead** when its value is never
//!   read at all: the destination register is overwritten before any read
//!   (or never read again), or every stored byte is overwritten before any
//!   load (or never loaded).
//! * An eligible instruction is **dead** when no *useful* instruction ever
//!   reads its value — this adds the **transitively dead** instructions
//!   whose only readers are themselves dead.
//!
//! The analysis is two-pass: a forward pass resolves every dynamic read to
//! the unique producing write (byte-granular for memory), and a backward
//! pass propagates usefulness over the resulting DAG.
//!
//! # Example
//!
//! ```
//! use dide_isa::{ProgramBuilder, Reg};
//! use dide_emu::Emulator;
//! use dide_analysis::DeadnessAnalysis;
//!
//! // t0 = 1 is overwritten by t0 = 2 before any read: first-level dead.
//! let mut b = ProgramBuilder::new("dead-write");
//! b.li(Reg::T0, 1);
//! b.li(Reg::T0, 2);
//! b.out(Reg::T0);
//! b.halt();
//! let trace = Emulator::new(&b.build()?).run()?;
//!
//! let analysis = DeadnessAnalysis::analyze(&trace);
//! assert!(analysis.verdict(0).is_dead());
//! assert!(!analysis.verdict(1).is_dead());
//! assert_eq!(analysis.stats().dead_total, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interval;
mod lifetime;
mod liveness;
mod locality;
mod replay;
mod static_profile;
mod stats;
mod verdict;
mod window;

pub use interval::{Interval, IntervalSeries};
pub use lifetime::DeadLifetimes;
pub use liveness::DeadnessAnalysis;
pub use locality::{LocalityCdf, LocalityPoint};
pub use replay::{replay_outputs, verify_dead_removable, ReplayMismatch};
pub use static_profile::{StaticBehavior, StaticProfile, StaticRecord};
pub use stats::DeadStats;
pub use verdict::{DeadKind, Verdict};
pub use window::StreamedDeadness;
