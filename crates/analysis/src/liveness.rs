//! The two-pass oracle deadness algorithm.

use std::collections::HashMap;

use dide_emu::Trace;
use dide_isa::OpcodeKind;

use crate::locality::LocalityCdf;
use crate::static_profile::StaticProfile;
use crate::stats::DeadStats;
use crate::verdict::{DeadKind, Verdict};

/// Exact deadness labels for every dynamic instruction of a trace.
///
/// Produced by [`DeadnessAnalysis::analyze`]; see the [crate docs](crate)
/// for the definitions and an example.
#[derive(Debug, Clone)]
pub struct DeadnessAnalysis {
    verdicts: Vec<Verdict>,
    /// Flat producer table: `producers[offsets[i]..offsets[i + 1]]` are the
    /// seqs whose values record `i` read.
    producers: Vec<u64>,
    offsets: Vec<usize>,
    stats: DeadStats,
}

/// Forward-pass bookkeeping for one pending register or store value.
#[derive(Debug, Clone, Copy)]
struct PendingStore {
    /// Bytes of the store still visible (not yet overwritten).
    live_bytes: u32,
}

impl DeadnessAnalysis {
    /// Runs the analysis over a trace.
    ///
    /// Cost is `O(n)` in trace length with byte-granular memory tracking.
    #[must_use]
    pub fn analyze(trace: &Trace) -> DeadnessAnalysis {
        let n = trace.len();
        let records = trace.records();

        // ---- forward pass: resolve reads to producers ----
        let mut reg_writer: [Option<u64>; dide_isa::Reg::COUNT] = [None; dide_isa::Reg::COUNT];
        let mut mem_writer: HashMap<u64, u64> = HashMap::new();
        let mut store_state: HashMap<u64, PendingStore> = HashMap::new();

        let mut directly_read = vec![false; n];
        // First-level kind hint, pending final classification.
        let mut kind_hint: Vec<Option<DeadKind>> = vec![None; n];

        let mut producers: Vec<u64> = Vec::with_capacity(n * 2);
        let mut offsets: Vec<usize> = Vec::with_capacity(n + 1);
        offsets.push(0);

        for r in records {
            let start = producers.len();

            // Register reads.
            for src in r.inst.sources() {
                if let Some(w) = reg_writer[src.index()] {
                    directly_read[w as usize] = true;
                    if !producers[start..].contains(&w) {
                        producers.push(w);
                    }
                }
            }
            // Memory reads (loads), byte-granular.
            if r.inst.op.is_load() {
                if let Some(acc) = r.mem {
                    for byte in acc.bytes() {
                        if let Some(&w) = mem_writer.get(&byte) {
                            directly_read[w as usize] = true;
                            if !producers[start..].contains(&w) {
                                producers.push(w);
                            }
                        }
                    }
                }
            }
            offsets.push(producers.len());

            // Register write: displace the previous pending writer.
            if let Some(rd) = r.inst.dest() {
                if let Some(prev) = reg_writer[rd.index()] {
                    if !directly_read[prev as usize] {
                        kind_hint[prev as usize] = Some(DeadKind::RegOverwritten);
                    }
                }
                reg_writer[rd.index()] = Some(r.seq);
            }
            // Store: claim bytes, displacing previous owners.
            if r.inst.op.is_store() {
                if let Some(acc) = r.mem {
                    for byte in acc.bytes() {
                        if let Some(prev) = mem_writer.insert(byte, r.seq) {
                            if prev != r.seq {
                                if let Some(st) = store_state.get_mut(&prev) {
                                    st.live_bytes -= 1;
                                    if st.live_bytes == 0 && !directly_read[prev as usize] {
                                        kind_hint[prev as usize] = Some(DeadKind::StoreOverwritten);
                                    }
                                }
                            }
                        }
                    }
                    store_state
                        .insert(r.seq, PendingStore { live_bytes: acc.width.bytes() as u32 });
                }
            }
        }

        // End of program: pending unread values were never read.
        for w in reg_writer.into_iter().flatten() {
            if !directly_read[w as usize] {
                kind_hint[w as usize] = Some(DeadKind::RegUnread);
            }
        }
        for (&seq, st) in &store_state {
            if st.live_bytes > 0 && !directly_read[seq as usize] {
                kind_hint[seq as usize] = Some(DeadKind::StoreUnread);
            }
        }

        // ---- backward pass: propagate usefulness over the exact DAG ----
        let mut has_useful_consumer = vec![false; n];
        let mut verdicts = vec![Verdict::NotEligible; n];

        for r in records.iter().rev() {
            let seq = r.seq as usize;
            let eligible =
                (r.inst.dest().is_some() && !r.inst.op.is_control()) || r.inst.op.is_store();
            let root = r.inst.op.is_control()
                || matches!(r.inst.op.kind(), OpcodeKind::Out | OpcodeKind::Halt);
            let useful = root || has_useful_consumer[seq];

            if useful {
                for &p in &producers[offsets[seq]..offsets[seq + 1]] {
                    has_useful_consumer[p as usize] = true;
                }
            }

            verdicts[seq] = if !eligible {
                Verdict::NotEligible
            } else if useful {
                Verdict::Useful
            } else if directly_read[seq] {
                Verdict::Dead(DeadKind::Transitive)
            } else {
                // A never-read eligible value always received a first-level
                // kind hint in the forward pass.
                Verdict::Dead(kind_hint[seq].expect("unread eligible value must have a kind"))
            };
        }

        let stats = DeadStats::from_verdicts(trace, &verdicts);
        DeadnessAnalysis { verdicts, producers, offsets, stats }
    }

    /// The verdict for dynamic instruction `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range for the analyzed trace.
    #[must_use]
    pub fn verdict(&self, seq: u64) -> Verdict {
        self.verdicts[seq as usize]
    }

    /// Whether dynamic instruction `seq` is dead.
    #[must_use]
    pub fn is_dead(&self, seq: u64) -> bool {
        self.verdicts[seq as usize].is_dead()
    }

    /// All verdicts, indexed by seq.
    #[must_use]
    pub fn verdicts(&self) -> &[Verdict] {
        &self.verdicts
    }

    /// The producer seqs whose values dynamic instruction `seq` read.
    #[must_use]
    pub fn producers(&self, seq: u64) -> &[u64] {
        let seq = seq as usize;
        &self.producers[self.offsets[seq]..self.offsets[seq + 1]]
    }

    /// Aggregated deadness counters.
    #[must_use]
    pub fn stats(&self) -> &DeadStats {
        &self.stats
    }

    /// Computes the per-static-instruction execution/deadness profile.
    #[must_use]
    pub fn static_profile(&self, trace: &Trace) -> StaticProfile {
        StaticProfile::build(trace, &self.verdicts)
    }

    /// Computes the locality CDF of dead instances over static instructions.
    #[must_use]
    pub fn locality(&self, trace: &Trace) -> LocalityCdf {
        LocalityCdf::build(&self.static_profile(trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dide_emu::Emulator;
    use dide_isa::{ProgramBuilder, Reg};

    fn analyze(b: ProgramBuilder) -> (Trace, DeadnessAnalysis) {
        let trace = Emulator::new(&b.build().unwrap()).run().unwrap();
        let a = DeadnessAnalysis::analyze(&trace);
        (trace, a)
    }

    #[test]
    fn overwritten_register_is_first_level_dead() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1); // 0: dead (overwritten by 1)
        b.li(Reg::T0, 2); // 1: useful
        b.out(Reg::T0); // 2
        b.halt(); // 3
        let (_, a) = analyze(b);
        assert_eq!(a.verdict(0), Verdict::Dead(DeadKind::RegOverwritten));
        assert_eq!(a.verdict(1), Verdict::Useful);
        assert_eq!(a.verdict(2), Verdict::NotEligible);
    }

    #[test]
    fn unread_register_at_exit_is_dead() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1); // 0: never read
        b.halt();
        let (_, a) = analyze(b);
        assert_eq!(a.verdict(0), Verdict::Dead(DeadKind::RegUnread));
    }

    #[test]
    fn transitive_deadness_propagates() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1); // 0: read only by 1, which is dead -> transitive
        b.addi(Reg::T1, Reg::T0, 1); // 1: never read -> first-level dead
        b.halt();
        let (_, a) = analyze(b);
        assert_eq!(a.verdict(1), Verdict::Dead(DeadKind::RegUnread));
        assert_eq!(a.verdict(0), Verdict::Dead(DeadKind::Transitive));
    }

    #[test]
    fn long_transitive_chain() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1);
        for _ in 0..10 {
            b.addi(Reg::T0, Reg::T0, 1);
        }
        b.halt();
        let (_, a) = analyze(b);
        // Last addi is first-level dead; everything upstream transitive.
        for seq in 0..10 {
            assert_eq!(a.verdict(seq), Verdict::Dead(DeadKind::Transitive), "seq {seq}");
        }
        assert_eq!(a.verdict(10), Verdict::Dead(DeadKind::RegUnread));
    }

    #[test]
    fn value_feeding_branch_is_useful() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1); // 0: feeds the branch -> useful
        let l = b.label();
        b.beq(Reg::T0, Reg::ZERO, l); // 1: root
        b.bind(l);
        b.halt();
        let (_, a) = analyze(b);
        assert_eq!(a.verdict(0), Verdict::Useful);
        assert_eq!(a.verdict(1), Verdict::NotEligible);
    }

    #[test]
    fn value_feeding_out_is_useful() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 7);
        b.out(Reg::T0);
        b.halt();
        let (_, a) = analyze(b);
        assert_eq!(a.verdict(0), Verdict::Useful);
    }

    #[test]
    fn dead_store_overwritten() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1); // 0: transitive (feeds dead store only)
        b.sd(Reg::T0, Reg::SP, -8); // 1: overwritten by 3
        b.li(Reg::T1, 2); // 2: useful (feeds live store)
        b.sd(Reg::T1, Reg::SP, -8); // 3: loaded by 4
        b.ld(Reg::T2, Reg::SP, -8); // 4: feeds out
        b.out(Reg::T2); // 5
        b.halt();
        let (_, a) = analyze(b);
        assert_eq!(a.verdict(1), Verdict::Dead(DeadKind::StoreOverwritten));
        assert_eq!(a.verdict(0), Verdict::Dead(DeadKind::Transitive));
        assert_eq!(a.verdict(3), Verdict::Useful);
        assert_eq!(a.verdict(4), Verdict::Useful);
    }

    #[test]
    fn partially_overwritten_store_classified_unread() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, -1);
        b.sd(Reg::T0, Reg::SP, -8); // 1: 8 bytes, half overwritten, never read
        b.sw(Reg::ZERO, Reg::SP, -8); // 2: overwrites low 4 bytes (store of zero reg)
        b.halt();
        let (_, a) = analyze(b);
        assert_eq!(a.verdict(1), Verdict::Dead(DeadKind::StoreUnread));
    }

    #[test]
    fn store_read_through_partial_load_is_useful() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 0x1234_5678);
        b.sd(Reg::T0, Reg::SP, -8); // store 8 bytes
        b.lb(Reg::T1, Reg::SP, -8); // read one byte of it
        b.out(Reg::T1);
        b.halt();
        let (_, a) = analyze(b);
        assert_eq!(a.verdict(1), Verdict::Useful);
    }

    #[test]
    fn zero_register_write_discards_sources() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 5); // 0: read only by a zero-reg write -> dead (unread: nobody reads value)
        b.add(Reg::ZERO, Reg::T0, Reg::T0); // 1: not eligible
        b.halt();
        let (_, a) = analyze(b);
        assert_eq!(a.verdict(1), Verdict::NotEligible);
        // The li's value was read by the add (directly read), but the add is
        // not a useful consumer, so the li is transitively dead.
        assert_eq!(a.verdict(0), Verdict::Dead(DeadKind::Transitive));
    }

    #[test]
    fn call_link_write_is_not_eligible() {
        let mut b = ProgramBuilder::new("t");
        let f = b.label();
        b.call(f); // 0: jal writes ra but is control -> not eligible
        b.halt();
        b.bind(f);
        b.ret();
        let (_, a) = analyze(b);
        assert_eq!(a.verdict(0), Verdict::NotEligible);
    }

    #[test]
    fn dead_load_detected() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 7);
        b.sd(Reg::T0, Reg::SP, -8); // useful: loaded
        b.ld(Reg::T1, Reg::SP, -8); // dead: result never used
        b.halt();
        let (_, a) = analyze(b);
        assert_eq!(a.verdict(2), Verdict::Dead(DeadKind::RegUnread));
        // The store feeds only a dead load -> transitively dead.
        assert_eq!(a.verdict(1), Verdict::Dead(DeadKind::Transitive));
        assert_eq!(a.verdict(0), Verdict::Dead(DeadKind::Transitive));
    }

    #[test]
    fn producers_resolved_exactly() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1); // 0
        b.li(Reg::T1, 2); // 1
        b.add(Reg::T2, Reg::T0, Reg::T1); // 2 reads 0 and 1
        b.out(Reg::T2); // 3 reads 2
        b.halt();
        let (_, a) = analyze(b);
        assert_eq!(a.producers(2), &[0, 1]);
        assert_eq!(a.producers(3), &[2]);
        assert_eq!(a.producers(0), &[] as &[u64]);
    }

    #[test]
    fn duplicate_source_registers_deduped() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 3); // 0
        b.add(Reg::T1, Reg::T0, Reg::T0); // 1 reads 0 twice
        b.out(Reg::T1);
        b.halt();
        let (_, a) = analyze(b);
        assert_eq!(a.producers(1), &[0]);
    }

    #[test]
    fn loop_counter_is_useful_but_flag_calc_dead() {
        // A loop that computes a "flag" every iteration but only uses it on exit.
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 0); // i
        b.li(Reg::T1, 4); // n
        let top = b.label();
        b.bind(top);
        b.slt(Reg::T2, Reg::T0, Reg::T1); // flag: overwritten every iteration
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, top);
        b.out(Reg::T2); // only the last flag value is used
        b.halt();
        let (trace, a) = analyze(b);
        let stats = a.stats();
        // 4 slt instances; only the final one is useful.
        let slts: Vec<_> = trace
            .iter()
            .filter(|r| r.inst.op == dide_isa::Opcode::Slt)
            .map(|r| a.verdict(r.seq))
            .collect();
        assert_eq!(slts.len(), 4);
        assert_eq!(slts.iter().filter(|v| v.is_dead()).count(), 3);
        assert_eq!(*slts.last().unwrap(), Verdict::Useful);
        assert!(stats.dead_total >= 3);
    }
}
