//! The two-pass oracle deadness algorithm.

use dide_emu::{DynInst, PagedShadow, Trace};
use dide_isa::OpcodeKind;

use crate::locality::LocalityCdf;
use crate::static_profile::StaticProfile;
use crate::stats::DeadStats;
use crate::verdict::{DeadKind, Verdict};

/// Exact deadness labels for every dynamic instruction of a trace.
///
/// Produced by [`DeadnessAnalysis::analyze`]; see the [crate docs](crate)
/// for the definitions and an example.
#[derive(Debug, Clone)]
pub struct DeadnessAnalysis {
    verdicts: Vec<Verdict>,
    /// Flat producer table: `producers[offsets[i]..offsets[i + 1]]` are the
    /// seqs whose values record `i` read.
    producers: Vec<u64>,
    offsets: Vec<usize>,
    stats: DeadStats,
}

/// Per-seq forward-pass bookkeeping, packed so that resolving one producer
/// touches one 16-byte entry (one cache line) instead of three parallel
/// arrays.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SeqState {
    /// Stamp (seq) of the last consumer that listed this producer — the
    /// duplicate-producer filter. Replaces the seed's
    /// `producers[start..].contains(&w)` scan, which was quadratic in a
    /// consumer's producer count (per-byte resolution of wide loads bit).
    pub(crate) last_touch: u64,
    /// For stores: bytes of the store still visible (not yet overwritten).
    pub(crate) live_bytes: u32,
    /// Whether any later instruction read this value.
    pub(crate) read: bool,
    /// First-level deadness hint, pending final classification.
    pub(crate) hint: Option<DeadKind>,
}

impl SeqState {
    /// No consumer yet, no visible bytes, unread, no hint. `u64::MAX` is a
    /// safe stamp sentinel: stamps are consumer seqs, which are dense
    /// from 0 and bounded by the trace length.
    pub(crate) const EMPTY: SeqState =
        SeqState { last_touch: u64::MAX, live_bytes: 0, read: false, hint: None };
}

/// Forward-pass state: pending register writers, the byte-granular
/// last-store shadow table, and the producer edges resolved so far.
struct Forward {
    /// Pending writer seq per architectural register.
    reg_writer: [Option<u64>; dide_isa::Reg::COUNT],
    /// Last store to claim each byte address, as `seq + 1` (0 = untouched).
    /// One page resolution per access instead of one hash probe per byte.
    mem_writer: PagedShadow<u64>,
    /// Packed per-seq state, indexed by seq.
    state: Vec<SeqState>,
    /// Flat producer table under construction.
    producers: Vec<u64>,
    /// `offsets[i]..offsets[i + 1]` brackets record `i`'s producers.
    offsets: Vec<usize>,
}

impl Forward {
    fn new(n: usize) -> Forward {
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        Forward {
            reg_writer: [None; dide_isa::Reg::COUNT],
            mem_writer: PagedShadow::new(),
            state: vec![SeqState::EMPTY; n],
            producers: Vec::with_capacity(n * 2),
            offsets,
        }
    }

    /// Resolves a read of producer `w` by the consumer `stamp` (its seq):
    /// marks the value read and appends a producer edge unless this
    /// consumer already listed `w`.
    #[inline]
    fn note_read(&mut self, w: u64, stamp: u64) {
        let st = &mut self.state[w as usize];
        st.read = true;
        if st.last_touch != stamp {
            st.last_touch = stamp;
            self.producers.push(w);
        }
    }

    /// Resolves a register read. No zero-register filter is needed: writes
    /// never claim the zero register, so its slot is permanently `None`.
    #[inline]
    fn read_reg(&mut self, src: dide_isa::Reg, stamp: u64) {
        if let Some(w) = self.reg_writer[src.index()] {
            self.note_read(w, stamp);
        }
    }

    /// Resolves a memory read, byte-granular.
    #[inline]
    fn read_mem(&mut self, acc: dide_emu::MemAccess, stamp: u64) {
        let len = acc.width.bytes();
        if !PagedShadow::<u64>::crosses_page(acc.addr, len) {
            // Fast path: one page resolution for the whole access. The
            // `note_read` body is inlined so the span borrow (of
            // `mem_writer`) stays disjoint from the `state`/`producers`
            // updates.
            if let Some(cells) = self.mem_writer.span(acc.addr, len) {
                for &cell in cells {
                    if cell != 0 {
                        let w = cell - 1;
                        let st = &mut self.state[w as usize];
                        st.read = true;
                        if st.last_touch != stamp {
                            st.last_touch = stamp;
                            self.producers.push(w);
                        }
                    }
                }
            }
        } else {
            for byte in acc.bytes() {
                let cell = self.mem_writer.get(byte);
                if cell != 0 {
                    self.note_read(cell - 1, stamp);
                }
            }
        }
    }

    /// Closes the current record's producer bracket.
    #[inline]
    fn end_reads(&mut self) {
        self.offsets.push(self.producers.len());
    }

    /// Register write: displace the previous pending writer.
    #[inline]
    fn write_reg(&mut self, rd: dide_isa::Reg, seq: u64) {
        if rd.is_zero() {
            return;
        }
        if let Some(prev) = self.reg_writer[rd.index()] {
            let prev_state = &mut self.state[prev as usize];
            if !prev_state.read {
                prev_state.hint = Some(DeadKind::RegOverwritten);
            }
        }
        self.reg_writer[rd.index()] = Some(seq);
    }

    /// A store displaced `prev_cell`'s claim on one byte: burn one of the
    /// previous owner's live bytes, classifying it once fully overwritten.
    /// Self-displacement (a wrapping synthetic access revisiting its own
    /// bytes) is skipped.
    #[inline]
    fn displace(&mut self, prev_cell: u64, claimed: u64) {
        if prev_cell != 0 && prev_cell != claimed {
            // A displaced owner always has a live-byte counter: bytes only
            // enter the shadow table through `write_mem`.
            let prev = &mut self.state[(prev_cell - 1) as usize];
            prev.live_bytes -= 1;
            if prev.live_bytes == 0 && !prev.read {
                prev.hint = Some(DeadKind::StoreOverwritten);
            }
        }
    }

    /// Store: claim bytes, displacing previous owners.
    #[inline]
    fn write_mem(&mut self, acc: dide_emu::MemAccess, seq: u64) {
        let len = acc.width.bytes();
        let claimed = seq + 1;
        if !PagedShadow::<u64>::crosses_page(acc.addr, len) {
            let cells = self.mem_writer.span_mut(acc.addr, len);
            for cell in cells {
                let prev_cell = std::mem::replace(cell, claimed);
                if prev_cell != 0 && prev_cell != claimed {
                    let prev = &mut self.state[(prev_cell - 1) as usize];
                    prev.live_bytes -= 1;
                    if prev.live_bytes == 0 && !prev.read {
                        prev.hint = Some(DeadKind::StoreOverwritten);
                    }
                }
            }
        } else {
            for byte in acc.bytes() {
                let prev_cell = self.mem_writer.get(byte);
                self.mem_writer.set(byte, claimed);
                self.displace(prev_cell, claimed);
            }
        }
        self.state[seq as usize].live_bytes = len as u32;
    }
}

impl DeadnessAnalysis {
    /// Runs the analysis over a trace.
    ///
    /// Cost is `O(n)` in trace length with byte-granular memory tracking.
    /// Memory liveness state lives in a [`PagedShadow`] last-writer table
    /// (one `u64` cell per byte address, holding `seq + 1`, 0 = no writer):
    /// one page resolution per access — usually satisfied by the shadow's
    /// page-handle cache — instead of one hash probe per byte. All per-seq
    /// bookkeeping (consumer stamps, store live-byte counters, read flags,
    /// deadness hints) is packed in a flat table indexed by seq, and both
    /// passes dispatch on the opcode kind exactly once per record.
    #[must_use]
    pub fn analyze(trace: &Trace) -> DeadnessAnalysis {
        DeadnessAnalysis::analyze_records(trace.records())
    }

    /// Runs the analysis over a bare record slice (`records[i].seq == i`).
    ///
    /// This is the same exact whole-trace algorithm as
    /// [`DeadnessAnalysis::analyze`]; the windowed streaming analysis
    /// delegates here when a trace fits in a single epoch so its verdicts
    /// are trivially bit-identical.
    #[must_use]
    pub fn analyze_records(records: &[DynInst]) -> DeadnessAnalysis {
        let n = records.len();
        debug_assert!(records.iter().enumerate().all(|(i, r)| r.seq == i as u64));

        // ---- forward pass: resolve reads to producers ----
        let mut fwd = Forward::new(n);
        for r in records {
            let seq = r.seq;
            match r.op.kind() {
                OpcodeKind::AluRR => {
                    fwd.read_reg(r.rs1, seq);
                    fwd.read_reg(r.rs2, seq);
                    fwd.end_reads();
                    fwd.write_reg(r.rd, seq);
                }
                OpcodeKind::AluRI => {
                    fwd.read_reg(r.rs1, seq);
                    fwd.end_reads();
                    fwd.write_reg(r.rd, seq);
                }
                OpcodeKind::LoadImm | OpcodeKind::Jal => {
                    fwd.end_reads();
                    fwd.write_reg(r.rd, seq);
                }
                OpcodeKind::Load { .. } => {
                    fwd.read_reg(r.rs1, seq);
                    if let Some(acc) = r.mem() {
                        fwd.read_mem(acc, seq);
                    }
                    fwd.end_reads();
                    fwd.write_reg(r.rd, seq);
                }
                OpcodeKind::Store { .. } => {
                    fwd.read_reg(r.rs1, seq);
                    fwd.read_reg(r.rs2, seq);
                    fwd.end_reads();
                    if let Some(acc) = r.mem() {
                        fwd.write_mem(acc, seq);
                    }
                }
                OpcodeKind::Branch(_) => {
                    fwd.read_reg(r.rs1, seq);
                    fwd.read_reg(r.rs2, seq);
                    fwd.end_reads();
                }
                OpcodeKind::Jalr => {
                    fwd.read_reg(r.rs1, seq);
                    fwd.end_reads();
                    fwd.write_reg(r.rd, seq);
                }
                OpcodeKind::Out => {
                    fwd.read_reg(r.rs1, seq);
                    fwd.end_reads();
                }
                OpcodeKind::Halt | OpcodeKind::Nop => fwd.end_reads(),
            }
        }

        let Forward { reg_writer, mut state, producers, offsets, .. } = fwd;

        // End of program: register values still pending were never read.
        // (Stores are classified during the backward pass below: a store's
        // hint is only inspected at its own backward step, so pending
        // unread stores need no separate sweep.)
        for w in reg_writer.into_iter().flatten() {
            let st = &mut state[w as usize];
            if !st.read {
                st.hint = Some(DeadKind::RegUnread);
            }
        }

        // ---- backward pass: propagate usefulness over the exact DAG ----
        // Verdicts are assigned and tallied in one sweep with a single
        // opcode-kind dispatch per record.
        let mut has_useful_consumer = vec![false; n];
        let mut verdicts = vec![Verdict::NotEligible; n];
        let mut stats = DeadStats { total: n as u64, ..DeadStats::default() };

        for r in records.iter().rev() {
            let seq = r.seq as usize;
            let (eligible, root, is_load, is_store) = match r.op.kind() {
                OpcodeKind::AluRR | OpcodeKind::AluRI | OpcodeKind::LoadImm => {
                    (!r.rd.is_zero(), false, false, false)
                }
                OpcodeKind::Load { .. } => (!r.rd.is_zero(), false, true, false),
                OpcodeKind::Store { .. } => (true, false, false, true),
                OpcodeKind::Branch(_)
                | OpcodeKind::Jal
                | OpcodeKind::Jalr
                | OpcodeKind::Halt
                | OpcodeKind::Out => (false, true, false, false),
                OpcodeKind::Nop => (false, false, false, false),
            };
            let useful = root || has_useful_consumer[seq];

            if useful {
                for &p in &producers[offsets[seq]..offsets[seq + 1]] {
                    has_useful_consumer[p as usize] = true;
                }
            }

            let st = state[seq];
            let verdict = if !eligible {
                Verdict::NotEligible
            } else if useful {
                Verdict::Useful
            } else if st.read {
                Verdict::Dead(DeadKind::Transitive)
            } else if is_store && st.live_bytes > 0 {
                // Bytes of this store survived to the end of the program
                // without being loaded.
                Verdict::Dead(DeadKind::StoreUnread)
            } else {
                // Any other never-read eligible value received a
                // first-level kind hint in the forward pass.
                Verdict::Dead(st.hint.expect("unread eligible value must have a kind"))
            };

            stats.eligible += u64::from(eligible);
            if let Verdict::Dead(kind) = verdict {
                stats.dead_total += 1;
                match kind {
                    DeadKind::RegOverwritten => stats.reg_overwritten += 1,
                    DeadKind::RegUnread => stats.reg_unread += 1,
                    DeadKind::StoreOverwritten => stats.store_overwritten += 1,
                    DeadKind::StoreUnread => stats.store_unread += 1,
                    DeadKind::Transitive => stats.transitive += 1,
                }
                stats.dead_loads += u64::from(is_load);
                stats.dead_stores += u64::from(is_store);
            }
            verdicts[seq] = verdict;
        }

        DeadnessAnalysis { verdicts, producers, offsets, stats }
    }

    /// The verdict for dynamic instruction `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range for the analyzed trace.
    #[must_use]
    pub fn verdict(&self, seq: u64) -> Verdict {
        self.verdicts[seq as usize]
    }

    /// Whether dynamic instruction `seq` is dead.
    #[must_use]
    pub fn is_dead(&self, seq: u64) -> bool {
        self.verdicts[seq as usize].is_dead()
    }

    /// All verdicts, indexed by seq.
    #[must_use]
    pub fn verdicts(&self) -> &[Verdict] {
        &self.verdicts
    }

    /// The producer seqs whose values dynamic instruction `seq` read.
    #[must_use]
    pub fn producers(&self, seq: u64) -> &[u64] {
        let seq = seq as usize;
        &self.producers[self.offsets[seq]..self.offsets[seq + 1]]
    }

    /// Aggregated deadness counters.
    #[must_use]
    pub fn stats(&self) -> &DeadStats {
        &self.stats
    }

    /// Computes the per-static-instruction execution/deadness profile.
    #[must_use]
    pub fn static_profile(&self, trace: &Trace) -> StaticProfile {
        StaticProfile::build(trace, &self.verdicts)
    }

    /// Computes the locality CDF of dead instances over static instructions.
    #[must_use]
    pub fn locality(&self, trace: &Trace) -> LocalityCdf {
        LocalityCdf::build(&self.static_profile(trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dide_emu::Emulator;
    use dide_isa::{ProgramBuilder, Reg};

    fn analyze(b: ProgramBuilder) -> (Trace, DeadnessAnalysis) {
        let trace = Emulator::new(&b.build().unwrap()).run().unwrap();
        let a = DeadnessAnalysis::analyze(&trace);
        (trace, a)
    }

    #[test]
    fn overwritten_register_is_first_level_dead() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1); // 0: dead (overwritten by 1)
        b.li(Reg::T0, 2); // 1: useful
        b.out(Reg::T0); // 2
        b.halt(); // 3
        let (_, a) = analyze(b);
        assert_eq!(a.verdict(0), Verdict::Dead(DeadKind::RegOverwritten));
        assert_eq!(a.verdict(1), Verdict::Useful);
        assert_eq!(a.verdict(2), Verdict::NotEligible);
    }

    #[test]
    fn unread_register_at_exit_is_dead() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1); // 0: never read
        b.halt();
        let (_, a) = analyze(b);
        assert_eq!(a.verdict(0), Verdict::Dead(DeadKind::RegUnread));
    }

    #[test]
    fn transitive_deadness_propagates() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1); // 0: read only by 1, which is dead -> transitive
        b.addi(Reg::T1, Reg::T0, 1); // 1: never read -> first-level dead
        b.halt();
        let (_, a) = analyze(b);
        assert_eq!(a.verdict(1), Verdict::Dead(DeadKind::RegUnread));
        assert_eq!(a.verdict(0), Verdict::Dead(DeadKind::Transitive));
    }

    #[test]
    fn long_transitive_chain() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1);
        for _ in 0..10 {
            b.addi(Reg::T0, Reg::T0, 1);
        }
        b.halt();
        let (_, a) = analyze(b);
        // Last addi is first-level dead; everything upstream transitive.
        for seq in 0..10 {
            assert_eq!(a.verdict(seq), Verdict::Dead(DeadKind::Transitive), "seq {seq}");
        }
        assert_eq!(a.verdict(10), Verdict::Dead(DeadKind::RegUnread));
    }

    #[test]
    fn value_feeding_branch_is_useful() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1); // 0: feeds the branch -> useful
        let l = b.label();
        b.beq(Reg::T0, Reg::ZERO, l); // 1: root
        b.bind(l);
        b.halt();
        let (_, a) = analyze(b);
        assert_eq!(a.verdict(0), Verdict::Useful);
        assert_eq!(a.verdict(1), Verdict::NotEligible);
    }

    #[test]
    fn value_feeding_out_is_useful() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 7);
        b.out(Reg::T0);
        b.halt();
        let (_, a) = analyze(b);
        assert_eq!(a.verdict(0), Verdict::Useful);
    }

    #[test]
    fn dead_store_overwritten() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1); // 0: transitive (feeds dead store only)
        b.sd(Reg::T0, Reg::SP, -8); // 1: overwritten by 3
        b.li(Reg::T1, 2); // 2: useful (feeds live store)
        b.sd(Reg::T1, Reg::SP, -8); // 3: loaded by 4
        b.ld(Reg::T2, Reg::SP, -8); // 4: feeds out
        b.out(Reg::T2); // 5
        b.halt();
        let (_, a) = analyze(b);
        assert_eq!(a.verdict(1), Verdict::Dead(DeadKind::StoreOverwritten));
        assert_eq!(a.verdict(0), Verdict::Dead(DeadKind::Transitive));
        assert_eq!(a.verdict(3), Verdict::Useful);
        assert_eq!(a.verdict(4), Verdict::Useful);
    }

    #[test]
    fn partially_overwritten_store_classified_unread() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, -1);
        b.sd(Reg::T0, Reg::SP, -8); // 1: 8 bytes, half overwritten, never read
        b.sw(Reg::ZERO, Reg::SP, -8); // 2: overwrites low 4 bytes (store of zero reg)
        b.halt();
        let (_, a) = analyze(b);
        assert_eq!(a.verdict(1), Verdict::Dead(DeadKind::StoreUnread));
    }

    #[test]
    fn store_read_through_partial_load_is_useful() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 0x1234_5678);
        b.sd(Reg::T0, Reg::SP, -8); // store 8 bytes
        b.lb(Reg::T1, Reg::SP, -8); // read one byte of it
        b.out(Reg::T1);
        b.halt();
        let (_, a) = analyze(b);
        assert_eq!(a.verdict(1), Verdict::Useful);
    }

    #[test]
    fn zero_register_write_discards_sources() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 5); // 0: read only by a zero-reg write -> dead (unread: nobody reads value)
        b.add(Reg::ZERO, Reg::T0, Reg::T0); // 1: not eligible
        b.halt();
        let (_, a) = analyze(b);
        assert_eq!(a.verdict(1), Verdict::NotEligible);
        // The li's value was read by the add (directly read), but the add is
        // not a useful consumer, so the li is transitively dead.
        assert_eq!(a.verdict(0), Verdict::Dead(DeadKind::Transitive));
    }

    #[test]
    fn call_link_write_is_not_eligible() {
        let mut b = ProgramBuilder::new("t");
        let f = b.label();
        b.call(f); // 0: jal writes ra but is control -> not eligible
        b.halt();
        b.bind(f);
        b.ret();
        let (_, a) = analyze(b);
        assert_eq!(a.verdict(0), Verdict::NotEligible);
    }

    #[test]
    fn dead_load_detected() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 7);
        b.sd(Reg::T0, Reg::SP, -8); // useful: loaded
        b.ld(Reg::T1, Reg::SP, -8); // dead: result never used
        b.halt();
        let (_, a) = analyze(b);
        assert_eq!(a.verdict(2), Verdict::Dead(DeadKind::RegUnread));
        // The store feeds only a dead load -> transitively dead.
        assert_eq!(a.verdict(1), Verdict::Dead(DeadKind::Transitive));
        assert_eq!(a.verdict(0), Verdict::Dead(DeadKind::Transitive));
    }

    #[test]
    fn producers_resolved_exactly() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1); // 0
        b.li(Reg::T1, 2); // 1
        b.add(Reg::T2, Reg::T0, Reg::T1); // 2 reads 0 and 1
        b.out(Reg::T2); // 3 reads 2
        b.halt();
        let (_, a) = analyze(b);
        assert_eq!(a.producers(2), &[0, 1]);
        assert_eq!(a.producers(3), &[2]);
        assert_eq!(a.producers(0), &[] as &[u64]);
    }

    #[test]
    fn duplicate_source_registers_deduped() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 3); // 0
        b.add(Reg::T1, Reg::T0, Reg::T0); // 1 reads 0 twice
        b.out(Reg::T1);
        b.halt();
        let (_, a) = analyze(b);
        assert_eq!(a.producers(1), &[0]);
    }

    #[test]
    fn loop_counter_is_useful_but_flag_calc_dead() {
        // A loop that computes a "flag" every iteration but only uses it on exit.
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 0); // i
        b.li(Reg::T1, 4); // n
        let top = b.label();
        b.bind(top);
        b.slt(Reg::T2, Reg::T0, Reg::T1); // flag: overwritten every iteration
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, top);
        b.out(Reg::T2); // only the last flag value is used
        b.halt();
        let (trace, a) = analyze(b);
        let stats = a.stats();
        // 4 slt instances; only the final one is useful.
        let slts: Vec<_> = trace
            .iter()
            .filter(|r| r.op == dide_isa::Opcode::Slt)
            .map(|r| a.verdict(r.seq))
            .collect();
        assert_eq!(slts.len(), 4);
        assert_eq!(slts.iter().filter(|v| v.is_dead()).count(), 3);
        assert_eq!(*slts.last().unwrap(), Verdict::Useful);
        assert!(stats.dead_total >= 3);
    }
}
