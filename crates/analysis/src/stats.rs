//! Aggregated deadness counters.

use std::fmt;

use dide_emu::Trace;

use crate::verdict::{DeadKind, Verdict};

/// Whole-trace deadness counters (the numbers behind the paper's Figure on
/// dead-instruction fractions and its breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeadStats {
    /// Total dynamic instructions.
    pub total: u64,
    /// Dynamic instructions eligible for deadness (value producers).
    pub eligible: u64,
    /// Dead dynamic instructions (first-level + transitive).
    pub dead_total: u64,
    /// Dead register-overwritten instructions.
    pub reg_overwritten: u64,
    /// Dead register-never-read instructions.
    pub reg_unread: u64,
    /// Dead fully-overwritten stores.
    pub store_overwritten: u64,
    /// Dead never-loaded stores.
    pub store_unread: u64,
    /// Transitively dead instructions.
    pub transitive: u64,
    /// Dead dynamic loads (a subset of the register kinds above; each one
    /// would have consumed a D-cache access).
    pub dead_loads: u64,
    /// Dead dynamic stores (each one would have consumed a D-cache access).
    pub dead_stores: u64,
}

impl DeadStats {
    /// Tallies verdicts against the trace they were computed from.
    #[must_use]
    pub fn from_verdicts(trace: &Trace, verdicts: &[Verdict]) -> DeadStats {
        assert_eq!(trace.len(), verdicts.len(), "verdicts must match trace");
        let mut s = DeadStats { total: trace.len() as u64, ..DeadStats::default() };
        for (r, v) in trace.iter().zip(verdicts) {
            if v.is_eligible() {
                s.eligible += 1;
            }
            let Some(kind) = v.dead_kind() else { continue };
            s.dead_total += 1;
            match kind {
                DeadKind::RegOverwritten => s.reg_overwritten += 1,
                DeadKind::RegUnread => s.reg_unread += 1,
                DeadKind::StoreOverwritten => s.store_overwritten += 1,
                DeadKind::StoreUnread => s.store_unread += 1,
                DeadKind::Transitive => s.transitive += 1,
            }
            if r.op.is_load() {
                s.dead_loads += 1;
            }
            if r.op.is_store() {
                s.dead_stores += 1;
            }
        }
        s
    }

    /// Count for one dead kind.
    #[must_use]
    pub fn kind_count(&self, kind: DeadKind) -> u64 {
        match kind {
            DeadKind::RegOverwritten => self.reg_overwritten,
            DeadKind::RegUnread => self.reg_unread,
            DeadKind::StoreOverwritten => self.store_overwritten,
            DeadKind::StoreUnread => self.store_unread,
            DeadKind::Transitive => self.transitive,
        }
    }

    /// First-level (directly) dead instructions.
    #[must_use]
    pub fn first_level(&self) -> u64 {
        self.dead_total - self.transitive
    }

    /// Dead instructions as a fraction of *all* dynamic instructions — the
    /// paper's headline 3–16% metric.
    #[must_use]
    pub fn dead_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.dead_total as f64 / self.total as f64
        }
    }

    /// Dead instructions as a fraction of eligible (value-producing)
    /// instructions.
    #[must_use]
    pub fn dead_fraction_of_eligible(&self) -> f64 {
        if self.eligible == 0 {
            0.0
        } else {
            self.dead_total as f64 / self.eligible as f64
        }
    }
}

impl dide_obs::Observe for DeadStats {
    fn observe(&self, scope: &mut dide_obs::Scope<'_>) {
        scope.counter("total", self.total);
        scope.counter("eligible", self.eligible);
        scope.counter("dead_total", self.dead_total);
        scope.counter("reg_overwritten", self.reg_overwritten);
        scope.counter("reg_unread", self.reg_unread);
        scope.counter("store_overwritten", self.store_overwritten);
        scope.counter("store_unread", self.store_unread);
        scope.counter("transitive", self.transitive);
        scope.counter("dead_loads", self.dead_loads);
        scope.counter("dead_stores", self.dead_stores);
    }
}

impl fmt::Display for DeadStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dynamic instructions : {}", self.total)?;
        writeln!(f, "value producers      : {}", self.eligible)?;
        writeln!(
            f,
            "dead                 : {} ({:.2}% of all, {:.2}% of producers)",
            self.dead_total,
            100.0 * self.dead_fraction(),
            100.0 * self.dead_fraction_of_eligible()
        )?;
        for kind in DeadKind::ALL {
            writeln!(f, "  {:<18} : {}", kind.label(), self.kind_count(kind))?;
        }
        write!(f, "dead loads / stores  : {} / {}", self.dead_loads, self.dead_stores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeadnessAnalysis;
    use dide_emu::Emulator;
    use dide_isa::{ProgramBuilder, Reg};

    fn stats_for(b: ProgramBuilder) -> DeadStats {
        let trace = Emulator::new(&b.build().unwrap()).run().unwrap();
        *DeadnessAnalysis::analyze(&trace).stats()
    }

    #[test]
    fn counts_sum_to_dead_total() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1); // transitive (feeds only the next, dead, li chain? no: overwritten)
        b.li(Reg::T0, 2); // useful
        b.li(Reg::T1, 3); // unread at exit
        b.sd(Reg::T0, Reg::SP, -8); // overwritten store
        b.sd(Reg::T0, Reg::SP, -8); // unread store
        b.out(Reg::T0);
        b.halt();
        let s = stats_for(b);
        let sum: u64 = DeadKind::ALL.iter().map(|&k| s.kind_count(k)).sum();
        assert_eq!(sum, s.dead_total);
        assert_eq!(s.first_level() + s.transitive, s.dead_total);
        assert_eq!(s.reg_overwritten, 1);
        assert_eq!(s.reg_unread, 1);
        assert_eq!(s.store_overwritten, 1);
        assert_eq!(s.store_unread, 1);
        assert_eq!(s.dead_stores, 2);
    }

    #[test]
    fn fractions() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1);
        b.li(Reg::T0, 2);
        b.out(Reg::T0);
        b.halt();
        let s = stats_for(b);
        assert_eq!(s.total, 4);
        assert_eq!(s.eligible, 2);
        assert_eq!(s.dead_total, 1);
        assert!((s.dead_fraction() - 0.25).abs() < 1e-12);
        assert!((s.dead_fraction_of_eligible() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_fractions_are_zero() {
        let s = DeadStats::default();
        assert_eq!(s.dead_fraction(), 0.0);
        assert_eq!(s.dead_fraction_of_eligible(), 0.0);
    }

    #[test]
    fn display_mentions_all_kinds() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1);
        b.halt();
        let text = stats_for(b).to_string();
        for kind in DeadKind::ALL {
            assert!(text.contains(kind.label()), "missing {kind}");
        }
    }
}
