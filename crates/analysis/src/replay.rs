//! Replay-based validation of the deadness oracle.
//!
//! The definition of dynamic deadness makes a falsifiable promise: deleting
//! every dead instruction from the dynamic stream must not change anything
//! the program observably does. [`replay_outputs`] re-executes a recorded
//! trace on a fresh architectural state while *skipping* a caller-chosen
//! subset of instructions, and [`verify_dead_removable`] checks the promise
//! for the verdicts of a [`DeadnessAnalysis`].
//!
//! This is both a library feature (downstream users can validate custom
//! dead sets) and the backbone of this crate's property-based tests.

use std::fmt;

use dide_emu::{semantics, Memory, Trace};
use dide_isa::{OpcodeKind, Reg, DATA_BASE, STACK_BASE};

use crate::liveness::DeadnessAnalysis;

/// Mismatch found by [`verify_dead_removable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayMismatch {
    /// Outputs of the original trace.
    pub expected: Vec<u64>,
    /// Outputs of the replay with dead instructions removed.
    pub actual: Vec<u64>,
}

impl fmt::Display for ReplayMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dead-instruction removal changed outputs: expected {:?}, got {:?}",
            self.expected, self.actual
        )
    }
}

impl std::error::Error for ReplayMismatch {}

/// Re-executes the recorded instruction stream in trace order on a fresh
/// architectural state, skipping every record for which `skip(seq)` is
/// true, and returns the `out` values produced.
///
/// Control flow is not re-decided — the recorded committed path is
/// followed — but *all data values are recomputed from scratch*, so a
/// skipped instruction that actually mattered will corrupt downstream
/// values and ultimately the outputs.
///
/// The replay assumes the trace was produced with the emulator's default
/// initial state (stack pointer at [`STACK_BASE`]).
pub fn replay_outputs<F: FnMut(u64) -> bool>(trace: &Trace, mut skip: F) -> Vec<u64> {
    let mut regs = [0u64; Reg::COUNT];
    regs[Reg::SP.index()] = STACK_BASE;
    regs[Reg::FP.index()] = STACK_BASE;
    let mut memory = Memory::new();
    memory.write_bytes(DATA_BASE, trace.program().data());
    let mut outputs = Vec::new();

    let get = |regs: &[u64; Reg::COUNT], r: Reg| regs[r.index()];
    for r in trace {
        if skip(r.seq) {
            continue;
        }
        // The immediate is not carried in the packed record; fetch the
        // static instruction from the program.
        let inst = *trace.program().get(r.index).expect("trace records index into the program");
        match inst.op.kind() {
            OpcodeKind::AluRR => {
                let v = semantics::alu_rr(inst.op, get(&regs, inst.rs1), get(&regs, inst.rs2));
                if !inst.rd.is_zero() {
                    regs[inst.rd.index()] = v;
                }
            }
            OpcodeKind::AluRI => {
                let v = semantics::alu_ri(inst.op, get(&regs, inst.rs1), inst.imm);
                if !inst.rd.is_zero() {
                    regs[inst.rd.index()] = v;
                }
            }
            OpcodeKind::LoadImm => {
                if !inst.rd.is_zero() {
                    regs[inst.rd.index()] = inst.imm as u64;
                }
            }
            OpcodeKind::Load { width, signed } => {
                let addr = get(&regs, inst.rs1).wrapping_add(inst.imm as u64);
                let raw = memory.read_le(addr, width.bytes());
                let v = if signed { semantics::sign_extend(raw, width.bytes()) } else { raw };
                if !inst.rd.is_zero() {
                    regs[inst.rd.index()] = v;
                }
            }
            OpcodeKind::Store { width } => {
                let addr = get(&regs, inst.rs1).wrapping_add(inst.imm as u64);
                memory.write_le(addr, width.bytes(), get(&regs, inst.rs2));
            }
            OpcodeKind::Branch(_) | OpcodeKind::Halt | OpcodeKind::Nop => {}
            OpcodeKind::Jal | OpcodeKind::Jalr => {
                // The link value is position-derived, not data-derived.
                if !inst.rd.is_zero() {
                    regs[inst.rd.index()] = u64::from(r.index + 1);
                }
            }
            OpcodeKind::Out => outputs.push(get(&regs, inst.rs1)),
        }
    }
    outputs
}

/// Verifies that removing every instruction the analysis labels dead
/// leaves the trace's observable outputs unchanged.
///
/// # Example
///
/// ```
/// use dide_isa::{ProgramBuilder, Reg};
/// use dide_emu::Emulator;
/// use dide_analysis::{verify_dead_removable, DeadnessAnalysis};
///
/// let mut b = ProgramBuilder::new("check");
/// b.li(Reg::T0, 1); // dead (overwritten)
/// b.li(Reg::T0, 2);
/// b.out(Reg::T0);
/// b.halt();
/// let trace = Emulator::new(&b.build()?).run()?;
/// let analysis = DeadnessAnalysis::analyze(&trace);
/// verify_dead_removable(&trace, &analysis)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Returns a [`ReplayMismatch`] carrying both output vectors if the
/// promise is violated (which would indicate a bug in the analysis).
pub fn verify_dead_removable(
    trace: &Trace,
    analysis: &DeadnessAnalysis,
) -> Result<(), ReplayMismatch> {
    let actual = replay_outputs(trace, |seq| analysis.is_dead(seq));
    if actual == trace.outputs() {
        Ok(())
    } else {
        Err(ReplayMismatch { expected: trace.outputs().to_vec(), actual })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dide_emu::Emulator;
    use dide_isa::ProgramBuilder;

    fn trace(b: ProgramBuilder) -> Trace {
        Emulator::new(&b.build().unwrap()).run().unwrap()
    }

    fn looping_program() -> ProgramBuilder {
        let mut b = ProgramBuilder::new("replay");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, 50);
        b.li(Reg::S0, 0);
        let top = b.label();
        b.bind(top);
        b.slt(Reg::T2, Reg::T0, Reg::T1); // mostly dead
        b.sd(Reg::T0, Reg::SP, -8);
        b.ld(Reg::T3, Reg::SP, -8);
        b.add(Reg::S0, Reg::S0, Reg::T3);
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, top);
        b.out(Reg::S0);
        b.out(Reg::T2);
        b.halt();
        b
    }

    #[test]
    fn full_replay_reproduces_outputs() {
        let t = trace(looping_program());
        let outputs = replay_outputs(&t, |_| false);
        assert_eq!(outputs, t.outputs());
    }

    #[test]
    fn removing_dead_preserves_outputs() {
        let t = trace(looping_program());
        let a = DeadnessAnalysis::analyze(&t);
        assert!(a.stats().dead_total > 10, "the loop produces dead flags");
        verify_dead_removable(&t, &a).expect("oracle deadness must be removable");
    }

    #[test]
    fn removing_a_live_instruction_is_detected() {
        let t = trace(looping_program());
        let a = DeadnessAnalysis::analyze(&t);
        // Skip the dead set *plus* one useful instruction (the final add
        // into the live accumulator, whose operand is nonzero): outputs
        // must change.
        let victim = t
            .iter()
            .rev()
            .find(|r| r.op == dide_isa::Opcode::Add && a.verdict(r.seq).is_eligible())
            .map(|r| r.seq)
            .expect("an add exists");
        assert!(!a.is_dead(victim));
        let actual = replay_outputs(&t, |seq| a.is_dead(seq) || seq == victim);
        assert_ne!(actual, t.outputs(), "skipping live work must corrupt outputs");
    }

    #[test]
    fn mismatch_display() {
        let m = ReplayMismatch { expected: vec![1], actual: vec![2] };
        assert!(m.to_string().contains("changed outputs"));
    }
}
