//! Windowed (epoch-streamed) deadness analysis.
//!
//! [`DeadnessAnalysis::analyze_streamed`] labels a trace without ever
//! materializing it: the emulator delivers fixed-size epochs of records,
//! the forward pass consumes each epoch as it arrives, and the backward
//! transitive-deadness pass runs *per epoch*, carrying only a live-out
//! frontier across the boundary:
//!
//! * the pending last-writer seq per architectural register, and
//! * the byte-granular last-store shadow table (global seqs).
//!
//! Everything else — per-seq consumer stamps, live-byte counters, the
//! intra-epoch producer table — is discarded when the epoch is finalized,
//! so peak retained trace memory is one epoch regardless of trace length.
//!
//! # Soundness (streamed-dead ⊆ exact-dead, same kind)
//!
//! At the end of every non-final epoch, any value still *pending* — a
//! register whose writer has not been displaced, or a store with visible
//! bytes — **escapes**: it is conservatively finalized `Useful` (it may be
//! read by a future epoch; we do not wait to find out). Consequently a
//! record labelled dead by the windowed pass was fully displaced *within
//! its own epoch*, which means the exact analysis sees the very same
//! displacement and read events for it:
//!
//! * its `read` flag and first-level hint agree with the exact pass, and
//! * every consumer that read it is intra-epoch (a value cannot be read
//!   after being fully displaced), so a `Transitive` verdict rests on
//!   consumers that are themselves streamed-dead — by induction
//!   exact-dead.
//!
//! Cross-epoch *read edges* are dropped entirely: a read whose producer
//! lives in an earlier epoch finds that producer already finalized
//! `Useful`, so the edge can no longer change any verdict. The final epoch
//! is finalized exactly like the exact pass's end-of-program step, and a
//! trace that fits in a single epoch is delegated verbatim to
//! [`DeadnessAnalysis::analyze_records`], making the single-epoch streamed
//! run bit-identical to the materializing path.

use dide_emu::{DynInst, EmuError, Emulator, EmulatorConfig, MemAccess, PagedShadow, TraceChunk};
use dide_isa::{OpcodeKind, Program, Reg};

use crate::liveness::{DeadnessAnalysis, SeqState};
use crate::stats::DeadStats;
use crate::verdict::{DeadKind, Verdict};

/// The result of a windowed streaming analysis: per-seq verdicts (a sound
/// under-approximation of the exact oracle), aggregate counters, and the
/// streaming run's bookkeeping.
#[derive(Debug, Clone)]
pub struct StreamedDeadness {
    verdicts: Vec<Verdict>,
    stats: DeadStats,
    epochs: u64,
    epoch_len: usize,
    escaped: u64,
    outputs: Vec<u64>,
}

impl StreamedDeadness {
    /// The verdict for dynamic instruction `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range for the analyzed trace.
    #[must_use]
    pub fn verdict(&self, seq: u64) -> Verdict {
        self.verdicts[seq as usize]
    }

    /// Whether dynamic instruction `seq` is dead.
    #[must_use]
    pub fn is_dead(&self, seq: u64) -> bool {
        self.verdicts[seq as usize].is_dead()
    }

    /// All verdicts, indexed by seq.
    #[must_use]
    pub fn verdicts(&self) -> &[Verdict] {
        &self.verdicts
    }

    /// Aggregated deadness counters (for the windowed verdicts).
    #[must_use]
    pub fn stats(&self) -> &DeadStats {
        &self.stats
    }

    /// Trace length in dynamic instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.verdicts.len()
    }

    /// Whether the trace was empty (it never is for a valid program).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.verdicts.is_empty()
    }

    /// Number of epochs the trace was processed in.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Configured epoch length (records per epoch).
    #[must_use]
    pub fn epoch_len(&self) -> usize {
        self.epoch_len
    }

    /// Eligible values conservatively finalized `Useful` because they were
    /// still pending at a (non-final) epoch boundary. Zero when the trace
    /// fits in one epoch; the gap between windowed and exact dead counts
    /// is bounded by this number.
    #[must_use]
    pub fn escaped(&self) -> u64 {
        self.escaped
    }

    /// Values written by `out`, in order (same as the materializing run).
    #[must_use]
    pub fn outputs(&self) -> &[u64] {
        &self.outputs
    }

    /// Peak retained *trace* memory of the analysis pass: one reused epoch
    /// buffer. (The verdict vector — 2 bytes per record — is the analysis
    /// *output* and is excluded, as is the carried shadow frontier, which
    /// scales with the touched byte-address footprint, not trace length.)
    #[must_use]
    pub fn mem_peak_bytes(&self) -> u64 {
        self.epoch_len as u64 * std::mem::size_of::<DynInst>() as u64
    }
}

impl DeadnessAnalysis {
    /// Runs the windowed streaming analysis over `program` with default
    /// emulator limits, processing the trace in epochs of `epoch_len`
    /// records. See the [module docs](self) for the algorithm and its
    /// soundness argument.
    ///
    /// # Errors
    ///
    /// Propagates any [`EmuError`] from the underlying emulation.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len` is zero.
    pub fn analyze_streamed(
        program: &Program,
        epoch_len: usize,
    ) -> Result<StreamedDeadness, EmuError> {
        DeadnessAnalysis::analyze_streamed_with_config(
            program,
            EmulatorConfig::default(),
            epoch_len,
        )
    }

    /// As [`DeadnessAnalysis::analyze_streamed`], with explicit emulator
    /// limits.
    ///
    /// # Errors
    ///
    /// Propagates any [`EmuError`] from the underlying emulation.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len` is zero.
    pub fn analyze_streamed_with_config(
        program: &Program,
        config: EmulatorConfig,
        epoch_len: usize,
    ) -> Result<StreamedDeadness, EmuError> {
        let mut w = WindowedLiveness::new();
        let summary = Emulator::with_config(program, config)
            .run_streamed(epoch_len, |chunk| w.push(chunk))?;
        Ok(w.finish(epoch_len, summary.outputs))
    }
}

/// The carried frontier plus per-epoch scratch of the windowed analysis.
struct WindowedLiveness {
    // ---- carried across epochs ----
    /// Pending writer seq (global) per architectural register.
    reg_writer: [Option<u64>; Reg::COUNT],
    /// Last store to claim each byte address, as global `seq + 1`
    /// (0 = untouched).
    mem_writer: PagedShadow<u64>,
    verdicts: Vec<Verdict>,
    stats: DeadStats,
    epochs: u64,
    escaped: u64,
    // ---- per-epoch scratch, reused between epochs ----
    /// Packed per-seq state, indexed by `seq - base`.
    state: Vec<SeqState>,
    /// Intra-epoch producer table (global seqs, all `>= base`).
    producers: Vec<u64>,
    /// `offsets[i]..offsets[i + 1]` brackets record `base + i`'s producers.
    offsets: Vec<usize>,
    /// Backward-pass usefulness flags, indexed by `seq - base`.
    useful: Vec<bool>,
    finished: bool,
}

impl WindowedLiveness {
    fn new() -> WindowedLiveness {
        WindowedLiveness {
            reg_writer: [None; Reg::COUNT],
            mem_writer: PagedShadow::new(),
            verdicts: Vec::new(),
            stats: DeadStats::default(),
            epochs: 0,
            escaped: 0,
            state: Vec::new(),
            producers: Vec::new(),
            offsets: Vec::new(),
            useful: Vec::new(),
            finished: false,
        }
    }

    /// Resolves a read of producer `w` by consumer `stamp`. Cross-epoch
    /// reads (`w < base`) are dropped: the producer was already finalized
    /// `Useful` when its epoch closed, so the edge cannot change a verdict.
    #[inline]
    fn note_read(&mut self, base: u64, w: u64, stamp: u64) {
        if w < base {
            return;
        }
        let st = &mut self.state[(w - base) as usize];
        st.read = true;
        if st.last_touch != stamp {
            st.last_touch = stamp;
            self.producers.push(w);
        }
    }

    #[inline]
    fn read_reg(&mut self, base: u64, src: Reg, stamp: u64) {
        if let Some(w) = self.reg_writer[src.index()] {
            self.note_read(base, w, stamp);
        }
    }

    #[inline]
    fn read_mem(&mut self, base: u64, acc: MemAccess, stamp: u64) {
        let len = acc.width.bytes();
        if !PagedShadow::<u64>::crosses_page(acc.addr, len) {
            // Fast path mirrors the exact pass: one page resolution per
            // access, `note_read` body inlined to keep the span borrow
            // disjoint from the state/producer updates.
            if let Some(cells) = self.mem_writer.span(acc.addr, len) {
                for &cell in cells {
                    if cell != 0 && cell > base {
                        let w = cell - 1;
                        let st = &mut self.state[(w - base) as usize];
                        st.read = true;
                        if st.last_touch != stamp {
                            st.last_touch = stamp;
                            self.producers.push(w);
                        }
                    }
                }
            }
        } else {
            for byte in acc.bytes() {
                let cell = self.mem_writer.get(byte);
                if cell != 0 {
                    self.note_read(base, cell - 1, stamp);
                }
            }
        }
    }

    #[inline]
    fn end_reads(&mut self) {
        self.offsets.push(self.producers.len());
    }

    /// Register write: displace the previous pending writer. A displaced
    /// cross-epoch writer needs no bookkeeping — it was already finalized.
    #[inline]
    fn write_reg(&mut self, base: u64, rd: Reg, seq: u64) {
        if rd.is_zero() {
            return;
        }
        if let Some(prev) = self.reg_writer[rd.index()] {
            if prev >= base {
                let prev_state = &mut self.state[(prev - base) as usize];
                if !prev_state.read {
                    prev_state.hint = Some(DeadKind::RegOverwritten);
                }
            }
        }
        self.reg_writer[rd.index()] = Some(seq);
    }

    #[inline]
    fn displace(&mut self, base: u64, prev_cell: u64, claimed: u64) {
        if prev_cell != 0 && prev_cell != claimed && prev_cell > base {
            let prev = &mut self.state[(prev_cell - 1 - base) as usize];
            prev.live_bytes -= 1;
            if prev.live_bytes == 0 && !prev.read {
                prev.hint = Some(DeadKind::StoreOverwritten);
            }
        }
    }

    /// Store: claim bytes globally, displacing previous owners.
    #[inline]
    fn write_mem(&mut self, base: u64, acc: MemAccess, seq: u64) {
        let len = acc.width.bytes();
        let claimed = seq + 1;
        if !PagedShadow::<u64>::crosses_page(acc.addr, len) {
            let cells = self.mem_writer.span_mut(acc.addr, len);
            for cell in cells {
                let prev_cell = std::mem::replace(cell, claimed);
                if prev_cell != 0 && prev_cell != claimed && prev_cell > base {
                    let prev = &mut self.state[(prev_cell - 1 - base) as usize];
                    prev.live_bytes -= 1;
                    if prev.live_bytes == 0 && !prev.read {
                        prev.hint = Some(DeadKind::StoreOverwritten);
                    }
                }
            }
        } else {
            for byte in acc.bytes() {
                let prev_cell = self.mem_writer.get(byte);
                self.mem_writer.set(byte, claimed);
                self.displace(base, prev_cell, claimed);
            }
        }
        self.state[(seq - base) as usize].live_bytes = len as u32;
    }

    /// Consumes one epoch: forward pass, then immediate per-epoch backward
    /// finalization. Chunks must arrive in order.
    fn push(&mut self, chunk: &TraceChunk) {
        assert!(!self.finished, "chunk after the final epoch");
        assert_eq!(chunk.base(), self.verdicts.len() as u64, "chunks must arrive in seq order");

        if chunk.base() == 0 && chunk.is_last() {
            // The whole trace fits in one epoch: delegate to the exact
            // whole-trace pass so the verdicts are trivially bit-identical
            // to the materializing path.
            let exact = DeadnessAnalysis::analyze_records(chunk.records());
            self.verdicts = exact.verdicts().to_vec();
            self.stats = *exact.stats();
            self.epochs = 1;
            self.finished = true;
            return;
        }

        self.epochs += 1;
        let base = chunk.base();
        let n = chunk.len();

        // ---- forward pass over the epoch ----
        self.state.clear();
        self.state.resize(n, SeqState::EMPTY);
        self.producers.clear();
        self.offsets.clear();
        self.offsets.push(0);
        for r in chunk.records() {
            let seq = r.seq;
            match r.op.kind() {
                OpcodeKind::AluRR => {
                    self.read_reg(base, r.rs1, seq);
                    self.read_reg(base, r.rs2, seq);
                    self.end_reads();
                    self.write_reg(base, r.rd, seq);
                }
                OpcodeKind::AluRI => {
                    self.read_reg(base, r.rs1, seq);
                    self.end_reads();
                    self.write_reg(base, r.rd, seq);
                }
                OpcodeKind::LoadImm | OpcodeKind::Jal => {
                    self.end_reads();
                    self.write_reg(base, r.rd, seq);
                }
                OpcodeKind::Load { .. } => {
                    self.read_reg(base, r.rs1, seq);
                    if let Some(acc) = r.mem() {
                        self.read_mem(base, acc, seq);
                    }
                    self.end_reads();
                    self.write_reg(base, r.rd, seq);
                }
                OpcodeKind::Store { .. } => {
                    self.read_reg(base, r.rs1, seq);
                    self.read_reg(base, r.rs2, seq);
                    self.end_reads();
                    if let Some(acc) = r.mem() {
                        self.write_mem(base, acc, seq);
                    }
                }
                OpcodeKind::Branch(_) => {
                    self.read_reg(base, r.rs1, seq);
                    self.read_reg(base, r.rs2, seq);
                    self.end_reads();
                }
                OpcodeKind::Jalr => {
                    self.read_reg(base, r.rs1, seq);
                    self.end_reads();
                    self.write_reg(base, r.rd, seq);
                }
                OpcodeKind::Out => {
                    self.read_reg(base, r.rs1, seq);
                    self.end_reads();
                }
                OpcodeKind::Halt | OpcodeKind::Nop => self.end_reads(),
            }
        }

        // ---- per-epoch backward finalization ----
        let final_epoch = chunk.is_last();
        if final_epoch {
            // End of program, exactly like the exact pass: register values
            // still pending were never read. (Writers from earlier epochs
            // were already finalized when their epoch closed.)
            for w in self.reg_writer.iter().flatten().copied() {
                if w >= base {
                    let st = &mut self.state[(w - base) as usize];
                    if !st.read {
                        st.hint = Some(DeadKind::RegUnread);
                    }
                }
            }
            self.finished = true;
        }

        let mut useful = std::mem::take(&mut self.useful);
        useful.clear();
        useful.resize(n, false);
        self.verdicts.resize(base as usize + n, Verdict::NotEligible);

        for r in chunk.records().iter().rev() {
            let i = (r.seq - base) as usize;
            let (eligible, root, is_load, is_store) = match r.op.kind() {
                OpcodeKind::AluRR | OpcodeKind::AluRI | OpcodeKind::LoadImm => {
                    (!r.rd.is_zero(), false, false, false)
                }
                OpcodeKind::Load { .. } => (!r.rd.is_zero(), false, true, false),
                OpcodeKind::Store { .. } => (true, false, false, true),
                OpcodeKind::Branch(_)
                | OpcodeKind::Jal
                | OpcodeKind::Jalr
                | OpcodeKind::Halt
                | OpcodeKind::Out => (false, true, false, false),
                OpcodeKind::Nop => (false, false, false, false),
            };
            let st = self.state[i];

            // Escape detection (non-final epochs): the value is still
            // pending at the boundary — a future epoch may read it, so it
            // must conservatively stay alive.
            let escapes = !final_epoch
                && ((is_store && st.live_bytes > 0)
                    || r.dest().is_some_and(|rd| self.reg_writer[rd.index()] == Some(r.seq)));
            if escapes && eligible {
                self.escaped += 1;
            }

            let is_useful = root || useful[i] || escapes;
            if is_useful {
                for &p in &self.producers[self.offsets[i]..self.offsets[i + 1]] {
                    useful[(p - base) as usize] = true;
                }
            }

            let verdict = if !eligible {
                Verdict::NotEligible
            } else if is_useful {
                Verdict::Useful
            } else if st.read {
                Verdict::Dead(DeadKind::Transitive)
            } else if is_store && st.live_bytes > 0 {
                // Only reachable in the final epoch (otherwise `escapes`
                // made the store useful): bytes survived to program end
                // without being loaded.
                Verdict::Dead(DeadKind::StoreUnread)
            } else {
                Verdict::Dead(st.hint.expect("unread eligible value must have a kind"))
            };

            self.stats.eligible += u64::from(eligible);
            if let Verdict::Dead(kind) = verdict {
                self.stats.dead_total += 1;
                match kind {
                    DeadKind::RegOverwritten => self.stats.reg_overwritten += 1,
                    DeadKind::RegUnread => self.stats.reg_unread += 1,
                    DeadKind::StoreOverwritten => self.stats.store_overwritten += 1,
                    DeadKind::StoreUnread => self.stats.store_unread += 1,
                    DeadKind::Transitive => self.stats.transitive += 1,
                }
                self.stats.dead_loads += u64::from(is_load);
                self.stats.dead_stores += u64::from(is_store);
            }
            self.verdicts[r.seq as usize] = verdict;
        }
        self.useful = useful;
        self.stats.total += n as u64;
    }

    fn finish(self, epoch_len: usize, outputs: Vec<u64>) -> StreamedDeadness {
        assert!(self.finished, "the final epoch never arrived");
        StreamedDeadness {
            verdicts: self.verdicts,
            stats: self.stats,
            epochs: self.epochs,
            epoch_len,
            escaped: self.escaped,
            outputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dide_isa::ProgramBuilder;

    fn looping_program(iters: i64) -> Program {
        let mut b = ProgramBuilder::new("loop");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, iters);
        b.li(Reg::S0, 0);
        let top = b.label();
        b.bind(top);
        b.slt(Reg::T2, Reg::T0, Reg::T1); // dead every iteration but the last
        b.sw(Reg::T0, Reg::SP, -4);
        b.lw(Reg::T3, Reg::SP, -4);
        b.add(Reg::S0, Reg::S0, Reg::T3);
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, top);
        b.out(Reg::S0);
        b.out(Reg::T2);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn single_epoch_is_bit_identical_to_exact() {
        let p = looping_program(40);
        let trace = Emulator::new(&p).run().unwrap();
        let exact = DeadnessAnalysis::analyze(&trace);
        let streamed = DeadnessAnalysis::analyze_streamed(&p, 1 << 20).unwrap();
        assert_eq!(streamed.epochs(), 1);
        assert_eq!(streamed.verdicts(), exact.verdicts());
        assert_eq!(streamed.stats(), exact.stats());
        assert_eq!(streamed.escaped(), 0);
        assert_eq!(streamed.outputs(), trace.outputs());
    }

    #[test]
    fn windowed_is_a_sound_under_approximation() {
        let p = looping_program(100);
        let trace = Emulator::new(&p).run().unwrap();
        let exact = DeadnessAnalysis::analyze(&trace);
        for epoch_len in [1usize, 3, 16, 128] {
            let streamed = DeadnessAnalysis::analyze_streamed(&p, epoch_len).unwrap();
            assert_eq!(streamed.len(), trace.len(), "epoch_len={epoch_len}");
            assert!(streamed.epochs() > 1);
            let mut dead_gap = 0u64;
            for seq in 0..trace.len() as u64 {
                let s = streamed.verdict(seq);
                let e = exact.verdict(seq);
                // Eligibility is verdict-independent and must agree.
                assert_eq!(s.is_eligible(), e.is_eligible(), "seq {seq}");
                if s.is_dead() {
                    // Sound: streamed-dead implies exact-dead, same kind.
                    assert_eq!(s, e, "seq {seq} epoch_len {epoch_len}");
                } else if e.is_dead() {
                    dead_gap += 1;
                }
            }
            // Precision loss is bounded by the escape count: a missed dead
            // verdict is an escaped value or transitively downstream of one.
            assert_eq!(
                streamed.stats().dead_total + dead_gap,
                exact.stats().dead_total,
                "epoch_len={epoch_len}"
            );
            assert!(streamed.escaped() > 0, "multi-epoch loop must see escapes");
            assert_eq!(streamed.outputs(), trace.outputs());
            assert_eq!(streamed.stats().total, trace.len() as u64);
        }
    }

    #[test]
    fn large_epochs_lose_little_precision() {
        // With a 4K-record epoch over a ~1K-record trace the trace fits in
        // one epoch; with 256 it doesn't, but the loop-carried frontier
        // keeps nearly all verdicts exact.
        let p = looping_program(150);
        let trace = Emulator::new(&p).run().unwrap();
        let exact = DeadnessAnalysis::analyze(&trace);
        let streamed = DeadnessAnalysis::analyze_streamed(&p, 256).unwrap();
        let exact_dead = exact.stats().dead_total;
        let streamed_dead = streamed.stats().dead_total;
        assert!(streamed_dead <= exact_dead);
        assert!(
            streamed_dead * 10 >= exact_dead * 8,
            "windowed recovered {streamed_dead}/{exact_dead} dead"
        );
    }

    #[test]
    fn emulation_errors_propagate() {
        let mut b = ProgramBuilder::new("spin");
        let top = b.label();
        b.bind(top);
        b.j(top);
        b.halt();
        let p = b.build().unwrap();
        let cfg = EmulatorConfig { max_steps: 50, ..EmulatorConfig::default() };
        let err = DeadnessAnalysis::analyze_streamed_with_config(&p, cfg, 8).unwrap_err();
        assert_eq!(err, EmuError::StepLimit { limit: 50 });
    }
}
