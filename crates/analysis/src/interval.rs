//! Deadness over time: fixed-window interval series.
//!
//! Characterization studies of this era report not just whole-run averages
//! but how a metric moves across a program's phases. This module slices a
//! trace into fixed-size windows of dynamic instructions and reports the
//! dead fraction of each, which the test suite uses to check that the
//! benchmarks' deadness is a steady program property rather than a warmup
//! artifact.

use dide_emu::Trace;

use crate::liveness::DeadnessAnalysis;

/// Dead-instruction counts for one window of dynamic instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Sequence number of the first instruction in the window.
    pub start: u64,
    /// Instructions in the window (the last window may be short).
    pub total: u64,
    /// Eligible (value-producing) instructions in the window.
    pub eligible: u64,
    /// Dead instructions in the window.
    pub dead: u64,
}

impl Interval {
    /// Dead instructions as a fraction of the window.
    #[must_use]
    pub fn dead_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.dead as f64 / self.total as f64
        }
    }
}

/// A whole-trace interval series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalSeries {
    window: u64,
    intervals: Vec<Interval>,
}

impl IntervalSeries {
    /// Slices the trace into windows of `window` dynamic instructions.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn compute(trace: &Trace, analysis: &DeadnessAnalysis, window: u64) -> IntervalSeries {
        assert!(window > 0, "window must be positive");
        let mut intervals: Vec<Interval> = Vec::new();
        for r in trace {
            if r.seq % window == 0 {
                intervals.push(Interval { start: r.seq, total: 0, eligible: 0, dead: 0 });
            }
            let cur = intervals.last_mut().expect("seq 0 opens a window");
            cur.total += 1;
            let v = analysis.verdict(r.seq);
            cur.eligible += u64::from(v.is_eligible());
            cur.dead += u64::from(v.is_dead());
        }
        IntervalSeries { window, intervals }
    }

    /// The configured window size.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// The intervals, in trace order.
    #[must_use]
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Minimum and maximum per-window dead fraction (ignoring a final
    /// short window of less than half the configured size).
    #[must_use]
    pub fn dead_fraction_range(&self) -> (f64, f64) {
        let mut min = f64::MAX;
        let mut max: f64 = 0.0;
        for iv in &self.intervals {
            if iv.total * 2 < self.window {
                continue;
            }
            let f = iv.dead_fraction();
            min = min.min(f);
            max = max.max(f);
        }
        if min > max {
            (0.0, 0.0)
        } else {
            (min, max)
        }
    }

    /// Population standard deviation of per-window dead fractions.
    #[must_use]
    pub fn dead_fraction_stddev(&self) -> f64 {
        let fs: Vec<f64> = self
            .intervals
            .iter()
            .filter(|iv| iv.total * 2 >= self.window)
            .map(Interval::dead_fraction)
            .collect();
        if fs.is_empty() {
            return 0.0;
        }
        let mean = fs.iter().sum::<f64>() / fs.len() as f64;
        let var = fs.iter().map(|f| (f - mean).powi(2)).sum::<f64>() / fs.len() as f64;
        var.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dide_emu::Emulator;
    use dide_isa::{ProgramBuilder, Reg};

    /// A two-phase program: phase one is all-useful, phase two recomputes
    /// a flag that dies every iteration.
    fn two_phase() -> Trace {
        let mut b = ProgramBuilder::new("phases");
        let (i, n) = (Reg::T0, Reg::T1);
        b.li(Reg::S0, 0);
        // Phase 1: pure accumulation.
        b.li(i, 0).li(n, 400);
        let p1 = b.label();
        b.bind(p1);
        b.add(Reg::S0, Reg::S0, i);
        b.addi(i, i, 1);
        b.blt(i, n, p1);
        // Phase 2: a dead flag every iteration.
        b.li(i, 0);
        let p2 = b.label();
        b.bind(p2);
        b.slt(Reg::T2, i, n); // dead except final iteration
        b.addi(i, i, 1);
        b.blt(i, n, p2);
        b.out(Reg::S0);
        b.out(Reg::T2);
        b.halt();
        Emulator::new(&b.build().unwrap()).run().unwrap()
    }

    #[test]
    fn windows_partition_the_trace() {
        let t = two_phase();
        let a = DeadnessAnalysis::analyze(&t);
        let s = IntervalSeries::compute(&t, &a, 100);
        let total: u64 = s.intervals().iter().map(|iv| iv.total).sum();
        assert_eq!(total, t.len() as u64);
        assert_eq!(s.window(), 100);
        for (k, iv) in s.intervals().iter().enumerate() {
            assert_eq!(iv.start, 100 * k as u64);
        }
    }

    #[test]
    fn phases_are_visible() {
        let t = two_phase();
        let a = DeadnessAnalysis::analyze(&t);
        let s = IntervalSeries::compute(&t, &a, 100);
        let (min, max) = s.dead_fraction_range();
        assert!(min < 0.01, "phase 1 windows are dead-free: {min}");
        assert!(max > 0.25, "phase 2 windows are flag-heavy: {max}");
        assert!(s.dead_fraction_stddev() > 0.1);
    }

    #[test]
    fn degenerate_cases() {
        let t = two_phase();
        let a = DeadnessAnalysis::analyze(&t);
        let s = IntervalSeries::compute(&t, &a, 10_000_000);
        assert_eq!(s.intervals().len(), 1);
        // The single window is shorter than half the window size, so the
        // range falls back to zeros.
        assert_eq!(s.dead_fraction_range(), (0.0, 0.0));
        assert_eq!(s.dead_fraction_stddev(), 0.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let t = two_phase();
        let a = DeadnessAnalysis::analyze(&t);
        let _ = IntervalSeries::compute(&t, &a, 0);
    }
}
