//! Offline drop-in replacement for the subset of [`proptest`] used by this
//! workspace.
//!
//! The build environment has no network access to crates.io, so the real
//! `proptest` crate cannot be fetched. This shim keeps the workspace's
//! property tests source-compatible: the [`proptest!`] macro, `Strategy`
//! with `prop_map`, `any::<T>()`, integer-range and tuple strategies,
//! `proptest::collection::vec`, `proptest::array::uniform12`, a tiny
//! character-class string strategy, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream, on purpose:
//!
//! * inputs are drawn from a deterministic per-test PRNG (seeded from the
//!   test's name and case index), so failures always reproduce;
//! * shrinking operates on the recorded *draw stream* (shortest failing
//!   prefix, then each draw minimized toward zero) rather than on
//!   per-strategy value trees — simpler, and it covers every strategy;
//! * failing cases persist to one file per test under
//!   `proptest-regressions/` (override the directory with
//!   `DIDE_PROPTEST_PERSIST`, or disable with `DIDE_PROPTEST_PERSIST=off`)
//!   and are replayed before random cases on every run;
//! * `ProptestConfig::from_env` lets `DIDE_PROPTEST_CASES` scale case
//!   counts without editing tests;
//! * `prop_assert*` are plain `assert*` (they panic rather than return
//!   `Err`), which is observably identical under a test harness.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test (shim: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test (shim: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test (shim: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests.
///
/// Each `#[test] fn name(inputs) { body }` item becomes an ordinary test
/// that draws `ProptestConfig::cases` input tuples from the strategies and
/// runs the body once per draw. Inputs are either `pattern in strategy`
/// or `name: Type` (shorthand for `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each test fn into a
/// call to the shrinking/persisting property driver.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run_property(
                    concat!(module_path!(), "::", stringify!($name)),
                    config,
                    &|__proptest_rng: &mut $crate::test_runner::TestRng| {
                        $crate::__proptest_case! { __proptest_rng; $($params)*; $body }
                    },
                );
            }
        )*
    };
}

/// Implementation detail of [`proptest!`]: binds one case's inputs, then
/// runs the body.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident; ; $body:block) => { $body };
    ($rng:ident; $p:pat in $s:expr; $body:block) => {
        {
            let $p = $crate::strategy::Strategy::generate(&($s), &mut *$rng);
            $body
        }
    };
    ($rng:ident; $p:pat in $s:expr, $($rest:tt)*) => {
        {
            let $p = $crate::strategy::Strategy::generate(&($s), &mut *$rng);
            $crate::__proptest_case! { $rng; $($rest)* }
        }
    };
    ($rng:ident; $i:ident : $t:ty; $body:block) => {
        {
            let $i = $crate::strategy::Strategy::generate(
                &$crate::arbitrary::any::<$t>(), &mut *$rng,
            );
            $body
        }
    };
    ($rng:ident; $i:ident : $t:ty, $($rest:tt)*) => {
        {
            let $i = $crate::strategy::Strategy::generate(
                &$crate::arbitrary::any::<$t>(), &mut *$rng,
            );
            $crate::__proptest_case! { $rng; $($rest)* }
        }
    };
    ($rng:ident; mut $i:ident : $t:ty; $body:block) => {
        {
            let mut $i = $crate::strategy::Strategy::generate(
                &$crate::arbitrary::any::<$t>(), &mut *$rng,
            );
            $body
        }
    };
    ($rng:ident; mut $i:ident : $t:ty, $($rest:tt)*) => {
        {
            let mut $i = $crate::strategy::Strategy::generate(
                &$crate::arbitrary::any::<$t>(), &mut *$rng,
            );
            $crate::__proptest_case! { $rng; $($rest)* }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn double(x: u8) -> u16 {
        u16::from(x) * 2
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn typed_params_and_strategies(a: u8, b in 3u32..10, v in crate::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!(u16::from(a) <= 255);
            prop_assert!((3..10).contains(&b));
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn prop_map_applies(d in (0u8..10).prop_map(double)) {
            prop_assert_eq!(d % 2, 0);
            prop_assert!(d < 20);
        }

        #[test]
        fn string_strategy_matches_class(s in "[a-z]{1,12}") {
            prop_assert!((1..=12).contains(&s.len()));
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }

        #[test]
        fn arrays_and_tuples((x, y) in (any::<u16>(), 1u8..=3), bytes in crate::array::uniform12(any::<u8>())) {
            prop_assert_ne!(u32::from(x) + 256, 0);
            prop_assert!((1..=3).contains(&y));
            prop_assert_eq!(bytes.len(), 12);
        }
    }
}
