//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length bounds accepted by [`vec`].
pub trait SizeRange {
    /// Inclusive (min, max) element counts.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty size range");
        (*self.start(), *self.end())
    }
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy producing vectors of `element` with a length in `size`.
#[must_use]
pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}
