//! Fixed-size array strategies (`proptest::array::uniform12`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by the `uniform*` constructors.
#[derive(Debug, Clone)]
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}

/// A strategy producing `[T; N]` with every element drawn from `element`.
#[must_use]
pub fn uniform<S: Strategy, const N: usize>(element: S) -> UniformArray<S, N> {
    UniformArray { element }
}

/// A strategy producing `[T; 12]` (upstream-compatible name).
#[must_use]
pub fn uniform12<S: Strategy>(element: S) -> UniformArray<S, 12> {
    uniform(element)
}
