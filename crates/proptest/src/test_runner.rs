//! Test-runner configuration and the deterministic input generator.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of input cases each property test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// Upstream's default case count.
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic PRNG driving input generation (xoshiro256**).
///
/// Seeded from the fully qualified test name, so every test draws the same
/// input sequence on every run and on every platform — failures always
/// reproduce without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// Creates the generator for the named test.
    #[must_use]
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the test name picks the stream.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    /// Creates a generator from a raw seed (SplitMix64-expanded).
    #[must_use]
    pub fn from_seed(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng { state: [next(), next(), next(), next()] }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Returns a uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_streams_are_stable_and_distinct() {
        let mut a = TestRng::for_test("x::a");
        let mut b = TestRng::for_test("x::a");
        let mut c = TestRng::for_test("x::b");
        let av: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let cv: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(av, bv);
        assert_ne!(av, cv);
    }
}
