//! Test-runner configuration, the deterministic input generator, and the
//! property driver with shrinking and failure persistence.
//!
//! Shrinking operates on the *draw stream*: every `next_u64` a case pulls
//! from its [`TestRng`] is recorded, and a failing case is minimized by
//! truncating the stream and binary-searching each surviving draw toward
//! zero (replayed draws past the end of the stream read as zero). This
//! shrinks beneath the strategy layer, so every strategy — tuples,
//! collections, mapped ranges — shrinks for free.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Total case executions the shrinker may spend per failure.
const SHRINK_BUDGET: u32 = 4096;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of input cases each property test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// A configuration whose case count honors the `DIDE_PROPTEST_CASES`
    /// environment variable, falling back to `default_cases` when the
    /// variable is unset or unusable. Lets CI smoke runs stay small while
    /// `ci.sh --deep` sweeps hundreds of cases through the same tests.
    #[must_use]
    pub fn from_env(default_cases: u32) -> ProptestConfig {
        let var = std::env::var("DIDE_PROPTEST_CASES").ok();
        ProptestConfig::with_cases(parse_cases(var.as_deref(), default_cases))
    }
}

/// Parses a `DIDE_PROPTEST_CASES` value; zero, empty, or malformed values
/// fall back to `default_cases`. Pure, for unit testing without touching
/// the (process-global, race-prone) environment.
#[must_use]
pub fn parse_cases(var: Option<&str>, default_cases: u32) -> u32 {
    match var.and_then(|v| v.trim().parse::<u32>().ok()) {
        Some(n) if n > 0 => n,
        _ => default_cases,
    }
}

impl Default for ProptestConfig {
    /// Upstream's default case count.
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic PRNG driving input generation (xoshiro256**).
///
/// Seeded from the fully qualified test name, so every test draws the same
/// input sequence on every run and on every platform. Every draw is
/// recorded; a rng can also be constructed to *replay* a recorded stream,
/// which is how the shrinker and the regression file re-run exact cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
    record: Vec<u64>,
    replay: Option<Vec<u64>>,
}

impl TestRng {
    /// Creates the generator for the named test.
    #[must_use]
    pub fn for_test(name: &str) -> TestRng {
        TestRng::from_seed(fnv1a(name))
    }

    /// Creates a generator from a raw seed (SplitMix64-expanded).
    #[must_use]
    pub fn from_seed(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng { state: [next(), next(), next(), next()], record: Vec::new(), replay: None }
    }

    /// Creates a generator that replays `draws` verbatim; draws past the
    /// end of the stream read as zero (the minimal value).
    #[must_use]
    pub fn from_draws(draws: Vec<u64>) -> TestRng {
        TestRng { state: [0; 4], record: Vec::new(), replay: Some(draws) }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = if let Some(draws) = &self.replay {
            draws.get(self.record.len()).copied().unwrap_or(0)
        } else {
            let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.state[1] << 17;
            self.state[2] ^= self.state[0];
            self.state[3] ^= self.state[1];
            self.state[1] ^= self.state[2];
            self.state[0] ^= self.state[3];
            self.state[2] ^= t;
            self.state[3] = self.state[3].rotate_left(45);
            result
        };
        self.record.push(result);
        result
    }

    /// Returns a uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// The draws made so far (in order).
    #[must_use]
    pub fn record(&self) -> &[u64] {
        &self.record
    }

    /// Consumes the rng and returns its recorded draw stream.
    #[must_use]
    pub fn take_record(self) -> Vec<u64> {
        self.record
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A property failure, carrying the minimal (shrunk) draw stream.
#[derive(Debug)]
pub struct PropertyFailure {
    /// Fully qualified test name.
    pub name: String,
    /// Where the failing input came from.
    pub source: FailureSource,
    /// The minimal failing draw stream.
    pub draws: Vec<u64>,
    /// Panic message of the minimal case.
    pub message: String,
    /// Where the case was persisted, if persistence is enabled.
    pub persisted_to: Option<PathBuf>,
}

/// Origin of a failing case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureSource {
    /// Replayed from the regression file.
    Regression,
    /// Found by this run's random case with the given index, then shrunk.
    Random(u32),
}

impl fmt::Display for PropertyFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.source {
            FailureSource::Regression => {
                writeln!(f, "property `{}` failed on a persisted regression case", self.name)?;
            }
            FailureSource::Random(i) => {
                writeln!(f, "property `{}` failed (random case {i}, then shrunk)", self.name)?;
            }
        }
        writeln!(f, "minimal draws: {:?}", self.draws)?;
        if let Some(p) = &self.persisted_to {
            writeln!(f, "persisted to {} (replayed first on future runs)", p.display())?;
        }
        write!(f, "{}", self.message)
    }
}

/// Runs `case` against one replayed draw stream, returning the panic
/// message if it fails.
fn run_case(case: &dyn Fn(&mut TestRng), draws: &[u64]) -> Option<String> {
    let mut rng = TestRng::from_draws(draws.to_vec());
    match catch_unwind(AssertUnwindSafe(|| case(&mut rng))) {
        Ok(()) => None,
        Err(payload) => Some(panic_message(&*payload)),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Minimizes a failing draw stream: truncates to the shortest failing
/// prefix, then minimizes each draw (exhaustively near zero, binary search
/// above), iterating to a fixpoint within [`SHRINK_BUDGET`] executions.
///
/// `fails` must return true for `draws` itself; the result is guaranteed
/// to still fail.
pub fn shrink_draws<F: FnMut(&[u64]) -> bool>(draws: &[u64], mut fails: F) -> Vec<u64> {
    let mut best = draws.to_vec();
    debug_assert!(fails(&best), "shrink_draws requires a failing input");
    let mut budget = SHRINK_BUDGET;
    let mut try_case = |candidate: &[u64], budget: &mut u32| -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        fails(candidate)
    };

    // Shortest failing prefix (draws past the end replay as zero).
    let (mut lo, mut hi) = (0usize, best.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if try_case(&best[..mid], &mut budget) {
            best.truncate(mid);
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }

    // Per-draw minimization, repeated until nothing improves.
    loop {
        let before = best.clone();
        for i in 0..best.len() {
            let original = best[i];
            if original == 0 {
                continue;
            }
            // Exhaustive scan near zero guarantees the true minimum when
            // it is small (the common case for `x % bound` draws) ...
            let scan_top = original.min(64);
            let mut found = false;
            for cand in 0..scan_top {
                let mut c = best.clone();
                c[i] = cand;
                if try_case(&c, &mut budget) {
                    best = c;
                    found = true;
                    break;
                }
            }
            if found {
                continue;
            }
            // ... and binary search handles large draws (approximate for
            // non-monotone predicates, but always failure-preserving).
            let (mut lo, mut hi) = (scan_top, original);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let mut c = best.clone();
                c[i] = mid;
                if try_case(&c, &mut budget) {
                    best = c;
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
        }
        if best == before || budget == 0 {
            return best;
        }
    }
}

/// Runs a property: replays persisted regression cases first, then
/// `config.cases` fresh random cases; on failure, shrinks the draw stream,
/// persists the minimal case, and panics with a report.
///
/// # Panics
///
/// Panics (like any failing test) when the property fails.
pub fn run_property(name: &str, config: ProptestConfig, case: &dyn Fn(&mut TestRng)) {
    if let Err(failure) = run_property_at(name, config, default_persist(name).as_deref(), case) {
        panic!("{failure}");
    }
}

/// [`run_property`] with an explicit persistence file (`None` disables
/// persistence). Returns the failure instead of panicking, for tests of
/// the runner itself.
///
/// # Errors
///
/// Returns the (shrunk) [`PropertyFailure`] if any persisted or random
/// case fails.
pub fn run_property_at(
    name: &str,
    config: ProptestConfig,
    persist: Option<&Path>,
    case: &dyn Fn(&mut TestRng),
) -> Result<(), PropertyFailure> {
    if let Some(path) = persist {
        for draws in load_regressions(path) {
            if let Some(message) = run_case(case, &draws) {
                return Err(PropertyFailure {
                    name: name.to_string(),
                    source: FailureSource::Regression,
                    draws,
                    message,
                    persisted_to: Some(path.to_path_buf()),
                });
            }
        }
    }
    for i in 0..config.cases {
        // Independent stream per case so a failure can be re-run and
        // shrunk in isolation.
        let mut rng =
            TestRng::from_seed(fnv1a(name) ^ u64::from(i).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if catch_unwind(AssertUnwindSafe(|| case(&mut rng))).is_ok() {
            continue;
        }
        let draws = rng.take_record();
        let minimal = shrink_draws(&draws, |d| run_case(case, d).is_some());
        let message = run_case(case, &minimal)
            .expect("shrinking preserves failure; the minimal case must still fail");
        let persisted_to =
            persist.and_then(|p| append_regression(p, &minimal).then(|| p.to_path_buf()));
        return Err(PropertyFailure {
            name: name.to_string(),
            source: FailureSource::Random(i),
            draws: minimal,
            message,
            persisted_to,
        });
    }
    Ok(())
}

/// The default regression file for a test: one file per test under
/// `proptest-regressions/` (override the directory with
/// `DIDE_PROPTEST_PERSIST`; set it to `off` or `0` to disable).
fn default_persist(name: &str) -> Option<PathBuf> {
    let dir = match std::env::var("DIDE_PROPTEST_PERSIST") {
        Ok(v) if v == "off" || v == "0" => return None,
        Ok(v) => PathBuf::from(v),
        Err(_) => PathBuf::from("proptest-regressions"),
    };
    Some(dir.join(format!("{}.txt", name.replace("::", "-"))))
}

/// Loads persisted draw streams; a missing file is an empty list, and
/// unreadable lines are skipped (a stale format must not brick the test).
fn load_regressions(path: &Path) -> Vec<Vec<u64>> {
    let Ok(text) = fs::read_to_string(path) else { return Vec::new() };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            l.split(',').map(|v| v.trim().parse::<u64>()).collect::<Result<Vec<u64>, _>>().ok()
        })
        .collect()
}

/// Appends a draw stream to the regression file (deduplicated); returns
/// whether the case is on disk afterwards.
fn append_regression(path: &Path, draws: &[u64]) -> bool {
    let line = draws.iter().map(ToString::to_string).collect::<Vec<_>>().join(",");
    if load_regressions(path).iter().any(|d| d == draws) {
        return true;
    }
    let write = || -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut f = fs::OpenOptions::new().create(true).append(true).open(path)?;
        if f.metadata()?.len() == 0 {
            writeln!(f, "# proptest regression cases: comma-separated draw streams,")?;
            writeln!(f, "# replayed before random cases on every run. Delete a line")?;
            writeln!(f, "# only when its bug is fixed.")?;
        }
        writeln!(f, "{line}")
    };
    write().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_streams_are_stable_and_distinct() {
        let mut a = TestRng::for_test("x::a");
        let mut b = TestRng::for_test("x::a");
        let mut c = TestRng::for_test("x::b");
        let av: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let cv: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(av, bv);
        assert_ne!(av, cv);
    }

    #[test]
    fn replay_reproduces_and_pads_with_zero() {
        let mut r = TestRng::from_draws(vec![7, 8]);
        assert_eq!(r.next_u64(), 7);
        assert_eq!(r.next_u64(), 8);
        assert_eq!(r.next_u64(), 0, "past-the-end draws are zero");
        assert_eq!(r.record(), &[7, 8, 0]);
    }

    #[test]
    fn recording_matches_generation() {
        let mut r = TestRng::for_test("rec");
        let vals: Vec<u64> = (0..5).map(|_| r.next_u64()).collect();
        assert_eq!(r.take_record(), vals);
    }

    #[test]
    fn parse_cases_handles_every_input_shape() {
        assert_eq!(parse_cases(None, 24), 24);
        assert_eq!(parse_cases(Some("256"), 24), 256);
        assert_eq!(parse_cases(Some(" 8 "), 24), 8);
        assert_eq!(parse_cases(Some("0"), 24), 24, "zero cases would test nothing");
        assert_eq!(parse_cases(Some("lots"), 24), 24);
        assert_eq!(parse_cases(Some(""), 24), 24);
    }

    #[test]
    fn shrinks_to_the_minimal_counterexample() {
        // Fails iff the drawn value (mod 100) is >= 10: the minimal
        // counterexample is the single draw [10].
        let failing = |d: &[u64]| {
            let mut rng = TestRng::from_draws(d.to_vec());
            rng.below(100) >= 10
        };
        // Pick the first seed whose initial case actually fails.
        let seed = (0u64..)
            .find(|&s| {
                let mut r = TestRng::from_seed(s);
                r.below(100) >= 10
            })
            .unwrap();
        let mut rng = TestRng::from_seed(seed);
        let _ = rng.below(100);
        let minimal = shrink_draws(rng.record(), failing);
        assert_eq!(minimal, vec![10]);
    }

    #[test]
    fn shrinking_truncates_irrelevant_draws() {
        // Three draws, failure depends only on the first being >= 5.
        let failing = |d: &[u64]| {
            let mut rng = TestRng::from_draws(d.to_vec());
            let a = rng.below(64);
            let _b = rng.next_u64();
            let _c = rng.next_u64();
            a >= 5
        };
        let start = vec![37, 999, 12345];
        assert!(failing(&start));
        let minimal = shrink_draws(&start, failing);
        assert_eq!(minimal, vec![5], "later draws truncate, first minimizes");
    }

    fn temp_file(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dide-proptest-{tag}-{}.txt", std::process::id()))
    }

    #[test]
    fn failure_is_shrunk_persisted_and_replayed() {
        let path = temp_file("persist");
        let _ = fs::remove_file(&path);
        let case = |rng: &mut TestRng| {
            let v = rng.below(1000);
            assert!(v < 40, "boom: {v}");
        };
        let err = run_property_at("t::persist", ProptestConfig::with_cases(50), Some(&path), &case)
            .expect_err("property must fail");
        assert!(matches!(err.source, FailureSource::Random(_)));
        assert_eq!(err.draws, vec![40], "shrunk to the boundary");
        assert!(err.message.contains("boom: 40"), "message was: {:?}", err.message);
        assert_eq!(err.persisted_to.as_deref(), Some(path.as_path()));
        let text = err.to_string();
        assert!(text.contains("minimal draws: [40]"), "{text}");

        // Second run: the persisted case fails first, before any random case.
        let err2 =
            run_property_at("t::persist", ProptestConfig::with_cases(50), Some(&path), &case)
                .expect_err("regression must be replayed");
        assert_eq!(err2.source, FailureSource::Regression);
        assert_eq!(err2.draws, vec![40]);

        // "Fix the bug": the regression now passes and the run is green.
        let fixed = |rng: &mut TestRng| {
            let _ = rng.below(1000);
        };
        run_property_at("t::persist", ProptestConfig::with_cases(50), Some(&path), &fixed)
            .expect("fixed property is green, regression file intact");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn duplicate_regressions_are_not_appended() {
        let path = temp_file("dedupe");
        let _ = fs::remove_file(&path);
        assert!(append_regression(&path, &[1, 2]));
        assert!(append_regression(&path, &[1, 2]));
        assert_eq!(load_regressions(&path), vec![vec![1, 2]]);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn passing_property_touches_no_file() {
        let path = temp_file("clean");
        let _ = fs::remove_file(&path);
        run_property_at("t::clean", ProptestConfig::with_cases(16), Some(&path), &|rng| {
            let _ = rng.next_u64();
        })
        .expect("trivially true property");
        assert!(!path.exists(), "persistence only writes on failure");
    }
}
