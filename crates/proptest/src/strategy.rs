//! The [`Strategy`] trait and the built-in strategy kinds: integer ranges,
//! tuples, mapped strategies, and a small character-class string strategy.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// The shim's strategies generate directly (no shrinking), so the trait is
/// just "produce one value from the test's PRNG".
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy applying `map` to every generated value.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String strategy from a character-class pattern.
///
/// Upstream interprets `&str` strategies as full regexes; the shim supports
/// the single form this workspace uses — `[a-z]{m,n}` (one character class
/// with a bounded repetition) — and panics on anything fancier so a future
/// pattern change fails loudly instead of silently generating garbage.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (class, rep) = split_pattern(self);
        let chars = expand_class(class);
        assert!(!chars.is_empty(), "empty character class in `{self}`");
        let (min, max) = parse_repetition(rep);
        let len = min + rng.below(max - min + 1);
        (0..len).map(|_| chars[rng.below(chars.len() as u64) as usize]).collect()
    }
}

/// Splits `[class]{m,n}` into its bracketed parts.
fn split_pattern(pattern: &str) -> (&str, &str) {
    let inner = pattern
        .strip_prefix('[')
        .unwrap_or_else(|| panic!("unsupported string pattern `{pattern}`"));
    let (class, rest) = inner
        .split_once(']')
        .unwrap_or_else(|| panic!("unterminated character class in `{pattern}`"));
    let rep = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition in `{pattern}` (use `{{m,n}}`)"));
    (class, rep)
}

/// Expands a character class body (`a-z`, literals, or both) to its members.
fn expand_class(class: &str) -> Vec<char> {
    let src: Vec<char> = class.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < src.len() {
        if i + 2 < src.len() && src[i + 1] == '-' {
            assert!(src[i] <= src[i + 2], "descending range in character class");
            for c in src[i]..=src[i + 2] {
                out.push(c);
            }
            i += 3;
        } else {
            out.push(src[i]);
            i += 1;
        }
    }
    out
}

/// Parses `m,n` (or a bare `m`) repetition bounds.
fn parse_repetition(rep: &str) -> (u64, u64) {
    let parse = |s: &str| s.trim().parse::<u64>().expect("numeric repetition bound");
    let (min, max) = match rep.split_once(',') {
        Some((lo, hi)) => (parse(lo), parse(hi)),
        None => (parse(rep), parse(rep)),
    };
    assert!(min <= max && max > 0, "bad repetition bounds {{{rep}}}");
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_their_bounds() {
        let mut rng = TestRng::from_seed(1);
        let s = 0u8..=1;
        let drawn: Vec<u8> = (0..64).map(|_| s.generate(&mut rng)).collect();
        assert!(drawn.contains(&0) && drawn.contains(&1));
    }

    #[test]
    fn class_expansion() {
        assert_eq!(expand_class("a-c"), vec!['a', 'b', 'c']);
        assert_eq!(expand_class("xy"), vec!['x', 'y']);
        assert_eq!(expand_class("a-bz"), vec!['a', 'b', 'z']);
    }

    #[test]
    #[should_panic(expected = "unsupported string pattern")]
    fn fancy_regex_rejected() {
        let mut rng = TestRng::from_seed(2);
        let _ = "hello+".generate(&mut rng);
    }
}
