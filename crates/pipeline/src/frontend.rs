//! In-order fetch engine: I-cache, branch prediction, fetch buffer.

use std::collections::VecDeque;

use dide_isa::index_to_pc;
use dide_mem::MemoryHierarchy;
use dide_predictor::branch::{
    BranchPredictor, Btb, BtbConfig, Gshare, ReturnAddressStack, TargetCache,
};
use dide_predictor::future::{pack_events, CfEvent, CfSignature};

use crate::config::PipelineConfig;
use crate::predecode::{Ctrl, PreDec};
use crate::source::RecordSource;
use crate::stats::PipelineStats;

/// An instruction sitting in the fetch buffer.
#[derive(Debug, Clone, Copy)]
struct Fetched {
    seq: u64,
    /// Cycle at which the instruction reaches the rename stage.
    ready_at: u64,
}

/// What [`Frontend::fetch`] would do at a given cycle, for the cycle
/// loop's idle-skip decision. Mirrors `fetch`'s check order exactly:
/// pending branch / stall window first, then trace exhaustion, then buffer
/// occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FetchBlock {
    /// Blocked on an unresolved mispredicted branch; counts a fetch-stall
    /// cycle. Only a backend completion can unblock it.
    Pending,
    /// Blocked until the contained cycle (I-cache fill, redirect penalty,
    /// BTB miss); counts a fetch-stall cycle while blocked.
    Stalled(u64),
    /// Trace exhausted: fetch is a silent no-op forever.
    Exhausted,
    /// Fetch buffer full; counts a fetch-stall cycle. Only rename draining
    /// the buffer can unblock it.
    BufferFull,
    /// Fetch would make progress; the cycle cannot be skipped.
    Progress,
}

/// The fetch engine.
///
/// Walks the committed-path trace in order, consulting the branch
/// predictors exactly as a real frontend would: a mispredicted conditional
/// branch (or indirect-jump target) stops fetch until the branch resolves
/// in the backend plus a redirect penalty; a taken branch ends the fetch
/// group; an I-cache miss stalls the group.
///
/// Records come through the [`RecordSource`] the cycle loop owns (passed
/// into [`Frontend::fetch`] each cycle), so the same frontend serves both
/// the materialized and the streaming path: on a stream, advancing `pos`
/// into a new epoch is what pulls that epoch into existence.
///
/// The frontend also records the *predicted* direction of every fetched
/// conditional branch; those predictions form the CFI signatures consumed
/// by the dead predictor at rename ([`Frontend::signature`]).
#[derive(Debug)]
pub(crate) struct Frontend<'t> {
    /// Per-static-instruction decode (control class, RAS behavior),
    /// indexed by `DynInst::index`.
    predec: &'t [PreDec],
    /// Next unfetched sequence number.
    pos: u64,
    buffer: VecDeque<Fetched>,
    buffer_cap: usize,
    fetch_width: usize,
    frontend_depth: u32,
    mispredict_penalty: u32,
    btb_miss_penalty: u32,
    stalled_until: u64,
    /// Mispredicted control instruction awaiting backend resolution.
    pending_branch: Option<u64>,
    gshare: Gshare,
    btb: Btb,
    ras: ReturnAddressStack,
    /// History-based indirect-target predictor for non-return `jalr`.
    targets: TargetCache,
    /// (seq, event) of fetched control-flow events, pruned as rename
    /// advances: conditional-branch predictions, plus (in jump-aware mode)
    /// predicted indirect-jump targets.
    events: VecDeque<(u64, CfEvent)>,
    jump_aware: bool,
    last_line: Option<u64>,
    l1i_hit_latency: u32,
    /// `log2` of the I-cache line size (line sizes are asserted to be
    /// powers of two), so the per-instruction line check is a shift.
    line_shift: u32,
}

impl<'t> Frontend<'t> {
    pub(crate) fn new(config: &PipelineConfig, predec: &'t [PreDec]) -> Frontend<'t> {
        Frontend {
            predec,
            pos: 0,
            buffer: VecDeque::with_capacity(config.fetch_buffer),
            buffer_cap: config.fetch_buffer,
            fetch_width: config.fetch_width,
            frontend_depth: config.frontend_depth,
            mispredict_penalty: config.mispredict_penalty,
            btb_miss_penalty: config.btb_miss_penalty,
            stalled_until: 0,
            pending_branch: None,
            gshare: Gshare::new(config.gshare_history_bits, config.gshare_log2_entries),
            btb: Btb::new(BtbConfig::default()),
            ras: ReturnAddressStack::new(config.ras_depth),
            targets: TargetCache::default(),
            events: VecDeque::new(),
            jump_aware: config.dead.jump_aware,
            last_line: None,
            l1i_hit_latency: config.hierarchy.l1i.hit_latency,
            line_shift: config.hierarchy.l1i.line_bytes.trailing_zeros(),
        }
    }

    /// Whether every instruction has been fetched and drained.
    pub(crate) fn drained(&self, source: &mut RecordSource<'_, '_>) -> bool {
        self.buffer.is_empty() && source.end_reached(self.pos)
    }

    /// The mispredicted control instruction fetch is waiting on, if any.
    pub(crate) fn pending_branch(&self) -> Option<u64> {
        self.pending_branch
    }

    /// Called when the pending mispredicted branch completes execution:
    /// fetch resumes after the redirect penalty.
    pub(crate) fn resolve_branch(&mut self, seq: u64, resolved_at: u64) {
        if self.pending_branch == Some(seq) {
            self.pending_branch = None;
            self.stalled_until =
                self.stalled_until.max(resolved_at + u64::from(self.mispredict_penalty));
        }
    }

    /// The oldest buffered instruction that has traversed the frontend
    /// pipe by cycle `now`.
    pub(crate) fn peek_ready(&self, now: u64) -> Option<u64> {
        self.buffer.front().filter(|f| f.ready_at <= now).map(|f| f.seq)
    }

    /// Cycle at which the oldest buffered instruction reaches rename
    /// (`None` when the buffer is empty). [`Frontend::peek_ready`] first
    /// succeeds at this cycle: the buffer is FIFO and `ready_at` is
    /// monotone in fetch order, so the front has the earliest.
    pub(crate) fn next_ready_at(&self) -> Option<u64> {
        self.buffer.front().map(|f| f.ready_at)
    }

    /// Sequence number of the instruction rename will see next (the buffer
    /// front), whether or not it is ready yet.
    pub(crate) fn next_seq(&self) -> Option<u64> {
        self.buffer.front().map(|f| f.seq)
    }

    /// Classifies what [`Frontend::fetch`] would do at cycle `t`, assuming
    /// no intervening frontend activity. The checks replicate `fetch`'s
    /// order (and its stall-counter behavior, documented per variant).
    pub(crate) fn block_state(&self, t: u64, source: &mut RecordSource<'_, '_>) -> FetchBlock {
        if self.pending_branch.is_some() {
            FetchBlock::Pending
        } else if t < self.stalled_until {
            FetchBlock::Stalled(self.stalled_until)
        } else if source.end_reached(self.pos) {
            FetchBlock::Exhausted
        } else if self.buffer.len() == self.buffer_cap {
            FetchBlock::BufferFull
        } else {
            FetchBlock::Progress
        }
    }

    /// Consumes the oldest buffered instruction.
    pub(crate) fn pop(&mut self, seq: u64) {
        let f = self.buffer.pop_front().expect("pop from empty fetch buffer");
        debug_assert_eq!(f.seq, seq);
        while self.events.front().is_some_and(|&(s, _)| s <= seq) {
            self.events.pop_front();
        }
    }

    /// CFI signature for the instruction at `seq`: the next `lookahead`
    /// control-flow events already fetched (predicted branch directions,
    /// plus predicted indirect targets in jump-aware mode). Fewer may be
    /// available near a fetch stall; the signature length reflects that,
    /// exactly as in hardware (the predictor simply sees a shorter
    /// pattern).
    pub(crate) fn signature(&self, seq: u64, lookahead: u8) -> CfSignature {
        pack_events(self.events.iter().filter(|&&(s, _)| s > seq).map(|&(_, e)| e), lookahead)
    }

    /// Fetches up to one group of instructions at cycle `now`.
    pub(crate) fn fetch(
        &mut self,
        now: u64,
        source: &mut RecordSource<'_, '_>,
        hierarchy: &mut MemoryHierarchy,
        stats: &mut PipelineStats,
    ) {
        if self.pending_branch.is_some() || now < self.stalled_until {
            stats.fetch_stall_cycles += 1;
            return;
        }
        for _ in 0..self.fetch_width {
            let Some(r) = source.try_get(self.pos) else {
                return; // trace exhausted
            };
            if self.buffer.len() == self.buffer_cap {
                stats.fetch_stall_cycles += 1;
                return;
            }

            // I-cache: charge when the group crosses into a new line.
            let pc = index_to_pc(r.index);
            let line = pc >> self.line_shift;
            if self.last_line != Some(line) {
                let latency = hierarchy.access_inst(pc);
                self.last_line = Some(line);
                if latency > self.l1i_hit_latency {
                    // Miss: fill and retry this instruction after the stall.
                    self.stalled_until = now + u64::from(latency - self.l1i_hit_latency);
                    return;
                }
            }

            self.buffer
                .push_back(Fetched { seq: r.seq, ready_at: now + u64::from(self.frontend_depth) });
            self.pos += 1;

            match self.predec[r.index as usize].ctrl {
                Ctrl::None => {}
                Ctrl::CondBranch => {
                    let predicted = self.gshare.predict(r.index);
                    self.gshare.update(r.index, r.taken());
                    self.events.push_back((r.seq, CfEvent::Cond(predicted)));
                    if predicted != r.taken() {
                        stats.branch_mispredicts += 1;
                        self.pending_branch = Some(r.seq);
                        return;
                    }
                    if r.taken() {
                        // Correct taken prediction still needs a target.
                        if self.btb.lookup(r.index) != Some(r.next_index) {
                            stats.btb_misses += 1;
                            self.btb.insert(r.index, r.next_index);
                            self.stalled_until = now + u64::from(self.btb_miss_penalty);
                        }
                        return; // taken branch ends the fetch group
                    }
                }
                Ctrl::Jal { push_ras } => {
                    if push_ras {
                        self.ras.push(r.index + 1);
                    }
                    return; // direct target known at decode; group ends
                }
                Ctrl::Jalr { is_return, push_ras } => {
                    let predicted = if is_return {
                        self.ras.pop()
                    } else {
                        if push_ras {
                            self.ras.push(r.index + 1);
                        }
                        self.targets.predict(r.index)
                    };
                    if !is_return {
                        self.targets.update(r.index, r.next_index);
                    }
                    if self.jump_aware && !is_return {
                        let hash = CfEvent::hash_target(predicted.unwrap_or(0));
                        self.events.push_back((r.seq, CfEvent::Indirect(hash)));
                    }
                    if predicted != Some(r.next_index) {
                        stats.branch_mispredicts += 1;
                        self.pending_branch = Some(r.seq);
                    }
                    return; // indirect transfer ends the fetch group
                }
                Ctrl::Halt => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dide_emu::{DynInst, Emulator};
    use dide_isa::{ProgramBuilder, Reg};
    use dide_mem::HierarchyConfig;

    fn setup(iters: i64) -> (Vec<DynInst>, Vec<PreDec>, PipelineConfig) {
        let mut b = ProgramBuilder::new("f");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, iters);
        let top = b.label();
        b.bind(top);
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, top);
        b.out(Reg::T0);
        b.halt();
        let p = b.build().unwrap();
        let t = Emulator::new(&p).run().unwrap();
        let cfg = PipelineConfig::baseline();
        let predec = crate::predecode::predecode(&p, &cfg);
        (t.records().to_vec(), predec, cfg)
    }

    #[test]
    fn fetches_in_order_and_drains() {
        let (records, predec, cfg) = setup(3);
        let mut src = RecordSource::Slice(&records);
        let mut fe = Frontend::new(&cfg, &predec);
        let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
        let mut stats = PipelineStats::default();
        let mut got = Vec::new();
        for now in 0..2000 {
            fe.fetch(now, &mut src, &mut mem, &mut stats);
            while let Some(seq) = fe.peek_ready(now) {
                got.push(seq);
                fe.pop(seq);
            }
            if let Some(seq) = fe.pending_branch() {
                fe.resolve_branch(seq, now);
            }
            if fe.drained(&mut src) {
                break;
            }
        }
        assert!(fe.drained(&mut src));
        let expected: Vec<u64> = (0..records.len() as u64).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn signature_reflects_upcoming_branch_predictions() {
        let (records, predec, cfg) = setup(5);
        let mut src = RecordSource::Slice(&records);
        let mut fe = Frontend::new(&cfg, &predec);
        let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
        let mut stats = PipelineStats::default();
        // Fetch for a while to accumulate branch predictions.
        for now in 0..200 {
            fe.fetch(now, &mut src, &mut mem, &mut stats);
            if let Some(seq) = fe.pending_branch() {
                fe.resolve_branch(seq, now);
            }
        }
        // Instruction 0's signature covers fetched branches after it.
        let sig = fe.signature(0, 4);
        assert!(!sig.is_empty(), "at least one branch prediction visible");
    }

    #[test]
    fn mispredict_blocks_fetch_until_resolved() {
        let (records, predec, cfg) = setup(8);
        let mut src = RecordSource::Slice(&records);
        let mut fe = Frontend::new(&cfg, &predec);
        let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
        let mut stats = PipelineStats::default();
        let mut now = 0;
        // Fetch until the first mispredict appears.
        while fe.pending_branch().is_none() {
            fe.fetch(now, &mut src, &mut mem, &mut stats);
            now += 1;
            assert!(now < 1000, "expected a mispredict eventually");
        }
        let buffered = fe.buffer.len();
        fe.fetch(now, &mut src, &mut mem, &mut stats);
        assert_eq!(fe.buffer.len(), buffered, "no fetch while pending");
        let seq = fe.pending_branch().unwrap();
        fe.resolve_branch(seq, now);
        assert!(fe.pending_branch().is_none());
        // Still stalled for the redirect penalty.
        fe.fetch(now + 1, &mut src, &mut mem, &mut stats);
        assert_eq!(fe.buffer.len(), buffered);
        fe.fetch(now + 1 + u64::from(cfg.mispredict_penalty), &mut src, &mut mem, &mut stats);
        assert!(fe.buffer.len() > buffered, "fetch resumed after penalty");
    }

    #[test]
    fn mispredicts_counted() {
        let (records, predec, cfg) = setup(50);
        let mut src = RecordSource::Slice(&records);
        let mut fe = Frontend::new(&cfg, &predec);
        let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
        let mut stats = PipelineStats::default();
        for now in 0..100_000 {
            fe.fetch(now, &mut src, &mut mem, &mut stats);
            while let Some(seq) = fe.peek_ready(now) {
                fe.pop(seq);
            }
            if let Some(seq) = fe.pending_branch() {
                fe.resolve_branch(seq, now);
            }
            if fe.drained(&mut src) {
                break;
            }
        }
        // The loop branch mispredicts at least on the final iteration.
        assert!(stats.branch_mispredicts >= 1);
        assert!(fe.drained(&mut src));
    }
}
