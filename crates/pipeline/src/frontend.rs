//! In-order fetch engine: I-cache, branch prediction, fetch buffer.

use std::collections::VecDeque;

use dide_emu::DynInst;
use dide_isa::{index_to_pc, OpcodeKind, Reg};
use dide_mem::MemoryHierarchy;
use dide_predictor::branch::{
    BranchPredictor, Btb, BtbConfig, Gshare, ReturnAddressStack, TargetCache,
};
use dide_predictor::future::{pack_events, CfEvent, CfSignature};

use crate::config::PipelineConfig;
use crate::stats::PipelineStats;

/// An instruction sitting in the fetch buffer.
#[derive(Debug, Clone, Copy)]
struct Fetched {
    seq: u64,
    /// Cycle at which the instruction reaches the rename stage.
    ready_at: u64,
}

/// The fetch engine.
///
/// Walks the committed-path trace in order, consulting the branch
/// predictors exactly as a real frontend would: a mispredicted conditional
/// branch (or indirect-jump target) stops fetch until the branch resolves
/// in the backend plus a redirect penalty; a taken branch ends the fetch
/// group; an I-cache miss stalls the group.
///
/// The frontend also records the *predicted* direction of every fetched
/// conditional branch; those predictions form the CFI signatures consumed
/// by the dead predictor at rename ([`Frontend::signature`]).
#[derive(Debug)]
pub(crate) struct Frontend<'t> {
    records: &'t [DynInst],
    pos: usize,
    buffer: VecDeque<Fetched>,
    buffer_cap: usize,
    fetch_width: usize,
    frontend_depth: u32,
    mispredict_penalty: u32,
    btb_miss_penalty: u32,
    stalled_until: u64,
    /// Mispredicted control instruction awaiting backend resolution.
    pending_branch: Option<u64>,
    gshare: Gshare,
    btb: Btb,
    ras: ReturnAddressStack,
    /// History-based indirect-target predictor for non-return `jalr`.
    targets: TargetCache,
    /// (seq, event) of fetched control-flow events, pruned as rename
    /// advances: conditional-branch predictions, plus (in jump-aware mode)
    /// predicted indirect-jump targets.
    events: VecDeque<(u64, CfEvent)>,
    jump_aware: bool,
    last_line: Option<u64>,
    l1i_hit_latency: u32,
}

impl<'t> Frontend<'t> {
    pub(crate) fn new(config: &PipelineConfig, records: &'t [DynInst]) -> Frontend<'t> {
        Frontend {
            records,
            pos: 0,
            buffer: VecDeque::with_capacity(config.fetch_buffer),
            buffer_cap: config.fetch_buffer,
            fetch_width: config.fetch_width,
            frontend_depth: config.frontend_depth,
            mispredict_penalty: config.mispredict_penalty,
            btb_miss_penalty: config.btb_miss_penalty,
            stalled_until: 0,
            pending_branch: None,
            gshare: Gshare::new(config.gshare_history_bits, config.gshare_log2_entries),
            btb: Btb::new(BtbConfig::default()),
            ras: ReturnAddressStack::new(config.ras_depth),
            targets: TargetCache::default(),
            events: VecDeque::new(),
            jump_aware: config.dead.jump_aware,
            last_line: None,
            l1i_hit_latency: config.hierarchy.l1i.hit_latency,
        }
    }

    /// Whether every instruction has been fetched and drained.
    pub(crate) fn drained(&self) -> bool {
        self.pos == self.records.len() && self.buffer.is_empty()
    }

    /// The mispredicted control instruction fetch is waiting on, if any.
    pub(crate) fn pending_branch(&self) -> Option<u64> {
        self.pending_branch
    }

    /// Called when the pending mispredicted branch completes execution:
    /// fetch resumes after the redirect penalty.
    pub(crate) fn resolve_branch(&mut self, seq: u64, resolved_at: u64) {
        if self.pending_branch == Some(seq) {
            self.pending_branch = None;
            self.stalled_until =
                self.stalled_until.max(resolved_at + u64::from(self.mispredict_penalty));
        }
    }

    /// The oldest buffered instruction that has traversed the frontend
    /// pipe by cycle `now`.
    pub(crate) fn peek_ready(&self, now: u64) -> Option<u64> {
        self.buffer.front().filter(|f| f.ready_at <= now).map(|f| f.seq)
    }

    /// Consumes the oldest buffered instruction.
    pub(crate) fn pop(&mut self, seq: u64) {
        let f = self.buffer.pop_front().expect("pop from empty fetch buffer");
        debug_assert_eq!(f.seq, seq);
        while self.events.front().is_some_and(|&(s, _)| s <= seq) {
            self.events.pop_front();
        }
    }

    /// CFI signature for the instruction at `seq`: the next `lookahead`
    /// control-flow events already fetched (predicted branch directions,
    /// plus predicted indirect targets in jump-aware mode). Fewer may be
    /// available near a fetch stall; the signature length reflects that,
    /// exactly as in hardware (the predictor simply sees a shorter
    /// pattern).
    pub(crate) fn signature(&self, seq: u64, lookahead: u8) -> CfSignature {
        pack_events(self.events.iter().filter(|&&(s, _)| s > seq).map(|&(_, e)| e), lookahead)
    }

    /// Fetches up to one group of instructions at cycle `now`.
    pub(crate) fn fetch(
        &mut self,
        now: u64,
        hierarchy: &mut MemoryHierarchy,
        stats: &mut PipelineStats,
    ) {
        if self.pending_branch.is_some() || now < self.stalled_until {
            stats.fetch_stall_cycles += 1;
            return;
        }
        for _ in 0..self.fetch_width {
            if self.pos == self.records.len() {
                return;
            }
            if self.buffer.len() == self.buffer_cap {
                stats.fetch_stall_cycles += 1;
                return;
            }
            let r = &self.records[self.pos];

            // I-cache: charge when the group crosses into a new line.
            let pc = index_to_pc(r.index);
            let line = pc / u64::from(hierarchy.config().l1i.line_bytes as u32);
            if self.last_line != Some(line) {
                let latency = hierarchy.access_inst(pc);
                self.last_line = Some(line);
                if latency > self.l1i_hit_latency {
                    // Miss: fill and retry this instruction after the stall.
                    self.stalled_until = now + u64::from(latency - self.l1i_hit_latency);
                    return;
                }
            }

            self.buffer
                .push_back(Fetched { seq: r.seq, ready_at: now + u64::from(self.frontend_depth) });
            self.pos += 1;

            match r.inst.op.kind() {
                OpcodeKind::Branch(_) => {
                    let predicted = self.gshare.predict(r.index);
                    self.gshare.update(r.index, r.taken);
                    self.events.push_back((r.seq, CfEvent::Cond(predicted)));
                    if predicted != r.taken {
                        stats.branch_mispredicts += 1;
                        self.pending_branch = Some(r.seq);
                        return;
                    }
                    if r.taken {
                        // Correct taken prediction still needs a target.
                        if self.btb.lookup(r.index) != Some(r.next_index) {
                            stats.btb_misses += 1;
                            self.btb.insert(r.index, r.next_index);
                            self.stalled_until = now + u64::from(self.btb_miss_penalty);
                        }
                        return; // taken branch ends the fetch group
                    }
                }
                OpcodeKind::Jal => {
                    if r.inst.rd == Reg::RA {
                        self.ras.push(r.index + 1);
                    }
                    return; // direct target known at decode; group ends
                }
                OpcodeKind::Jalr => {
                    let is_return = r.inst.rs1 == Reg::RA && r.inst.rd.is_zero();
                    let predicted = if is_return {
                        self.ras.pop()
                    } else {
                        if r.inst.rd == Reg::RA {
                            self.ras.push(r.index + 1);
                        }
                        self.targets.predict(r.index)
                    };
                    if !is_return {
                        self.targets.update(r.index, r.next_index);
                    }
                    if self.jump_aware && !is_return {
                        let hash = CfEvent::hash_target(predicted.unwrap_or(0));
                        self.events.push_back((r.seq, CfEvent::Indirect(hash)));
                    }
                    if predicted != Some(r.next_index) {
                        stats.branch_mispredicts += 1;
                        self.pending_branch = Some(r.seq);
                    }
                    return; // indirect transfer ends the fetch group
                }
                OpcodeKind::Halt => return,
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dide_emu::Emulator;
    use dide_isa::{ProgramBuilder, Reg};
    use dide_mem::HierarchyConfig;

    fn setup(iters: i64) -> (Vec<DynInst>, PipelineConfig) {
        let mut b = ProgramBuilder::new("f");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, iters);
        let top = b.label();
        b.bind(top);
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, top);
        b.out(Reg::T0);
        b.halt();
        let t = Emulator::new(&b.build().unwrap()).run().unwrap();
        (t.records().to_vec(), PipelineConfig::baseline())
    }

    #[test]
    fn fetches_in_order_and_drains() {
        let (records, cfg) = setup(3);
        let mut fe = Frontend::new(&cfg, &records);
        let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
        let mut stats = PipelineStats::default();
        let mut got = Vec::new();
        for now in 0..2000 {
            fe.fetch(now, &mut mem, &mut stats);
            while let Some(seq) = fe.peek_ready(now) {
                got.push(seq);
                fe.pop(seq);
            }
            if let Some(seq) = fe.pending_branch() {
                fe.resolve_branch(seq, now);
            }
            if fe.drained() {
                break;
            }
        }
        assert!(fe.drained());
        let expected: Vec<u64> = (0..records.len() as u64).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn signature_reflects_upcoming_branch_predictions() {
        let (records, cfg) = setup(5);
        let mut fe = Frontend::new(&cfg, &records);
        let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
        let mut stats = PipelineStats::default();
        // Fetch for a while to accumulate branch predictions.
        for now in 0..200 {
            fe.fetch(now, &mut mem, &mut stats);
            if let Some(seq) = fe.pending_branch() {
                fe.resolve_branch(seq, now);
            }
        }
        // Instruction 0's signature covers fetched branches after it.
        let sig = fe.signature(0, 4);
        assert!(!sig.is_empty(), "at least one branch prediction visible");
    }

    #[test]
    fn mispredict_blocks_fetch_until_resolved() {
        let (records, cfg) = setup(8);
        let mut fe = Frontend::new(&cfg, &records);
        let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
        let mut stats = PipelineStats::default();
        let mut now = 0;
        // Fetch until the first mispredict appears.
        while fe.pending_branch().is_none() {
            fe.fetch(now, &mut mem, &mut stats);
            now += 1;
            assert!(now < 1000, "expected a mispredict eventually");
        }
        let buffered = fe.buffer.len();
        fe.fetch(now, &mut mem, &mut stats);
        assert_eq!(fe.buffer.len(), buffered, "no fetch while pending");
        let seq = fe.pending_branch().unwrap();
        fe.resolve_branch(seq, now);
        assert!(fe.pending_branch().is_none());
        // Still stalled for the redirect penalty.
        fe.fetch(now + 1, &mut mem, &mut stats);
        assert_eq!(fe.buffer.len(), buffered);
        fe.fetch(now + 1 + u64::from(cfg.mispredict_penalty), &mut mem, &mut stats);
        assert!(fe.buffer.len() > buffered, "fetch resumed after penalty");
    }

    #[test]
    fn mispredicts_counted() {
        let (records, cfg) = setup(50);
        let mut fe = Frontend::new(&cfg, &records);
        let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
        let mut stats = PipelineStats::default();
        for now in 0..100_000 {
            fe.fetch(now, &mut mem, &mut stats);
            while let Some(seq) = fe.peek_ready(now) {
                fe.pop(seq);
            }
            if let Some(seq) = fe.pending_branch() {
                fe.resolve_branch(seq, now);
            }
            if fe.drained() {
                break;
            }
        }
        // The loop branch mispredicts at least on the final iteration.
        assert!(stats.branch_mispredicts >= 1);
        assert!(fe.drained());
    }
}
