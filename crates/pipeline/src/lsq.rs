//! Load and store queues with oracle memory disambiguation.
//!
//! The trace supplies every access address at dispatch time, so
//! disambiguation is exact ("oracle"): a load may issue once every older
//! overlapping store has executed (its address and data are known). This is
//! a common simulator idealization; see DESIGN.md's substitution table.
//!
//! The store queue is **indexed** rather than scanned: entries are
//! seq-sorted (dispatch order), so seq→slot resolution is a binary search,
//! and an **executed-prefix** index tracks the first unexecuted entry —
//! [`LoadStoreQueues::load_may_issue`], called every cycle for every
//! ready-but-blocked load, answers from the prefix in O(1) in the common
//! case and only walks the (short) unexecuted window otherwise. An address
//! envelope over the queued stores lets loads disjoint from everything in
//! the queue skip the walk entirely.

use std::collections::VecDeque;

use dide_emu::MemAccess;

/// One store-queue entry.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StoreEntry {
    pub(crate) seq: u64,
    pub(crate) mem: MemAccess,
    /// Address and data available (store has executed).
    pub(crate) executed: bool,
}

/// Split load/store queues.
#[derive(Debug, Clone)]
pub(crate) struct LoadStoreQueues {
    loads: VecDeque<u64>,
    /// Seq-sorted (dispatch-order) store entries.
    stores: VecDeque<StoreEntry>,
    /// Queue index of the oldest unexecuted store (== `stores.len()` when
    /// every queued store has executed). Entries before it have all
    /// executed: the executed-prefix summary.
    first_unexecuted: usize,
    /// Conservative address envelope (first byte, last byte) over the
    /// queued stores; grows on push, reset when the queue drains. Loads
    /// disjoint from the envelope overlap nothing in the queue.
    envelope: Option<(u64, u64)>,
    lq_capacity: usize,
    sq_capacity: usize,
}

/// Inclusive byte interval of an access (addresses near `u64::MAX`
/// saturate, matching [`MemAccess::overlaps`]).
fn span(mem: MemAccess) -> (u64, u64) {
    (mem.addr, mem.addr.saturating_add(mem.width.bytes() - 1))
}

impl LoadStoreQueues {
    pub(crate) fn new(lq_capacity: usize, sq_capacity: usize) -> LoadStoreQueues {
        assert!(lq_capacity > 0 && sq_capacity > 0, "LSQ needs capacity");
        LoadStoreQueues {
            loads: VecDeque::new(),
            stores: VecDeque::new(),
            first_unexecuted: 0,
            envelope: None,
            lq_capacity,
            sq_capacity,
        }
    }

    pub(crate) fn lq_full(&self) -> bool {
        self.loads.len() == self.lq_capacity
    }

    pub(crate) fn lq_len(&self) -> usize {
        self.loads.len()
    }

    pub(crate) fn sq_len(&self) -> usize {
        self.stores.len()
    }

    pub(crate) fn sq_full(&self) -> bool {
        self.stores.len() == self.sq_capacity
    }

    pub(crate) fn push_load(&mut self, seq: u64) {
        debug_assert!(!self.lq_full());
        self.loads.push_back(seq);
    }

    pub(crate) fn push_store(&mut self, seq: u64, mem: MemAccess) {
        debug_assert!(!self.sq_full());
        debug_assert!(
            self.stores.back().is_none_or(|last| last.seq < seq),
            "store queue must stay seq-ordered"
        );
        self.stores.push_back(StoreEntry { seq, mem, executed: false });
        let (lo, hi) = span(mem);
        self.envelope = Some(match self.envelope {
            None => (lo, hi),
            Some((elo, ehi)) => (elo.min(lo), ehi.max(hi)),
        });
    }

    /// Number of queued stores older than `seq` (also: the queue index of
    /// `seq` itself, when present).
    fn older_than(&self, seq: u64) -> usize {
        self.stores.partition_point(|s| s.seq < seq)
    }

    /// Marks the store with sequence `seq` as executed.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not in the queue: every executed store was
    /// dispatched and has not yet committed, so a miss means a model bug —
    /// most likely an *eliminated* store leaking an execution completion.
    #[inline]
    pub(crate) fn store_executed(&mut self, seq: u64) {
        let idx = self.older_than(seq);
        assert!(
            self.stores.get(idx).is_some_and(|e| e.seq == seq),
            "store_executed: seq {seq} is not in the store queue \
             (an eliminated or committed store leaked a completion)"
        );
        self.stores[idx].executed = true;
        if idx == self.first_unexecuted {
            while self.stores.get(self.first_unexecuted).is_some_and(|e| e.executed) {
                self.first_unexecuted += 1;
            }
        }
    }

    /// Whether the load with sequence `seq` may issue: every older store
    /// whose access overlaps has executed.
    #[inline]
    pub(crate) fn load_may_issue(&self, seq: u64, mem: MemAccess) -> bool {
        if self.outside_envelope(mem) {
            return true;
        }
        let older = self.older_than(seq);
        if older <= self.first_unexecuted {
            return true; // executed-prefix fast path: all older stores done
        }
        self.stores
            .iter()
            .skip(self.first_unexecuted)
            .take(older - self.first_unexecuted)
            .all(|s| s.executed || !s.mem.overlaps(mem))
    }

    /// Whether the load would be forwarded from an executed, older,
    /// overlapping store still in the queue.
    #[inline]
    pub(crate) fn load_forwards(&self, seq: u64, mem: MemAccess) -> bool {
        if self.outside_envelope(mem) {
            return false;
        }
        let older = self.older_than(seq);
        self.stores.iter().take(older).any(|s| s.executed && s.mem.overlaps(mem))
    }

    fn outside_envelope(&self, mem: MemAccess) -> bool {
        match self.envelope {
            None => true,
            Some((elo, ehi)) => {
                let (lo, hi) = span(mem);
                hi < elo || lo > ehi
            }
        }
    }

    /// Retires the oldest load (at commit).
    pub(crate) fn pop_load(&mut self, seq: u64) {
        debug_assert_eq!(self.loads.front(), Some(&seq), "loads retire in order");
        self.loads.pop_front();
    }

    /// Retires the oldest store (at commit).
    pub(crate) fn pop_store(&mut self, seq: u64) {
        debug_assert_eq!(self.stores.front().map(|e| e.seq), Some(seq), "stores retire in order");
        let popped = self.stores.pop_front().expect("store queue non-empty");
        debug_assert!(popped.executed, "stores execute before they commit");
        self.first_unexecuted = self.first_unexecuted.saturating_sub(1);
        if self.stores.is_empty() {
            self.envelope = None; // the envelope only ever grows; reset when drained
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dide_isa::MemWidth;

    fn acc(addr: u64, width: MemWidth) -> MemAccess {
        MemAccess { addr, width }
    }

    #[test]
    fn load_waits_for_overlapping_older_store() {
        let mut lsq = LoadStoreQueues::new(4, 4);
        lsq.push_store(1, acc(0x100, MemWidth::B8));
        lsq.push_load(2);
        assert!(!lsq.load_may_issue(2, acc(0x104, MemWidth::B4)));
        lsq.store_executed(1);
        assert!(lsq.load_may_issue(2, acc(0x104, MemWidth::B4)));
        assert!(lsq.load_forwards(2, acc(0x104, MemWidth::B4)));
    }

    #[test]
    fn disjoint_store_does_not_block() {
        let mut lsq = LoadStoreQueues::new(4, 4);
        lsq.push_store(1, acc(0x100, MemWidth::B8));
        lsq.push_load(2);
        assert!(lsq.load_may_issue(2, acc(0x200, MemWidth::B8)));
        assert!(!lsq.load_forwards(2, acc(0x200, MemWidth::B8)));
    }

    #[test]
    fn forwarding_across_partial_overlap() {
        // An executed 8-byte store at [0x100, 0x108) must forward to (and
        // never block) loads that only partially overlap it: the first byte,
        // the last byte, a straddle of its start, and a straddle of its end.
        let mut lsq = LoadStoreQueues::new(8, 8);
        lsq.push_store(1, acc(0x100, MemWidth::B8));
        lsq.push_load(2);
        let partials = [
            acc(0x100, MemWidth::B1), // first byte
            acc(0x107, MemWidth::B1), // last byte
            acc(0xFC, MemWidth::B8),  // straddles the store's start
            acc(0x104, MemWidth::B8), // straddles the store's end
        ];
        for mem in partials {
            assert!(!lsq.load_may_issue(2, mem), "{mem:?} must wait");
            assert!(!lsq.load_forwards(2, mem), "{mem:?} cannot forward yet");
        }
        lsq.store_executed(1);
        for mem in partials {
            assert!(lsq.load_may_issue(2, mem), "{mem:?} may issue");
            assert!(lsq.load_forwards(2, mem), "{mem:?} forwards");
        }
        // One byte past either end is disjoint: issues freely, no forward.
        for mem in [acc(0xFF, MemWidth::B1), acc(0x108, MemWidth::B1)] {
            assert!(lsq.load_may_issue(2, mem), "{mem:?} is disjoint");
            assert!(!lsq.load_forwards(2, mem), "{mem:?} must not forward");
        }
    }

    #[test]
    fn forwarding_only_from_older_overlapping_stores() {
        // Three stores around one load: an older disjoint store and a
        // younger overlapping store contribute nothing; only the older
        // partially-overlapping store gates and forwards.
        let mut lsq = LoadStoreQueues::new(8, 8);
        lsq.push_store(1, acc(0x200, MemWidth::B4)); // older, disjoint
        lsq.push_store(2, acc(0x102, MemWidth::B2)); // older, partial overlap
        lsq.push_load(3);
        lsq.push_store(4, acc(0x100, MemWidth::B8)); // younger, full overlap
        let load = acc(0x100, MemWidth::B4);
        assert!(!lsq.load_may_issue(3, load));
        lsq.store_executed(1);
        assert!(!lsq.load_may_issue(3, load), "disjoint store execution is irrelevant");
        lsq.store_executed(4);
        assert!(!lsq.load_may_issue(3, load), "younger store execution is irrelevant");
        lsq.store_executed(2);
        assert!(lsq.load_may_issue(3, load));
        assert!(lsq.load_forwards(3, load));
    }

    #[test]
    fn younger_store_is_ignored() {
        let mut lsq = LoadStoreQueues::new(4, 4);
        lsq.push_load(1);
        lsq.push_store(2, acc(0x100, MemWidth::B8));
        assert!(lsq.load_may_issue(1, acc(0x100, MemWidth::B8)));
    }

    #[test]
    fn capacity_and_retirement() {
        let mut lsq = LoadStoreQueues::new(1, 1);
        lsq.push_load(1);
        assert!(lsq.lq_full());
        lsq.push_store(2, acc(0x0, MemWidth::B1));
        assert!(lsq.sq_full());
        lsq.pop_load(1);
        lsq.store_executed(2);
        lsq.pop_store(2);
        assert!(!lsq.lq_full());
        assert!(!lsq.sq_full());
    }

    #[test]
    fn executed_prefix_tracks_out_of_order_execution() {
        // Stores execute 3, then 1, then 2: the prefix index must only
        // advance over the contiguous executed run at the head.
        let mut lsq = LoadStoreQueues::new(8, 8);
        lsq.push_store(1, acc(0x100, MemWidth::B8));
        lsq.push_store(2, acc(0x108, MemWidth::B8));
        lsq.push_store(3, acc(0x110, MemWidth::B8));
        lsq.push_load(4);
        let probe = acc(0x100, MemWidth::B8);
        lsq.store_executed(3);
        assert!(!lsq.load_may_issue(4, probe), "head store still pending");
        lsq.store_executed(1);
        assert!(lsq.load_may_issue(4, probe), "only the overlapping store matters");
        lsq.store_executed(2);
        assert!(lsq.load_may_issue(4, acc(0x108, MemWidth::B8)));
        // Retire everything in order; the prefix stays consistent and a
        // later push still disambiguates correctly.
        lsq.pop_store(1);
        lsq.pop_store(2);
        lsq.pop_store(3);
        lsq.push_store(5, acc(0x100, MemWidth::B8));
        lsq.push_load(6);
        assert!(!lsq.load_may_issue(6, probe));
        lsq.store_executed(5);
        assert!(lsq.load_may_issue(6, probe));
    }

    #[test]
    #[should_panic(expected = "not in the store queue")]
    fn completion_for_unknown_store_panics() {
        // Satellite regression: a completion for a store that was never
        // dispatched (e.g. an *eliminated* store) must not silently no-op.
        let mut lsq = LoadStoreQueues::new(4, 4);
        lsq.push_store(1, acc(0x100, MemWidth::B8));
        lsq.store_executed(7);
    }

    #[test]
    #[should_panic(expected = "not in the store queue")]
    fn completion_for_committed_store_panics() {
        let mut lsq = LoadStoreQueues::new(4, 4);
        lsq.push_store(1, acc(0x100, MemWidth::B8));
        lsq.store_executed(1);
        lsq.pop_store(1);
        lsq.store_executed(1);
    }
}
