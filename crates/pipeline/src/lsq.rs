//! Load and store queues with oracle memory disambiguation.
//!
//! The trace supplies every access address at dispatch time, so
//! disambiguation is exact ("oracle"): a load may issue once every older
//! overlapping store has executed (its address and data are known). This is
//! a common simulator idealization; see DESIGN.md's substitution table.

use std::collections::VecDeque;

use dide_emu::MemAccess;

/// One store-queue entry.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StoreEntry {
    pub(crate) seq: u64,
    pub(crate) mem: MemAccess,
    /// Address and data available (store has executed).
    pub(crate) executed: bool,
}

/// Split load/store queues.
#[derive(Debug, Clone)]
pub(crate) struct LoadStoreQueues {
    loads: VecDeque<u64>,
    stores: VecDeque<StoreEntry>,
    lq_capacity: usize,
    sq_capacity: usize,
}

impl LoadStoreQueues {
    pub(crate) fn new(lq_capacity: usize, sq_capacity: usize) -> LoadStoreQueues {
        assert!(lq_capacity > 0 && sq_capacity > 0, "LSQ needs capacity");
        LoadStoreQueues {
            loads: VecDeque::new(),
            stores: VecDeque::new(),
            lq_capacity,
            sq_capacity,
        }
    }

    pub(crate) fn lq_full(&self) -> bool {
        self.loads.len() == self.lq_capacity
    }

    pub(crate) fn lq_len(&self) -> usize {
        self.loads.len()
    }

    pub(crate) fn sq_len(&self) -> usize {
        self.stores.len()
    }

    pub(crate) fn sq_full(&self) -> bool {
        self.stores.len() == self.sq_capacity
    }

    pub(crate) fn push_load(&mut self, seq: u64) {
        debug_assert!(!self.lq_full());
        self.loads.push_back(seq);
    }

    pub(crate) fn push_store(&mut self, seq: u64, mem: MemAccess) {
        debug_assert!(!self.sq_full());
        self.stores.push_back(StoreEntry { seq, mem, executed: false });
    }

    /// Marks the store with sequence `seq` as executed.
    pub(crate) fn store_executed(&mut self, seq: u64) {
        if let Some(e) = self.stores.iter_mut().find(|e| e.seq == seq) {
            e.executed = true;
        }
    }

    /// Whether the load with sequence `seq` may issue: every older store
    /// whose access overlaps has executed.
    pub(crate) fn load_may_issue(&self, seq: u64, mem: MemAccess) -> bool {
        self.stores.iter().take_while(|s| s.seq < seq).all(|s| s.executed || !s.mem.overlaps(mem))
    }

    /// Whether the load would be forwarded from an executed, older,
    /// overlapping store still in the queue.
    pub(crate) fn load_forwards(&self, seq: u64, mem: MemAccess) -> bool {
        self.stores.iter().take_while(|s| s.seq < seq).any(|s| s.executed && s.mem.overlaps(mem))
    }

    /// Retires the oldest load (at commit).
    pub(crate) fn pop_load(&mut self, seq: u64) {
        debug_assert_eq!(self.loads.front(), Some(&seq), "loads retire in order");
        self.loads.pop_front();
    }

    /// Retires the oldest store (at commit).
    pub(crate) fn pop_store(&mut self, seq: u64) {
        debug_assert_eq!(self.stores.front().map(|e| e.seq), Some(seq), "stores retire in order");
        self.stores.pop_front();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dide_isa::MemWidth;

    fn acc(addr: u64, width: MemWidth) -> MemAccess {
        MemAccess { addr, width }
    }

    #[test]
    fn load_waits_for_overlapping_older_store() {
        let mut lsq = LoadStoreQueues::new(4, 4);
        lsq.push_store(1, acc(0x100, MemWidth::B8));
        lsq.push_load(2);
        assert!(!lsq.load_may_issue(2, acc(0x104, MemWidth::B4)));
        lsq.store_executed(1);
        assert!(lsq.load_may_issue(2, acc(0x104, MemWidth::B4)));
        assert!(lsq.load_forwards(2, acc(0x104, MemWidth::B4)));
    }

    #[test]
    fn disjoint_store_does_not_block() {
        let mut lsq = LoadStoreQueues::new(4, 4);
        lsq.push_store(1, acc(0x100, MemWidth::B8));
        lsq.push_load(2);
        assert!(lsq.load_may_issue(2, acc(0x200, MemWidth::B8)));
        assert!(!lsq.load_forwards(2, acc(0x200, MemWidth::B8)));
    }

    #[test]
    fn forwarding_across_partial_overlap() {
        // An executed 8-byte store at [0x100, 0x108) must forward to (and
        // never block) loads that only partially overlap it: the first byte,
        // the last byte, a straddle of its start, and a straddle of its end.
        let mut lsq = LoadStoreQueues::new(8, 8);
        lsq.push_store(1, acc(0x100, MemWidth::B8));
        lsq.push_load(2);
        let partials = [
            acc(0x100, MemWidth::B1), // first byte
            acc(0x107, MemWidth::B1), // last byte
            acc(0xFC, MemWidth::B8),  // straddles the store's start
            acc(0x104, MemWidth::B8), // straddles the store's end
        ];
        for mem in partials {
            assert!(!lsq.load_may_issue(2, mem), "{mem:?} must wait");
            assert!(!lsq.load_forwards(2, mem), "{mem:?} cannot forward yet");
        }
        lsq.store_executed(1);
        for mem in partials {
            assert!(lsq.load_may_issue(2, mem), "{mem:?} may issue");
            assert!(lsq.load_forwards(2, mem), "{mem:?} forwards");
        }
        // One byte past either end is disjoint: issues freely, no forward.
        for mem in [acc(0xFF, MemWidth::B1), acc(0x108, MemWidth::B1)] {
            assert!(lsq.load_may_issue(2, mem), "{mem:?} is disjoint");
            assert!(!lsq.load_forwards(2, mem), "{mem:?} must not forward");
        }
    }

    #[test]
    fn forwarding_only_from_older_overlapping_stores() {
        // Three stores around one load: an older disjoint store and a
        // younger overlapping store contribute nothing; only the older
        // partially-overlapping store gates and forwards.
        let mut lsq = LoadStoreQueues::new(8, 8);
        lsq.push_store(1, acc(0x200, MemWidth::B4)); // older, disjoint
        lsq.push_store(2, acc(0x102, MemWidth::B2)); // older, partial overlap
        lsq.push_load(3);
        lsq.push_store(4, acc(0x100, MemWidth::B8)); // younger, full overlap
        let load = acc(0x100, MemWidth::B4);
        assert!(!lsq.load_may_issue(3, load));
        lsq.store_executed(1);
        assert!(!lsq.load_may_issue(3, load), "disjoint store execution is irrelevant");
        lsq.store_executed(4);
        assert!(!lsq.load_may_issue(3, load), "younger store execution is irrelevant");
        lsq.store_executed(2);
        assert!(lsq.load_may_issue(3, load));
        assert!(lsq.load_forwards(3, load));
    }

    #[test]
    fn younger_store_is_ignored() {
        let mut lsq = LoadStoreQueues::new(4, 4);
        lsq.push_load(1);
        lsq.push_store(2, acc(0x100, MemWidth::B8));
        assert!(lsq.load_may_issue(1, acc(0x100, MemWidth::B8)));
    }

    #[test]
    fn capacity_and_retirement() {
        let mut lsq = LoadStoreQueues::new(1, 1);
        lsq.push_load(1);
        assert!(lsq.lq_full());
        lsq.push_store(2, acc(0x0, MemWidth::B1));
        assert!(lsq.sq_full());
        lsq.pop_load(1);
        lsq.pop_store(2);
        assert!(!lsq.lq_full());
        assert!(!lsq.sq_full());
    }
}
