//! Issue queue with oldest-first select.

use crate::fu::FuClass;
use crate::regfile::{PhysReg, PhysRegFile};

/// One issue-queue entry.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IqEntry {
    /// Dynamic sequence number (also the age for oldest-first select).
    pub(crate) seq: u64,
    /// Source physical registers still awaited.
    pub(crate) srcs: [Option<PhysReg>; 2],
    /// Function-unit class.
    pub(crate) fu: FuClass,
    /// Whether the entry is a load (subject to memory ordering).
    pub(crate) is_load: bool,
    /// Destination physical register, when the instruction writes one.
    pub(crate) dest: Option<PhysReg>,
}

impl IqEntry {
    /// Whether all source operands are available.
    pub(crate) fn ready(&self, regs: &PhysRegFile) -> bool {
        self.srcs.iter().flatten().all(|&p| regs.is_ready(p))
    }
}

/// A unified, capacity-bounded issue queue.
///
/// Entries are kept in age order (insertion order equals program order), so
/// a linear scan implements oldest-first select.
#[derive(Debug, Clone)]
pub(crate) struct IssueQueue {
    entries: Vec<IqEntry>,
    capacity: usize,
}

impl IssueQueue {
    pub(crate) fn new(capacity: usize) -> IssueQueue {
        assert!(capacity > 0, "issue queue needs at least one entry");
        IssueQueue { entries: Vec::with_capacity(capacity), capacity }
    }

    pub(crate) fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn push(&mut self, entry: IqEntry) {
        debug_assert!(!self.is_full(), "pushed into a full issue queue");
        debug_assert!(
            self.entries.last().is_none_or(|last| last.seq < entry.seq),
            "issue queue must stay age-ordered"
        );
        self.entries.push(entry);
    }

    /// Entries in age order, for the select loop.
    pub(crate) fn entries(&self) -> &[IqEntry] {
        &self.entries
    }

    /// Removes the issued entries (by their positions in [`Self::entries`],
    /// strictly increasing).
    pub(crate) fn remove_issued(&mut self, positions: &[usize]) {
        debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
        for &pos in positions.iter().rev() {
            self.entries.remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64, srcs: [Option<PhysReg>; 2]) -> IqEntry {
        IqEntry { seq, srcs, fu: FuClass::Alu, is_load: false, dest: None }
    }

    #[test]
    fn readiness_tracks_regfile() {
        let mut regs = PhysRegFile::new(40, 32);
        let p = regs.alloc().unwrap();
        let e = entry(0, [Some(p), Some(PhysReg(3))]);
        assert!(!e.ready(&regs));
        regs.set_ready(p);
        assert!(e.ready(&regs));
    }

    #[test]
    fn no_sources_is_always_ready() {
        let regs = PhysRegFile::new(40, 32);
        assert!(entry(0, [None, None]).ready(&regs));
    }

    #[test]
    fn oldest_first_order_preserved() {
        let mut iq = IssueQueue::new(4);
        iq.push(entry(1, [None, None]));
        iq.push(entry(5, [None, None]));
        iq.push(entry(9, [None, None]));
        iq.remove_issued(&[0, 2]);
        assert_eq!(iq.len(), 1);
        assert_eq!(iq.entries()[0].seq, 5);
    }

    #[test]
    fn capacity() {
        let mut iq = IssueQueue::new(1);
        assert!(!iq.is_full());
        iq.push(entry(0, [None, None]));
        assert!(iq.is_full());
    }
}
