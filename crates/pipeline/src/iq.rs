//! Issue queue: stable slots, a ready bitmask, and an age-ordered select
//! list.
//!
//! The pre-rework queue kept an age-ordered `Vec<IqEntry>` and re-tested
//! every entry's operands against the register file each cycle, then paid
//! `Vec::remove` per issued entry. This version is indexed:
//!
//! * entries live in **stable slots** (free-list allocated), so an entry
//!   never moves while resident;
//! * each slot carries a **pending-operand count**, decremented by
//!   [`IssueQueue::wakeup`] when a source register becomes ready — there
//!   is no per-cycle operand re-scan;
//! * slots with no pending operands are flagged in a **ready bitmask**, so
//!   the select stage visits only ready entries (and the cycle loop can
//!   skip the stage entirely when [`IssueQueue::ready_count`] is zero);
//! * occupied slots are threaded on an **intrusive doubly-linked age
//!   list** in dispatch order, which is sequence order —
//!   [`IssueQueue::collect_ready`] walks it so select sees ready entries
//!   oldest-first without sorting, and [`IssueQueue::remove`] unlinks in
//!   O(1) with no memmove.
//!
//! Wakeup is driven by **per-register waiter bitmaps**: dispatching an
//! entry with a not-yet-ready source sets the entry's slot bit under that
//! register, and [`IssueQueue::wakeup`] visits exactly those slots (almost
//! always zero or one) instead of scanning the whole queue. The bitmaps
//! need no cleanup on issue or register reuse: an entry only leaves the
//! queue once ready, i.e. after every register it was waiting on fired its
//! wakeup and cleared the bit — and a physical register cannot be freed
//! and re-allocated while an entry still waits on it (the consumer renamed
//! before the register's next writer, so it commits — and therefore
//! issues — first). Each register thus has a single ready transition per
//! allocation, reaching exactly the entries that counted it pending at
//! dispatch.

use crate::fu::FuClass;
use crate::regfile::{PhysReg, PhysRegFile};

/// One issue-queue entry, as dispatched by rename.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IqEntry {
    /// Dynamic sequence number (also the age for oldest-first select).
    pub(crate) seq: u64,
    /// Source physical registers (readiness is tracked by the queue).
    pub(crate) srcs: [Option<PhysReg>; 2],
    /// Function-unit class.
    pub(crate) fu: FuClass,
    /// Whether the entry is a load (subject to memory ordering).
    pub(crate) is_load: bool,
    /// Destination physical register, when the instruction writes one.
    pub(crate) dest: Option<PhysReg>,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    seq: u64,
    srcs: [Option<PhysReg>; 2],
    fu: FuClass,
    is_load: bool,
    dest: Option<PhysReg>,
    /// Source operands still awaited.
    pending: u8,
}

/// Age-list link terminator / "not linked" marker.
const NONE: u32 = u32::MAX;

/// A unified, capacity-bounded issue queue with indexed wakeup.
#[derive(Debug, Clone)]
pub(crate) struct IssueQueue {
    capacity: usize,
    /// Slot ids available for dispatch.
    free_slots: Vec<u32>,
    /// Entry storage, indexed by slot; stale when not on the age list.
    slots: Vec<Slot>,
    /// Occupied slot count.
    len: usize,
    /// Oldest occupied slot ([`NONE`] when empty).
    head: u32,
    /// Youngest occupied slot ([`NONE`] when empty).
    tail: u32,
    /// Age-list forward links, indexed by slot.
    next: Vec<u32>,
    /// Age-list backward links, indexed by slot.
    prev: Vec<u32>,
    /// One bit per slot: occupied and zero pending operands (capacity is
    /// capped at 64, so a single word covers the queue).
    ready: u64,
    /// Set bits in `ready`.
    ready_count: usize,
    /// Per-physical-register bitmap of slots waiting on it.
    waiters: Vec<u64>,
}

impl IssueQueue {
    pub(crate) fn new(capacity: usize, phys_regs: usize) -> IssueQueue {
        assert!(capacity > 0, "issue queue needs at least one entry");
        assert!(capacity <= 64, "issue queue capped at 64 entries (slot bitmaps)");
        let empty = Slot {
            seq: 0,
            srcs: [None, None],
            fu: FuClass::Alu,
            is_load: false,
            dest: None,
            pending: 0,
        };
        IssueQueue {
            capacity,
            free_slots: (0..capacity as u32).rev().collect(),
            slots: vec![empty; capacity],
            len: 0,
            head: NONE,
            tail: NONE,
            next: vec![NONE; capacity],
            prev: vec![NONE; capacity],
            ready: 0,
            ready_count: 0,
            waiters: vec![0; phys_regs],
        }
    }

    pub(crate) fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Entries whose operands are all available.
    pub(crate) fn ready_count(&self) -> usize {
        self.ready_count
    }

    /// Dispatches an entry, counting its not-yet-ready sources against
    /// `regs`. Entries must arrive in ascending sequence order (rename is
    /// in-order), which keeps the age list sorted by age.
    #[inline(always)]
    pub(crate) fn push(&mut self, entry: IqEntry, regs: &PhysRegFile) {
        self.push_with(entry, |p| regs.is_ready(p));
    }

    /// Dispatches an entry with a caller-supplied readiness predicate — the
    /// clustered backend tracks per-cluster operand *visibility* (remote
    /// results arrive after the bypass penalty), so a register can be ready
    /// globally yet still pending in this cluster's queue.
    #[inline(always)]
    pub(crate) fn push_with(&mut self, entry: IqEntry, is_ready: impl Fn(PhysReg) -> bool) {
        debug_assert!(!self.is_full(), "pushed into a full issue queue");
        let slot = self.free_slots.pop().expect("free slot exists");
        let mut pending = 0u8;
        for p in entry.srcs.iter().flatten() {
            if !is_ready(*p) {
                pending += 1;
                self.waiters[p.0 as usize] |= 1 << slot;
            }
        }
        self.slots[slot as usize] = Slot {
            seq: entry.seq,
            srcs: entry.srcs,
            fu: entry.fu,
            is_load: entry.is_load,
            dest: entry.dest,
            pending,
        };
        // Link at the tail: youngest.
        self.next[slot as usize] = NONE;
        self.prev[slot as usize] = self.tail;
        if self.tail == NONE {
            self.head = slot;
        } else {
            self.next[self.tail as usize] = slot;
        }
        self.tail = slot;
        self.len += 1;
        if pending == 0 {
            self.mark_ready(slot as usize);
        }
    }

    /// Register `p` became ready: wake every entry waiting on it. Returns
    /// the number of waiter entries woken (the clustered backend charges
    /// delayed remote wakeups as `bypass_stalls` per waiter).
    #[inline(always)]
    pub(crate) fn wakeup(&mut self, p: PhysReg) -> u32 {
        let mut w = std::mem::take(&mut self.waiters[p.0 as usize]);
        let woken = w.count_ones();
        while w != 0 {
            let s = w.trailing_zeros() as usize;
            w &= w - 1;
            let slot = &mut self.slots[s];
            // A duplicated source counts pending per occurrence but sets
            // one waiter bit; decrement per matching operand.
            for src in slot.srcs {
                if src == Some(p) {
                    slot.pending -= 1;
                }
            }
            if slot.pending == 0 {
                self.mark_ready(s);
            }
        }
        woken
    }

    /// Appends `(seq, slot)` for every ready entry to `out`, oldest first
    /// (the age list is walked in dispatch order, so no sort is needed).
    #[inline(always)]
    pub(crate) fn collect_ready(&self, out: &mut Vec<(u64, u32)>) {
        let mut remaining = self.ready_count;
        let mut s = self.head;
        while remaining > 0 && s != NONE {
            if self.ready & (1 << s) != 0 {
                out.push((self.slots[s as usize].seq, s));
                remaining -= 1;
            }
            s = self.next[s as usize];
        }
    }

    /// The resident entry in `slot` (one read for the whole select step).
    #[inline]
    pub(crate) fn entry(&self, slot: u32) -> IqEntry {
        let s = &self.slots[slot as usize];
        IqEntry { seq: s.seq, srcs: s.srcs, fu: s.fu, is_load: s.is_load, dest: s.dest }
    }

    /// Removes an issued entry. The entry must be ready (select only
    /// considers ready entries).
    #[inline(always)]
    pub(crate) fn remove(&mut self, slot: u32) {
        let s = slot as usize;
        debug_assert!(self.ready & (1 << s) != 0, "removed unready entry");
        self.ready &= !(1 << s);
        self.ready_count -= 1;
        let (p, n) = (self.prev[s], self.next[s]);
        if p == NONE {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NONE {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
        self.len -= 1;
        self.free_slots.push(slot);
    }

    fn mark_ready(&mut self, slot: usize) {
        debug_assert!(self.ready & (1 << slot) == 0);
        self.ready |= 1 << slot;
        self.ready_count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64, srcs: [Option<PhysReg>; 2]) -> IqEntry {
        IqEntry { seq, srcs, fu: FuClass::Alu, is_load: false, dest: None }
    }

    fn ready_seqs(iq: &IssueQueue) -> Vec<u64> {
        let mut v = Vec::new();
        iq.collect_ready(&mut v);
        v.into_iter().map(|(seq, _)| seq).collect()
    }

    #[test]
    fn readiness_tracks_wakeups() {
        let mut regs = PhysRegFile::new(40, 32);
        let p = regs.alloc().unwrap();
        let mut iq = IssueQueue::new(4, 40);
        iq.push(entry(0, [Some(p), Some(PhysReg(3))]), &regs);
        assert_eq!(iq.ready_count(), 0);
        regs.set_ready(p);
        iq.wakeup(p);
        assert_eq!(iq.ready_count(), 1);
        assert_eq!(ready_seqs(&iq), [0]);
    }

    #[test]
    fn no_sources_is_ready_at_dispatch() {
        let regs = PhysRegFile::new(40, 32);
        let mut iq = IssueQueue::new(4, 40);
        iq.push(entry(0, [None, None]), &regs);
        assert_eq!(iq.ready_count(), 1);
    }

    #[test]
    fn duplicated_source_needs_a_single_wakeup() {
        // Both operands name the same not-ready register: one wakeup must
        // clear both pending counts.
        let mut regs = PhysRegFile::new(40, 32);
        let p = regs.alloc().unwrap();
        let mut iq = IssueQueue::new(4, 40);
        iq.push(entry(0, [Some(p), Some(p)]), &regs);
        assert_eq!(iq.ready_count(), 0);
        regs.set_ready(p);
        iq.wakeup(p);
        assert_eq!(iq.ready_count(), 1);
    }

    #[test]
    fn wakeup_skips_entries_whose_source_was_ready_at_dispatch() {
        // An entry dispatched with an already-ready source must not be
        // perturbed when an unrelated register becomes ready.
        let mut regs = PhysRegFile::new(40, 32);
        let ready = regs.alloc().unwrap();
        regs.set_ready(ready);
        let waited = regs.alloc().unwrap();
        let mut iq = IssueQueue::new(4, 40);
        iq.push(entry(0, [Some(ready), None]), &regs);
        iq.push(entry(1, [Some(waited), None]), &regs);
        assert_eq!(iq.ready_count(), 1);
        regs.set_ready(waited);
        iq.wakeup(waited);
        assert_eq!(ready_seqs(&iq), [0, 1]);
    }

    #[test]
    fn collect_ready_is_oldest_first_without_sorting() {
        let regs = PhysRegFile::new(40, 32);
        let mut iq = IssueQueue::new(4, 40);
        iq.push(entry(1, [None, None]), &regs);
        iq.push(entry(5, [None, None]), &regs);
        iq.push(entry(9, [None, None]), &regs);
        assert_eq!(ready_seqs(&iq), [1, 5, 9]);
        // Remove the oldest and youngest; the middle entry survives and
        // order is preserved across slot reuse.
        let mut v = Vec::new();
        iq.collect_ready(&mut v);
        iq.remove(v[0].1);
        iq.remove(v[2].1);
        assert_eq!(iq.len(), 1);
        iq.push(entry(12, [None, None]), &regs);
        assert_eq!(ready_seqs(&iq), [5, 12]);
    }

    #[test]
    fn slots_are_recycled_across_issue() {
        let regs = PhysRegFile::new(40, 32);
        let mut iq = IssueQueue::new(2, 40);
        for round in 0..10u64 {
            iq.push(entry(2 * round, [None, None]), &regs);
            iq.push(entry(2 * round + 1, [None, None]), &regs);
            assert!(iq.is_full());
            let mut v = Vec::new();
            iq.collect_ready(&mut v);
            assert_eq!(v.len(), 2);
            for (_, slot) in v {
                iq.remove(slot);
            }
            assert_eq!(iq.len(), 0);
        }
    }

    #[test]
    fn capacity() {
        let regs = PhysRegFile::new(40, 32);
        let mut iq = IssueQueue::new(1, 40);
        assert!(!iq.is_full());
        iq.push(entry(0, [None, None]), &regs);
        assert!(iq.is_full());
    }

    #[test]
    fn push_with_overrides_readiness_and_wakeup_reports_woken_entries() {
        // A globally-ready register can be invisible to a remote cluster:
        // the predicate, not the register file, decides pending counts.
        let mut regs = PhysRegFile::new(40, 32);
        let p = regs.alloc().unwrap();
        regs.set_ready(p);
        let mut iq = IssueQueue::new(4, 40);
        iq.push_with(entry(0, [Some(p), None]), |_| false);
        iq.push_with(entry(1, [Some(p), None]), |_| false);
        iq.push_with(entry(2, [None, None]), |_| false);
        assert_eq!(iq.ready_count(), 1, "no-source entries are always ready");
        assert_eq!(iq.wakeup(p), 2, "two entries waited on the register");
        assert_eq!(iq.ready_count(), 3);
        assert_eq!(iq.wakeup(p), 0, "waiter bits are consumed by the wakeup");
    }
}
