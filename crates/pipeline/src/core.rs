//! The cycle loop: rename, dispatch, issue, execute, commit — with
//! dead-instruction elimination.

use std::collections::HashSet;

use dide_analysis::DeadnessAnalysis;
use dide_emu::Trace;
use dide_isa::Reg;
use dide_mem::MemoryHierarchy;
use dide_obs::EventKind;
use dide_predictor::dead::{CfiDeadPredictor, DeadPredictor, OracleDeadPredictor, PredictInput};
use dide_predictor::future::CfSignature;

use crate::config::PipelineConfig;
use crate::frontend::Frontend;
use crate::fu::{classify, FuClass, FuPool};
use crate::iq::{IqEntry, IssueQueue};
use crate::lsq::LoadStoreQueues;
use crate::regfile::{PhysReg, PhysRegFile};
use crate::rename::{Mapping, RenameMap};
use crate::rob::{DestInfo, Rob, RobEntry};
use crate::stats::PipelineStats;

/// A scheduled execution completion.
#[derive(Debug, Clone, Copy)]
struct Completion {
    cycle: u64,
    seq: u64,
    dest: Option<PhysReg>,
    is_store: bool,
}

/// The out-of-order core.
///
/// See the [crate docs](crate) for the model and an example.
#[derive(Debug, Clone)]
pub struct Core {
    config: PipelineConfig,
}

impl Core {
    /// Creates a core with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent
    /// (see [`PipelineConfig::validate`]).
    #[must_use]
    pub fn new(config: PipelineConfig) -> Core {
        config.validate();
        Core { config }
    }

    /// The core's configuration.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Simulates the trace to completion and returns the run's statistics.
    ///
    /// The oracle `analysis` is used only for commit-time predictor
    /// training and for scoring (never for making predictions); it must
    /// have been computed from this same `trace`.
    ///
    /// # Panics
    ///
    /// Panics if `analysis` does not match `trace`, or if the simulation
    /// exceeds its deadlock guard (which would indicate a model bug).
    #[must_use]
    pub fn run(&self, trace: &Trace, analysis: &DeadnessAnalysis) -> PipelineStats {
        self.run_observed(trace, analysis, None)
    }

    /// [`Core::run`] with an optional cycle-event trace attached.
    ///
    /// With `events = None` (what [`Core::run`] passes) the loop pays one
    /// branch per hook and records nothing — architectural results are
    /// bit-identical either way, which `dide bench` asserts. With a trace
    /// attached, occupancy is sampled every
    /// [`EventsConfig::sample_every`](dide_obs::EventsConfig) cycles and
    /// predictor verdicts, eliminations and dead-tag violations are
    /// recorded as they retire through rename.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Core::run`].
    #[must_use]
    pub fn run_observed(
        &self,
        trace: &Trace,
        analysis: &DeadnessAnalysis,
        mut events: Option<&mut dide_obs::EventTrace>,
    ) -> PipelineStats {
        assert_eq!(
            analysis.verdicts().len(),
            trace.len(),
            "analysis must come from the same trace"
        );
        let cfg = &self.config;
        let records = trace.records();
        let total = records.len() as u64;

        let mut stats = PipelineStats::default();
        let mut hierarchy = MemoryHierarchy::new(cfg.hierarchy);
        let mut frontend = Frontend::new(cfg, records);
        let mut regs = PhysRegFile::new(cfg.phys_regs, Reg::COUNT);
        let mut map = RenameMap::new();
        let mut rob = Rob::new(cfg.rob_entries);
        let mut iq = IssueQueue::new(cfg.iq_entries);
        let mut lsq = LoadStoreQueues::new(cfg.lq_entries, cfg.sq_entries);
        let mut fus = FuPool::new(cfg.fu);
        let mut predictor: Box<dyn DeadPredictor> = if cfg.dead.oracle {
            Box::new(OracleDeadPredictor::new(analysis))
        } else {
            Box::new(CfiDeadPredictor::new(cfg.dead.predictor))
        };
        let mut completions: Vec<Completion> = Vec::new();
        let mut eliminated_stores: HashSet<u64> = HashSet::new();
        let mut rename_stalled_until = 0u64;

        let mut committed = 0u64;
        let mut now = 0u64;
        let deadlock_guard = 10_000 + total * 1_000;

        while committed < total {
            assert!(
                now < deadlock_guard,
                "pipeline deadlock: {committed}/{total} committed after {now} cycles"
            );

            // ---- writeback: drain completions due this cycle ----
            let mut i = 0;
            while i < completions.len() {
                if completions[i].cycle <= now {
                    let c = completions.swap_remove(i);
                    rob.complete(c.seq);
                    if let Some(p) = c.dest {
                        regs.set_ready(p);
                        stats.rf_writes += 1;
                    }
                    if c.is_store {
                        lsq.store_executed(c.seq);
                    }
                    if frontend.pending_branch() == Some(c.seq) {
                        frontend.resolve_branch(c.seq, now);
                    }
                } else {
                    i += 1;
                }
            }

            // ---- commit ----
            for _ in 0..cfg.commit_width {
                let Some(head) = rob.head() else { break };
                if !head.completed {
                    break;
                }
                let e = rob.pop().expect("head exists");
                let r = &records[e.seq as usize];
                if let Some(d) = e.dest {
                    if let Mapping::Phys(p) = d.prev {
                        regs.free(p);
                        stats.phys_frees += 1;
                    }
                }
                if e.is_cond_branch {
                    stats.branches += 1;
                }
                if r.inst.op.is_load() && !e.eliminated {
                    lsq.pop_load(e.seq);
                }
                if e.is_store {
                    if e.eliminated {
                        stats.savings.dcache_accesses_saved += 1;
                    } else {
                        lsq.pop_store(e.seq);
                        let mem = r.mem.expect("stores carry an access");
                        hierarchy.access_data(mem.addr, true);
                    }
                }
                if e.eligible {
                    let was_dead = analysis.is_dead(e.seq);
                    let input =
                        PredictInput { seq: e.seq, static_index: r.index, signature: e.signature };
                    predictor.train(&input, was_dead);
                    if was_dead {
                        stats.oracle_dead_committed += 1;
                    }
                    if e.eliminated {
                        stats.dead_predicted += 1;
                        stats.dead_predicted_correct += u64::from(was_dead);
                    }
                }
                committed += 1;
                stats.committed += 1;
            }

            // ---- issue / execute ----
            fus.begin_cycle();
            let mut issued: Vec<usize> = Vec::new();
            for (pos, e) in iq.entries().iter().enumerate() {
                if issued.len() == cfg.issue_width {
                    break;
                }
                if !e.ready(&regs) {
                    continue;
                }
                let r = &records[e.seq as usize];
                if e.is_load {
                    let mem = r.mem.expect("loads carry an access");
                    if !lsq.load_may_issue(e.seq, mem) {
                        continue;
                    }
                }
                let Some(base_latency) = fus.try_issue(e.fu, now) else { continue };
                let latency = if e.fu == FuClass::Mem {
                    if e.is_load {
                        let mem = r.mem.expect("loads carry an access");
                        // The cache is probed either way; a store-to-load
                        // forward shortcuts the latency.
                        let access = hierarchy.access_data(mem.addr, false);
                        if lsq.load_forwards(e.seq, mem) {
                            2
                        } else {
                            1 + access
                        }
                    } else {
                        base_latency // store: address generation only
                    }
                } else {
                    base_latency
                };
                stats.rf_reads += e.srcs.iter().flatten().count() as u64;
                completions.push(Completion {
                    cycle: now + u64::from(latency),
                    seq: e.seq,
                    dest: e.dest,
                    is_store: r.inst.op.is_store(),
                });
                issued.push(pos);
            }
            iq.remove_issued(&issued);

            // ---- rename / dispatch ----
            if now >= rename_stalled_until {
                'rename: for _ in 0..cfg.rename_width {
                    let Some(seq) = frontend.peek_ready(now) else { break };
                    if rob.is_full() {
                        stats.rob_full_stalls += 1;
                        break;
                    }
                    let r = &records[seq as usize];
                    let dest = r.inst.dest();
                    let is_store = r.inst.op.is_store();
                    let is_load = r.inst.op.is_load();

                    let policy = cfg.dead.policy;
                    let eligible = if is_store {
                        policy.covers_stores()
                    } else {
                        policy.covers_registers() && dest.is_some() && !r.inst.op.is_control()
                    };
                    let signature = if eligible {
                        frontend.signature(seq, cfg.dead.lookahead)
                    } else {
                        CfSignature::empty()
                    };
                    let input = PredictInput { seq, static_index: r.index, signature };
                    let eliminate = eligible && predictor.predict(&input);
                    if eligible {
                        if let Some(tr) = events.as_deref_mut() {
                            tr.record(now, EventKind::Verdict { seq, predicted_dead: eliminate });
                        }
                    }

                    if !eliminate {
                        // Dead-tag violations: this instruction actually
                        // reads its sources.
                        for src in r.inst.sources() {
                            if let Mapping::Dead(_) = map.get(src) {
                                // Recovery re-executes the producer: it
                                // needs a register for the materialized
                                // value.
                                let Some(p) = regs.alloc() else {
                                    stats.no_phys_stalls += 1;
                                    break 'rename;
                                };
                                stats.phys_allocs += 1;
                                regs.set_ready(p);
                                map.set(src, Mapping::Phys(p));
                                stats.dead_violations += 1;
                                if let Some(tr) = events.as_deref_mut() {
                                    tr.record(now, EventKind::Violation { seq });
                                }
                                rename_stalled_until = now + u64::from(cfg.dead.violation_penalty);
                                break 'rename;
                            }
                        }
                        // Loads can also trip over eliminated stores.
                        if is_load {
                            for &p in analysis.producers(seq) {
                                if eliminated_stores.remove(&p) {
                                    stats.dead_violations += 1;
                                    if let Some(tr) = events.as_deref_mut() {
                                        tr.record(now, EventKind::Violation { seq });
                                    }
                                    rename_stalled_until =
                                        now + u64::from(cfg.dead.violation_penalty);
                                    break 'rename;
                                }
                            }
                        }
                    }

                    if eliminate {
                        // The instruction vanishes: no physical register,
                        // no issue-queue slot, no execution, no cache
                        // access. It retires through the ROB for precise
                        // state and trains the predictor at commit.
                        let dest_info = dest.map(|arch| {
                            let prev = map.set(arch, Mapping::Dead(seq));
                            DestInfo { arch, new: Mapping::Dead(seq), prev }
                        });
                        stats.savings.phys_allocs_saved += u64::from(dest.is_some());
                        stats.savings.iq_slots_saved += 1;
                        stats.savings.rf_writes_saved += u64::from(dest.is_some());
                        stats.savings.rf_reads_saved += r.inst.sources().count() as u64;
                        if is_load {
                            stats.savings.dcache_accesses_saved += 1;
                        }
                        if is_store {
                            eliminated_stores.insert(seq);
                        }
                        if let Some(tr) = events.as_deref_mut() {
                            tr.record(now, EventKind::Eliminated { seq });
                        }
                        stats.dispatched += 1;
                        rob.push(RobEntry {
                            seq,
                            dest: dest_info,
                            eliminated: true,
                            completed: true,
                            is_store,
                            is_cond_branch: r.is_cond_branch(),

                            eligible,
                            signature,
                        });
                        frontend.pop(seq);
                        continue;
                    }

                    // Normal dispatch: check resources, then allocate.
                    if iq.is_full() {
                        stats.iq_full_stalls += 1;
                        break;
                    }
                    if is_load && lsq.lq_full() {
                        stats.lsq_full_stalls += 1;
                        break;
                    }
                    if is_store && lsq.sq_full() {
                        stats.lsq_full_stalls += 1;
                        break;
                    }
                    let mut dest_phys = None;
                    if dest.is_some() && regs.free_count() == 0 {
                        stats.no_phys_stalls += 1;
                        break;
                    }

                    let mut srcs = [None, None];
                    for (slot, src) in r.inst.sources().enumerate() {
                        match map.get(src) {
                            Mapping::Phys(p) => srcs[slot] = Some(p),
                            Mapping::Dead(_) => {
                                unreachable!("dead-tag sources were materialized above")
                            }
                        }
                    }
                    let dest_info = dest.map(|arch| {
                        let p = regs.alloc().expect("free count checked above");
                        stats.phys_allocs += 1;
                        dest_phys = Some(p);
                        let prev = map.set(arch, Mapping::Phys(p));
                        DestInfo { arch, new: Mapping::Phys(p), prev }
                    });

                    if is_load {
                        lsq.push_load(seq);
                    }
                    if is_store {
                        lsq.push_store(seq, r.mem.expect("stores carry an access"));
                    }
                    iq.push(IqEntry {
                        seq,
                        srcs,
                        fu: classify(r.inst.op),
                        is_load,
                        dest: dest_phys,
                    });
                    stats.dispatched += 1;
                    rob.push(RobEntry {
                        seq,
                        dest: dest_info,
                        eliminated: false,
                        completed: false,
                        is_store,
                        is_cond_branch: r.is_cond_branch(),

                        eligible,
                        signature,
                    });
                    frontend.pop(seq);
                }
            }

            // ---- fetch ----
            frontend.fetch(now, &mut hierarchy, &mut stats);

            // Occupancy accounting (end-of-cycle snapshot).
            stats.rob_occupancy_sum += rob.len() as u64;
            stats.iq_occupancy_sum += iq.len() as u64;
            // Registers in use beyond the architectural baseline; dead-tag
            // mappings hold no register, so this can dip below 32 — clamp.
            stats.phys_used_sum +=
                (cfg.phys_regs - regs.free_count()).saturating_sub(Reg::COUNT) as u64;
            if let Some(tr) = events.as_deref_mut() {
                if tr.should_sample(now) {
                    tr.record(
                        now,
                        EventKind::Sample {
                            rob: rob.len() as u32,
                            iq: iq.len() as u32,
                            lq: lsq.lq_len() as u32,
                            sq: lsq.sq_len() as u32,
                            free_regs: regs.free_count() as u32,
                        },
                    );
                }
            }

            now += 1;
        }

        debug_assert!(frontend.drained(), "all instructions must pass through fetch");
        stats.cycles = now;
        stats.memory = hierarchy.stats();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DeadElimConfig, EliminationPolicy};
    use dide_emu::Emulator;
    use dide_isa::ProgramBuilder;

    fn counted_loop(iters: i64) -> Trace {
        let mut b = ProgramBuilder::new("loop");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, iters);
        let top = b.label();
        b.bind(top);
        b.slt(Reg::T2, Reg::T0, Reg::T1); // dead on all but the last iteration
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, top);
        b.out(Reg::T2);
        b.halt();
        Emulator::new(&b.build().unwrap()).run().unwrap()
    }

    #[test]
    fn commits_every_instruction() {
        let t = counted_loop(200);
        let a = DeadnessAnalysis::analyze(&t);
        let stats = Core::new(PipelineConfig::baseline()).run(&t, &a);
        assert_eq!(stats.committed, t.len() as u64);
        assert_eq!(stats.dispatched, t.len() as u64);
        assert!(stats.cycles > 0);
        assert!(stats.ipc() > 0.1, "ipc {}", stats.ipc());
        assert!(stats.invariant_violations().is_empty(), "{:?}", stats.invariant_violations());
    }

    #[test]
    fn loop_branch_is_predictable() {
        let t = counted_loop(500);
        let a = DeadnessAnalysis::analyze(&t);
        let stats = Core::new(PipelineConfig::baseline()).run(&t, &a);
        assert!(stats.branch_accuracy() > 0.95, "accuracy {}", stats.branch_accuracy());
    }

    #[test]
    fn elimination_reduces_register_traffic() {
        let t = counted_loop(2000);
        let a = DeadnessAnalysis::analyze(&t);
        let base = Core::new(PipelineConfig::baseline()).run(&t, &a);
        let elim_cfg = PipelineConfig::baseline().with_elimination(DeadElimConfig::default());
        let elim = Core::new(elim_cfg).run(&t, &a);
        assert_eq!(elim.committed, base.committed);
        assert!(elim.dead_predicted > 500, "eliminated {}", elim.dead_predicted);
        assert!(elim.savings.phys_allocs_saved > 0);
        assert!(elim.phys_allocs < base.phys_allocs);
        assert!(elim.rf_writes < base.rf_writes);
        assert!(elim.elimination_accuracy() > 0.9, "accuracy {}", elim.elimination_accuracy());
        assert!(elim.invariant_violations().is_empty(), "{:?}", elim.invariant_violations());
    }

    fn store_load_loop(iters: i64) -> Trace {
        let mut b = ProgramBuilder::new("memloop");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, iters);
        let top = b.label();
        b.bind(top);
        b.sd(Reg::T0, Reg::SP, -8);
        b.ld(Reg::T2, Reg::SP, -8);
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, top);
        b.out(Reg::T2);
        b.halt();
        Emulator::new(&b.build().unwrap()).run().unwrap()
    }

    #[test]
    fn rob_pressure_shows_up_in_registry_counters() {
        // A 4-entry ROB wraps its ring dozens of times on a 300-iteration
        // loop; the registry must report the resulting backpressure while
        // every conservation law still holds.
        let t = counted_loop(300);
        let a = DeadnessAnalysis::analyze(&t);
        let mut cfg = PipelineConfig::baseline();
        cfg.rob_entries = 4;
        let stats = Core::new(cfg).run(&t, &a);
        let c = stats.counters();
        assert_eq!(c.expect("pipeline.committed"), t.len() as u64);
        assert!(c.expect("pipeline.rob_full_stalls") > 0, "tiny ROB must stall dispatch");
        assert!(stats.invariant_violations().is_empty(), "{:?}", stats.invariant_violations());
    }

    #[test]
    fn free_list_exhaustion_shows_up_in_registry_counters() {
        // Two spare physical registers: rename repeatedly drains the free
        // list and recycles registers freed at commit. The registry reports
        // the stalls, and frees stay bounded by allocs plus the initial
        // architectural mappings.
        let t = counted_loop(300);
        let a = DeadnessAnalysis::analyze(&t);
        let mut cfg = PipelineConfig::baseline();
        cfg.phys_regs = 34;
        let stats = Core::new(cfg).run(&t, &a);
        let c = stats.counters();
        assert_eq!(c.expect("pipeline.committed"), t.len() as u64);
        assert!(c.expect("pipeline.no_phys_stalls") > 0, "2 spare registers must stall rename");
        assert!(c.expect("pipeline.phys_allocs") > 0);
        assert!(
            c.expect("pipeline.phys_frees") <= c.expect("pipeline.phys_allocs") + Reg::COUNT as u64
        );
        assert!(stats.invariant_violations().is_empty(), "{:?}", stats.invariant_violations());
    }

    #[test]
    fn store_load_traffic_shows_up_in_registry_counters() {
        // Store-to-load forwarding pressure through a 1-entry store queue:
        // the LSQ stalls are counted, and the memory scope feeds the L1D
        // conservation rules (hits + misses == accesses).
        let t = store_load_loop(200);
        let a = DeadnessAnalysis::analyze(&t);
        let mut cfg = PipelineConfig::baseline();
        cfg.sq_entries = 1;
        let stats = Core::new(cfg).run(&t, &a);
        let c = stats.counters();
        assert_eq!(c.expect("pipeline.committed"), t.len() as u64);
        assert!(c.expect("pipeline.lsq_full_stalls") > 0, "1-entry SQ must stall dispatch");
        assert!(c.expect("pipeline.mem.l1d.accesses") >= 400, "each iteration touches the L1D");
        assert_eq!(
            c.expect("pipeline.mem.l1d.hits") + c.expect("pipeline.mem.l1d.misses"),
            c.expect("pipeline.mem.l1d.accesses")
        );
        assert!(stats.invariant_violations().is_empty(), "{:?}", stats.invariant_violations());
    }

    #[test]
    fn elimination_off_by_default_in_baseline() {
        let cfg = PipelineConfig::baseline();
        assert_eq!(cfg.dead.policy, EliminationPolicy::Off);
        let t = counted_loop(50);
        let a = DeadnessAnalysis::analyze(&t);
        let stats = Core::new(cfg).run(&t, &a);
        assert_eq!(stats.dead_predicted, 0);
        assert_eq!(stats.savings.phys_allocs_saved, 0);
    }

    #[test]
    fn observed_run_is_bit_identical_and_records_events() {
        use dide_obs::{EventKind, EventTrace, EventsConfig};
        let t = counted_loop(600);
        let a = DeadnessAnalysis::analyze(&t);
        let cfg = PipelineConfig::baseline().with_elimination(DeadElimConfig::default());
        let core = Core::new(cfg);
        let plain = core.run(&t, &a);
        let mut events = EventTrace::new(EventsConfig { sample_every: 16, capacity: 512 });
        let observed = core.run_observed(&t, &a, Some(&mut events));
        assert_eq!(plain, observed, "tracing must not perturb architectural results");
        assert!(!events.is_empty());
        let kinds: Vec<&str> = events.events().iter().map(|e| e.kind.label()).collect();
        assert!(kinds.contains(&"sample"));
        assert!(kinds.contains(&"verdict"));
        assert!(kinds.contains(&"eliminated"));
        let verdicts = events
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Verdict { predicted_dead: true, .. }))
            .count();
        assert!(verdicts > 0, "an eliminating run must record dead verdicts");
    }

    #[test]
    fn contended_machine_is_slower() {
        let t = counted_loop(1000);
        let a = DeadnessAnalysis::analyze(&t);
        let base = Core::new(PipelineConfig::baseline()).run(&t, &a);
        let tight = Core::new(PipelineConfig::contended()).run(&t, &a);
        assert!(tight.cycles >= base.cycles);
    }
}
