//! The cycle loop: rename, dispatch, issue, execute, commit — with
//! dead-instruction elimination.

use std::collections::HashSet;

use dide_analysis::{DeadnessAnalysis, StreamedDeadness, Verdict};
use dide_emu::{MemAccess, PagedShadow, Trace, TraceStream};
use dide_isa::{Program, Reg};
use dide_mem::MemoryHierarchy;
use dide_obs::EventKind;
use dide_predictor::dead::{CfiDeadPredictor, DeadPredictor, OracleDeadPredictor, PredictInput};
use dide_predictor::future::CfSignature;

use crate::config::{EliminationPolicy, PipelineConfig};
use crate::frontend::{FetchBlock, Frontend};
use crate::fu::{FuClass, FuPool};
use crate::iq::{IqEntry, IssueQueue};
use crate::lsq::LoadStoreQueues;
use crate::predecode::predecode;
use crate::regfile::PhysRegFile;
use crate::rename::{Mapping, RenameMap};
use crate::rob::{DestInfo, Rob, RobEntry};
use crate::source::RecordSource;
use crate::stats::PipelineStats;
use crate::wheel::{Completion, CompletionQueue};

/// The out-of-order core.
///
/// See the [crate docs](crate) for the model and an example.
#[derive(Debug, Clone)]
pub struct Core {
    config: PipelineConfig,
}

/// Which rename-blocking stall counter a skipped idle cycle replicates.
#[derive(Debug, Clone, Copy)]
enum RenameStall {
    RobFull,
    IqFull,
    LsqFull,
    NoPhys,
}

/// Marks `seq` (stored as `seq + 1`; 0 = no owner) as the last store to
/// claim each byte of `mem` in the core's rename-order shadow table.
pub(crate) fn claim_store_bytes(shadow: &mut PagedShadow<u64>, seq: u64, mem: MemAccess) {
    let len = mem.width.bytes();
    let claimed = seq + 1;
    if !PagedShadow::<u64>::crosses_page(mem.addr, len) {
        shadow.span_mut(mem.addr, len).fill(claimed);
    } else {
        for byte in mem.bytes() {
            shadow.set(byte, claimed);
        }
    }
}

/// Scans `mem`'s bytes in access order for the first one whose producing
/// store sits in `eliminated`; removes that store and reports the hit.
///
/// This replicates the producer-table walk it replaced (probing the
/// analysis' per-load store-producer list, which listed producers in
/// first-occurrence byte order, against `eliminated` in order): rename
/// visits instructions in the same program order the analysis' forward
/// pass did, so the shadow holds the same byte→store map the analysis saw,
/// and removing an absent seq is a no-op — scanning the bytes in order
/// (skipping consecutive duplicates) removes exactly the same store, or
/// none, as the producer-table walk did.
pub(crate) fn take_eliminated_producer(
    shadow: &PagedShadow<u64>,
    eliminated: &mut HashSet<u64>,
    mem: MemAccess,
) -> bool {
    let len = mem.width.bytes();
    let mut last = 0u64;
    if !PagedShadow::<u64>::crosses_page(mem.addr, len) {
        if let Some(cells) = shadow.span(mem.addr, len) {
            for &cell in cells {
                if cell != 0 && cell != last {
                    last = cell;
                    if eliminated.remove(&(cell - 1)) {
                        return true;
                    }
                }
            }
        }
    } else {
        for byte in mem.bytes() {
            let cell = shadow.get(byte);
            if cell != 0 && cell != last {
                last = cell;
                if eliminated.remove(&(cell - 1)) {
                    return true;
                }
            }
        }
    }
    false
}

impl Core {
    /// Creates a core with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent
    /// (see [`PipelineConfig::validate`]).
    #[must_use]
    pub fn new(config: PipelineConfig) -> Core {
        config.validate();
        Core { config }
    }

    /// The core's configuration.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Simulates the trace to completion and returns the run's statistics.
    ///
    /// The oracle `analysis` is used only for commit-time predictor
    /// training and for scoring (never for making predictions); it must
    /// have been computed from this same `trace`.
    ///
    /// # Panics
    ///
    /// Panics if `analysis` does not match `trace`, or if the simulation
    /// exceeds its deadlock guard (which would indicate a model bug).
    #[must_use]
    pub fn run(&self, trace: &Trace, analysis: &DeadnessAnalysis) -> PipelineStats {
        self.run_observed(trace, analysis, None)
    }

    /// [`Core::run`] with an optional cycle-event trace attached.
    ///
    /// With `events = None` (what [`Core::run`] passes) the loop pays one
    /// branch per hook and records nothing — architectural results are
    /// bit-identical either way, which `dide bench` asserts. With a trace
    /// attached, occupancy is sampled every
    /// [`EventsConfig::sample_every`](dide_obs::EventsConfig) cycles and
    /// predictor verdicts, eliminations and dead-tag violations are
    /// recorded as they retire through rename.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Core::run`].
    #[must_use]
    pub fn run_observed(
        &self,
        trace: &Trace,
        analysis: &DeadnessAnalysis,
        events: Option<&mut dide_obs::EventTrace>,
    ) -> PipelineStats {
        assert_eq!(
            analysis.verdicts().len(),
            trace.len(),
            "analysis must come from the same trace"
        );
        self.run_loop(
            trace.program(),
            RecordSource::Slice(trace.records()),
            analysis.verdicts(),
            events,
        )
    }

    /// Simulates a streamed trace to completion: the same cycle loop as
    /// [`Core::run`], but fetch pulls epochs out of `stream` on demand and
    /// commit releases them once the ROB has drained past, so peak retained
    /// trace memory stays bounded by the in-flight window (at most
    /// ROB + fetch-buffer records, rounded up to whole epochs) regardless
    /// of trace length.
    ///
    /// `deadness` must come from [`DeadnessAnalysis::analyze_streamed`] on
    /// the same program under the same emulator limits — the analysis pass
    /// runs first, and its verdict vector also tells this loop the trace
    /// length. When that analysis was single-epoch its verdicts equal the
    /// exact oracle's, and this run's statistics are bit-identical to
    /// [`Core::run`] on the materialized trace.
    ///
    /// `stream` must be freshly constructed: nothing produced or released.
    ///
    /// # Panics
    ///
    /// Panics if `stream` and `deadness` disagree about the trace, or if
    /// the simulation exceeds its deadlock guard.
    #[must_use]
    pub fn run_streamed(
        &self,
        stream: &mut TraceStream<'_>,
        deadness: &StreamedDeadness,
    ) -> PipelineStats {
        self.run_streamed_observed(stream, deadness, None)
    }

    /// [`Core::run_streamed`] with an optional cycle-event trace attached
    /// (see [`Core::run_observed`] for the tracing contract).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Core::run_streamed`].
    #[must_use]
    pub fn run_streamed_observed(
        &self,
        stream: &mut TraceStream<'_>,
        deadness: &StreamedDeadness,
        events: Option<&mut dide_obs::EventTrace>,
    ) -> PipelineStats {
        let program = stream.program();
        let stats =
            self.run_loop(program, RecordSource::Stream(stream), deadness.verdicts(), events);
        assert_eq!(
            stream.total_len(),
            Some(deadness.len() as u64),
            "deadness must come from an analysis of the streamed program"
        );
        stats
    }

    /// The cycle loop, generic over where records come from. `verdicts` is
    /// always full-length — the analysis pass precedes the pipeline pass
    /// even when the trace itself is streamed — and supplies the trace
    /// length, the oracle predictor's answers, and commit-time training
    /// labels.
    fn run_loop(
        &self,
        program: &Program,
        mut source: RecordSource<'_, '_>,
        verdicts: &[Verdict],
        mut events: Option<&mut dide_obs::EventTrace>,
    ) -> PipelineStats {
        if self.config.cluster.is_some() {
            return crate::cluster::run_loop_clustered(
                &self.config,
                program,
                source,
                verdicts,
                events,
            );
        }
        let cfg = &self.config;
        let total = verdicts.len() as u64;
        let predec = predecode(program, cfg);
        let track_stores = cfg.dead.policy.covers_stores();

        let mut stats = PipelineStats::default();
        let mut hierarchy = MemoryHierarchy::new(cfg.hierarchy);
        let mut frontend = Frontend::new(cfg, &predec);
        let mut regs = PhysRegFile::new(cfg.phys_regs, Reg::COUNT);
        let mut map = RenameMap::new();
        let mut rob = Rob::new(cfg.rob_entries);
        let mut iq = IssueQueue::new(cfg.iq_entries, cfg.phys_regs);
        let mut lsq = LoadStoreQueues::new(cfg.lq_entries, cfg.sq_entries);
        let mut fus = FuPool::new(cfg.fu);
        let mut predictor: Box<dyn DeadPredictor> = if cfg.dead.oracle {
            Box::new(OracleDeadPredictor::from_verdicts(verdicts))
        } else {
            Box::new(CfiDeadPredictor::new(cfg.dead.predictor))
        };
        let mut completions = CompletionQueue::new();
        let mut eliminated_stores: HashSet<u64> = HashSet::new();
        // Last store (as `seq + 1`, 0 = none) to claim each byte, written at
        // rename in program order: the core's own producer tracking for the
        // eliminated-store violation check, so the streamed path needs no
        // retained producer table from the analysis.
        let mut store_shadow: PagedShadow<u64> = PagedShadow::new();
        let mut rename_stalled_until = 0u64;
        // Scratch for issue select, reused across cycles.
        let mut ready_scratch: Vec<(u64, u32)> = Vec::new();

        let mut committed = 0u64;
        let mut now = 0u64;
        let deadlock_guard = 10_000u64.saturating_add(total.saturating_mul(1_000));

        while committed < total {
            assert!(
                now < deadlock_guard,
                "pipeline deadlock: {committed}/{total} committed after {now} cycles \
                 (rob {}/{}, iq {}/{}, lq {}/{}, sq {}/{}, free regs {})",
                rob.len(),
                cfg.rob_entries,
                iq.len(),
                cfg.iq_entries,
                lsq.lq_len(),
                cfg.lq_entries,
                lsq.sq_len(),
                cfg.sq_entries,
                regs.free_count(),
            );

            // ---- writeback: drain completions due this cycle ----
            // `pop_due` yields same-cycle completions in ascending seq
            // order (see wheel.rs for why that pinning is benign).
            while let Some(c) = completions.pop_due(now) {
                rob.complete(c.seq);
                if let Some(p) = c.dest {
                    regs.set_ready(p);
                    iq.wakeup(p);
                    stats.rf_writes += 1;
                }
                if c.is_store {
                    lsq.store_executed(c.seq);
                }
                if frontend.pending_branch() == Some(c.seq) {
                    frontend.resolve_branch(c.seq, now);
                }
            }

            // ---- commit ----
            for _ in 0..cfg.commit_width {
                let Some(head) = rob.head() else { break };
                if !head.completed {
                    break;
                }
                let e = rob.pop().expect("head exists");
                if let Some(d) = e.dest {
                    if let Mapping::Phys(p) = d.prev {
                        regs.free(p);
                        stats.phys_frees += 1;
                    }
                }
                if e.is_cond_branch {
                    stats.branches += 1;
                }
                if e.is_load && !e.eliminated {
                    lsq.pop_load(e.seq);
                }
                if e.is_store {
                    if e.eliminated {
                        stats.savings.dcache_accesses_saved += 1;
                    } else {
                        lsq.pop_store(e.seq);
                        let mem = source.get(e.seq).mem().expect("stores carry an access");
                        hierarchy.access_data(mem.addr, true);
                    }
                }
                if e.eligible {
                    let was_dead = verdicts[e.seq as usize].is_dead();
                    let input = PredictInput {
                        seq: e.seq,
                        static_index: source.get(e.seq).index,
                        signature: e.signature,
                    };
                    predictor.train(&input, was_dead);
                    if was_dead {
                        stats.oracle_dead_committed += 1;
                    }
                    if e.eliminated {
                        stats.dead_predicted += 1;
                        stats.dead_predicted_correct += u64::from(was_dead);
                    }
                }
                committed += 1;
                stats.committed += 1;
            }
            // Nothing before the commit head is ever read again: a
            // streaming source recycles the epochs the ROB drained past.
            source.release_before(committed);

            // ---- issue / execute ----
            let mut issued = 0usize;
            fus.begin_cycle();
            if iq.ready_count() > 0 {
                // Select visits only *ready* entries, oldest first — the
                // queue's age list yields them already in sequence order.
                ready_scratch.clear();
                iq.collect_ready(&mut ready_scratch);
                for &(seq, slot) in &ready_scratch {
                    if issued == cfg.issue_width {
                        break;
                    }
                    // FU availability first: it is a pure counter check,
                    // and skipping it saves the (pricier) LSQ probe for
                    // loads once the memory ports are exhausted. The probe
                    // is side-effect-free, so swapping the check order
                    // changes no outcome.
                    let e = iq.entry(slot);
                    let fu = e.fu;
                    if !fus.can_issue(fu, now) {
                        continue;
                    }
                    let is_load = e.is_load;
                    if is_load {
                        let mem = source.get(seq).mem().expect("loads carry an access");
                        if !lsq.load_may_issue(seq, mem) {
                            continue;
                        }
                    }
                    let base_latency = fus.try_issue(fu, now).expect("availability checked above");
                    let latency = if is_load {
                        let mem = source.get(seq).mem().expect("loads carry an access");
                        // The cache is probed either way; a store-to-load
                        // forward shortcuts the latency.
                        let access = hierarchy.access_data(mem.addr, false);
                        if lsq.load_forwards(seq, mem) {
                            2
                        } else {
                            1 + access
                        }
                    } else {
                        base_latency // store: address generation only
                    };
                    stats.rf_reads += e.srcs.iter().flatten().count() as u64;
                    completions.push(Completion {
                        cycle: now + u64::from(latency),
                        seq,
                        dest: e.dest,
                        is_store: fu == FuClass::Mem && !is_load,
                    });
                    iq.remove(slot);
                    issued += 1;
                }
            }

            // ---- rename / dispatch ----
            if now >= rename_stalled_until {
                'rename: for _ in 0..cfg.rename_width {
                    let Some(seq) = frontend.peek_ready(now) else { break };
                    if rob.is_full() {
                        stats.rob_full_stalls += 1;
                        break;
                    }
                    let r = source.get(seq);
                    let pre = &predec[r.index as usize];
                    let dest = pre.dest;
                    let is_store = pre.is_store;
                    let is_load = pre.is_load;

                    let eligible = pre.eligible;
                    let signature = if eligible {
                        frontend.signature(seq, cfg.dead.lookahead)
                    } else {
                        CfSignature::empty()
                    };
                    let input = PredictInput { seq, static_index: r.index, signature };
                    let eliminate = eligible && predictor.predict(&input);
                    if eligible {
                        if let Some(tr) = events.as_deref_mut() {
                            tr.record(now, EventKind::Verdict { seq, predicted_dead: eliminate });
                        }
                    }

                    let mut srcs = [None, None];
                    if !eliminate {
                        // Map sources, detecting dead-tag violations (this
                        // instruction actually reads its sources) in the
                        // same pass.
                        for (i, &src) in pre.srcs.iter().flatten().enumerate() {
                            match map.get(src) {
                                Mapping::Phys(p) => srcs[i] = Some(p),
                                Mapping::Dead(_) => {
                                    // Recovery re-executes the producer: it
                                    // needs a register for the materialized
                                    // value.
                                    let Some(p) = regs.alloc() else {
                                        stats.no_phys_stalls += 1;
                                        break 'rename;
                                    };
                                    stats.phys_allocs += 1;
                                    regs.set_ready(p);
                                    // No in-flight entry can reference a reg
                                    // straight off the free list, but keep the
                                    // set_ready → wakeup pairing uniform.
                                    iq.wakeup(p);
                                    map.set(src, Mapping::Phys(p));
                                    stats.dead_violations += 1;
                                    if let Some(tr) = events.as_deref_mut() {
                                        tr.record(now, EventKind::Violation { seq });
                                    }
                                    rename_stalled_until =
                                        now + u64::from(cfg.dead.violation_penalty);
                                    break 'rename;
                                }
                            }
                        }
                        // Loads can also trip over eliminated stores. (The
                        // emptiness guard keeps elimination-off runs from
                        // probing the shadow on every load.)
                        if is_load && !eliminated_stores.is_empty() {
                            let mem = r.mem().expect("loads carry an access");
                            if take_eliminated_producer(&store_shadow, &mut eliminated_stores, mem)
                            {
                                stats.dead_violations += 1;
                                if let Some(tr) = events.as_deref_mut() {
                                    tr.record(now, EventKind::Violation { seq });
                                }
                                rename_stalled_until = now + u64::from(cfg.dead.violation_penalty);
                                break 'rename;
                            }
                        }
                    }

                    if eliminate {
                        // The instruction vanishes: no physical register,
                        // no issue-queue slot, no execution, no cache
                        // access. It retires through the ROB for precise
                        // state and trains the predictor at commit.
                        let dest_info = dest.map(|arch| {
                            let prev = map.set(arch, Mapping::Dead(seq));
                            DestInfo { prev }
                        });
                        stats.savings.phys_allocs_saved += u64::from(dest.is_some());
                        stats.savings.iq_slots_saved += 1;
                        stats.savings.rf_writes_saved += u64::from(dest.is_some());
                        stats.savings.rf_reads_saved += pre.srcs.iter().flatten().count() as u64;
                        if is_load {
                            stats.savings.dcache_accesses_saved += 1;
                        }
                        if is_store {
                            eliminated_stores.insert(seq);
                            // An eliminated store still architecturally
                            // produced its bytes: claim them so later loads
                            // can trip the violation check above.
                            claim_store_bytes(
                                &mut store_shadow,
                                seq,
                                r.mem().expect("stores carry an access"),
                            );
                        }
                        if let Some(tr) = events.as_deref_mut() {
                            tr.record(now, EventKind::Eliminated { seq });
                        }
                        stats.dispatched += 1;
                        rob.push(RobEntry {
                            seq,
                            dest: dest_info,
                            eliminated: true,
                            completed: true,
                            is_load,
                            is_store,
                            is_cond_branch: pre.is_cond_branch,

                            eligible,
                            steered_dead: false,
                            signature,
                        });
                        frontend.pop(seq);
                        continue;
                    }

                    // Normal dispatch: check resources, then allocate.
                    if iq.is_full() {
                        stats.iq_full_stalls += 1;
                        break;
                    }
                    if is_load && lsq.lq_full() {
                        stats.lsq_full_stalls += 1;
                        break;
                    }
                    if is_store && lsq.sq_full() {
                        stats.lsq_full_stalls += 1;
                        break;
                    }
                    let mut dest_phys = None;
                    if dest.is_some() && regs.free_count() == 0 {
                        stats.no_phys_stalls += 1;
                        break;
                    }

                    let dest_info = dest.map(|arch| {
                        let p = regs.alloc().expect("free count checked above");
                        stats.phys_allocs += 1;
                        dest_phys = Some(p);
                        let prev = map.set(arch, Mapping::Phys(p));
                        DestInfo { prev }
                    });

                    if is_load {
                        lsq.push_load(seq);
                    }
                    if is_store {
                        let mem = r.mem().expect("stores carry an access");
                        lsq.push_store(seq, mem);
                        if track_stores {
                            claim_store_bytes(&mut store_shadow, seq, mem);
                        }
                    }
                    iq.push(IqEntry { seq, srcs, fu: pre.fu, is_load, dest: dest_phys }, &regs);
                    stats.dispatched += 1;
                    rob.push(RobEntry {
                        seq,
                        dest: dest_info,
                        eliminated: false,
                        completed: false,
                        is_load,
                        is_store,
                        is_cond_branch: pre.is_cond_branch,

                        eligible,
                        steered_dead: false,
                        signature,
                    });
                    frontend.pop(seq);
                }
            }

            // ---- fetch ----
            frontend.fetch(now, &mut source, &mut hierarchy, &mut stats);

            // Occupancy accounting (end-of-cycle snapshot).
            stats.rob_occupancy_sum += rob.len() as u64;
            stats.iq_occupancy_sum += iq.len() as u64;
            // Registers in use beyond the architectural baseline; dead-tag
            // mappings hold no register, so this can dip below 32 — clamp.
            stats.phys_used_sum +=
                (cfg.phys_regs - regs.free_count()).saturating_sub(Reg::COUNT) as u64;
            if let Some(tr) = events.as_deref_mut() {
                if tr.should_sample(now) {
                    tr.record(
                        now,
                        EventKind::Sample {
                            rob: rob.len() as u32,
                            iq: iq.len() as u32,
                            lq: lsq.lq_len() as u32,
                            sq: lsq.sq_len() as u32,
                            free_regs: regs.free_count() as u32,
                        },
                    );
                }
            }

            now += 1;

            // ---- idle-cycle skip-ahead ----
            // When no stage can make progress, jump `now` to the next
            // cycle at which one can, replicating exactly the per-cycle
            // accounting the skipped no-op cycles would have performed.
            // Stage-by-stage, a cycle `t` in the skipped window is a no-op:
            //  * writeback — the earliest pending completion bounds the
            //    target, so nothing is due before it;
            //  * commit — requires a *completed* ROB head, checked below;
            //    nothing completes in the window, and dispatch (which can
            //    push pre-completed eliminated entries) is blocked;
            //  * issue — requires a ready IQ entry, checked below; wakeups
            //    only happen at writeback, dispatch is blocked;
            //  * rename — before `rename_wake`, rename is gated by its
            //    stall window or an empty/unready fetch buffer and touches
            //    no counter. From `rename_wake` on, the buffer-front
            //    instruction is presented every cycle; if a structural
            //    resource blocks it, the attempt's only side effect is one
            //    stall-counter bump, replicated below, and the window may
            //    extend past `rename_wake`. A full ROB qualifies
            //    unconditionally (the check precedes every other rename
            //    side effect, including the predictor verdict and its
            //    event). The IQ/LSQ/phys-reg checks qualify only with
            //    elimination off, where nothing is ever `eligible`: the
            //    attempt then runs no predictor query, records no event,
            //    and the dead-tag scan is read-only, so re-running it every
            //    skipped cycle is observationally a counter bump. If no
            //    resource blocks, rename would dispatch: `rename_wake`
            //    bounds the target;
            //  * fetch — classified via `block_state`: blocked states only
            //    bump `fetch_stall_cycles` (replicated below); a state that
            //    would fetch forbids skipping outright.
            // All machine state is therefore frozen across the window and
            // the classification cannot change mid-window, except for
            // `Stalled`, whose expiry cycle also bounds the target.
            if committed < total
                && iq.ready_count() == 0
                && !rob.head().is_some_and(|h| h.completed)
            {
                let mut target = completions.next_cycle().unwrap_or(u64::MAX);
                let rename_wake = match frontend.next_ready_at() {
                    Some(ready_at) => ready_at.max(rename_stalled_until),
                    None => u64::MAX,
                };
                let blocked = if rob.is_full() {
                    Some(RenameStall::RobFull)
                } else if cfg.dead.policy == EliminationPolicy::Off {
                    match frontend.next_seq() {
                        Some(seq) => {
                            let pre = &predec[source.get(seq).index as usize];
                            if iq.is_full() {
                                Some(RenameStall::IqFull)
                            } else if (pre.is_load && lsq.lq_full())
                                || (pre.is_store && lsq.sq_full())
                            {
                                Some(RenameStall::LsqFull)
                            } else if pre.dest.is_some() && regs.free_count() == 0 {
                                Some(RenameStall::NoPhys)
                            } else {
                                None
                            }
                        }
                        None => None,
                    }
                } else {
                    None
                };
                if blocked.is_none() {
                    target = target.min(rename_wake);
                }
                let fetch_stalls = match frontend.block_state(now, &mut source) {
                    FetchBlock::Pending | FetchBlock::BufferFull => true,
                    FetchBlock::Stalled(until) => {
                        target = target.min(until);
                        true
                    }
                    FetchBlock::Exhausted => false,
                    FetchBlock::Progress => {
                        target = now; // fetch would advance: cannot skip
                        false
                    }
                };
                if let Some(tr) = events.as_deref() {
                    // Never skip over an occupancy-sample cycle; the loop
                    // body records it naturally once `now` lands there.
                    let every = tr.config().sample_every;
                    if every > 0 {
                        target = target.min(now.next_multiple_of(every));
                    }
                }
                if target > now && target != u64::MAX {
                    let skipped = target - now;
                    stats.rob_occupancy_sum += rob.len() as u64 * skipped;
                    stats.iq_occupancy_sum += iq.len() as u64 * skipped;
                    stats.phys_used_sum +=
                        (cfg.phys_regs - regs.free_count()).saturating_sub(Reg::COUNT) as u64
                            * skipped;
                    if fetch_stalls {
                        stats.fetch_stall_cycles += skipped;
                    }
                    if rename_wake < target {
                        // Each skipped cycle from `rename_wake` on would
                        // have presented a ready instruction to rename and
                        // stalled on the blocking resource.
                        let stalled = target - rename_wake.max(now);
                        match blocked.expect("an unblocked rename bounds the target") {
                            RenameStall::RobFull => stats.rob_full_stalls += stalled,
                            RenameStall::IqFull => stats.iq_full_stalls += stalled,
                            RenameStall::LsqFull => stats.lsq_full_stalls += stalled,
                            RenameStall::NoPhys => stats.no_phys_stalls += stalled,
                        }
                    }
                    now = target;
                }
            }
        }
        debug_assert!(frontend.drained(&mut source), "all instructions must pass through fetch");
        stats.cycles = now;
        stats.memory = hierarchy.stats();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DeadElimConfig, EliminationPolicy};
    use dide_emu::Emulator;
    use dide_isa::ProgramBuilder;

    fn counted_loop_program(iters: i64) -> Program {
        let mut b = ProgramBuilder::new("loop");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, iters);
        let top = b.label();
        b.bind(top);
        b.slt(Reg::T2, Reg::T0, Reg::T1); // dead on all but the last iteration
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, top);
        b.out(Reg::T2);
        b.halt();
        b.build().unwrap()
    }

    fn counted_loop(iters: i64) -> Trace {
        Emulator::new(&counted_loop_program(iters)).run().unwrap()
    }

    #[test]
    fn commits_every_instruction() {
        let t = counted_loop(200);
        let a = DeadnessAnalysis::analyze(&t);
        let stats = Core::new(PipelineConfig::baseline()).run(&t, &a);
        assert_eq!(stats.committed, t.len() as u64);
        assert_eq!(stats.dispatched, t.len() as u64);
        assert!(stats.cycles > 0);
        assert!(stats.ipc() > 0.1, "ipc {}", stats.ipc());
        assert!(stats.invariant_violations().is_empty(), "{:?}", stats.invariant_violations());
    }

    #[test]
    fn loop_branch_is_predictable() {
        let t = counted_loop(500);
        let a = DeadnessAnalysis::analyze(&t);
        let stats = Core::new(PipelineConfig::baseline()).run(&t, &a);
        assert!(stats.branch_accuracy() > 0.95, "accuracy {}", stats.branch_accuracy());
    }

    #[test]
    fn elimination_reduces_register_traffic() {
        let t = counted_loop(2000);
        let a = DeadnessAnalysis::analyze(&t);
        let base = Core::new(PipelineConfig::baseline()).run(&t, &a);
        let elim_cfg = PipelineConfig::baseline().with_elimination(DeadElimConfig::default());
        let elim = Core::new(elim_cfg).run(&t, &a);
        assert_eq!(elim.committed, base.committed);
        assert!(elim.dead_predicted > 500, "eliminated {}", elim.dead_predicted);
        assert!(elim.savings.phys_allocs_saved > 0);
        assert!(elim.phys_allocs < base.phys_allocs);
        assert!(elim.rf_writes < base.rf_writes);
        assert!(elim.elimination_accuracy() > 0.9, "accuracy {}", elim.elimination_accuracy());
        assert!(elim.invariant_violations().is_empty(), "{:?}", elim.invariant_violations());
    }

    fn store_load_loop(iters: i64) -> Trace {
        let mut b = ProgramBuilder::new("memloop");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, iters);
        let top = b.label();
        b.bind(top);
        b.sd(Reg::T0, Reg::SP, -8);
        b.ld(Reg::T2, Reg::SP, -8);
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, top);
        b.out(Reg::T2);
        b.halt();
        Emulator::new(&b.build().unwrap()).run().unwrap()
    }

    #[test]
    fn rob_pressure_shows_up_in_registry_counters() {
        // A 4-entry ROB wraps its ring dozens of times on a 300-iteration
        // loop; the registry must report the resulting backpressure while
        // every conservation law still holds.
        let t = counted_loop(300);
        let a = DeadnessAnalysis::analyze(&t);
        let mut cfg = PipelineConfig::baseline();
        cfg.rob_entries = 4;
        let stats = Core::new(cfg).run(&t, &a);
        let c = stats.counters();
        assert_eq!(c.expect("pipeline.committed"), t.len() as u64);
        assert!(c.expect("pipeline.rob_full_stalls") > 0, "tiny ROB must stall dispatch");
        assert!(stats.invariant_violations().is_empty(), "{:?}", stats.invariant_violations());
    }

    #[test]
    fn free_list_exhaustion_shows_up_in_registry_counters() {
        // Two spare physical registers: rename repeatedly drains the free
        // list and recycles registers freed at commit. The registry reports
        // the stalls, and frees stay bounded by allocs plus the initial
        // architectural mappings.
        let t = counted_loop(300);
        let a = DeadnessAnalysis::analyze(&t);
        let mut cfg = PipelineConfig::baseline();
        cfg.phys_regs = 34;
        let stats = Core::new(cfg).run(&t, &a);
        let c = stats.counters();
        assert_eq!(c.expect("pipeline.committed"), t.len() as u64);
        assert!(c.expect("pipeline.no_phys_stalls") > 0, "2 spare registers must stall rename");
        assert!(c.expect("pipeline.phys_allocs") > 0);
        assert!(
            c.expect("pipeline.phys_frees") <= c.expect("pipeline.phys_allocs") + Reg::COUNT as u64
        );
        assert!(stats.invariant_violations().is_empty(), "{:?}", stats.invariant_violations());
    }

    #[test]
    fn store_load_traffic_shows_up_in_registry_counters() {
        // Store-to-load forwarding pressure through a 1-entry store queue:
        // the LSQ stalls are counted, and the memory scope feeds the L1D
        // conservation rules (hits + misses == accesses).
        let t = store_load_loop(200);
        let a = DeadnessAnalysis::analyze(&t);
        let mut cfg = PipelineConfig::baseline();
        cfg.sq_entries = 1;
        let stats = Core::new(cfg).run(&t, &a);
        let c = stats.counters();
        assert_eq!(c.expect("pipeline.committed"), t.len() as u64);
        assert!(c.expect("pipeline.lsq_full_stalls") > 0, "1-entry SQ must stall dispatch");
        assert!(c.expect("pipeline.mem.l1d.accesses") >= 400, "each iteration touches the L1D");
        assert_eq!(
            c.expect("pipeline.mem.l1d.hits") + c.expect("pipeline.mem.l1d.misses"),
            c.expect("pipeline.mem.l1d.accesses")
        );
        assert!(stats.invariant_violations().is_empty(), "{:?}", stats.invariant_violations());
    }

    #[test]
    fn elimination_off_by_default_in_baseline() {
        let cfg = PipelineConfig::baseline();
        assert_eq!(cfg.dead.policy, EliminationPolicy::Off);
        let t = counted_loop(50);
        let a = DeadnessAnalysis::analyze(&t);
        let stats = Core::new(cfg).run(&t, &a);
        assert_eq!(stats.dead_predicted, 0);
        assert_eq!(stats.savings.phys_allocs_saved, 0);
    }

    #[test]
    fn observed_run_is_bit_identical_and_records_events() {
        use dide_obs::{EventKind, EventTrace, EventsConfig};
        let t = counted_loop(600);
        let a = DeadnessAnalysis::analyze(&t);
        let cfg = PipelineConfig::baseline().with_elimination(DeadElimConfig::default());
        let core = Core::new(cfg);
        let plain = core.run(&t, &a);
        let mut events = EventTrace::new(EventsConfig { sample_every: 16, capacity: 512 });
        let observed = core.run_observed(&t, &a, Some(&mut events));
        assert_eq!(plain, observed, "tracing must not perturb architectural results");
        assert!(!events.is_empty());
        let kinds: Vec<&str> = events.events().iter().map(|e| e.kind.label()).collect();
        assert!(kinds.contains(&"sample"));
        assert!(kinds.contains(&"verdict"));
        assert!(kinds.contains(&"eliminated"));
        let verdicts = events
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Verdict { predicted_dead: true, .. }))
            .count();
        assert!(verdicts > 0, "an eliminating run must record dead verdicts");
    }

    #[test]
    fn eliminated_stores_never_reach_the_store_queue() {
        // Each iteration's first store is overwritten before any load:
        // the oracle eliminates it at rename, so it must never be pushed
        // into the store queue or issued. If one ever leaked into the
        // execute path, writeback's `store_executed` would panic on the
        // absent sequence number (see lsq.rs) — this run completing is
        // the regression guard.
        let mut b = ProgramBuilder::new("deadstores");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, 200);
        let top = b.label();
        b.bind(top);
        b.sd(Reg::T0, Reg::SP, -8); // dead: overwritten below, never read
        b.sd(Reg::T1, Reg::SP, -8);
        b.ld(Reg::T2, Reg::SP, -8);
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, top);
        b.out(Reg::T2);
        b.halt();
        let t = Emulator::new(&b.build().unwrap()).run().unwrap();
        let a = DeadnessAnalysis::analyze(&t);
        let cfg = PipelineConfig::baseline().with_elimination(DeadElimConfig {
            policy: EliminationPolicy::StoreOnly,
            oracle: true,
            ..DeadElimConfig::default()
        });
        let stats = Core::new(cfg).run(&t, &a);
        assert_eq!(stats.committed, t.len() as u64);
        assert!(stats.dead_predicted > 0, "the oracle must eliminate the dead stores");
        assert!(
            stats.savings.dcache_accesses_saved > 0,
            "eliminated stores must skip the D-cache at commit"
        );
        assert!(stats.invariant_violations().is_empty(), "{:?}", stats.invariant_violations());
    }

    #[test]
    fn contended_machine_is_slower() {
        let t = counted_loop(1000);
        let a = DeadnessAnalysis::analyze(&t);
        let base = Core::new(PipelineConfig::baseline()).run(&t, &a);
        let tight = Core::new(PipelineConfig::contended()).run(&t, &a);
        assert!(tight.cycles >= base.cycles);
    }

    #[test]
    fn single_epoch_streamed_run_is_bit_identical() {
        // A single-epoch windowed analysis yields the exact verdicts, so
        // the streamed pipeline pass must reproduce the materialized run's
        // statistics bit for bit — elimination, training and all.
        let p = counted_loop_program(2000);
        let t = Emulator::new(&p).run().unwrap();
        let a = DeadnessAnalysis::analyze(&t);
        let cfg = PipelineConfig::baseline()
            .with_elimination(DeadElimConfig { oracle: true, ..DeadElimConfig::default() });
        let core = Core::new(cfg);
        let base = core.run(&t, &a);

        let epoch = 1 << 20; // whole trace in one epoch
        let sd = DeadnessAnalysis::analyze_streamed(&p, epoch).unwrap();
        let mut stream = TraceStream::new(&p, epoch);
        let streamed = core.run_streamed(&mut stream, &sd);
        assert_eq!(streamed, base, "single-epoch streamed run must be bit-identical");
    }

    #[test]
    fn streamed_run_window_stays_bounded() {
        // With many small epochs the stream must keep only the in-flight
        // window resident: ROB (128) + fetch buffer (32) records span at
        // most two 256-record epochs beyond the one being produced.
        let p = counted_loop_program(3000);
        let cfg = PipelineConfig::baseline()
            .with_elimination(DeadElimConfig { oracle: true, ..DeadElimConfig::default() });
        let core = Core::new(cfg);
        let sd = DeadnessAnalysis::analyze_streamed(&p, 256).unwrap();
        let mut stream = TraceStream::new(&p, 256);
        let stats = core.run_streamed(&mut stream, &sd);
        assert_eq!(stats.committed, sd.len() as u64);
        assert!(stats.invariant_violations().is_empty(), "{:?}", stats.invariant_violations());
        let chunks = stream.total_len().unwrap().div_ceil(256);
        assert!(chunks > 20, "the trace must span many epochs (got {chunks})");
        assert!(
            stream.peak_resident_chunks() <= 4,
            "peak window {} chunks of {chunks}",
            stream.peak_resident_chunks()
        );
    }

    #[test]
    fn streamed_violation_path_matches_materialized() {
        // A dead store whose bytes are read only by a dead-but-uneliminable
        // load: under a store-only oracle the store vanishes at rename and
        // the load must trip the dead-tag violation — through the core's
        // own store shadow, identically on both record paths.
        let mut b = ProgramBuilder::new("violating");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, 150);
        let top = b.label();
        b.bind(top);
        b.sd(Reg::T0, Reg::SP, -8); // read only by the dead load: eliminated
        b.ld(Reg::T2, Reg::SP, -8); // result never used, not store-eligible
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, top);
        b.out(Reg::T0);
        b.halt();
        let p = b.build().unwrap();
        let cfg = PipelineConfig::baseline().with_elimination(DeadElimConfig {
            policy: EliminationPolicy::StoreOnly,
            oracle: true,
            ..DeadElimConfig::default()
        });
        let core = Core::new(cfg);

        let t = Emulator::new(&p).run().unwrap();
        let a = DeadnessAnalysis::analyze(&t);
        let base = core.run(&t, &a);
        assert!(base.dead_violations > 0, "the dead load must read the eliminated store");
        assert!(base.invariant_violations().is_empty(), "{:?}", base.invariant_violations());

        let sd = DeadnessAnalysis::analyze_streamed(&p, 1 << 20).unwrap();
        let mut stream = TraceStream::new(&p, 1 << 20);
        assert_eq!(core.run_streamed(&mut stream, &sd), base);

        // Small epochs: verdicts are conservative, but the run still
        // commits everything and detects violations soundly.
        let sd = DeadnessAnalysis::analyze_streamed(&p, 64).unwrap();
        let mut stream = TraceStream::new(&p, 64);
        let small = core.run_streamed(&mut stream, &sd);
        assert_eq!(small.committed, base.committed);
        assert!(small.invariant_violations().is_empty(), "{:?}", small.invariant_violations());
    }
}
