//! Pipeline statistics and resource-savings accounting.

use std::fmt;

use dide_mem::HierarchyStats;
use dide_obs::{check_rules, CounterSet, Expr, Observe, Rule, Scope};

/// Resource-utilization deltas attributable to dead-instruction
/// elimination — the quantities behind the paper's ">5% average reduction"
/// claim (experiment E8).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceSavings {
    /// Physical-register allocations avoided (each implies a matching free
    /// avoided later).
    pub phys_allocs_saved: u64,
    /// Register-file read ports not consumed.
    pub rf_reads_saved: u64,
    /// Register-file write ports not consumed.
    pub rf_writes_saved: u64,
    /// D-cache accesses avoided (eliminated loads and stores).
    pub dcache_accesses_saved: u64,
    /// Issue-queue slots never occupied.
    pub iq_slots_saved: u64,
}

impl Observe for ResourceSavings {
    fn observe(&self, scope: &mut Scope<'_>) {
        scope.counter("phys_allocs_saved", self.phys_allocs_saved);
        scope.counter("rf_reads_saved", self.rf_reads_saved);
        scope.counter("rf_writes_saved", self.rf_writes_saved);
        scope.counter("dcache_accesses_saved", self.dcache_accesses_saved);
        scope.counter("iq_slots_saved", self.iq_slots_saved);
    }
}

/// Counters for one pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Instructions dispatched into the ROB at rename (eliminated or not).
    pub dispatched: u64,
    /// Dispatched instructions squashed before commit. The model is
    /// trace-driven — only committed-path instructions are simulated — so
    /// this stays zero today; the counter exists so the conservation law
    /// `committed + squashed == dispatched` keeps holding verbatim once
    /// wrong-path execution lands (ROADMAP).
    pub squashed: u64,
    /// Physical registers allocated at rename.
    pub phys_allocs: u64,
    /// Physical registers returned to the free list at commit.
    pub phys_frees: u64,
    /// Register-file reads performed by executing instructions.
    pub rf_reads: u64,
    /// Register-file writes performed by completing instructions.
    pub rf_writes: u64,
    /// Conditional branches committed.
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub branch_mispredicts: u64,
    /// Taken control transfers whose target missed the BTB.
    pub btb_misses: u64,
    /// Dynamic instructions predicted dead at rename.
    pub dead_predicted: u64,
    /// Of those, instructions the oracle also labels dead.
    pub dead_predicted_correct: u64,
    /// Dead-tag reads (each charged the violation penalty).
    pub dead_violations: u64,
    /// Oracle-dead instructions that committed (eliminated or not).
    pub oracle_dead_committed: u64,
    /// Cycles rename stalled for a full ROB.
    pub rob_full_stalls: u64,
    /// Cycles rename stalled for a full issue queue.
    pub iq_full_stalls: u64,
    /// Cycles rename stalled for an empty free list.
    pub no_phys_stalls: u64,
    /// Cycles rename stalled for a full load or store queue.
    pub lsq_full_stalls: u64,
    /// Cycles fetch was blocked (mispredict redirects, I-cache misses,
    /// full fetch buffer).
    pub fetch_stall_cycles: u64,
    /// Sum over cycles of ROB occupancy (divide by cycles for the mean).
    pub rob_occupancy_sum: u64,
    /// Sum over cycles of issue-queue occupancy.
    pub iq_occupancy_sum: u64,
    /// Sum over cycles of allocated (non-free) rename registers beyond the
    /// architectural 32.
    pub phys_used_sum: u64,
    /// Savings attributable to elimination.
    pub savings: ResourceSavings,
    /// Cache-hierarchy counters.
    pub memory: HierarchyStats,
}

impl PipelineStats {
    /// Committed instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Conditional-branch prediction accuracy.
    #[must_use]
    pub fn branch_accuracy(&self) -> f64 {
        if self.branches == 0 {
            1.0
        } else {
            1.0 - self.branch_mispredicts as f64 / self.branches as f64
        }
    }

    /// Precision of acted-on dead predictions.
    #[must_use]
    pub fn elimination_accuracy(&self) -> f64 {
        if self.dead_predicted == 0 {
            1.0
        } else {
            self.dead_predicted_correct as f64 / self.dead_predicted as f64
        }
    }

    /// Fraction of oracle-dead committed instructions that were eliminated.
    #[must_use]
    pub fn elimination_coverage(&self) -> f64 {
        if self.oracle_dead_committed == 0 {
            0.0
        } else {
            self.dead_predicted_correct as f64 / self.oracle_dead_committed as f64
        }
    }

    /// Relative reduction of a resource against its no-elimination usage:
    /// `saved / (used + saved)`.
    #[must_use]
    pub fn reduction(used: u64, saved: u64) -> f64 {
        if used + saved == 0 {
            0.0
        } else {
            saved as f64 / (used + saved) as f64
        }
    }

    /// Mean reorder-buffer occupancy per cycle.
    #[must_use]
    pub fn mean_rob_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.rob_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Mean issue-queue occupancy per cycle.
    #[must_use]
    pub fn mean_iq_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.iq_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Mean rename registers in use (beyond the architectural 32) per
    /// cycle.
    #[must_use]
    pub fn mean_phys_used(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.phys_used_sum as f64 / self.cycles as f64
        }
    }

    /// Snapshots every counter into a registry under the `pipeline.`
    /// namespace (savings under `pipeline.savings.`, cache hierarchy under
    /// `pipeline.mem.`).
    ///
    /// The hot path never touches the registry — stats are plain field
    /// increments during simulation and this snapshot is taken once,
    /// post-run.
    #[must_use]
    pub fn counters(&self) -> CounterSet {
        let mut set = CounterSet::new();
        self.observe(&mut set.scope("pipeline"));
        set
    }

    /// The conservation laws every run must satisfy, expressed over the
    /// counter names produced by [`PipelineStats::counters`].
    ///
    /// These are internal-consistency checks on a single run; cross-run
    /// laws (savings vs. a baseline run's usage) live in `dide-verify`,
    /// built from the same rule vocabulary via [`Rule::prefixed`].
    #[must_use]
    pub fn conservation_rules() -> Vec<Rule> {
        let c = |name: &str| Expr::counter(format!("pipeline.{name}"));
        let mut rules = vec![
            Rule::eq(Expr::sum(["pipeline.committed", "pipeline.squashed"]), c("dispatched")),
            Rule::le(c("dead_predicted_correct"), c("dead_predicted")),
            Rule::le(c("dead_predicted_correct"), c("oracle_dead_committed")),
            Rule::eq(c("savings.iq_slots_saved"), c("dead_predicted"))
                .note("every elimination skips exactly one IQ slot"),
            // The 32 initial architectural mappings are backed by
            // pre-allocated physical registers that never show up in
            // `phys_allocs`, and an eliminated writer frees its
            // predecessor's register without allocating one — so frees may
            // exceed allocs, but never by more than those 32 initial
            // registers.
            Rule::le(c("phys_frees"), c("phys_allocs").plus(dide_isa::Reg::COUNT as u64))
                .note("frees may outrun allocs only by the initial mappings"),
            Rule::le(c("branch_mispredicts"), c("branches")),
        ];
        for level in ["l1i", "l1d", "l2"] {
            let cache = |field: &str| Expr::counter(format!("pipeline.mem.{level}.{field}"));
            rules.push(Rule::eq(
                Expr::sum([
                    format!("pipeline.mem.{level}.hits"),
                    format!("pipeline.mem.{level}.misses"),
                ]),
                cache("accesses"),
            ));
            rules.push(Rule::eq(
                Expr::sum([
                    format!("pipeline.mem.{level}.reads"),
                    format!("pipeline.mem.{level}.writes"),
                ]),
                cache("accesses"),
            ));
        }
        rules.push(Rule::eq(
            c("mem.l2.accesses"),
            Expr::sum(["pipeline.mem.l1i.misses", "pipeline.mem.l1d.misses"]),
        ));
        rules.push(Rule::eq(c("mem.memory_accesses"), c("mem.l2.misses")));
        rules
    }

    /// Checks the conservation laws every run must satisfy, returning one
    /// human-readable description per violated law (empty = healthy).
    ///
    /// Implemented as [`PipelineStats::conservation_rules`] checked against
    /// the [`PipelineStats::counters`] snapshot.
    #[must_use]
    pub fn invariant_violations(&self) -> Vec<String> {
        check_rules(&Self::conservation_rules(), &self.counters())
    }
}

impl Observe for PipelineStats {
    fn observe(&self, scope: &mut Scope<'_>) {
        scope.counter("cycles", self.cycles);
        scope.counter("committed", self.committed);
        scope.counter("dispatched", self.dispatched);
        scope.counter("squashed", self.squashed);
        scope.counter("phys_allocs", self.phys_allocs);
        scope.counter("phys_frees", self.phys_frees);
        scope.counter("rf_reads", self.rf_reads);
        scope.counter("rf_writes", self.rf_writes);
        scope.counter("branches", self.branches);
        scope.counter("branch_mispredicts", self.branch_mispredicts);
        scope.counter("btb_misses", self.btb_misses);
        scope.counter("dead_predicted", self.dead_predicted);
        scope.counter("dead_predicted_correct", self.dead_predicted_correct);
        scope.counter("dead_violations", self.dead_violations);
        scope.counter("oracle_dead_committed", self.oracle_dead_committed);
        scope.counter("rob_full_stalls", self.rob_full_stalls);
        scope.counter("iq_full_stalls", self.iq_full_stalls);
        scope.counter("no_phys_stalls", self.no_phys_stalls);
        scope.counter("lsq_full_stalls", self.lsq_full_stalls);
        scope.counter("fetch_stall_cycles", self.fetch_stall_cycles);
        scope.counter("rob_occupancy_sum", self.rob_occupancy_sum);
        scope.counter("iq_occupancy_sum", self.iq_occupancy_sum);
        scope.counter("phys_used_sum", self.phys_used_sum);
        scope.observe("savings", &self.savings);
        scope.observe("mem", &self.memory);
    }
}

impl fmt::Display for PipelineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycles {} | committed {} | IPC {:.3}",
            self.cycles,
            self.committed,
            self.ipc()
        )?;
        writeln!(
            f,
            "branches {} ({:.2}% accurate) | BTB misses {}",
            self.branches,
            100.0 * self.branch_accuracy(),
            self.btb_misses
        )?;
        writeln!(
            f,
            "phys allocs {} | RF r/w {}/{} | stalls rob/iq/phys/lsq {}/{}/{}/{}",
            self.phys_allocs,
            self.rf_reads,
            self.rf_writes,
            self.rob_full_stalls,
            self.iq_full_stalls,
            self.no_phys_stalls,
            self.lsq_full_stalls
        )?;
        writeln!(
            f,
            "eliminated {} ({:.2}% accurate, {:.2}% coverage) | violations {}",
            self.dead_predicted,
            100.0 * self.elimination_accuracy(),
            100.0 * self.elimination_coverage(),
            self.dead_violations
        )?;
        writeln!(
            f,
            "mean occupancy: rob {:.1} | iq {:.1} | rename regs {:.1}",
            self.mean_rob_occupancy(),
            self.mean_iq_occupancy(),
            self.mean_phys_used()
        )?;
        write!(
            f,
            "saved: {} allocs, {}/{} RF r/w, {} D$ accesses, {} IQ slots",
            self.savings.phys_allocs_saved,
            self.savings.rf_reads_saved,
            self.savings.rf_writes_saved,
            self.savings.dcache_accesses_saved,
            self.savings.iq_slots_saved
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_accuracy() {
        let s = PipelineStats {
            cycles: 100,
            committed: 250,
            branches: 10,
            branch_mispredicts: 1,
            dead_predicted: 20,
            dead_predicted_correct: 19,
            oracle_dead_committed: 38,
            ..PipelineStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.branch_accuracy() - 0.9).abs() < 1e-12);
        assert!((s.elimination_accuracy() - 0.95).abs() < 1e-12);
        assert!((s.elimination_coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_metrics() {
        let s = PipelineStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.branch_accuracy(), 1.0);
        assert_eq!(s.elimination_accuracy(), 1.0);
        assert_eq!(s.elimination_coverage(), 0.0);
    }

    #[test]
    fn occupancy_means_at_zero_cycles() {
        // Zero denominators must yield clean zeros, not NaN/inf.
        let s = PipelineStats {
            rob_occupancy_sum: 7,
            iq_occupancy_sum: 9,
            phys_used_sum: 3,
            ..PipelineStats::default()
        };
        assert_eq!(s.mean_rob_occupancy(), 0.0);
        assert_eq!(s.mean_iq_occupancy(), 0.0);
        assert_eq!(s.mean_phys_used(), 0.0);
    }

    #[test]
    fn empty_stats_satisfy_all_invariants() {
        assert!(PipelineStats::default().invariant_violations().is_empty());
    }

    #[test]
    fn each_broken_law_is_reported() {
        let check = |s: &PipelineStats, needle: &str| {
            let v = s.invariant_violations();
            assert!(
                v.iter().any(|m| m.contains(needle)),
                "expected a violation mentioning {needle:?}, got {v:?}"
            );
        };
        let mut s = PipelineStats { committed: 5, ..PipelineStats::default() };
        check(&s, "dispatched");
        s = PipelineStats {
            dead_predicted_correct: 2,
            oracle_dead_committed: 2,
            dead_predicted: 2,
            ..PipelineStats::default()
        };
        check(&s, "iq_slots_saved");
        s = PipelineStats { phys_frees: 33, ..PipelineStats::default() };
        check(&s, "phys_frees");
        s = PipelineStats { branch_mispredicts: 1, ..PipelineStats::default() };
        check(&s, "branch_mispredicts");
        s = PipelineStats::default();
        s.memory.l1d.accesses = 3;
        s.memory.l1d.reads = 3;
        check(&s, "hits");
    }

    #[test]
    fn reduction_math() {
        assert!((PipelineStats::reduction(95, 5) - 0.05).abs() < 1e-12);
        assert_eq!(PipelineStats::reduction(0, 0), 0.0);
    }

    #[test]
    fn display_mentions_key_counters() {
        let text = PipelineStats::default().to_string();
        assert!(text.contains("IPC"));
        assert!(text.contains("eliminated"));
        assert!(text.contains("saved"));
    }
}
