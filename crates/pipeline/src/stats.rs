//! Pipeline statistics and resource-savings accounting.

use std::fmt;

use dide_mem::HierarchyStats;
use dide_obs::{check_rules, CounterSet, Expr, Observe, Rule, Scope};

/// Resource-utilization deltas attributable to dead-instruction
/// elimination — the quantities behind the paper's ">5% average reduction"
/// claim (experiment E8).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceSavings {
    /// Physical-register allocations avoided (each implies a matching free
    /// avoided later).
    pub phys_allocs_saved: u64,
    /// Register-file read ports not consumed.
    pub rf_reads_saved: u64,
    /// Register-file write ports not consumed.
    pub rf_writes_saved: u64,
    /// D-cache accesses avoided (eliminated loads and stores).
    pub dcache_accesses_saved: u64,
    /// Issue-queue slots never occupied.
    pub iq_slots_saved: u64,
}

impl Observe for ResourceSavings {
    fn observe(&self, scope: &mut Scope<'_>) {
        scope.counter("phys_allocs_saved", self.phys_allocs_saved);
        scope.counter("rf_reads_saved", self.rf_reads_saved);
        scope.counter("rf_writes_saved", self.rf_writes_saved);
        scope.counter("dcache_accesses_saved", self.dcache_accesses_saved);
        scope.counter("iq_slots_saved", self.iq_slots_saved);
    }
}

/// Per-cluster counters of a clustered-backend run (one element per
/// execution cluster, exported as `pipeline.cluster.<i>.*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Instructions dispatched into this cluster's issue-queue slice.
    pub dispatched: u64,
    /// Instructions issued from this cluster's issue-queue slice.
    pub issued: u64,
    /// Waiter entries woken by a *delayed* cross-cluster forward — each one
    /// sat ready-blocked for the bypass penalty after the producing
    /// cluster's local writeback.
    pub bypass_stalls: u64,
    /// Predicted-dead instructions `DeadSteer` routed into this cluster.
    pub steered_dead: u64,
}

impl Observe for ClusterStats {
    fn observe(&self, scope: &mut Scope<'_>) {
        scope.counter("dispatched", self.dispatched);
        scope.counter("issued", self.issued);
        scope.counter("bypass_stalls", self.bypass_stalls);
        scope.counter("steered_dead", self.steered_dead);
    }
}

/// Dispatch-steering accounting of a clustered-backend run (exported as
/// `pipeline.steer.*`). Conservation: `normal + dead + squashed ==
/// dispatched`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SteerStats {
    /// Instructions steered by the policy's normal path.
    pub normal: u64,
    /// Predicted-dead instructions steered to the cheap cluster.
    pub dead: u64,
    /// Instructions squashed pre-dispatch (eliminated instead of entering
    /// any cluster's issue queue).
    pub squashed: u64,
    /// Dead-steered instructions the oracle says were actually live
    /// (audited at commit; zero under the oracle predictor).
    pub dead_wrong: u64,
}

impl Observe for SteerStats {
    fn observe(&self, scope: &mut Scope<'_>) {
        scope.counter("normal", self.normal);
        scope.counter("dead", self.dead);
        scope.counter("squashed", self.squashed);
        scope.counter("dead_wrong", self.dead_wrong);
    }
}

/// Counters for one pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Instructions dispatched into the ROB at rename (eliminated or not).
    pub dispatched: u64,
    /// Dispatched instructions squashed before commit. The model is
    /// trace-driven — only committed-path instructions are simulated — so
    /// this stays zero today; the counter exists so the conservation law
    /// `committed + squashed == dispatched` keeps holding verbatim once
    /// wrong-path execution lands (ROADMAP).
    pub squashed: u64,
    /// Physical registers allocated at rename.
    pub phys_allocs: u64,
    /// Physical registers returned to the free list at commit.
    pub phys_frees: u64,
    /// Register-file reads performed by executing instructions.
    pub rf_reads: u64,
    /// Register-file writes performed by completing instructions.
    pub rf_writes: u64,
    /// Conditional branches committed.
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub branch_mispredicts: u64,
    /// Taken control transfers whose target missed the BTB.
    pub btb_misses: u64,
    /// Dynamic instructions predicted dead at rename.
    pub dead_predicted: u64,
    /// Of those, instructions the oracle also labels dead.
    pub dead_predicted_correct: u64,
    /// Dead-tag reads (each charged the violation penalty).
    pub dead_violations: u64,
    /// Oracle-dead instructions that committed (eliminated or not).
    pub oracle_dead_committed: u64,
    /// Cycles rename stalled for a full ROB.
    pub rob_full_stalls: u64,
    /// Cycles rename stalled for a full issue queue.
    pub iq_full_stalls: u64,
    /// Cycles rename stalled for an empty free list.
    pub no_phys_stalls: u64,
    /// Cycles rename stalled for a full load or store queue.
    pub lsq_full_stalls: u64,
    /// Cycles fetch was blocked (mispredict redirects, I-cache misses,
    /// full fetch buffer).
    pub fetch_stall_cycles: u64,
    /// Sum over cycles of ROB occupancy (divide by cycles for the mean).
    pub rob_occupancy_sum: u64,
    /// Sum over cycles of issue-queue occupancy.
    pub iq_occupancy_sum: u64,
    /// Sum over cycles of allocated (non-free) rename registers beyond the
    /// architectural 32.
    pub phys_used_sum: u64,
    /// Savings attributable to elimination.
    pub savings: ResourceSavings,
    /// Cache-hierarchy counters.
    pub memory: HierarchyStats,
    /// Per-cluster counters (empty on the unified backend).
    pub clusters: Vec<ClusterStats>,
    /// Dispatch-steering accounting (all-zero on the unified backend).
    pub steer: SteerStats,
}

impl PipelineStats {
    /// Committed instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Conditional-branch prediction accuracy.
    #[must_use]
    pub fn branch_accuracy(&self) -> f64 {
        if self.branches == 0 {
            1.0
        } else {
            1.0 - self.branch_mispredicts as f64 / self.branches as f64
        }
    }

    /// Precision of acted-on dead predictions.
    #[must_use]
    pub fn elimination_accuracy(&self) -> f64 {
        if self.dead_predicted == 0 {
            1.0
        } else {
            self.dead_predicted_correct as f64 / self.dead_predicted as f64
        }
    }

    /// Fraction of oracle-dead committed instructions that were eliminated.
    #[must_use]
    pub fn elimination_coverage(&self) -> f64 {
        if self.oracle_dead_committed == 0 {
            0.0
        } else {
            self.dead_predicted_correct as f64 / self.oracle_dead_committed as f64
        }
    }

    /// Relative reduction of a resource against its no-elimination usage:
    /// `saved / (used + saved)`.
    #[must_use]
    pub fn reduction(used: u64, saved: u64) -> f64 {
        if used + saved == 0 {
            0.0
        } else {
            saved as f64 / (used + saved) as f64
        }
    }

    /// Mean reorder-buffer occupancy per cycle.
    #[must_use]
    pub fn mean_rob_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.rob_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Mean issue-queue occupancy per cycle.
    #[must_use]
    pub fn mean_iq_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.iq_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Mean rename registers in use (beyond the architectural 32) per
    /// cycle.
    #[must_use]
    pub fn mean_phys_used(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.phys_used_sum as f64 / self.cycles as f64
        }
    }

    /// Snapshots every counter into a registry under the `pipeline.`
    /// namespace (savings under `pipeline.savings.`, cache hierarchy under
    /// `pipeline.mem.`).
    ///
    /// The hot path never touches the registry — stats are plain field
    /// increments during simulation and this snapshot is taken once,
    /// post-run.
    #[must_use]
    pub fn counters(&self) -> CounterSet {
        let mut set = CounterSet::new();
        self.observe(&mut set.scope("pipeline"));
        set
    }

    /// The conservation laws every run must satisfy, expressed over the
    /// counter names produced by [`PipelineStats::counters`].
    ///
    /// These are internal-consistency checks on a single run; cross-run
    /// laws (savings vs. a baseline run's usage) live in `dide-verify`,
    /// built from the same rule vocabulary via [`Rule::prefixed`].
    #[must_use]
    pub fn conservation_rules() -> Vec<Rule> {
        Self::conservation_rules_for(0)
    }

    /// The conservation laws for a run on a machine with `clusters`
    /// execution clusters (`0` = the unified backend, adding no cluster
    /// laws). The cluster laws are the tentpole accounting of DESIGN.md
    /// §11: every dispatch slot is steered or squashed, per-cluster
    /// dispatch/issue sums back to the global counts, and dead-steering is
    /// bounded by its own audit trail.
    #[must_use]
    pub fn conservation_rules_for(clusters: usize) -> Vec<Rule> {
        let c = |name: &str| Expr::counter(format!("pipeline.{name}"));
        let mut rules = vec![
            Rule::eq(Expr::sum(["pipeline.committed", "pipeline.squashed"]), c("dispatched")),
            Rule::le(c("dead_predicted_correct"), c("dead_predicted")),
            Rule::le(c("dead_predicted_correct"), c("oracle_dead_committed")),
            Rule::eq(c("savings.iq_slots_saved"), c("dead_predicted"))
                .note("every elimination skips exactly one IQ slot"),
            // The 32 initial architectural mappings are backed by
            // pre-allocated physical registers that never show up in
            // `phys_allocs`, and an eliminated writer frees its
            // predecessor's register without allocating one — so frees may
            // exceed allocs, but never by more than those 32 initial
            // registers.
            Rule::le(c("phys_frees"), c("phys_allocs").plus(dide_isa::Reg::COUNT as u64))
                .note("frees may outrun allocs only by the initial mappings"),
            Rule::le(c("branch_mispredicts"), c("branches")),
        ];
        for level in ["l1i", "l1d", "l2"] {
            let cache = |field: &str| Expr::counter(format!("pipeline.mem.{level}.{field}"));
            rules.push(Rule::eq(
                Expr::sum([
                    format!("pipeline.mem.{level}.hits"),
                    format!("pipeline.mem.{level}.misses"),
                ]),
                cache("accesses"),
            ));
            rules.push(Rule::eq(
                Expr::sum([
                    format!("pipeline.mem.{level}.reads"),
                    format!("pipeline.mem.{level}.writes"),
                ]),
                cache("accesses"),
            ));
        }
        rules.push(Rule::eq(
            c("mem.l2.accesses"),
            Expr::sum(["pipeline.mem.l1i.misses", "pipeline.mem.l1d.misses"]),
        ));
        rules.push(Rule::eq(c("mem.memory_accesses"), c("mem.l2.misses")));
        if clusters > 0 {
            rules.push(
                Rule::eq(
                    Expr::sum([
                        "pipeline.steer.normal",
                        "pipeline.steer.dead",
                        "pipeline.steer.squashed",
                    ]),
                    c("dispatched"),
                )
                .note("every dispatched instruction is steered or squashed pre-dispatch"),
            );
            let per_cluster = |field: &str| -> Vec<String> {
                (0..clusters).map(|i| format!("pipeline.cluster.{i}.{field}")).collect()
            };
            // Squashed instructions never enter a cluster queue, so the
            // per-cluster sums plus the squash count recover the global
            // dispatch count.
            for field in ["dispatched", "issued"] {
                let mut names = per_cluster(field);
                names.push("pipeline.steer.squashed".to_string());
                rules.push(
                    Rule::eq(Expr::sum(names), c("dispatched"))
                        .note("per-cluster counts plus squashes sum to total dispatch"),
                );
            }
            rules.push(
                Rule::eq(Expr::sum(per_cluster("steered_dead")), c("steer.dead"))
                    .note("dead-steered instructions land in exactly one cluster"),
            );
            rules.push(Rule::le(c("steer.dead_wrong"), c("steer.dead")));
        }
        rules
    }

    /// Checks the conservation laws every run must satisfy, returning one
    /// human-readable description per violated law (empty = healthy).
    ///
    /// Implemented as [`PipelineStats::conservation_rules`] checked against
    /// the [`PipelineStats::counters`] snapshot.
    #[must_use]
    pub fn invariant_violations(&self) -> Vec<String> {
        check_rules(&Self::conservation_rules_for(self.clusters.len()), &self.counters())
    }
}

impl Observe for PipelineStats {
    fn observe(&self, scope: &mut Scope<'_>) {
        scope.counter("cycles", self.cycles);
        scope.counter("committed", self.committed);
        scope.counter("dispatched", self.dispatched);
        scope.counter("squashed", self.squashed);
        scope.counter("phys_allocs", self.phys_allocs);
        scope.counter("phys_frees", self.phys_frees);
        scope.counter("rf_reads", self.rf_reads);
        scope.counter("rf_writes", self.rf_writes);
        scope.counter("branches", self.branches);
        scope.counter("branch_mispredicts", self.branch_mispredicts);
        scope.counter("btb_misses", self.btb_misses);
        scope.counter("dead_predicted", self.dead_predicted);
        scope.counter("dead_predicted_correct", self.dead_predicted_correct);
        scope.counter("dead_violations", self.dead_violations);
        scope.counter("oracle_dead_committed", self.oracle_dead_committed);
        scope.counter("rob_full_stalls", self.rob_full_stalls);
        scope.counter("iq_full_stalls", self.iq_full_stalls);
        scope.counter("no_phys_stalls", self.no_phys_stalls);
        scope.counter("lsq_full_stalls", self.lsq_full_stalls);
        scope.counter("fetch_stall_cycles", self.fetch_stall_cycles);
        scope.counter("rob_occupancy_sum", self.rob_occupancy_sum);
        scope.counter("iq_occupancy_sum", self.iq_occupancy_sum);
        scope.counter("phys_used_sum", self.phys_used_sum);
        scope.observe("savings", &self.savings);
        scope.observe("mem", &self.memory);
        // Cluster/steer counters exist only on the clustered backend, so
        // unified-backend exports (and their goldens) stay byte-identical.
        if !self.clusters.is_empty() {
            scope.observe("steer", &self.steer);
            for (i, cluster) in self.clusters.iter().enumerate() {
                scope.observe(&format!("cluster.{i}"), cluster);
            }
        }
    }
}

impl fmt::Display for PipelineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycles {} | committed {} | IPC {:.3}",
            self.cycles,
            self.committed,
            self.ipc()
        )?;
        writeln!(
            f,
            "branches {} ({:.2}% accurate) | BTB misses {}",
            self.branches,
            100.0 * self.branch_accuracy(),
            self.btb_misses
        )?;
        writeln!(
            f,
            "phys allocs {} | RF r/w {}/{} | stalls rob/iq/phys/lsq {}/{}/{}/{}",
            self.phys_allocs,
            self.rf_reads,
            self.rf_writes,
            self.rob_full_stalls,
            self.iq_full_stalls,
            self.no_phys_stalls,
            self.lsq_full_stalls
        )?;
        writeln!(
            f,
            "eliminated {} ({:.2}% accurate, {:.2}% coverage) | violations {}",
            self.dead_predicted,
            100.0 * self.elimination_accuracy(),
            100.0 * self.elimination_coverage(),
            self.dead_violations
        )?;
        writeln!(
            f,
            "mean occupancy: rob {:.1} | iq {:.1} | rename regs {:.1}",
            self.mean_rob_occupancy(),
            self.mean_iq_occupancy(),
            self.mean_phys_used()
        )?;
        write!(
            f,
            "saved: {} allocs, {}/{} RF r/w, {} D$ accesses, {} IQ slots",
            self.savings.phys_allocs_saved,
            self.savings.rf_reads_saved,
            self.savings.rf_writes_saved,
            self.savings.dcache_accesses_saved,
            self.savings.iq_slots_saved
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_accuracy() {
        let s = PipelineStats {
            cycles: 100,
            committed: 250,
            branches: 10,
            branch_mispredicts: 1,
            dead_predicted: 20,
            dead_predicted_correct: 19,
            oracle_dead_committed: 38,
            ..PipelineStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.branch_accuracy() - 0.9).abs() < 1e-12);
        assert!((s.elimination_accuracy() - 0.95).abs() < 1e-12);
        assert!((s.elimination_coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_metrics() {
        let s = PipelineStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.branch_accuracy(), 1.0);
        assert_eq!(s.elimination_accuracy(), 1.0);
        assert_eq!(s.elimination_coverage(), 0.0);
    }

    #[test]
    fn occupancy_means_at_zero_cycles() {
        // Zero denominators must yield clean zeros, not NaN/inf.
        let s = PipelineStats {
            rob_occupancy_sum: 7,
            iq_occupancy_sum: 9,
            phys_used_sum: 3,
            ..PipelineStats::default()
        };
        assert_eq!(s.mean_rob_occupancy(), 0.0);
        assert_eq!(s.mean_iq_occupancy(), 0.0);
        assert_eq!(s.mean_phys_used(), 0.0);
    }

    #[test]
    fn empty_stats_satisfy_all_invariants() {
        assert!(PipelineStats::default().invariant_violations().is_empty());
    }

    #[test]
    fn each_broken_law_is_reported() {
        let check = |s: &PipelineStats, needle: &str| {
            let v = s.invariant_violations();
            assert!(
                v.iter().any(|m| m.contains(needle)),
                "expected a violation mentioning {needle:?}, got {v:?}"
            );
        };
        let mut s = PipelineStats { committed: 5, ..PipelineStats::default() };
        check(&s, "dispatched");
        s = PipelineStats {
            dead_predicted_correct: 2,
            oracle_dead_committed: 2,
            dead_predicted: 2,
            ..PipelineStats::default()
        };
        check(&s, "iq_slots_saved");
        s = PipelineStats { phys_frees: 33, ..PipelineStats::default() };
        check(&s, "phys_frees");
        s = PipelineStats { branch_mispredicts: 1, ..PipelineStats::default() };
        check(&s, "branch_mispredicts");
        s = PipelineStats::default();
        s.memory.l1d.accesses = 3;
        s.memory.l1d.reads = 3;
        check(&s, "hits");
    }

    #[test]
    fn cluster_conservation_laws() {
        // A healthy 2-cluster run: 10 dispatched = 6 normal + 3 dead + 1
        // squashed; the 9 queue-entering instructions split 5/4 and all
        // issue; the 3 dead-steered ones landed in cluster 1.
        let healthy = PipelineStats {
            committed: 10,
            dispatched: 10,
            steer: SteerStats { normal: 6, dead: 3, squashed: 1, dead_wrong: 1 },
            clusters: vec![
                ClusterStats { dispatched: 5, issued: 5, bypass_stalls: 2, steered_dead: 0 },
                ClusterStats { dispatched: 4, issued: 4, bypass_stalls: 0, steered_dead: 3 },
            ],
            dead_predicted: 1,
            dead_predicted_correct: 1,
            oracle_dead_committed: 4,
            savings: ResourceSavings { iq_slots_saved: 1, ..ResourceSavings::default() },
            ..PipelineStats::default()
        };
        assert!(healthy.invariant_violations().is_empty(), "{:?}", healthy.invariant_violations());

        // Breaking each cluster law is reported.
        let mut bad = healthy.clone();
        bad.steer.normal = 7;
        assert!(bad.invariant_violations().iter().any(|v| v.contains("steer.normal")));
        let mut bad = healthy.clone();
        bad.clusters[0].issued = 4;
        assert!(bad.invariant_violations().iter().any(|v| v.contains("issued")));
        let mut bad = healthy.clone();
        bad.clusters[1].steered_dead = 2;
        assert!(bad.invariant_violations().iter().any(|v| v.contains("steered_dead")));
        let mut bad = healthy.clone();
        bad.steer.dead_wrong = 5;
        assert!(bad.invariant_violations().iter().any(|v| v.contains("dead_wrong")));

        // The unified backend emits no cluster counters and checks no
        // cluster laws.
        let unified = PipelineStats { committed: 3, dispatched: 3, ..PipelineStats::default() };
        assert!(unified.invariant_violations().is_empty());
        assert!(unified.counters().get("pipeline.steer.normal").is_none());
        assert!(healthy.counters().get("pipeline.cluster.1.steered_dead").is_some());
    }

    #[test]
    fn reduction_math() {
        assert!((PipelineStats::reduction(95, 5) - 0.05).abs() < 1e-12);
        assert_eq!(PipelineStats::reduction(0, 0), 0.0);
    }

    #[test]
    fn display_mentions_key_counters() {
        let text = PipelineStats::default().to_string();
        assert!(text.contains("IPC"));
        assert!(text.contains("eliminated"));
        assert!(text.contains("saved"));
    }
}
