//! Per-static-instruction predecode table.
//!
//! Fetch, rename and commit all need the same opcode-derived facts for
//! every dynamic instance of an instruction; resolving them once per
//! *static* instruction replaces repeated `Opcode::kind` dispatch (an
//! indirect jump per instruction) on the hot path with a table lookup
//! indexed by the record's static index. The table is built straight from
//! the program text — every field is static — so it needs no trace and the
//! streaming path can build it before the first epoch exists.

use dide_isa::{OpcodeKind, Program, Reg};

use crate::config::PipelineConfig;
use crate::fu::{classify, FuClass};

/// Control-flow class of a static instruction, with the register facts
/// fetch needs (return-address-stack pushes, return detection) folded in
/// so the fetch loop never re-examines operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Ctrl {
    /// Not a control transfer: fetch keeps streaming.
    None,
    /// Conditional branch: gshare-predicted; ends the group when taken.
    CondBranch,
    /// Direct jump: target known at decode; ends the fetch group.
    /// `push_ras` when it links through `ra`.
    Jal { push_ras: bool },
    /// Indirect jump: target predicted (RAS for returns, target cache
    /// otherwise); ends the fetch group.
    Jalr { is_return: bool, push_ras: bool },
    /// Trace terminator.
    Halt,
}

/// Per-static-instruction decode, indexed by `DynInst::index`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PreDec {
    pub(crate) dest: Option<Reg>,
    pub(crate) srcs: [Option<Reg>; 2],
    pub(crate) fu: FuClass,
    pub(crate) is_load: bool,
    pub(crate) is_store: bool,
    pub(crate) is_cond_branch: bool,
    /// Eligibility for dead prediction under the run's (fixed) policy.
    pub(crate) eligible: bool,
    pub(crate) ctrl: Ctrl,
}

/// Builds the table for a program, one entry per static instruction.
pub(crate) fn predecode(program: &Program, cfg: &PipelineConfig) -> Vec<PreDec> {
    let policy = cfg.dead.policy;
    program
        .insts()
        .iter()
        .map(|inst| {
            let dest = inst.dest();
            let mut srcs = [None, None];
            for (i, s) in inst.sources().enumerate() {
                srcs[i] = Some(s);
            }
            let is_store = inst.op.is_store();
            let ctrl = match inst.op.kind() {
                OpcodeKind::Branch(_) => Ctrl::CondBranch,
                OpcodeKind::Jal => Ctrl::Jal { push_ras: inst.rd == Reg::RA },
                OpcodeKind::Jalr => Ctrl::Jalr {
                    is_return: inst.rs1 == Reg::RA && inst.rd.is_zero(),
                    push_ras: inst.rd == Reg::RA,
                },
                OpcodeKind::Halt => Ctrl::Halt,
                _ => Ctrl::None,
            };
            PreDec {
                dest,
                srcs,
                fu: classify(inst.op),
                is_load: inst.op.is_load(),
                is_store,
                is_cond_branch: matches!(inst.op.kind(), OpcodeKind::Branch(_)),
                eligible: if is_store {
                    policy.covers_stores()
                } else {
                    policy.covers_registers() && dest.is_some() && !inst.op.is_control()
                },
                ctrl,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use dide_emu::Emulator;
    use dide_isa::ProgramBuilder;

    #[test]
    fn control_classes_cover_the_jump_shapes() {
        let mut b = ProgramBuilder::new("ctrl");
        b.li(Reg::T0, 1);
        let f = b.label();
        let over = b.label();
        b.j(over); // skip the function body
        b.bind(f);
        b.ret(); // jalr zero, ra, 0: a return
        b.bind(over);
        b.call(f); // jal ra, f: links through ra
        b.out(Reg::T0);
        b.halt();
        let p = b.build().unwrap();
        let t = Emulator::new(&p).run().unwrap();
        let pre = predecode(&p, &PipelineConfig::baseline());
        assert_eq!(pre.len(), p.len(), "one entry per static instruction");
        let by_seq: Vec<Ctrl> = t.records().iter().map(|r| pre[r.index as usize].ctrl).collect();
        assert!(by_seq.contains(&Ctrl::Jal { push_ras: true }), "{by_seq:?}");
        assert!(by_seq.contains(&Ctrl::Jalr { is_return: true, push_ras: false }), "{by_seq:?}");
        assert_eq!(*by_seq.last().unwrap(), Ctrl::Halt);
        assert_eq!(by_seq[0], Ctrl::None);
    }
}
